/**
 * @file
 * Interactive design-space exploration (the paper's Section VI
 * methodology as a tool): enumerate the legal routing configurations
 * of one sparsity family, score each with the fast analytical model,
 * then cycle-simulate the top candidates on a chosen network.
 *
 *   ./design_space_explorer --family=b --network=bert --top=6
 */

#include <algorithm>
#include <iostream>

#include "arch/dse.hh"
#include "arch/presets.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "griffin/accelerator.hh"
#include "model/analytic.hh"
#include "power/cost_model.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    Cli cli("routing design-space explorer");
    cli.addString("family", "b", "sparsity family to explore: a|b|ab");
    cli.addString("network", "resnet50", "workload for simulation");
    cli.addInt("top", 6, "simulate this many analytically-best points");
    cli.addDouble("sample", 0.04, "tile sampling fraction");
    cli.parse(argc, argv);

    const TileShape shape{};
    const auto family = cli.getString("family");
    const auto net = networkByName(cli.getString("network"));

    std::vector<RoutingConfig> space;
    DnnCategory cat;
    if (family == "b") {
        space = enumerateSparseB(shape);
        cat = DnnCategory::B;
    } else if (family == "a") {
        space = enumerateSparseA(shape);
        cat = DnnCategory::A;
    } else if (family == "ab") {
        space = enumerateSparseAB(shape);
        cat = DnnCategory::AB;
    } else {
        fatal("unknown family '", family, "' (want a|b|ab)");
    }
    std::cout << space.size() << " legal configurations in the Sparse."
              << family << " space (fan-in limits of Section VI)\n\n";

    // Rank analytically first — this is why the paper built the model.
    const double asp = hasSparseA(cat) ? net.actSparsity : 0.0;
    const double bsp = hasSparseB(cat) ? net.weightSparsity : 0.0;
    std::vector<std::pair<double, RoutingConfig>> ranked;
    for (const auto &cfg : space)
        ranked.push_back({analyticSpeedup(cfg, shape, asp, bsp), cfg});
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &x, const auto &y) {
                  return x.first > y.first;
              });

    const auto top = std::min<std::size_t>(
        ranked.size(), static_cast<std::size_t>(cli.getInt("top")));
    RunOptions opt;
    opt.sim.sampleFraction = cli.getDouble("sample");
    opt.rowCap = 48;

    Table t("top configurations on " + net.name,
            {"config", "analytic", "simulated", "TOPS/W", "TOPS/mm2"});
    for (std::size_t i = 0; i < top; ++i) {
        ArchConfig arch = denseBaseline();
        arch.routing = ranked[i].second;
        arch.name = arch.routing.str();
        Accelerator acc(arch);
        const auto result = acc.run(net, cat, opt);
        t.addRow({arch.name, Table::num(ranked[i].first),
                  Table::num(result.speedup),
                  Table::num(result.topsPerWatt),
                  Table::num(result.topsPerMm2)});
    }
    t.print(std::cout);
    return 0;
}
