/**
 * @file
 * Quickstart: simulate one sparse GEMM on Griffin and verify the
 * schedule functionally against a dense reference.
 *
 *   ./quickstart
 */

#include <iostream>

#include "arch/presets.hh"
#include "common/rng.hh"
#include "model/analytic.hh"
#include "power/cost_model.hh"
#include "sched/b_preprocess.hh"
#include "sched/verify.hh"
#include "sim/gemm_sim.hh"
#include "tensor/sparsity.hh"

using namespace griffin;

int
main()
{
    // A pruned-weights GEMM: 128x512 activations (50% ReLU zeros)
    // against 512x64 weights (85% pruned).
    Rng rng(42);
    auto a = randomSparse(128, 512, 0.50, rng);
    auto b = randomSparse(512, 64, 0.85, rng);

    // 1. Run it on Griffin in dual-sparse mode.
    const auto arch = griffinArch();
    const auto result = simulateGemm(a, b, arch, DnnCategory::AB);
    std::cout << "Griffin on a (128x512x64) dual-sparse GEMM\n"
              << "  dense cycles   : " << result.denseCycles << "\n"
              << "  griffin cycles : " << result.totalCycles << "\n"
              << "  speedup        : " << result.speedup() << "x\n"
              << "  effectual MACs : " << result.effectualOps << " of "
              << result.denseOps << "\n";

    // 2. The analytical model predicts the same design point without
    //    simulating (the paper's DSE tool).
    std::cout << "  analytic model : "
              << analyticSpeedup(arch.routing, arch.tile, 0.50, 0.85)
              << "x predicted\n";

    // 3. Efficiency per Definition V.1.
    std::cout << "  efficiency     : "
              << effectiveTopsPerWatt(arch, DnnCategory::AB,
                                      result.speedup())
              << " TOPS/W, "
              << effectiveTopsPerMm2(arch, DnnCategory::AB,
                                     result.speedup())
              << " TOPS/mm2\n";

    // 4. Functional check: replay the offline-compressed weight
    //    stream against the dense reference GEMM.
    Shuffler shuffler(true, arch.tile.k0);
    TileViewB view(b, arch.tile, 0);
    auto stream = preprocessB(view, arch.routing.b, shuffler, false);
    const auto got = replayBSchedule(stream, a, b, 0, 0, arch.tile);
    const auto want = referenceTile(a, b, 0, 0, arch.tile);
    std::cout << "  verification   : compressed-stream replay "
              << (got == want ? "matches" : "DIVERGES FROM")
              << " the dense reference\n"
              << "  compression    : " << view.steps() << " steps -> "
              << stream.cycles() << " stream cycles ("
              << stream.dataBytes() << " B payload + "
              << stream.metadataBytes(4) << " B metadata)\n";
    return got == want ? 0 : 1;
}
