/**
 * @file
 * Where does sparse hardware start paying off?  Sweep weight sparsity
 * on one network and find the crossover where each sparse design's
 * *effective power efficiency* overtakes the dense baseline — the
 * trade the paper's intro motivates ("the sparsity tax spent for the
 * sake of the sparsity gain").
 *
 *   ./pruning_crossover --network=resnet50
 */

#include <iostream>

#include "arch/presets.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "griffin/accelerator.hh"
#include "power/cost_model.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    Cli cli("sparsity crossover analysis");
    cli.addString("network", "resnet50", "workload network");
    cli.addDouble("sample", 0.03, "tile sampling fraction");
    cli.parse(argc, argv);

    auto net = networkByName(cli.getString("network"));
    RunOptions opt;
    opt.sim.sampleFraction = cli.getDouble("sample");
    opt.rowCap = 48;

    const auto baseline_eff = effectiveTopsPerWatt(
        denseBaseline(), DnnCategory::Dense, 1.0);
    std::cout << "dense baseline: " << Table::num(baseline_eff)
              << " TOPS/W\n\n";

    Table t("effective TOPS/W vs weight sparsity on " + net.name,
            {"weight sparsity", "Sparse.B*", "Griffin", "SparTen.AB",
             "winner"});
    Accelerator b_star(sparseBStar());
    Accelerator griffin(griffinArch());
    Accelerator sparten(sparTenAB());
    for (double wsp : {0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
        auto sweep = net;
        sweep.weightSparsity = wsp;
        for (auto &node : sweep.nodes)
            if (node.layer.weightSparsity > 0.0)
                node.layer.weightSparsity = -1.0; // sweep rules them all
        const auto cat = wsp > 0.0 ? DnnCategory::B : DnnCategory::Dense;
        const double eb =
            b_star.run(sweep, cat, opt).topsPerWatt;
        const double eg =
            griffin.run(sweep, cat, opt).topsPerWatt;
        const double es =
            sparten.run(sweep, cat, opt).topsPerWatt;
        const char *winner = "baseline";
        double best = baseline_eff;
        if (eb > best) { best = eb; winner = "Sparse.B*"; }
        if (eg > best) { best = eg; winner = "Griffin"; }
        if (es > best) { best = es; winner = "SparTen.AB"; }
        t.addRow({Table::num(wsp, 2), Table::num(eb), Table::num(eg),
                  Table::num(es), winner});
    }
    t.print(std::cout);
    std::cout << "\nEverything below the crossover row is the "
                 "sparsity tax; everything above is the gain.\n";
    return 0;
}
