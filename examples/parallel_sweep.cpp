/**
 * @file
 * Parallel sweep via the runtime/ subsystem, declared as a named-axis
 * grid: build a GridSpec with the builder API (or pass --grid), shard
 * the expanded jobs across a thread pool — down to one sub-job per
 * network layer — share preprocessed weight schedules between jobs
 * and across process runs, and serialize the merged results as JSON
 * rows that carry their own grid coordinates.
 *
 *   ./parallel_sweep
 *   ./parallel_sweep --grid "weight_lane_bias=0:1:0.25,seed=1..2"
 *   ./parallel_sweep --layer-shard --cache-file sweep.grfc
 *
 * The printed JSON is bit-identical to a --threads 1 run of the same
 * grid, layer-sharded or not: every job (and every layer sub-job)
 * carries an order-independent seed and results merge in submission
 * order, so parallelism never changes the numbers.  A --cache-file is
 * loaded before the sweep and saved after it; a second run then skips
 * B-side preprocessing for every tile the first run packed
 * (cache_store.hh).
 */

#include <iostream>

#include "arch/presets.hh"
#include "common/cli.hh"
#include "runtime/cache_store.hh"
#include "runtime/grid.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/thread_pool.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    Cli cli("Parallel sweep example: a named-axis grid on the "
            "work-stealing pool");
    cli.addInt("threads", ThreadPool::hardwareThreads(),
               "worker threads (1 = serial)");
    cli.addBool("layer-shard", true,
                "fan each network job out into per-layer sub-jobs");
    cli.addString("grid", "",
                  "replace the built-in grid with a parsed spec, e.g. "
                  "\"arch=Griffin,network=resnet50,weight_lane_bias="
                  "0:1:0.5\"");
    cli.addString("cache-file", "",
                  "persist preprocessed B schedules to this GRFC file");
    cli.parse(argc, argv);

    // The sweep is a GridSpec: named axes, each a value list, expanded
    // as a cartesian product in declaration order.  A 2-arch x
    // 2-network x 2-category x 2-lane-bias grid is 16 jobs — and with
    // layer sharding one sub-job per layer, so even this small grid
    // keeps every worker busy.  Real studies push more values onto
    // the axes (ranges like "0:1:0.25" and "1..8" expand inline).
    GridSpec grid;
    if (!cli.getString("grid").empty())
        grid = GridSpec::parse(cli.getString("grid"));
    else
        grid.axis("arch", {"Griffin", "Sparse.B*"})
            .axis("network", {"resnet50", "bert"})
            .axis("category", {"b", "ab"})
            .axis("weight_lane_bias", {0.25, 0.75});

    // The base spec supplies whatever the grid leaves unswept: default
    // identity axes and the RunOptions fields every variant inherits.
    SweepSpec base;
    base.archs = {griffinArch(), sparseBStar()};
    base.networks = {resNet50(), bertBase()};
    base.categories = {DnnCategory::B, DnnCategory::AB};
    RunOptions fast;
    fast.sim.sampleFraction = 0.05;
    fast.sim.minSampledTiles = 4;
    fast.rowCap = 64;
    base.optionVariants = {fast};

    SweepSpec spec = grid.toSweepSpec(base);
    spec.shardLayers = cli.getBool("layer-shard");

    ScheduleCache cache;
    const auto cache_path = cli.getString("cache-file");
    if (!cache_path.empty()) {
        const auto loaded = loadCacheFile(cache_path, cache);
        std::cerr << "schedule cache: loaded " << loaded
                  << " entries from " << cache_path << "\n";
    }

    const int threads = static_cast<int>(cli.getInt("threads"));
    std::cerr << "running " << spec.jobCount() << " jobs on " << threads
              << " threads" << (spec.shardLayers ? " (layer-sharded)" : "")
              << "\n";

    const auto sweep = runSweep(spec, threads, &cache);

    // Jobs sharing a weight tensor reuse each other's preprocessed
    // B schedules: every Sparse.B column tile is packed once per
    // distinct (tile content, borrow window, shuffle) triple — and
    // with a cache file, once per *lifetime* of the file.
    const auto &cs = sweep.cacheStats();
    std::cerr << "schedule cache: " << cs.hits << " hits, " << cs.misses
              << " misses, " << cs.entries << " entries, "
              << cs.loadHits << " load hits\n";

    if (!cache_path.empty()) {
        const auto stored = saveCacheFile(cache_path, cache);
        std::cerr << "schedule cache: stored " << stored
                  << " entries to " << cache_path << "\n";
    }

    // Every row carries its resolved options and grid coordinates
    // ("coords"), so a two-variant sweep stays distinguishable in the
    // output alone.
    writeJson(std::cout, sweep);
    return 0;
}
