/**
 * @file
 * Parallel sweep via the runtime/ subsystem: shard a design-space
 * grid across a thread pool — down to one sub-job per network layer —
 * share preprocessed weight schedules between jobs and across process
 * runs, and serialize the merged results as JSON.
 *
 *   ./parallel_sweep
 *   ./parallel_sweep --layer-shard --cache-file sweep.grfc
 *
 * The printed JSON is bit-identical to a --threads 1 run of the same
 * grid, layer-sharded or not: every job (and every layer sub-job)
 * carries an order-independent seed and results merge in submission
 * order, so parallelism never changes the numbers.  A --cache-file is
 * loaded before the sweep and saved after it; a second run then skips
 * B-side preprocessing for every tile the first run packed
 * (cache_store.hh).
 */

#include <iostream>

#include "arch/presets.hh"
#include "common/cli.hh"
#include "runtime/cache_store.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/thread_pool.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    Cli cli("Parallel sweep example: a small arch x network x category "
            "grid on the work-stealing pool");
    cli.addInt("threads", ThreadPool::hardwareThreads(),
               "worker threads (1 = serial)");
    cli.addBool("layer-shard", true,
                "fan each network job out into per-layer sub-jobs");
    cli.addString("cache-file", "",
                  "persist preprocessed B schedules to this GRFC file");
    cli.parse(argc, argv);

    // A 2-arch x 2-network x 2-category grid: 8 jobs — and with layer
    // sharding one sub-job per layer, so even this small grid keeps
    // every worker busy.  Real studies sweep hundreds of points; the
    // spec scales by pushing more entries (or RunOptions variants)
    // into the vectors.
    SweepSpec spec;
    spec.archs = {griffinArch(), sparseBStar()};
    spec.networks = {resNet50(), bertBase()};
    spec.categories = {DnnCategory::B, DnnCategory::AB};
    spec.shardLayers = cli.getBool("layer-shard");

    RunOptions fast;
    fast.sim.sampleFraction = 0.05;
    fast.sim.minSampledTiles = 4;
    fast.rowCap = 64;
    spec.optionVariants = {fast};

    ScheduleCache cache;
    const auto cache_path = cli.getString("cache-file");
    if (!cache_path.empty()) {
        const auto loaded = loadCacheFile(cache_path, cache);
        std::cerr << "schedule cache: loaded " << loaded
                  << " entries from " << cache_path << "\n";
    }

    const int threads = static_cast<int>(cli.getInt("threads"));
    std::cerr << "running " << spec.jobCount() << " jobs on " << threads
              << " threads" << (spec.shardLayers ? " (layer-sharded)" : "")
              << "\n";

    const auto sweep = runSweep(spec, threads, &cache);

    // Jobs sharing a weight tensor reuse each other's preprocessed
    // B schedules: every Sparse.B column tile is packed once per
    // distinct (tile content, borrow window, shuffle) triple — and
    // with a cache file, once per *lifetime* of the file.
    const auto &cs = sweep.cacheStats();
    std::cerr << "schedule cache: " << cs.hits << " hits, " << cs.misses
              << " misses, " << cs.entries << " entries, "
              << cs.loadHits << " load hits\n";

    if (!cache_path.empty()) {
        const auto stored = saveCacheFile(cache_path, cache);
        std::cerr << "schedule cache: stored " << stored
                  << " entries to " << cache_path << "\n";
    }

    writeJson(std::cout, sweep.results());
    return 0;
}
