/**
 * @file
 * Parallel sweep via the runtime/ subsystem: shard a design-space
 * grid across a thread pool, share preprocessed weight schedules
 * between jobs, and serialize the merged results as JSON.
 *
 *   ./parallel_sweep
 *
 * The printed JSON is bit-identical to a --threads 1 run of the same
 * grid: jobs carry their own seeds and results merge in submission
 * order, so parallelism never changes the numbers.
 */

#include <iostream>

#include "arch/presets.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/thread_pool.hh"

using namespace griffin;

int
main()
{
    // A 2-arch x 2-network x 2-category grid: 8 jobs.  Real studies
    // sweep hundreds of points; the spec scales by pushing more
    // entries (or RunOptions variants) into the vectors.
    SweepSpec spec;
    spec.archs = {griffinArch(), sparseBStar()};
    spec.networks = {resNet50(), bertBase()};
    spec.categories = {DnnCategory::B, DnnCategory::AB};

    RunOptions fast;
    fast.sim.sampleFraction = 0.05;
    fast.sim.minSampledTiles = 4;
    fast.rowCap = 64;
    spec.optionVariants = {fast};

    const int threads = ThreadPool::hardwareThreads();
    std::cerr << "running " << spec.jobCount() << " jobs on " << threads
              << " threads\n";

    const auto sweep = runSweep(spec, threads);

    // Jobs sharing a weight tensor reuse each other's preprocessed
    // B schedules: every Sparse.B column tile is packed once per
    // distinct (tile content, borrow window, shuffle) triple.
    const auto &cs = sweep.cacheStats();
    std::cerr << "schedule cache: " << cs.hits << " hits, " << cs.misses
              << " misses, " << cs.entries << " entries\n";

    writeJson(std::cout, sweep.results());
    return 0;
}
