/**
 * @file
 * ASCII visualisation of the borrowing machinery on a tiny tile —
 * the executable version of the paper's Fig. 2/3 walk-through.
 *
 *   ./schedule_visualizer --db1=2 --db3=1 --sparsity=0.6
 */

#include <iostream>

#include "common/cli.hh"
#include "common/rng.hh"
#include "sched/b_preprocess.hh"
#include "tensor/sparsity.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    Cli cli("weight-stream packing visualizer");
    cli.addInt("db1", 2, "lookahead distance (time)");
    cli.addInt("db2", 0, "lookaside distance (lanes)");
    cli.addInt("db3", 1, "cross-PE distance (columns)");
    cli.addBool("shuffle", false, "enable the rotation shuffle");
    cli.addDouble("sparsity", 0.6, "weight sparsity");
    cli.addInt("seed", 5, "mask seed");
    cli.parse(argc, argv);

    // A deliberately tiny core so the picture fits a terminal:
    // 4 lanes, 2 output columns, 8 temporal steps.
    TileShape shape;
    shape.k0 = 4;
    shape.n0 = 2;
    shape.m0 = 1;
    Rng rng(static_cast<std::uint64_t>(cli.getInt("seed")));
    auto b = randomSparse(8 * shape.k0, shape.n0,
                          cli.getDouble("sparsity"), rng);
    TileViewB view(b, shape, 0);
    const Borrow db{static_cast<int>(cli.getInt("db1")),
                    static_cast<int>(cli.getInt("db2")),
                    static_cast<int>(cli.getInt("db3"))};
    Shuffler sh(cli.getBool("shuffle"), shape.k0);
    auto stream = preprocessB(view, db, sh, true);

    std::cout << "dense weight tile (step x lane, per column; '.' is "
                 "a zero):\n";
    for (int n = 0; n < shape.n0; ++n) {
        std::cout << "  col " << n << ": ";
        for (std::int64_t k1 = 0; k1 < view.steps(); ++k1) {
            for (int k2 = 0; k2 < shape.k0; ++k2)
                std::cout << (view.nonzero(k1, k2, n) ? 'x' : '.');
            std::cout << ' ';
        }
        std::cout << '\n';
    }

    std::cout << "\ncompressed stream after B(" << db.d1 << ","
              << db.d2 << "," << db.d3 << ","
              << (cli.getBool("shuffle") ? "on" : "off") << ") packing ("
              << view.steps() << " steps -> " << stream.cycles()
              << " cycles):\n";
    std::cout << "  each cell is the original flat k of the element a "
                 "slot executes;\n  '*' marks one borrowed across "
                 "columns (routed back via the extra adder tree)\n";
    for (int n = 0; n < shape.n0; ++n) {
        std::cout << "  col " << n << ":\n";
        for (int l = 0; l < shape.k0; ++l) {
            std::cout << "    lane " << l << ": ";
            for (std::int64_t c = 0; c < stream.cycles(); ++c) {
                const auto k = stream.flatK(c, l, n);
                if (k < 0) {
                    std::cout << "  --";
                } else {
                    std::cout << (stream.homeCol(c, l, n) != n ? " *"
                                                               : "  ")
                              << (k < 10 ? "0" : "") << k;
                }
            }
            std::cout << '\n';
        }
    }
    const auto &stats = stream.stats();
    std::cout << "\npacking: " << stats.ops << " nonzeros, "
              << stats.stolenOps << " borrowed, speedup "
              << static_cast<double>(view.steps()) /
                     static_cast<double>(stream.cycles())
              << "x (ideal bound " << 1 + db.d1 << "x)\n";
    return 0;
}
