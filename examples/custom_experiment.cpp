/**
 * @file
 * Registering and running a custom experiment programmatically — the
 * ~30-line answer to "add an experiment" that used to be a new bench
 * binary.
 *
 * The descriptor names the study, declares its grid (here: lane bias
 * x shuffle on/off on one network), and renders the reduced result;
 * runExperiment() handles expansion, the thread pool, and (in
 * griffin_bench) cache persistence and fleet sharding uniformly.
 *
 *   ./custom_experiment
 */

#include <iostream>

#include "runtime/experiment.hh"
#include "workloads/network.hh"

using namespace griffin;

int
main()
{
    registerExperiment(
        {"shuffle_vs_bias",
         "does the shuffler pay off as lane imbalance grows?",
         /*defaultSample=*/0.05, /*defaultRowCap=*/32,
         [](const RunOptions &) {
             ExperimentPlan plan;
             plan.grid.axis("weight_lane_bias", {0.0, 0.4, 0.8})
                 .axis("arch", {"B(6,0,0,off)", "B(6,0,0,on)"})
                 .axis("category", {"b"});
             plan.base.networks = {networkByName("resnet50")};
             return plan;
         },
         [](const ExperimentContext &ctx) {
             Table t("shuffle gain vs weight lane bias",
                     {"lane bias", "off", "on"});
             for (std::size_t o = 0;
                  o < ctx.spec->optionVariants.size(); ++o)
                 t.addRow({Table::num(
                               ctx.spec->optionVariants[o]
                                   .weightLaneBias, 1),
                           Table::num(ctx.variantGeomean(o, 0, 0)),
                           Table::num(ctx.variantGeomean(o, 1, 0))});
             return std::vector<Table>{t};
         }});

    ExperimentRunConfig config;
    const Experiment &exp = *findExperiment("shuffle_vs_bias");
    config.run.sim.sampleFraction = exp.defaultSample;
    config.run.sim.minSampledTiles = 4;
    config.run.rowCap = exp.defaultRowCap;
    config.threads = 4;

    std::cout << describeExperiment(exp) << '\n';
    const auto outcome = runExperiment(exp, config);
    for (const auto &table : outcome.tables) {
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
