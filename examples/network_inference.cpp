/**
 * @file
 * End-to-end inference latency of a benchmark network on any
 * architecture, in any workload category, with a per-layer breakdown.
 *
 *   ./network_inference --network=resnet50 --arch=Griffin \
 *       --category=ab --layers
 */

#include <iostream>

#include "arch/presets.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "griffin/accelerator.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    Cli cli("end-to-end network inference simulation");
    cli.addString("network", "resnet50",
                  "alexnet|googlenet|resnet50|inceptionv3|mobilenetv2|"
                  "bert");
    cli.addString("arch", "Griffin",
                  "architecture preset name (see arch/presets.hh)");
    cli.addString("category", "ab", "dense|a|b|ab");
    cli.addBool("layers", false, "print the per-layer breakdown");
    cli.addDouble("sample", 0.05, "tile sampling fraction");
    cli.addInt("rowcap", 64, "max activation rows simulated per layer");
    cli.parse(argc, argv);

    const auto net = networkByName(cli.getString("network"));
    const auto arch = presetByName(cli.getString("arch"));
    const auto cat = categoryFromString(cli.getString("category"));

    RunOptions opt;
    opt.sim.sampleFraction = cli.getDouble("sample");
    opt.rowCap = cli.getInt("rowcap");

    Accelerator acc(arch);
    const auto result = acc.run(net, cat, opt);

    std::cout << net.name << " (" << net.accuracy << ") on "
              << arch.name << ", " << toString(cat) << "\n"
              << "  dense latency  : " << result.denseCycles
              << " cycles\n"
              << "  latency        : " << result.totalCycles
              << " cycles ("
              << Table::num(result.totalCycles /
                                (arch.mem.freqGHz * 1e6),
                            3)
              << " ms at 800 MHz)\n"
              << "  speedup        : " << Table::num(result.speedup)
              << "x\n"
              << "  efficiency     : "
              << Table::num(result.topsPerWatt) << " TOPS/W, "
              << Table::num(result.topsPerMm2) << " TOPS/mm2\n";

    if (cli.getBool("layers")) {
        Table t("per-layer breakdown",
                {"layer", "MACs", "dense", "cycles", "speedup"});
        for (const auto &layer : result.layers) {
            t.addRow({layer.name,
                      Table::count(
                          static_cast<std::uint64_t>(layer.macs)),
                      Table::count(static_cast<std::uint64_t>(
                          layer.denseCycles)),
                      Table::count(static_cast<std::uint64_t>(
                          layer.totalCycles)),
                      Table::num(layer.speedup)});
        }
        t.print(std::cout);
    }
    return 0;
}
