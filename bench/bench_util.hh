/**
 * @file
 * Shared plumbing for the table/figure regeneration benches.
 *
 * Every bench accepts the same flags (--sample, --rowcap, --seed,
 * --csv) so the whole suite can be re-run at higher fidelity with one
 * knob.  Defaults are tuned to finish the full suite in minutes on a
 * laptop; the shapes are stable well below these settings (tests pin
 * sampling accuracy).
 */

#ifndef GRIFFIN_BENCH_BENCH_UTIL_HH
#define GRIFFIN_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "griffin/accelerator.hh"

namespace griffin {
namespace bench {

/** Parsed common flags. */
struct BenchArgs
{
    RunOptions run;
    bool csv = false;
};

inline BenchArgs
parseArgs(int argc, const char *const *argv,
          const std::string &description, double default_sample = 0.04,
          std::int64_t default_rowcap = 48)
{
    Cli cli(description);
    cli.addDouble("sample", default_sample,
                  "fraction of tiles simulated per layer");
    cli.addInt("rowcap", default_rowcap,
               "max activation rows simulated per layer");
    cli.addInt("seed", 1, "tensor generation seed");
    cli.addDouble("lanebias", 0.5,
                  "weight lane-imbalance depth (see sparsity.hh)");
    cli.addBool("csv", false, "emit CSV instead of boxed tables");
    cli.parse(argc, argv);

    BenchArgs args;
    args.run.sim.sampleFraction = cli.getDouble("sample");
    args.run.sim.minSampledTiles = 4;
    args.run.rowCap = cli.getInt("rowcap");
    args.run.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    args.run.weightLaneBias = cli.getDouble("lanebias");
    args.csv = cli.getBool("csv");
    return args;
}

inline void
show(const Table &table, const BenchArgs &args)
{
    if (args.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << '\n';
}

/** Geometric-mean speedup of one architecture over the whole suite. */
inline double
suiteSpeedup(const ArchConfig &arch, DnnCategory cat,
             const RunOptions &opt)
{
    Accelerator acc(arch);
    return geomeanSpeedup(acc.runSuite(cat, opt));
}

} // namespace bench
} // namespace griffin

#endif // GRIFFIN_BENCH_BENCH_UTIL_HH
