/**
 * @file
 * Shared plumbing for the table/figure regeneration benches.
 *
 * Every bench accepts the same flags (--sample, --rowcap, --seed,
 * --csv) so the whole suite can be re-run at higher fidelity with one
 * knob.  Defaults are tuned to finish the full suite in minutes on a
 * laptop; the shapes are stable well below these settings (tests pin
 * sampling accuracy).
 */

#ifndef GRIFFIN_BENCH_BENCH_UTIL_HH
#define GRIFFIN_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "griffin/accelerator.hh"
#include "runtime/result_sink.hh"
#include "runtime/thread_pool.hh"

namespace griffin {
namespace bench {

/** Parsed common flags. */
struct BenchArgs
{
    RunOptions run;
    bool csv = false;
    /** Worker threads for benches that sweep through runSweep (1 for
     *  the ones that run serially); results are thread-count
     *  independent either way. */
    int threads = 1;
    /**
     * When set, every table show()n is written to this path as one
     * JSON Lines record ({"table", "columns", "rows"}), so perf
     * trajectories can be diffed by machine instead of screen-scraped.
     * The file is rewritten per run (first table truncates, the rest
     * of the run appends).
     */
    std::string jsonPath;
    bool jsonStarted = false; ///< first write truncates, rest append
};

/**
 * Declare the simulation-fidelity flags every bench shares.  Kept as a
 * separate phase so drivers with extra flags (bench_runner) register
 * the same names, defaults, and help text as the table benches.
 */
inline void
addRunFlags(Cli &cli, double default_sample = 0.04,
            std::int64_t default_rowcap = 48)
{
    cli.addDouble("sample", default_sample,
                  "fraction of tiles simulated per layer");
    cli.addInt("rowcap", default_rowcap,
               "max activation rows simulated per layer");
    cli.addInt("seed", 1, "tensor generation seed");
    cli.addDouble("lanebias", 0.5,
                  "weight lane-imbalance depth (see sparsity.hh)");
}

/** Read back the flags addRunFlags() declared. */
inline RunOptions
readRunFlags(const Cli &cli)
{
    RunOptions run;
    run.sim.sampleFraction = cli.getDouble("sample");
    run.sim.minSampledTiles = 4;
    run.rowCap = cli.getInt("rowcap");
    run.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    run.weightLaneBias = cli.getDouble("lanebias");
    return run;
}

inline BenchArgs
parseArgs(int argc, const char *const *argv,
          const std::string &description, double default_sample = 0.04,
          std::int64_t default_rowcap = 48, bool add_threads = false)
{
    Cli cli(description);
    addRunFlags(cli, default_sample, default_rowcap);
    if (add_threads)
        cli.addInt("threads", ThreadPool::hardwareThreads(),
                   "worker threads (1 = serial; results are "
                   "bit-identical for any value)");
    cli.addBool("csv", false, "emit CSV instead of boxed tables");
    cli.addString("json", "",
                  "write each table to this path as JSON Lines "
                  "(rewritten per run)");
    cli.parse(argc, argv);

    BenchArgs args;
    args.run = readRunFlags(cli);
    if (add_threads)
        args.threads = static_cast<int>(cli.getInt("threads"));
    args.csv = cli.getBool("csv");
    args.jsonPath = cli.getString("json");
    return args;
}

inline void
show(const Table &table, BenchArgs &args)
{
    if (args.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << '\n';
    if (!args.jsonPath.empty()) {
        std::ofstream os(args.jsonPath, args.jsonStarted
                                            ? std::ios::app
                                            : std::ios::trunc);
        if (!os)
            fatal("cannot open --json path '", args.jsonPath, "'");
        args.jsonStarted = true;
        writeTableJsonLine(os, table);
    }
}

/** Geometric-mean speedup of one architecture over the whole suite. */
inline double
suiteSpeedup(const ArchConfig &arch, DnnCategory cat,
             const RunOptions &opt)
{
    Accelerator acc(arch);
    return geomeanSpeedup(acc.runSuite(cat, opt));
}

} // namespace bench
} // namespace griffin

#endif // GRIFFIN_BENCH_BENCH_UTIL_HH
