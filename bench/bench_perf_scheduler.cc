/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * window scheduler, B preprocessing, the asynchronous dual engine,
 * and the SparTen bit-mask matcher.  These guard the "laptop-runnable"
 * property the reproduction depends on.
 */

#include <benchmark/benchmark.h>

#include "arch/presets.hh"
#include "baselines/sparten.hh"
#include "common/rng.hh"
#include "sched/a_arbiter.hh"
#include "sched/b_preprocess.hh"
#include "sched/dual_scheduler.hh"
#include "sim/gemm_sim.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

const TileShape kShape{};

void
BM_PreprocessB(benchmark::State &state)
{
    Rng rng(7);
    const auto sparsity = static_cast<double>(state.range(0)) / 100.0;
    auto b = randomSparse(1024, 16, sparsity, rng);
    TileViewB view(b, kShape, 0);
    Shuffler sh(true, kShape.k0);
    const Borrow db{4, 0, 1};
    for (auto _ : state) {
        auto stream = preprocessB(view, db, sh, false);
        benchmark::DoNotOptimize(stream.cycles());
    }
    state.counters["steps/s"] = benchmark::Counter(
        static_cast<double>(view.steps()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PreprocessB)->Arg(50)->Arg(80)->Arg(95);

void
BM_ScheduleA(benchmark::State &state)
{
    Rng rng(8);
    auto a = randomSparse(4, 1024, 0.5, rng);
    TileViewA view(a, kShape, 0);
    Shuffler sh(true, kShape.k0);
    const Borrow da{2, 1, 0};
    for (auto _ : state) {
        auto result = scheduleA(view, da, sh, 3.0, false);
        benchmark::DoNotOptimize(result.stats.cycles);
    }
}
BENCHMARK(BM_ScheduleA);

void
BM_DualAsync(benchmark::State &state)
{
    Rng rng(9);
    auto a = randomSparse(4, 1024, 0.5, rng);
    auto b = randomSparse(1024, 16, 0.8, rng);
    TileViewA va(a, kShape, 0);
    TileViewB vb(b, kShape, 0);
    Shuffler sh(true, kShape.k0);
    const auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    auto stream = preprocessB(vb, cfg.b, sh, false);
    for (auto _ : state) {
        auto dual = scheduleDual(va, vb, cfg, sh, &stream, 9.0, false);
        benchmark::DoNotOptimize(dual.cycles);
    }
}
BENCHMARK(BM_DualAsync);

void
BM_GemmSimSparseB(benchmark::State &state)
{
    Rng rng(10);
    auto a = randomSparse(64, 1152, 0.0, rng);
    auto b = randomSparse(1152, 256, 0.8, rng);
    auto arch = sparseBStar();
    for (auto _ : state) {
        auto r = simulateGemm(a, b, arch, DnnCategory::B);
        benchmark::DoNotOptimize(r.totalCycles);
    }
    state.counters["MACs/s"] = benchmark::Counter(
        static_cast<double>(64) * 1152 * 256 *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmSimSparseB);

void
BM_SparTenMatch(benchmark::State &state)
{
    Rng rng(11);
    auto a = randomSparse(64, 1152, 0.5, rng);
    auto b = randomSparse(1152, 256, 0.8, rng);
    auto arch = sparTenAB();
    for (auto _ : state) {
        auto r = simulateSparTen(a, b, arch, DnnCategory::AB);
        benchmark::DoNotOptimize(r.totalCycles);
    }
}
BENCHMARK(BM_SparTenMatch);

} // namespace
} // namespace griffin

BENCHMARK_MAIN();
