/**
 * @file
 * Regenerates paper Table III: Griffin's morphing vs the rigid dual
 * design downgrading, on single-sparse workloads.
 */

#include "arch/overhead.hh"
#include "arch/presets.hh"
#include "bench_util.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv,
                                 "Table III: Griffin morph vs dual "
                                 "downgrade");

    // Structural comparison (the paper's table contents).
    Table t("Table III — configuration on single-sparse models",
            {"model", "design", "configuration", "BMUX fan-in",
             "ABUF entries used", "metadata bits"});
    {
        const auto down_a = RoutingConfig::sparseA(2, 0, 0, true);
        const auto morph_a = griffinMorph(DnnCategory::A);
        const auto hw_down = computeOverhead(down_a, TileShape{});
        const auto hw_morph = computeOverhead(morph_a, TileShape{});
        t.addRow({"DNN.A", "dual downgrade", down_a.str(),
                  std::to_string(hw_down.bmuxFanin),
                  std::to_string(hw_down.abufDepth), "-"});
        t.addRow({"DNN.A", "Griffin morph", morph_a.str(),
                  std::to_string(hw_morph.bmuxFanin),
                  std::to_string(hw_morph.abufDepth + 2), "-"});
        const auto down_b =
            RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
        const auto morph_b = griffinMorph(DnnCategory::B);
        t.addRow({"DNN.B", "dual downgrade", "B(2,0,1,on)", "-", "3",
                  std::to_string(
                      computeOverhead(down_b, TileShape{}).metadataBits)});
        t.addRow({"DNN.B", "Griffin morph", morph_b.str(), "-", "9",
                  std::to_string(
                      computeOverhead(morph_b, TileShape{}).metadataBits)});
    }
    bench::show(t, args);

    // Measured speedups over the benchmark suite.
    Table perf("Griffin morph vs dual downgrade — measured speedup "
               "(suite geomean)",
               {"model", "dual Sparse.AB*", "Griffin", "gain"});
    for (DnnCategory cat : {DnnCategory::A, DnnCategory::B}) {
        const double rigid =
            bench::suiteSpeedup(sparseABStar(), cat, args.run);
        const double hybrid =
            bench::suiteSpeedup(griffinArch(), cat, args.run);
        perf.addRow({toString(cat), Table::num(rigid),
                     Table::num(hybrid),
                     Table::num(hybrid / rigid, 3) + "x"});
    }
    bench::show(perf, args);
    return 0;
}
