/**
 * @file
 * Regenerates paper Fig. 8: power efficiency vs area efficiency of all
 * architectures across the four DNN categories, plus the headline
 * Griffin-vs-SparTen ratios of the abstract (1.2/3.0/3.1/1.4x power).
 */

#include <map>

#include "arch/presets.hh"
#include "bench_util.hh"
#include "power/cost_model.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv,
        "Fig. 8: overall efficiency, all architectures x categories",
        /*default_sample=*/0.02, /*default_rowcap=*/32);

    std::map<std::pair<std::string, DnnCategory>,
             std::pair<double, double>>
        efficiency; // (TOPS/W, TOPS/mm2)

    for (DnnCategory cat : allCategories) {
        Table t(std::string("Fig. 8 — ") + toString(cat),
                {"architecture", "speedup", "TOPS/W", "TOPS/mm2"});
        for (const auto &arch : tableSevenPresets()) {
            const double s =
                cat == DnnCategory::Dense
                    ? 1.0
                    : bench::suiteSpeedup(arch, cat, args.run);
            const double watt = effectiveTopsPerWatt(arch, cat, s);
            const double mm2 = effectiveTopsPerMm2(arch, cat, s);
            efficiency[{arch.name, cat}] = {watt, mm2};
            t.addRow({arch.name, Table::num(s), Table::num(watt),
                      Table::num(mm2)});
        }
        bench::show(t, args);
    }

    Table headline("Headline — Griffin vs SparTen.AB (paper: power "
                   "1.2/3.0/3.1/1.4x; area 3.8/3.1/3.7/1.8x for "
                   "dense/B/A/AB)",
                   {"category", "power-efficiency ratio",
                    "area-efficiency ratio"});
    for (DnnCategory cat :
         {DnnCategory::Dense, DnnCategory::B, DnnCategory::A,
          DnnCategory::AB}) {
        const auto g = efficiency[{"Griffin", cat}];
        const auto s = efficiency[{"SparTen.AB", cat}];
        headline.addRow({toString(cat),
                         Table::num(g.first / s.first, 2) + "x",
                         Table::num(g.second / s.second, 2) + "x"});
    }
    bench::show(headline, args);

    Table tax("Sparsity tax on DNN.dense (paper: Griffin 29%/24%, "
              "SparTen 42%/80%)",
              {"architecture", "power-eff tax", "area-eff tax"});
    const auto base = efficiency[{"Baseline", DnnCategory::Dense}];
    for (const char *name : {"Griffin", "Sparse.AB*", "SparTen.AB"}) {
        const auto e = efficiency[{name, DnnCategory::Dense}];
        tax.addRow({name,
                    Table::num(100.0 * (1.0 - e.first / base.first),
                               0) + "%",
                    Table::num(100.0 * (1.0 - e.second / base.second),
                               0) + "%"});
    }
    bench::show(tax, args);
    return 0;
}
