/**
 * @file
 * Regenerates paper Table VI: the optimal design points and Griffin's
 * three morph configurations, with their measured suite speedups.
 */

#include "arch/presets.hh"
#include "bench_util.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv,
                                 "Table VI: optimal design points");

    Table t("Table VI — optimal design points",
            {"design", "configuration", "category", "suite speedup"});
    auto add = [&](const std::string &name, const ArchConfig &arch,
                   DnnCategory cat) {
        const double s = bench::suiteSpeedup(arch, cat, args.run);
        t.addRow({name, arch.effectiveRouting(cat).str(),
                  toString(cat), Table::num(s)});
    };
    add("Sparse.B*", sparseBStar(), DnnCategory::B);
    add("Sparse.A*", sparseAStar(), DnnCategory::A);
    add("Sparse.AB*", sparseABStar(), DnnCategory::AB);
    add("Griffin conf.B", griffinArch(), DnnCategory::B);
    add("Griffin conf.A", griffinArch(), DnnCategory::A);
    add("Griffin conf.AB", griffinArch(), DnnCategory::AB);
    bench::show(t, args);
    return 0;
}
