/**
 * @file
 * Regenerates paper Fig. 6: the activation-only (Sparse.A) design
 * sweep — speedup on the DNN.A suite plus effective efficiency on
 * DNN.A (y) and DNN.dense (x).
 */

#include "arch/presets.hh"
#include "bench_util.hh"
#include "power/cost_model.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv,
        "Fig. 6: Sparse.A design space (speedup and efficiency)",
        /*default_sample=*/0.02, /*default_rowcap=*/32);

    const int points[][3] = {
        {1, 0, 0}, {1, 1, 0}, {2, 0, 0}, {2, 1, 0}, {3, 0, 0},
        {3, 1, 0}, {2, 0, 1}, {2, 1, 1}, {2, 1, 2}, {4, 0, 0},
        {4, 0, 1},
    };

    Table t("Fig. 6 — Sparse.A sweep (suite geomean)",
            {"config", "speedup", "TOPS/W @DNN.A", "TOPS/mm2 @DNN.A",
             "TOPS/W @dense", "TOPS/mm2 @dense"});
    for (const auto &p : points) {
        for (bool shuffle : {false, true}) {
            ArchConfig arch = denseBaseline();
            arch.routing =
                RoutingConfig::sparseA(p[0], p[1], p[2], shuffle);
            arch.name = arch.routing.str();
            const double s =
                bench::suiteSpeedup(arch, DnnCategory::A, args.run);
            t.addRow({arch.name, Table::num(s),
                      Table::num(effectiveTopsPerWatt(
                          arch, DnnCategory::A, s)),
                      Table::num(effectiveTopsPerMm2(
                          arch, DnnCategory::A, s)),
                      Table::num(effectiveTopsPerWatt(
                          arch, DnnCategory::Dense, 1.0)),
                      Table::num(effectiveTopsPerMm2(
                          arch, DnnCategory::Dense, 1.0))});
        }
    }
    bench::show(t, args);
    return 0;
}
