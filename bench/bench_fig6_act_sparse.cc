/**
 * @file
 * Regenerates paper Fig. 6: the activation-only (Sparse.A) design
 * sweep — speedup on the DNN.A suite plus effective efficiency on
 * DNN.A (y) and DNN.dense (x).
 *
 * Like Fig. 5, the design points are an `arch` axis of a GridSpec run
 * through the parallel sweep runner and aggregated per architecture.
 */

#include <string>
#include <vector>

#include "arch/presets.hh"
#include "bench_util.hh"
#include "power/cost_model.hh"
#include "runtime/grid.hh"
#include "runtime/runner.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv,
        "Fig. 6: Sparse.A design space (speedup and efficiency)",
        /*default_sample=*/0.02, /*default_rowcap=*/32,
        /*add_threads=*/true);

    const int points[][3] = {
        {1, 0, 0}, {1, 1, 0}, {2, 0, 0}, {2, 1, 0}, {3, 0, 0},
        {3, 1, 0}, {2, 0, 1}, {2, 1, 1}, {2, 1, 2}, {4, 0, 0},
        {4, 0, 1},
    };
    std::vector<std::string> archs;
    for (const auto &p : points)
        for (const char *shuffle : {"off", "on"})
            archs.push_back("A(" + std::to_string(p[0]) + "," +
                            std::to_string(p[1]) + "," +
                            std::to_string(p[2]) + "," + shuffle + ")");

    GridSpec grid;
    grid.axis("arch", archs).axis("category", {"a"});

    SweepSpec base;
    base.networks = benchmarkSuite();
    base.optionVariants = {args.run};
    const auto spec = grid.toSweepSpec(base);
    const auto sweep = runSweep(spec, args.threads);

    Table t("Fig. 6 — Sparse.A sweep (suite geomean)",
            {"config", "speedup", "TOPS/W @DNN.A", "TOPS/mm2 @DNN.A",
             "TOPS/W @dense", "TOPS/mm2 @dense"});
    for (std::size_t a = 0; a < spec.archs.size(); ++a) {
        const auto &arch = spec.archs[a];
        const double s = geomeanSpeedup(sweep.slice(
            [&](const SweepJob &job) { return job.archIndex == a; }));
        t.addRow({arch.name, Table::num(s),
                  Table::num(effectiveTopsPerWatt(arch, DnnCategory::A,
                                                  s)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::A,
                                                 s)),
                  Table::num(effectiveTopsPerWatt(
                      arch, DnnCategory::Dense, 1.0)),
                  Table::num(effectiveTopsPerMm2(
                      arch, DnnCategory::Dense, 1.0))});
    }
    bench::show(t, args);
    return 0;
}
