/**
 * @file
 * Ablation: the load-balancing shuffle.
 *
 * (a) shuffle on/off across lane-imbalance depths — the mechanism of
 *     paper observation VI-A(3) (shuffle gains come from structured,
 *     not i.i.d., sparsity);
 * (b) crossbar granularity: the paper's K0/4 local 4x4 crossbars vs a
 *     full K0 x K0 crossbar ("this localization does not impact the
 *     load balancing").
 */

#include "arch/presets.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "sched/b_preprocess.hh"
#include "tensor/sparsity.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv, "Ablation: shuffle benefit vs mask structure",
        /*default_sample=*/0.05, /*default_rowcap=*/48);

    Table t("Shuffle ablation — B(6,0,0) suite speedup vs lane bias",
            {"weight lane bias", "shuffle off", "shuffle on", "gain"});
    for (double bias : {0.0, 0.3, 0.5, 0.8}) {
        auto opt = args.run;
        opt.weightLaneBias = bias;
        ArchConfig off = denseBaseline();
        off.routing = RoutingConfig::sparseB(6, 0, 0, false);
        off.name = "B(6,0,0,off)";
        ArchConfig on = off;
        on.routing = RoutingConfig::sparseB(6, 0, 0, true);
        on.name = "B(6,0,0,on)";
        const double s_off =
            bench::suiteSpeedup(off, DnnCategory::B, opt);
        const double s_on =
            bench::suiteSpeedup(on, DnnCategory::B, opt);
        t.addRow({Table::num(bias, 1), Table::num(s_off),
                  Table::num(s_on),
                  Table::num(100.0 * (s_on / s_off - 1.0), 1) + "%"});
    }
    bench::show(t, args);

    // Crossbar granularity on one biased tile set: schedule length of
    // the B packing under local 4x4 rotation vs a full-width crossbar.
    Table xbar("Crossbar granularity — B packing cycles on biased "
               "weights (lower is better)",
               {"granularity", "stream cycles", "vs dense steps"});
    Rng rng(1234);
    auto b = laneBiasedSparse(1024, 16, 0.85, 0.8, 4, rng);
    const TileShape shape{};
    TileViewB view(b, shape, 0);
    const Borrow db{6, 0, 0};
    for (int group : {1, 4, 16}) {
        Shuffler sh(group > 1, shape.k0, group == 1 ? 4 : group);
        auto stream = preprocessB(view, db, sh, false);
        xbar.addRow({group == 1 ? "off"
                                : (std::to_string(group) + "x" +
                                   std::to_string(group)),
                     Table::count(static_cast<std::uint64_t>(
                         stream.cycles())),
                     Table::num(static_cast<double>(view.steps()) /
                                    static_cast<double>(
                                        stream.cycles()),
                                2) + "x"});
    }
    bench::show(xbar, args);
    return 0;
}
