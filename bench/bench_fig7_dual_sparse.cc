/**
 * @file
 * Regenerates paper Fig. 7: the dual-sparse (Sparse.AB) design sweep —
 * speedup on the DNN.AB suite plus effective efficiency on DNN.AB (y)
 * and DNN.A (x).
 */

#include "arch/presets.hh"
#include "bench_util.hh"
#include "power/cost_model.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv,
        "Fig. 7: Sparse.AB design space (speedup and efficiency)",
        /*default_sample=*/0.02, /*default_rowcap=*/32);

    // Best-performing points under the AMUX <= 16 limit; da3 excluded
    // per observation VI-C(3).
    const int points[][6] = {
        {0, 0, 0, 4, 0, 1}, {0, 0, 0, 4, 0, 2}, {1, 0, 0, 3, 0, 1},
        {1, 0, 0, 3, 1, 0}, {2, 0, 0, 2, 0, 0}, {2, 0, 0, 2, 0, 1},
        {2, 0, 0, 2, 0, 2}, {2, 0, 0, 3, 0, 1}, {2, 0, 0, 4, 0, 1},
        {2, 0, 0, 4, 0, 2},
    };

    Table t("Fig. 7 — Sparse.AB sweep (suite geomean)",
            {"config", "speedup @DNN.AB", "TOPS/W @DNN.AB",
             "TOPS/mm2 @DNN.AB", "speedup @DNN.A", "TOPS/W @DNN.A",
             "TOPS/mm2 @DNN.A"});
    auto add = [&](const ArchConfig &arch) {
        const double s_ab =
            bench::suiteSpeedup(arch, DnnCategory::AB, args.run);
        const double s_a =
            bench::suiteSpeedup(arch, DnnCategory::A, args.run);
        t.addRow({arch.name, Table::num(s_ab),
                  Table::num(effectiveTopsPerWatt(arch,
                                                  DnnCategory::AB,
                                                  s_ab)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::AB,
                                                 s_ab)),
                  Table::num(s_a),
                  Table::num(effectiveTopsPerWatt(arch, DnnCategory::A,
                                                  s_a)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::A,
                                                 s_a))});
    };
    for (const auto &p : points) {
        for (bool shuffle : {false, true}) {
            ArchConfig arch = denseBaseline();
            arch.routing = RoutingConfig::sparseAB(p[0], p[1], p[2],
                                                   p[3], p[4], p[5],
                                                   shuffle);
            arch.name = arch.routing.str();
            add(arch);
        }
    }
    // The paper's dual-sparse comparison points.
    add(tdashAB());
    bench::show(t, args);
    return 0;
}
