/**
 * @file
 * Regenerates paper Table IV: the benchmark suite with sparsity
 * ratios, accuracy, and dense-baseline latency (ours vs paper).
 */

#include "arch/presets.hh"
#include "bench_util.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(argc, argv,
                                 "Table IV: benchmark suite summary");

    Table t("Table IV — benchmarks",
            {"network", "sparsity (B,A)", "accuracy", "MACs",
             "dense cycles (ours)", "dense cycles (paper)", "ratio"});
    for (const auto &net : benchmarkSuite()) {
        const auto cycles = net.denseCycles(TileShape{});
        t.addRow({net.name,
                  "(" + Table::num(net.weightSparsity, 2) + "," +
                      Table::num(net.actSparsity, 2) + ")",
                  net.accuracy, Table::count(
                      static_cast<std::uint64_t>(net.macs())),
                  Table::count(static_cast<std::uint64_t>(cycles)),
                  Table::count(static_cast<std::uint64_t>(
                      net.paperDenseCycles)),
                  Table::num(static_cast<double>(cycles) /
                                 static_cast<double>(
                                     net.paperDenseCycles),
                             2)});
    }
    bench::show(t, args);

    Table cfg("Table IV — architecture configuration",
              {"parameter", "value"});
    const ArchConfig base = denseBaseline();
    cfg.addRow({"core (K0,N0,M0)", "(16,16,4) = 1024 MACs"});
    cfg.addRow({"ASRAM / BSRAM", "512 KB / 32 KB"});
    cfg.addRow({"ASRAM-BW / BSRAM-BW", "51.2 GB/s / 204.8 GB/s"});
    cfg.addRow({"DRAM-BW",
                Table::num(base.mem.dramGBs, 0) + " GB/s"});
    cfg.addRow({"frequency", "800 MHz @ 0.71 V (7 nm)"});
    cfg.addRow({"dataflow", "output stationary"});
    bench::show(cfg, args);
    return 0;
}
