/**
 * @file
 * Parallel sweep driver over the (architecture x network x category)
 * grid — the runtime/ subsystem's command-line face.
 *
 *   ./bench_runner --threads 8 --json sweep.json
 *   ./bench_runner --archs Griffin,SparTen.AB --cats b,ab --threads 4
 *   ./bench_runner --layer-shard --cache-file sweep.grfc
 *
 * The merged results are bit-identical for any --threads value — with
 * or without --layer-shard, which splits every network job into
 * per-layer sub-jobs for better pool utilisation.  --cache-file
 * persists preprocessed B schedules between invocations (GRFC format,
 * runtime/cache_store.hh), so repeated runs skip B-side preprocessing
 * for every tile they have seen before.  The paper-table benches
 * remain the curated per-figure views, this one regenerates the whole
 * grid at once.
 */

#include <iostream>
#include <sstream>

#include "bench_util.hh"

#include "arch/presets.hh"
#include "runtime/cache_store.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/thread_pool.hh"

using namespace griffin;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Parallel experiment runner: sweep architectures x "
            "networks x categories on a thread pool");
    cli.addString("archs", "Griffin,Sparse.B*,Sparse.A*,Sparse.AB*",
                  "comma-separated preset names (arch/presets.hh)");
    cli.addString("networks",
                  "alexnet,googlenet,resnet50,inceptionv3,mobilenetv2,"
                  "bert",
                  "comma-separated benchmark networks");
    cli.addString("cats", "dense,a,b,ab",
                  "comma-separated workload categories");
    cli.addInt("threads", ThreadPool::hardwareThreads(),
               "worker threads (1 = serial)");
    cli.addBool("layer-shard", false,
                "split each network job into per-layer sub-jobs "
                "(bit-identical results, finer pool granularity)");
    cli.addString("cache-file", "",
                  "persist preprocessed B schedules to this GRFC file "
                  "(loaded before the sweep, saved after)");
    cli.addInt("cache-budget-mb", 0,
               "schedule-cache byte budget in MiB (0 = unbounded; "
               "oldest entries evicted FIFO per shard)");
    bench::addRunFlags(cli);
    cli.addBool("csv", false, "emit per-layer CSV instead of the table");
    cli.addString("json", "", "write merged results to this path");
    const auto positional = cli.parse(argc, argv);
    if (!positional.empty())
        fatal("unexpected positional argument '", positional.front(),
              "'\n", cli.usage());

    SweepSpec spec;
    for (const auto &name : splitList(cli.getString("archs")))
        spec.archs.push_back(presetByName(name));
    for (const auto &name : splitList(cli.getString("networks")))
        spec.networks.push_back(networkByName(name));
    for (const auto &name : splitList(cli.getString("cats")))
        spec.categories.push_back(categoryFromString(name));

    spec.optionVariants = {bench::readRunFlags(cli)};
    spec.shardLayers = cli.getBool("layer-shard");

    ScheduleCache cache;
    const auto budget_mb = cli.getInt("cache-budget-mb");
    if (budget_mb < 0)
        fatal("--cache-budget-mb must be non-negative, got ", budget_mb);
    if (budget_mb > 0)
        cache.setByteBudget(static_cast<std::uint64_t>(budget_mb) << 20);
    const auto cache_path = cli.getString("cache-file");
    if (!cache_path.empty()) {
        const auto loaded = loadCacheFile(cache_path, cache);
        inform("schedule cache: loaded ", loaded, " entries from ",
               cache_path);
    }

    const int threads = static_cast<int>(cli.getInt("threads"));
    const auto sweep = runSweep(spec, threads, &cache);

    if (cli.getBool("csv")) {
        writeCsv(std::cout, sweep.results());
    } else {
        Table t("Sweep results (" + std::to_string(threads) +
                    " threads)",
                {"network", "arch", "category", "speedup", "TOPS/W"});
        for (const auto &r : sweep.results())
            t.addRow({r.network, r.arch, toString(r.category),
                      Table::num(r.speedup), Table::num(r.topsPerWatt)});
        t.print(std::cout);
        std::cout << '\n';

        Table g("Geomean speedup per architecture and category",
                {"arch", "category", "geomean"});
        for (std::size_t a = 0; a < spec.archs.size(); ++a) {
            for (std::size_t c = 0; c < spec.categories.size(); ++c) {
                std::vector<NetworkResult> slice;
                for (std::size_t i = 0; i < sweep.jobs().size(); ++i) {
                    const auto &job = sweep.jobs()[i];
                    if (job.archIndex == a && job.categoryIndex == c)
                        slice.push_back(sweep.results()[i]);
                }
                g.addRow({spec.archs[a].name,
                          toString(spec.categories[c]),
                          Table::num(geomeanSpeedup(slice))});
            }
        }
        g.print(std::cout);
        std::cout << '\n';
    }

    const auto &cs = sweep.cacheStats();
    inform("schedule cache: ", cs.hits, " hits / ", cs.misses,
           " misses (", Table::num(100.0 * cs.hitRate(), 1),
           "% hit rate, ", cs.entries, " entries, ", cs.loadHits,
           " load hits, ", cs.evictions, " evictions)");

    // Flush the sweep's primary output before the cache save: a
    // fatal() on an unwritable cache path must not discard the
    // completed results.
    if (!cli.getString("json").empty()) {
        ResultSink sink(cli.getString("json"));
        sink.add(sweep.results());
        sink.flush();
        inform("wrote ", sweep.results().size(), " results to ",
               cli.getString("json"));
    }

    if (!cache_path.empty()) {
        const auto stored = saveCacheFile(cache_path, cache);
        inform("schedule cache: stored ", stored, " entries to ",
               cache_path);
        // Machine-readable counters on stdout: CI asserts the second
        // run of a cached sweep reports load_hits > 0.
        writeCacheStatsJsonLine(std::cout, cs);
    }
    return 0;
}
