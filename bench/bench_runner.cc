/**
 * @file
 * Parallel sweep driver over the (architecture x network x category x
 * RunOptions) grid — the runtime/ subsystem's command-line face.
 *
 *   ./bench_runner --threads 8 --json sweep.json
 *   ./bench_runner --archs Griffin,SparTen.AB --cats b,ab --threads 4
 *   ./bench_runner --grid "weight_lane_bias=0:1:0.25,seed=1..4"
 *   ./bench_runner --grid "arch=B(2,0,0,off),B(4,0,1,on),category=b"
 *   ./bench_runner --layer-shard --cache-file sweep.grfc
 *
 * --grid adds named RunOptions axes (weight_lane_bias,
 * act_run_length, sample_fraction, row_cap, seed, enforce_dram_bound)
 * to the sweep, expanded as a cartesian product in axis order; its
 * arch/network/category axes override --archs/--networks/--cats.
 * Every JSON/CSV row carries the resolved options and grid
 * coordinates, so rows from different variants are distinguishable in
 * the file alone.
 *
 * The merged results are bit-identical for any --threads value — with
 * or without --layer-shard, which splits every network job into
 * per-layer sub-jobs for better pool utilisation.  --cache-file
 * persists preprocessed B schedules between invocations (GRFC format,
 * runtime/cache_store.hh), so repeated runs skip B-side preprocessing
 * for every tile they have seen before.  --grid-shard i/n runs one
 * contiguous slice of the job list (fleet mode: n processes sharing a
 * cache file cover the grid disjointly; tables are suppressed and the
 * shards' --json .jsonl files concatenate byte-identically to the
 * unsharded run).  The registered paper experiments (griffin_bench)
 * remain the curated per-figure views, this one regenerates arbitrary
 * grids.
 */

#include <iostream>

#include "arch/presets.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "runtime/cache_store.hh"
#include "runtime/experiment.hh"
#include "runtime/grid.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/thread_pool.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    Cli cli("Parallel experiment runner: sweep architectures x "
            "networks x categories x RunOptions on a thread pool");
    cli.addString("archs", "Griffin,Sparse.B*,Sparse.A*,Sparse.AB*",
                  "comma-separated architecture names (presets or "
                  "routing specs like \"B(4,0,1,on)\")");
    cli.addString("networks",
                  "alexnet,googlenet,resnet50,inceptionv3,mobilenetv2,"
                  "bert",
                  "comma-separated benchmark networks");
    cli.addString("cats", "dense,a,b,ab",
                  "comma-separated workload categories");
    cli.addString("grid", "",
                  "named-axis grid spec, e.g. "
                  "\"weight_lane_bias=0:1:0.25,seed=1..4\"; axes: "
                  "arch, network, category, weight_lane_bias, "
                  "act_run_length, sample_fraction, row_cap, seed, "
                  "enforce_dram_bound (identity axes override "
                  "--archs/--networks/--cats)");
    cli.addInt("threads", ThreadPool::hardwareThreads(),
               "worker threads (1 = serial)");
    cli.addBool("layer-shard", false,
                "split each network job into per-layer sub-jobs "
                "(bit-identical results, finer pool granularity)");
    cli.addBool("batch-archs", true,
                "batch multiple GEMMs per job: all architectures of "
                "one (network, category, options) grid point share "
                "one sub-job per layer, generating each operand "
                "workset once (bit-identical results)");
    addCacheFlags(cli);
    cli.addString("grid-shard", "",
                  "run shard i of n (\"i/n\"): contiguous slice of the "
                  "job list; suppresses tables, results via --json");
    addFidelityFlags(cli);
    cli.addBool("csv", false, "emit per-layer CSV instead of the table");
    cli.addString("json", "", "write merged results to this path");
    const auto positional = cli.parse(argc, argv);
    if (!positional.empty())
        fatal("unexpected positional argument '", positional.front(),
              "'\n", cli.usage());

    SweepSpec spec;
    for (const auto &name : splitTopLevel(cli.getString("archs")))
        spec.archs.push_back(archByName(name));
    for (const auto &name : splitList(cli.getString("networks")))
        spec.networks.push_back(networkByName(name));
    for (const auto &name : splitList(cli.getString("cats")))
        spec.categories.push_back(categoryFromString(name));
    spec.optionVariants = {resolveFidelity(cli, /*default_sample=*/0.04,
                                           /*default_rowcap=*/48)};

    if (!cli.getString("grid").empty())
        spec = GridSpec::parse(cli.getString("grid")).toSweepSpec(spec);
    spec.shardLayers = cli.getBool("layer-shard");
    spec.batchArchs = cli.getBool("batch-archs");
    parseShardSpec(cli.getString("grid-shard"), spec.shardIndex,
                   spec.shardCount);
    // A shard suppresses tables, so without --json the sweep's results
    // would be computed and discarded — fail before the work.
    if (spec.shardCount > 1 && cli.getString("json").empty())
        fatal("--grid-shard suppresses tables; pass --json <path> "
              "(.jsonl, so shard files concatenate to the unsharded "
              "document)");

    ScheduleCache cache;
    WorksetCache worksets;
    loadCachesFromFlags(cli, cache, worksets);

    const int threads = static_cast<int>(cli.getInt("threads"));
    const auto sweep = runSweep(spec, threads, &cache, &worksets);

    const bool multi_variant = spec.optionVariants.size() > 1;
    if (spec.shardCount > 1) {
        // A shard holds one slice of the grid; per-slice tables and
        // geomeans would silently aggregate a partial suite, so fleet
        // runs emit result rows only (--json, ideally .jsonl so the
        // shards concatenate byte-identically to the unsharded run).
    } else if (cli.getBool("csv")) {
        writeCsv(std::cout, sweep);
    } else {
        std::vector<std::string> headers{"network", "arch", "category",
                                         "speedup", "TOPS/W"};
        if (multi_variant)
            headers.insert(headers.begin() + 3, "grid point");
        Table t("Sweep results (" + std::to_string(threads) +
                    " threads)",
                headers);
        for (std::size_t i = 0; i < sweep.results().size(); ++i) {
            const auto &r = sweep.results()[i];
            std::vector<std::string> row{r.network, r.arch,
                                         toString(r.category)};
            if (multi_variant)
                row.push_back(coordsLabel(sweep.jobs()[i].coords));
            row.push_back(Table::num(r.speedup));
            row.push_back(Table::num(r.topsPerWatt));
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << '\n';

        std::vector<std::string> gheaders{"arch", "category", "geomean"};
        if (multi_variant)
            gheaders.insert(gheaders.begin() + 2, "grid point");
        Table g("Geomean speedup per architecture and category",
                gheaders);
        for (std::size_t o = 0; o < spec.optionVariants.size(); ++o) {
            for (std::size_t a = 0; a < spec.archs.size(); ++a) {
                for (std::size_t c = 0; c < spec.categories.size();
                     ++c) {
                    const auto slice =
                        sweep.slice([&](const SweepJob &job) {
                            return job.optionsIndex == o &&
                                   job.archIndex == a &&
                                   job.categoryIndex == c;
                        });
                    std::vector<std::string> row{
                        spec.archs[a].name,
                        toString(spec.categories[c])};
                    if (multi_variant)
                        row.push_back(coordsLabel(
                            spec.optionCoords.empty()
                                ? std::vector<AxisCoordinate>{}
                                : spec.optionCoords[o]));
                    row.push_back(Table::num(geomeanSpeedup(slice)));
                    g.addRow(row);
                }
            }
        }
        g.print(std::cout);
        std::cout << '\n';
    }

    const auto &cs = sweep.cacheStats();
    inform("schedule cache: ", cs.hits, " hits / ", cs.misses,
           " misses (", Table::num(100.0 * cs.hitRate(), 1),
           "% hit rate, ", cs.entries, " entries, ", cs.loadHits,
           " load hits, ", cs.evictions, " evictions)");

    // Flush the sweep's primary output before the cache save: a
    // fatal() on an unwritable cache path must not discard the
    // completed results.
    if (!cli.getString("json").empty()) {
        ResultSink sink(cli.getString("json"));
        sink.add(sweep);
        sink.flush();
        inform("wrote ", sweep.results().size(), " results to ",
               cli.getString("json"));
    }

    // Machine-readable cache counters land on stdout: CI asserts the
    // second run of a cached sweep reports load_hits > 0.
    saveCachesFromFlags(cli, cache, worksets);
    return 0;
}
