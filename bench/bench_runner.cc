/**
 * @file
 * Parallel sweep driver over the (architecture x network x category)
 * grid — the runtime/ subsystem's command-line face.
 *
 *   ./bench_runner --threads 8 --json sweep.json
 *   ./bench_runner --archs Griffin,SparTen.AB --cats b,ab --threads 4
 *
 * The merged results are bit-identical for any --threads value; the
 * paper-table benches remain the curated per-figure views, this one
 * regenerates the whole grid at once.
 */

#include <iostream>
#include <sstream>

#include "bench_util.hh"

#include "arch/presets.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/thread_pool.hh"

using namespace griffin;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Parallel experiment runner: sweep architectures x "
            "networks x categories on a thread pool");
    cli.addString("archs", "Griffin,Sparse.B*,Sparse.A*,Sparse.AB*",
                  "comma-separated preset names (arch/presets.hh)");
    cli.addString("networks",
                  "alexnet,googlenet,resnet50,inceptionv3,mobilenetv2,"
                  "bert",
                  "comma-separated benchmark networks");
    cli.addString("cats", "dense,a,b,ab",
                  "comma-separated workload categories");
    cli.addInt("threads", ThreadPool::hardwareThreads(),
               "worker threads (1 = serial)");
    bench::addRunFlags(cli);
    cli.addBool("csv", false, "emit per-layer CSV instead of the table");
    cli.addString("json", "", "write merged results to this path");
    cli.parse(argc, argv);

    SweepSpec spec;
    for (const auto &name : splitList(cli.getString("archs")))
        spec.archs.push_back(presetByName(name));
    for (const auto &name : splitList(cli.getString("networks")))
        spec.networks.push_back(networkByName(name));
    for (const auto &name : splitList(cli.getString("cats")))
        spec.categories.push_back(categoryFromString(name));

    spec.optionVariants = {bench::readRunFlags(cli)};

    const int threads = static_cast<int>(cli.getInt("threads"));
    const auto sweep = runSweep(spec, threads);

    if (cli.getBool("csv")) {
        writeCsv(std::cout, sweep.results());
    } else {
        Table t("Sweep results (" + std::to_string(threads) +
                    " threads)",
                {"network", "arch", "category", "speedup", "TOPS/W"});
        for (const auto &r : sweep.results())
            t.addRow({r.network, r.arch, toString(r.category),
                      Table::num(r.speedup), Table::num(r.topsPerWatt)});
        t.print(std::cout);
        std::cout << '\n';

        Table g("Geomean speedup per architecture and category",
                {"arch", "category", "geomean"});
        for (std::size_t a = 0; a < spec.archs.size(); ++a) {
            for (std::size_t c = 0; c < spec.categories.size(); ++c) {
                std::vector<NetworkResult> slice;
                for (std::size_t i = 0; i < sweep.jobs().size(); ++i) {
                    const auto &job = sweep.jobs()[i];
                    if (job.archIndex == a && job.categoryIndex == c)
                        slice.push_back(sweep.results()[i]);
                }
                g.addRow({spec.archs[a].name,
                          toString(spec.categories[c]),
                          Table::num(geomeanSpeedup(slice))});
            }
        }
        g.print(std::cout);
        std::cout << '\n';
    }

    const auto &cs = sweep.cacheStats();
    inform("schedule cache: ", cs.hits, " hits / ", cs.misses,
           " misses (", Table::num(100.0 * cs.hitRate(), 1),
           "% hit rate, ", cs.entries, " entries)");

    if (!cli.getString("json").empty()) {
        ResultSink sink(cli.getString("json"));
        sink.add(sweep.results());
        sink.flush();
        inform("wrote ", sweep.results().size(), " results to ",
               cli.getString("json"));
    }
    return 0;
}
