/**
 * @file
 * Paper Table II: hardware overheads of the Sparse.A and Sparse.B
 * families, per borrowing direction.  Render-only — structural.
 */

#include "arch/overhead.hh"
#include "arch/routing.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

void
addRow(Table &t, const RoutingConfig &cfg)
{
    const auto hw = computeOverhead(cfg, TileShape{});
    const bool b_side = cfg.mode == SparsityMode::B;
    t.addRow({cfg.str(), std::to_string(hw.abufDepth),
              std::to_string(hw.amuxFanin),
              b_side ? "-" : std::to_string(hw.bbufDepth),
              b_side ? "-" : std::to_string(hw.bmuxFanin),
              std::to_string(hw.adtPerPe)});
}

std::vector<Table>
render(const ExperimentContext &)
{
    Table t("Table II — hardware overhead per borrowing direction",
            {"architecture", "ABUF depth", "AMUX fan-in", "BBUF depth",
             "BMUX fan-in", "ADT / PE"});
    for (int d = 1; d <= 3; ++d)
        addRow(t, RoutingConfig::sparseA(d, 0, 0, false));
    for (int d = 1; d <= 2; ++d)
        addRow(t, RoutingConfig::sparseA(1, d, 0, false));
    for (int d = 1; d <= 2; ++d)
        addRow(t, RoutingConfig::sparseA(1, 0, d, false));
    addRow(t, RoutingConfig::sparseA(2, 1, 1, false));
    for (int d = 1; d <= 4; ++d)
        addRow(t, RoutingConfig::sparseB(d, 0, 0, false));
    for (int d = 1; d <= 2; ++d)
        addRow(t, RoutingConfig::sparseB(1, d, 0, false));
    for (int d = 1; d <= 2; ++d)
        addRow(t, RoutingConfig::sparseB(1, 0, d, false));
    addRow(t, RoutingConfig::sparseB(4, 0, 1, false));

    Table dual("Section IV-A — dual-sparse overheads",
               {"architecture", "ABUF depth (L)", "BBUF depth",
                "AMUX fan-in", "BMUX fan-in", "ADT / PE",
                "metadata bits"});
    for (const auto &cfg :
         {RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true),
          RoutingConfig::sparseAB(1, 0, 0, 3, 0, 1, true),
          RoutingConfig::sparseAB(2, 0, 0, 4, 0, 2, true),
          RoutingConfig::sparseAB(3, 1, 0, 3, 1, 0, false, false)}) {
        const auto hw = computeOverhead(cfg, TileShape{});
        dual.addRow({cfg.str(), std::to_string(hw.abufDepth),
                     std::to_string(hw.bbufDepth),
                     std::to_string(hw.amuxFanin),
                     std::to_string(hw.bmuxFanin),
                     std::to_string(hw.adtPerPe),
                     std::to_string(hw.metadataBits)});
    }
    return {t, dual};
}

const bool registered = registerExperiment(
    {"table2", "Table II: overheads of single-sparse architectures",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, nullptr, render});

} // namespace
} // namespace griffin
