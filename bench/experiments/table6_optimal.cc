/**
 * @file
 * Paper Table VI: the optimal design points and Griffin's three morph
 * configurations, with their measured suite speedups.
 *
 * The grid is non-rectangular — each Sparse.* optimum runs only in its
 * own category while Griffin runs in all three — so the plan uses
 * SweepSpec::jobFilter rather than paying for the full cross product.
 */

#include "arch/presets.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

/** Arch order of the spec; Griffin (index 3) runs all categories. */
constexpr std::size_t kGriffin = 3;

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.base.archs = {sparseBStar(), sparseAStar(), sparseABStar(),
                       griffinArch()};
    plan.base.networks = benchmarkSuite();
    plan.base.categories = {DnnCategory::B, DnnCategory::A,
                            DnnCategory::AB};
    // Each single-category optimum pairs with the same-index category.
    plan.base.jobFilter = [](const SweepJob &job) {
        return job.archIndex == kGriffin ||
               job.archIndex == job.categoryIndex;
    };
    // The jobFilter and render both key on the declared arch/category
    // order.
    plan.lockedAxes = {"arch", "category"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    Table t("Table VI — optimal design points",
            {"design", "configuration", "category", "suite speedup"});
    auto add = [&](const std::string &name, std::size_t arch_index,
                   std::size_t cat_index) {
        const auto &arch = ctx.spec->archs[arch_index];
        const auto cat = ctx.spec->categories[cat_index];
        t.addRow({name, arch.effectiveRouting(cat).str(),
                  toString(cat),
                  Table::num(ctx.suiteGeomean(arch_index, cat_index))});
    };
    add("Sparse.B*", 0, 0);
    add("Sparse.A*", 1, 1);
    add("Sparse.AB*", 2, 2);
    add("Griffin conf.B", kGriffin, 0);
    add("Griffin conf.A", kGriffin, 1);
    add("Griffin conf.AB", kGriffin, 2);
    return {t};
}

const bool registered = registerExperiment(
    {"table6", "Table VI: optimal design points",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, setup, render});

} // namespace
} // namespace griffin
