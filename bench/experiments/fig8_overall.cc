/**
 * @file
 * Paper Fig. 8: power efficiency vs area efficiency of all
 * architectures across the four DNN categories, plus the headline
 * Griffin-vs-SparTen ratios of the abstract (1.2/3.0/3.1/1.4x power).
 *
 * The sweep covers (Table VII presets x {a, b, ab}); DNN.dense needs
 * no simulation (speedup is 1.0 by definition) and is filled in at
 * render time.
 */

#include <map>
#include <utility>

#include "arch/presets.hh"
#include "power/cost_model.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.base.archs = tableSevenPresets();
    plan.base.networks = benchmarkSuite();
    plan.base.categories = {DnnCategory::A, DnnCategory::B,
                            DnnCategory::AB};
    // The headline/tax tables look up fixed preset names and all four
    // categories; neither axis may be overridden.
    plan.lockedAxes = {"arch", "category"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    const auto &spec = *ctx.spec;
    std::vector<Table> tables;
    std::map<std::pair<std::string, DnnCategory>,
             std::pair<double, double>>
        efficiency; // (TOPS/W, TOPS/mm2)

    for (DnnCategory cat : allCategories) {
        std::size_t cat_index = 0;
        for (std::size_t c = 0; c < spec.categories.size(); ++c)
            if (spec.categories[c] == cat)
                cat_index = c;
        Table t(std::string("Fig. 8 — ") + toString(cat),
                {"architecture", "speedup", "TOPS/W", "TOPS/mm2"});
        for (std::size_t a = 0; a < spec.archs.size(); ++a) {
            const auto &arch = spec.archs[a];
            const double s = cat == DnnCategory::Dense
                                 ? 1.0
                                 : ctx.suiteGeomean(a, cat_index);
            const double watt = effectiveTopsPerWatt(arch, cat, s);
            const double mm2 = effectiveTopsPerMm2(arch, cat, s);
            efficiency[{arch.name, cat}] = {watt, mm2};
            t.addRow({arch.name, Table::num(s), Table::num(watt),
                      Table::num(mm2)});
        }
        tables.push_back(std::move(t));
    }

    Table headline("Headline — Griffin vs SparTen.AB (paper: power "
                   "1.2/3.0/3.1/1.4x; area 3.8/3.1/3.7/1.8x for "
                   "dense/B/A/AB)",
                   {"category", "power-efficiency ratio",
                    "area-efficiency ratio"});
    for (DnnCategory cat :
         {DnnCategory::Dense, DnnCategory::B, DnnCategory::A,
          DnnCategory::AB}) {
        const auto g = efficiency[{"Griffin", cat}];
        const auto s = efficiency[{"SparTen.AB", cat}];
        headline.addRow({toString(cat),
                         Table::num(g.first / s.first, 2) + "x",
                         Table::num(g.second / s.second, 2) + "x"});
    }
    tables.push_back(std::move(headline));

    Table tax("Sparsity tax on DNN.dense (paper: Griffin 29%/24%, "
              "SparTen 42%/80%)",
              {"architecture", "power-eff tax", "area-eff tax"});
    const auto base = efficiency[{"Baseline", DnnCategory::Dense}];
    for (const char *name : {"Griffin", "Sparse.AB*", "SparTen.AB"}) {
        const auto e = efficiency[{name, DnnCategory::Dense}];
        tax.addRow({name,
                    Table::num(100.0 * (1.0 - e.first / base.first),
                               0) + "%",
                    Table::num(100.0 * (1.0 - e.second / base.second),
                               0) + "%"});
    }
    tables.push_back(std::move(tax));
    return tables;
}

const bool registered = registerExperiment(
    {"fig8", "Fig. 8: overall efficiency, all architectures x categories",
     /*defaultSample=*/0.02, /*defaultRowCap=*/32, setup, render});

} // namespace
} // namespace griffin
