/**
 * @file
 * Paper Fig. 6: the activation-only (Sparse.A) design sweep — speedup
 * on the DNN.A suite plus effective efficiency on DNN.A (y) and
 * DNN.dense (x).  Like Fig. 5, the design points are one `arch` axis.
 */

#include <string>
#include <vector>

#include "arch/presets.hh"
#include "power/cost_model.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

std::vector<std::string>
designPoints()
{
    const int points[][3] = {
        {1, 0, 0}, {1, 1, 0}, {2, 0, 0}, {2, 1, 0}, {3, 0, 0},
        {3, 1, 0}, {2, 0, 1}, {2, 1, 1}, {2, 1, 2}, {4, 0, 0},
        {4, 0, 1},
    };
    std::vector<std::string> archs;
    for (const auto &p : points)
        for (const char *shuffle : {"off", "on"})
            archs.push_back("A(" + std::to_string(p[0]) + "," +
                            std::to_string(p[1]) + "," +
                            std::to_string(p[2]) + "," + shuffle + ")");
    return archs;
}

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.grid.axis("arch", designPoints()).axis("category", {"a"});
    plan.base.networks = benchmarkSuite();
    // Efficiency columns are labeled @DNN.A / @dense.
    plan.lockedAxes = {"category"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    Table t("Fig. 6 — Sparse.A sweep (suite geomean)",
            {"config", "speedup", "TOPS/W @DNN.A", "TOPS/mm2 @DNN.A",
             "TOPS/W @dense", "TOPS/mm2 @dense"});
    for (std::size_t a = 0; a < ctx.spec->archs.size(); ++a) {
        const auto &arch = ctx.spec->archs[a];
        const double s = ctx.archGeomean(a);
        t.addRow({arch.name, Table::num(s),
                  Table::num(effectiveTopsPerWatt(arch, DnnCategory::A,
                                                  s)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::A,
                                                 s)),
                  Table::num(effectiveTopsPerWatt(
                      arch, DnnCategory::Dense, 1.0)),
                  Table::num(effectiveTopsPerMm2(
                      arch, DnnCategory::Dense, 1.0))});
    }
    return {t};
}

const bool registered = registerExperiment(
    {"fig6", "Fig. 6: Sparse.A design space (speedup and efficiency)",
     /*defaultSample=*/0.02, /*defaultRowCap=*/32, setup, render});

} // namespace
} // namespace griffin
