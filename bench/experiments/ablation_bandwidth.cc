/**
 * @file
 * Ablation: SRAM bandwidth provisioning (paper Section V: "to exploit
 * the full sparsity speedup, SRAM BW should be equal or more than the
 * normalized speedup times the baseline bandwidth").
 *
 * Sweeps the window-advance cap of Sparse.AB* and Sparse.B* from
 * baseline (1x) to the full window depth.  bwScale is not a grid axis
 * (it is architecture state, not a RunOptions field), so the plan
 * enumerates pre-scaled architecture variants and pairs each family
 * with its own category via SweepSpec::jobFilter.
 */

#include "arch/presets.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

const double kBwScales[] = {1.0, 1.5, 2.0, 3.0, 5.0, 9.0};

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    for (double bw : kBwScales) {
        auto b_star = sparseBStar();
        b_star.bwScale = bw;
        b_star.name += "@bw" + Table::num(bw, 1);
        auto ab_star = sparseABStar();
        ab_star.bwScale = bw;
        ab_star.name += "@bw" + Table::num(bw, 1);
        plan.base.archs.push_back(std::move(b_star));
        plan.base.archs.push_back(std::move(ab_star));
    }
    plan.base.networks = benchmarkSuite();
    plan.base.categories = {DnnCategory::B, DnnCategory::AB};
    // Even arch indices are the Sparse.B* variants (category B, index
    // 0), odd ones Sparse.AB* (category AB, index 1).
    plan.base.jobFilter = [](const SweepJob &job) {
        return job.archIndex % 2 == job.categoryIndex;
    };
    // The jobFilter and render both key on the pre-scaled arch order.
    plan.lockedAxes = {"arch", "category"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    Table t("SRAM bandwidth ablation — suite speedup vs provisioned "
            "A-step bandwidth",
            {"bw scale", "Sparse.B* @DNN.B", "Sparse.AB* @DNN.AB"});
    for (std::size_t i = 0; i < std::size(kBwScales); ++i) {
        t.addRow({Table::num(kBwScales[i], 1) + "x",
                  Table::num(ctx.suiteGeomean(2 * i, 0)),
                  Table::num(ctx.suiteGeomean(2 * i + 1, 1))});
    }
    return {t};
}

const bool registered = registerExperiment(
    {"ablation_bandwidth", "Ablation: SRAM bandwidth scaling",
     /*defaultSample=*/0.05, /*defaultRowCap=*/48, setup, render});

} // namespace
} // namespace griffin
