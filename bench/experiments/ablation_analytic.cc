/**
 * @file
 * Ablation: the analytical model against the cycle-level simulator
 * (the paper's methodology statement: "an analytical model, verified
 * by a simulator").  Render-only — the comparison runs on one i.i.d.
 * GEMM per design point, not the network suite.
 */

#include "arch/presets.hh"
#include "common/rng.hh"
#include "model/analytic.hh"
#include "runtime/experiment.hh"
#include "sim/gemm_sim.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

std::vector<Table>
render(const ExperimentContext &ctx)
{
    struct Point
    {
        RoutingConfig cfg;
        double asp;
        double bsp;
        DnnCategory cat;
    };
    const Point points[] = {
        {RoutingConfig::sparseB(2, 0, 0, false), 0.0, 0.8,
         DnnCategory::B},
        {RoutingConfig::sparseB(4, 0, 0, false), 0.0, 0.8,
         DnnCategory::B},
        {RoutingConfig::sparseB(4, 0, 1, false), 0.0, 0.8,
         DnnCategory::B},
        {RoutingConfig::sparseB(6, 0, 0, false), 0.0, 0.8,
         DnnCategory::B},
        {RoutingConfig::sparseB(4, 0, 1, false), 0.0, 0.5,
         DnnCategory::B},
        {RoutingConfig::sparseB(4, 0, 1, false), 0.0, 0.95,
         DnnCategory::B},
        {RoutingConfig::sparseA(2, 1, 0, false), 0.5, 0.0,
         DnnCategory::A},
        {RoutingConfig::sparseA(3, 1, 0, false), 0.4, 0.0,
         DnnCategory::A},
        {RoutingConfig::sparseA(2, 1, 1, false), 0.6, 0.0,
         DnnCategory::A},
        {RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, false), 0.5, 0.8,
         DnnCategory::AB},
        {RoutingConfig::sparseAB(2, 0, 0, 4, 0, 2, false), 0.45, 0.85,
         DnnCategory::AB},
    };

    Table t("Analytical model vs cycle-level simulator (i.i.d. "
            "operands, 64x768x32 GEMM)",
            {"config", "A/B sparsity", "analytic", "simulated",
             "ratio"});
    Rng rng(ctx.run.seed);
    const TileShape shape{};
    for (const auto &p : points) {
        auto a = randomSparse(64, 768, p.asp, rng);
        auto b = randomSparse(768, 32, p.bsp, rng);
        ArchConfig arch = denseBaseline();
        arch.routing = p.cfg;
        arch.name = p.cfg.str();
        arch.mem.dramGBs = 1e6; // isolate the datapath
        const auto sim = simulateGemm(a, b, arch, p.cat);
        const double model =
            analyticSpeedup(p.cfg, shape, p.asp, p.bsp);
        t.addRow({p.cfg.str(),
                  Table::num(p.asp, 2) + "/" + Table::num(p.bsp, 2),
                  Table::num(model), Table::num(sim.speedup()),
                  Table::num(model / sim.speedup(), 2)});
    }
    return {t};
}

const bool registered = registerExperiment(
    {"ablation_analytic", "Ablation: analytical model vs simulator",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, nullptr, render});

} // namespace
} // namespace griffin
