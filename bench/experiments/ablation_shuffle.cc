/**
 * @file
 * Ablation: the load-balancing shuffle.
 *
 * (a) shuffle on/off across lane-imbalance depths — the mechanism of
 *     paper observation VI-A(3) (shuffle gains come from structured,
 *     not i.i.d., sparsity).  The lane bias is a real grid axis
 *     (`weight_lane_bias`) crossed with a two-value `arch` axis, so
 *     this is the one migrated bench whose rows carry multi-variant
 *     coordinates.
 * (b) crossbar granularity: the paper's K0/4 local 4x4 crossbars vs a
 *     full K0 x K0 crossbar — a deterministic packing comparison,
 *     rendered directly.
 */

#include "arch/presets.hh"
#include "common/rng.hh"
#include "runtime/experiment.hh"
#include "sched/b_preprocess.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.grid
        .axis("weight_lane_bias", {0.0, 0.3, 0.5, 0.8})
        .axis("arch", {"B(6,0,0,off)", "B(6,0,0,on)"})
        .axis("category", {"b"});
    plan.base.networks = benchmarkSuite();
    // The off/on columns index the arch axis and the title names the
    // B suite; the lane-bias axis itself is freely overridable.
    plan.lockedAxes = {"arch", "category"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    Table t("Shuffle ablation — B(6,0,0) suite speedup vs lane bias",
            {"weight lane bias", "shuffle off", "shuffle on", "gain"});
    for (std::size_t o = 0; o < ctx.spec->optionVariants.size(); ++o) {
        const double bias =
            ctx.spec->optionVariants[o].weightLaneBias;
        const double s_off = ctx.variantGeomean(o, 0, 0);
        const double s_on = ctx.variantGeomean(o, 1, 0);
        t.addRow({Table::num(bias, 1), Table::num(s_off),
                  Table::num(s_on),
                  Table::num(100.0 * (s_on / s_off - 1.0), 1) + "%"});
    }

    // Crossbar granularity on one biased tile set: schedule length of
    // the B packing under local 4x4 rotation vs a full-width crossbar.
    Table xbar("Crossbar granularity — B packing cycles on biased "
               "weights (lower is better)",
               {"granularity", "stream cycles", "vs dense steps"});
    Rng rng(1234);
    auto b = laneBiasedSparse(1024, 16, 0.85, 0.8, 4, rng);
    const TileShape shape{};
    TileViewB view(b, shape, 0);
    const Borrow db{6, 0, 0};
    for (int group : {1, 4, 16}) {
        Shuffler sh(group > 1, shape.k0, group == 1 ? 4 : group);
        auto stream = preprocessB(view, db, sh, false);
        xbar.addRow({group == 1 ? "off"
                                : (std::to_string(group) + "x" +
                                   std::to_string(group)),
                     Table::count(static_cast<std::uint64_t>(
                         stream.cycles())),
                     Table::num(static_cast<double>(view.steps()) /
                                    static_cast<double>(
                                        stream.cycles()),
                                2) + "x"});
    }
    return {t, xbar};
}

const bool registered = registerExperiment(
    {"ablation_shuffle", "Ablation: shuffle benefit vs mask structure",
     /*defaultSample=*/0.05, /*defaultRowCap=*/48, setup, render});

} // namespace
} // namespace griffin
