/**
 * @file
 * Paper Table III: Griffin's morphing vs the rigid dual design
 * downgrading, on single-sparse workloads.  The structural comparison
 * is static; the measured-speedup table sweeps
 * {Sparse.AB*, Griffin} x {a, b} through the runner.
 */

#include "arch/overhead.hh"
#include "arch/presets.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.base.archs = {sparseABStar(), griffinArch()};
    plan.base.networks = benchmarkSuite();
    plan.grid.axis("category", {"a", "b"});
    // render indexes archs as {0: Sparse.AB*, 1: Griffin}.
    plan.lockedAxes = {"arch"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    // Structural comparison (the paper's table contents).
    Table t("Table III — configuration on single-sparse models",
            {"model", "design", "configuration", "BMUX fan-in",
             "ABUF entries used", "metadata bits"});
    {
        const auto down_a = RoutingConfig::sparseA(2, 0, 0, true);
        const auto morph_a = griffinMorph(DnnCategory::A);
        const auto hw_down = computeOverhead(down_a, TileShape{});
        const auto hw_morph = computeOverhead(morph_a, TileShape{});
        t.addRow({"DNN.A", "dual downgrade", down_a.str(),
                  std::to_string(hw_down.bmuxFanin),
                  std::to_string(hw_down.abufDepth), "-"});
        t.addRow({"DNN.A", "Griffin morph", morph_a.str(),
                  std::to_string(hw_morph.bmuxFanin),
                  std::to_string(hw_morph.abufDepth + 2), "-"});
        const auto down_b =
            RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
        const auto morph_b = griffinMorph(DnnCategory::B);
        t.addRow({"DNN.B", "dual downgrade", "B(2,0,1,on)", "-", "3",
                  std::to_string(
                      computeOverhead(down_b, TileShape{}).metadataBits)});
        t.addRow({"DNN.B", "Griffin morph", morph_b.str(), "-", "9",
                  std::to_string(
                      computeOverhead(morph_b, TileShape{}).metadataBits)});
    }

    // Measured speedups over the benchmark suite.
    Table perf("Griffin morph vs dual downgrade — measured speedup "
               "(suite geomean)",
               {"model", "dual Sparse.AB*", "Griffin", "gain"});
    for (std::size_t c = 0; c < ctx.spec->categories.size(); ++c) {
        const double rigid = ctx.suiteGeomean(0, c);
        const double hybrid = ctx.suiteGeomean(1, c);
        perf.addRow({toString(ctx.spec->categories[c]),
                     Table::num(rigid), Table::num(hybrid),
                     Table::num(hybrid / rigid, 3) + "x"});
    }
    return {t, perf};
}

const bool registered = registerExperiment(
    {"table3", "Table III: Griffin morph vs dual downgrade",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, setup, render});

} // namespace
} // namespace griffin
