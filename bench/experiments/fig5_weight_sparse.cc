/**
 * @file
 * Paper Fig. 5: the weight-only (Sparse.B) design-space sweep —
 * normalized speedup on the DNN.B suite plus effective power/area
 * efficiency on DNN.B (y axis) and DNN.dense (x axis).
 *
 * The design points are one `arch` axis of a GridSpec (routing-spec
 * names, both shuffle settings, plus the paper's comparison
 * architectures), aggregated per architecture with the context's
 * geomean reducer.
 */

#include <string>
#include <vector>

#include "arch/presets.hh"
#include "power/cost_model.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

std::vector<std::string>
designPoints()
{
    // The configurations the paper's bars display (db1 in {2,4,6}),
    // each with the shuffler off and on, then the comparison rows.
    const int points[][3] = {
        {2, 0, 0}, {2, 1, 0}, {2, 2, 0}, {2, 0, 1}, {2, 1, 1},
        {2, 0, 2}, {4, 0, 0}, {4, 0, 1}, {4, 0, 2}, {6, 0, 0},
        {6, 0, 1},
    };
    std::vector<std::string> archs;
    for (const auto &p : points)
        for (const char *shuffle : {"off", "on"})
            archs.push_back("B(" + std::to_string(p[0]) + "," +
                            std::to_string(p[1]) + "," +
                            std::to_string(p[2]) + "," + shuffle + ")");
    archs.push_back("TCL.B");
    archs.push_back("Sparse.B*");
    return archs;
}

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.grid.axis("arch", designPoints()).axis("category", {"b"});
    plan.base.networks = benchmarkSuite();
    // The efficiency columns are labeled @DNN.B / @dense regardless of
    // what ran, so the category axis may not be overridden.
    plan.lockedAxes = {"category"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    Table t("Fig. 5 — Sparse.B sweep (suite geomean)",
            {"config", "speedup", "TOPS/W @DNN.B", "TOPS/mm2 @DNN.B",
             "TOPS/W @dense", "TOPS/mm2 @dense"});
    for (std::size_t a = 0; a < ctx.spec->archs.size(); ++a) {
        const auto &arch = ctx.spec->archs[a];
        const double s = ctx.archGeomean(a);
        t.addRow({arch.name, Table::num(s),
                  Table::num(effectiveTopsPerWatt(arch, DnnCategory::B,
                                                  s)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::B,
                                                 s)),
                  Table::num(effectiveTopsPerWatt(
                      arch, DnnCategory::Dense, 1.0)),
                  Table::num(effectiveTopsPerMm2(
                      arch, DnnCategory::Dense, 1.0))});
    }
    return {t};
}

const bool registered = registerExperiment(
    {"fig5", "Fig. 5: Sparse.B design space (speedup and efficiency)",
     /*defaultSample=*/0.02, /*defaultRowCap=*/32, setup, render});

} // namespace
} // namespace griffin
