/**
 * @file
 * Paper Table VII: power and area breakdown of the eight
 * architectures, our structural estimate next to the paper's synthesis
 * numbers (totals).  Render-only — the cost model is closed-form.
 */

#include "arch/presets.hh"
#include "power/cost_model.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

/** Paper totals (Table VII) for the ours-vs-paper columns. */
struct PaperRow
{
    const char *name;
    double powerMw;
    double areaKum2;
};

constexpr PaperRow kPaper[] = {
    {"Baseline", 151, 217},  {"Sparse.B*", 206, 258},
    {"TCL.B", 209, 233},     {"Sparse.A*", 223, 253},
    {"Sparse.AB*", 282, 282}, {"Griffin", 284, 286},
    {"TDash.AB", 284, 276},  {"SparTen.AB", 991, 1139},
};

std::string
cell(double v)
{
    return v == 0.0 ? std::string("-") : Table::num(v, 1);
}

std::vector<Table>
render(const ExperimentContext &)
{
    Table power("Table VII — power breakdown, mW (ours)",
                {"architecture", "CTRL", "SHF", "ABUF", "BBUF",
                 "REG/WR", "ACC", "MUL", "ADT", "MUX", "SRAM", "total",
                 "paper", "ratio"});
    Table area("Table VII — area breakdown, 1000 um^2 (ours)",
               {"architecture", "CTRL", "SHF", "ABUF", "BBUF", "REG/WR",
                "ACC", "MUL", "ADT", "MUX", "SRAM", "total", "paper",
                "ratio"});
    for (const auto &arch : tableSevenPresets()) {
        const auto cost = estimateCost(arch);
        const PaperRow *paper = nullptr;
        for (const auto &row : kPaper)
            if (arch.name == row.name)
                paper = &row;
        const auto &p = cost.powerMw;
        power.addRow(
            {arch.name, cell(p.ctrl), cell(p.shf), cell(p.abuf),
             cell(p.bbuf), cell(p.regwr), cell(p.acc), cell(p.mul),
             cell(p.adt), cell(p.mux), cell(p.sram),
             Table::num(p.total(), 1),
             paper ? Table::num(paper->powerMw, 0) : std::string("?"),
             paper ? Table::num(p.total() / paper->powerMw, 2)
                   : std::string("?")});
        const auto &a = cost.areaKum2;
        area.addRow(
            {arch.name, cell(a.ctrl), cell(a.shf), cell(a.abuf),
             cell(a.bbuf), cell(a.regwr), cell(a.acc), cell(a.mul),
             cell(a.adt), cell(a.mux), cell(a.sram),
             Table::num(a.total(), 1),
             paper ? Table::num(paper->areaKum2, 0) : std::string("?"),
             paper ? Table::num(a.total() / paper->areaKum2, 2)
                   : std::string("?")});
    }
    return {power, area};
}

const bool registered = registerExperiment(
    {"table7", "Table VII: power/area breakdown",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, nullptr, render});

} // namespace
} // namespace griffin
