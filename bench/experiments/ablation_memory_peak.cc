/**
 * @file
 * Ablation: memory-peak-aware DAG scheduling (sched/dag_schedule.hh).
 *
 * The branching networks (GoogLeNet, InceptionV3) hold an inception
 * module's whole input concat live while the branches execute, so
 * declaration order peaks well above the optimized topological order.
 * Under a finite on-chip buffer budget the difference becomes cycles:
 * every schedule step whose live bytes exceed the budget pays DRAM
 * round-trips for the excess.  This sweep prices both policies across
 * SRAM budgets and reports the end-to-end speedup, plus the modeled
 * peaks themselves.
 */

#include "arch/presets.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

const char *kPolicies[] = {"declaration", "optimized"};
const char *kBudgetsKb[] = {"256", "512", "1024", "2048", "4096"};

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.base.archs = {griffinArch()};
    plan.base.networks = {googleNet(), inceptionV3()};
    plan.base.categories = {DnnCategory::AB};
    plan.grid.axis("schedule_policy",
                   std::vector<std::string>(std::begin(kPolicies),
                                            std::end(kPolicies)));
    plan.grid.axis("sram_budget_kb",
                   std::vector<std::string>(std::begin(kBudgetsKb),
                                            std::end(kBudgetsKb)));
    // render() indexes jobs as (policy, budget) x network.
    plan.lockedAxes = {"arch", "network", "category", "schedule_policy",
                       "sram_budget_kb"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    const auto &results = ctx.sweep->results();
    const std::size_t nets = ctx.spec->networks.size();
    const std::size_t budgets = std::size(kBudgetsKb);
    // Option variants expand first-axis-slowest, and expandSweep nests
    // (options, arch, network, category): result index is
    // ((policy * budgets) + budget) * nets + network.
    const auto at = [&](std::size_t policy, std::size_t budget,
                        std::size_t net) -> const NetworkResult & {
        return results[(policy * budgets + budget) * nets + net];
    };

    Table speed("Speedup vs SRAM budget (griffin, DNN.AB) — "
                "declaration vs optimized schedule",
                {"budget", "GoogLeNet decl", "GoogLeNet opt",
                 "InceptionV3 decl", "InceptionV3 opt"});
    for (std::size_t b = 0; b < budgets; ++b) {
        speed.addRow({std::string(kBudgetsKb[b]) + " KiB",
                      Table::num(at(0, b, 0).speedup),
                      Table::num(at(1, b, 0).speedup),
                      Table::num(at(0, b, 1).speedup),
                      Table::num(at(1, b, 1).speedup)});
    }

    Table peaks("Modeled peak on-chip buffer bytes",
                {"network", "declaration", "optimized", "reduction"});
    for (std::size_t n = 0; n < nets; ++n) {
        const auto declPeak = at(0, 0, n).peakSramBytes;
        const auto optPeak = at(1, 0, n).peakSramBytes;
        const double cut =
            declPeak > 0 ? 100.0 *
                               static_cast<double>(declPeak - optPeak) /
                               static_cast<double>(declPeak)
                         : 0.0;
        peaks.addRow({ctx.spec->networks[n].name,
                      std::to_string(declPeak), std::to_string(optPeak),
                      Table::num(cut, 1) + "%"});
    }
    return {speed, peaks};
}

const bool registered = registerExperiment(
    {"ablation_memory_peak",
     "Ablation: memory-peak-aware DAG scheduling",
     /*defaultSample=*/0.02, /*defaultRowCap=*/8, setup, render});

} // namespace
} // namespace griffin
