/**
 * @file
 * Paper Table I: benchmark categories and the architecture class that
 * is optimal for each.  Render-only — no simulation.
 */

#include "arch/presets.hh"
#include "runtime/experiment.hh"
#include "workloads/network.hh"

namespace griffin {
namespace {

std::vector<Table>
render(const ExperimentContext &)
{
    Table t("Table I — benchmark categories",
            {"benchmarks", "A/B sparsity", "DNN category",
             "optimal architecture"});
    t.addRow({"CNN+Non-ReLU, Transformer+GeLU", "dense/dense",
              toString(DnnCategory::Dense), "Dense"});
    t.addRow({"CNN+ReLU, Transformer+ReLU", "sparse/dense",
              toString(DnnCategory::A), "Sparse.A"});
    t.addRow({"Pruned CNN+Non-ReLU, Pruned Transformer+GeLU",
              "dense/sparse", toString(DnnCategory::B), "Sparse.B"});
    t.addRow({"Pruned CNN+ReLU, Pruned Transformer+ReLU",
              "sparse/sparse", toString(DnnCategory::AB), "Sparse.AB"});

    Table suite("Suite categorisation at Table IV sparsity ratios",
                {"network", "weight sparsity", "act sparsity",
                 "category"});
    for (const auto &net : benchmarkSuite()) {
        const auto cat = categorize(net.actSparsity > 0.0,
                                    net.weightSparsity > 0.0);
        suite.addRow({net.name, Table::num(net.weightSparsity, 2),
                      Table::num(net.actSparsity, 2), toString(cat)});
    }
    return {t, suite};
}

const bool registered = registerExperiment(
    {"table1", "Table I: DNN categories and optimal architectures",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, nullptr, render});

} // namespace
} // namespace griffin
