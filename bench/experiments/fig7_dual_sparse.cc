/**
 * @file
 * Paper Fig. 7: the dual-sparse (Sparse.AB) design sweep — speedup on
 * the DNN.AB suite plus effective efficiency on DNN.AB (y) and DNN.A
 * (x).  One `arch` axis of routing-spec design points crossed with a
 * two-value `category` axis; the render reduces each (arch, category)
 * slice to its suite geomean.
 */

#include <string>
#include <vector>

#include "arch/presets.hh"
#include "arch/routing.hh"
#include "power/cost_model.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

std::vector<std::string>
designPoints()
{
    // Best-performing points under the AMUX <= 16 limit; da3 excluded
    // per observation VI-C(3).
    const int points[][6] = {
        {0, 0, 0, 4, 0, 1}, {0, 0, 0, 4, 0, 2}, {1, 0, 0, 3, 0, 1},
        {1, 0, 0, 3, 1, 0}, {2, 0, 0, 2, 0, 0}, {2, 0, 0, 2, 0, 1},
        {2, 0, 0, 2, 0, 2}, {2, 0, 0, 3, 0, 1}, {2, 0, 0, 4, 0, 1},
        {2, 0, 0, 4, 0, 2},
    };
    std::vector<std::string> archs;
    for (const auto &p : points)
        for (bool shuffle : {false, true})
            archs.push_back(RoutingConfig::sparseAB(p[0], p[1], p[2],
                                                    p[3], p[4], p[5],
                                                    shuffle)
                                .str());
    // The paper's dual-sparse comparison point.
    archs.push_back(tdashAB().name);
    return archs;
}

ExperimentPlan
setup(const RunOptions &)
{
    ExperimentPlan plan;
    plan.grid.axis("arch", designPoints())
        .axis("category", {"ab", "a"});
    plan.base.networks = benchmarkSuite();
    // render indexes the category axis as {0: AB, 1: A}.
    plan.lockedAxes = {"category"};
    return plan;
}

std::vector<Table>
render(const ExperimentContext &ctx)
{
    Table t("Fig. 7 — Sparse.AB sweep (suite geomean)",
            {"config", "speedup @DNN.AB", "TOPS/W @DNN.AB",
             "TOPS/mm2 @DNN.AB", "speedup @DNN.A", "TOPS/W @DNN.A",
             "TOPS/mm2 @DNN.A"});
    for (std::size_t a = 0; a < ctx.spec->archs.size(); ++a) {
        const auto &arch = ctx.spec->archs[a];
        const double s_ab = ctx.suiteGeomean(a, 0);
        const double s_a = ctx.suiteGeomean(a, 1);
        t.addRow({arch.name, Table::num(s_ab),
                  Table::num(effectiveTopsPerWatt(arch,
                                                  DnnCategory::AB,
                                                  s_ab)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::AB,
                                                 s_ab)),
                  Table::num(s_a),
                  Table::num(effectiveTopsPerWatt(arch, DnnCategory::A,
                                                  s_a)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::A,
                                                 s_a))});
    }
    return {t};
}

const bool registered = registerExperiment(
    {"fig7", "Fig. 7: Sparse.AB design space (speedup and efficiency)",
     /*defaultSample=*/0.02, /*defaultRowCap=*/32, setup, render});

} // namespace
} // namespace griffin
