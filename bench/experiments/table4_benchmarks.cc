/**
 * @file
 * Paper Table IV: the benchmark suite with sparsity ratios, accuracy,
 * and dense-baseline latency (ours vs paper).  Render-only —
 * deterministic structural cycle counts, no simulation.
 */

#include "arch/presets.hh"
#include "runtime/experiment.hh"
#include "workloads/network.hh"

namespace griffin {
namespace {

std::vector<Table>
render(const ExperimentContext &)
{
    Table t("Table IV — benchmarks",
            {"network", "sparsity (B,A)", "accuracy", "MACs",
             "dense cycles (ours)", "dense cycles (paper)", "ratio"});
    for (const auto &net : benchmarkSuite()) {
        const auto cycles = net.denseCycles(TileShape{});
        t.addRow({net.name,
                  "(" + Table::num(net.weightSparsity, 2) + "," +
                      Table::num(net.actSparsity, 2) + ")",
                  net.accuracy, Table::count(
                      static_cast<std::uint64_t>(net.macs())),
                  Table::count(static_cast<std::uint64_t>(cycles)),
                  Table::count(static_cast<std::uint64_t>(
                      net.paperDenseCycles)),
                  Table::num(static_cast<double>(cycles) /
                                 static_cast<double>(
                                     net.paperDenseCycles),
                             2)});
    }

    Table cfg("Table IV — architecture configuration",
              {"parameter", "value"});
    const ArchConfig base = denseBaseline();
    cfg.addRow({"core (K0,N0,M0)", "(16,16,4) = 1024 MACs"});
    cfg.addRow({"ASRAM / BSRAM", "512 KB / 32 KB"});
    cfg.addRow({"ASRAM-BW / BSRAM-BW", "51.2 GB/s / 204.8 GB/s"});
    cfg.addRow({"DRAM-BW",
                Table::num(base.mem.dramGBs, 0) + " GB/s"});
    cfg.addRow({"frequency", "800 MHz @ 0.71 V (7 nm)"});
    cfg.addRow({"dataflow", "output stationary"});
    return {t, cfg};
}

const bool registered = registerExperiment(
    {"table4", "Table IV: benchmark suite summary",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, nullptr, render});

} // namespace
} // namespace griffin
