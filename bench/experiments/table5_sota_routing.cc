/**
 * @file
 * Paper Table V: routing dimensions of A and B for the
 * state-of-the-art architectures, expressed in the unified framework
 * (paper contribution 2).  Render-only — structural.
 */

#include "arch/presets.hh"
#include "runtime/experiment.hh"

namespace griffin {
namespace {

std::vector<Table>
render(const ExperimentContext &)
{
    Table t("Table V — routing dimension comparison",
            {"architecture", "da1", "da2", "da3", "db1", "db2", "db3",
             "shuffle", "sparsity support"});
    auto add = [&](const ArchConfig &arch, const char *support) {
        const auto &r = arch.routing;
        auto dim = [&](bool used, int v) {
            return used ? std::to_string(v) : std::string("-");
        };
        t.addRow({arch.name, dim(r.sparseA(), r.a.d1),
                  dim(r.sparseA(), r.a.d2), dim(r.sparseA(), r.a.d3),
                  dim(r.sparseB(), r.b.d1), dim(r.sparseB(), r.b.d2),
                  dim(r.sparseB(), r.b.d3), r.shuffle ? "yes" : "no",
                  support});
    };
    add(denseBaseline(), "dense");
    add(cnvlutinA(), "activation only");
    add(cambriconXB(), "weight only (16x16 window)");
    add(tclB(), "weight only");
    add(tdashAB(), "dual (on-the-fly)");
    add(sparTenAB(), "dual (MAC grid)");
    add(sparseBStar(), "weight only (ours)");
    add(sparseAStar(), "activation only (ours)");
    add(sparseABStar(), "dual (ours)");
    add(griffinArch(), "hybrid (ours)");
    return {t};
}

const bool registered = registerExperiment(
    {"table5", "Table V: SOTA routing dimensions",
     /*defaultSample=*/0.04, /*defaultRowCap=*/48, nullptr, render});

} // namespace
} // namespace griffin
