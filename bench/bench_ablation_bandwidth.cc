/**
 * @file
 * Ablation: SRAM bandwidth provisioning (paper Section V: "to exploit
 * the full sparsity speedup, SRAM BW should be equal or more than the
 * normalized speedup times the baseline bandwidth").
 *
 * Sweeps the window-advance cap of Sparse.AB* and Sparse.B* from
 * baseline (1x) to the full window depth.
 */

#include "arch/presets.hh"
#include "bench_util.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv, "Ablation: SRAM bandwidth scaling",
        /*default_sample=*/0.05, /*default_rowcap=*/48);

    Table t("SRAM bandwidth ablation — suite speedup vs provisioned "
            "A-step bandwidth",
            {"bw scale", "Sparse.B* @DNN.B", "Sparse.AB* @DNN.AB"});
    for (double bw : {1.0, 1.5, 2.0, 3.0, 5.0, 9.0}) {
        auto b_star = sparseBStar();
        b_star.bwScale = bw;
        auto ab_star = sparseABStar();
        ab_star.bwScale = bw;
        t.addRow({Table::num(bw, 1) + "x",
                  Table::num(bench::suiteSpeedup(b_star, DnnCategory::B,
                                                 args.run)),
                  Table::num(bench::suiteSpeedup(
                      ab_star, DnnCategory::AB, args.run))});
    }
    bench::show(t, args);
    return 0;
}
