/**
 * @file
 * Regenerates paper Fig. 5: the weight-only (Sparse.B) design-space
 * sweep — normalized speedup on the DNN.B suite plus effective
 * power/area efficiency on DNN.B (y axis) and DNN.dense (x axis).
 *
 * The design points are one `arch` axis of a GridSpec (routing-spec
 * names, both shuffle settings, plus the paper's comparison
 * architectures), run through the parallel sweep runner — so
 * `--threads N` regenerates the figure N-wide with bit-identical
 * numbers — and aggregated per architecture with SweepResult::slice.
 */

#include <string>
#include <vector>

#include "arch/presets.hh"
#include "bench_util.hh"
#include "power/cost_model.hh"
#include "runtime/grid.hh"
#include "runtime/runner.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv,
        "Fig. 5: Sparse.B design space (speedup and efficiency)",
        /*default_sample=*/0.02, /*default_rowcap=*/32,
        /*add_threads=*/true);

    // The configurations the paper's bars display (db1 in {2,4,6}),
    // each with the shuffler off and on, then the comparison rows.
    const int points[][3] = {
        {2, 0, 0}, {2, 1, 0}, {2, 2, 0}, {2, 0, 1}, {2, 1, 1},
        {2, 0, 2}, {4, 0, 0}, {4, 0, 1}, {4, 0, 2}, {6, 0, 0},
        {6, 0, 1},
    };
    std::vector<std::string> archs;
    for (const auto &p : points)
        for (const char *shuffle : {"off", "on"})
            archs.push_back("B(" + std::to_string(p[0]) + "," +
                            std::to_string(p[1]) + "," +
                            std::to_string(p[2]) + "," + shuffle + ")");
    archs.push_back("TCL.B");
    archs.push_back("Sparse.B*");

    GridSpec grid;
    grid.axis("arch", archs).axis("category", {"b"});

    SweepSpec base;
    base.networks = benchmarkSuite();
    base.optionVariants = {args.run};
    const auto spec = grid.toSweepSpec(base);
    const auto sweep = runSweep(spec, args.threads);

    Table t("Fig. 5 — Sparse.B sweep (suite geomean)",
            {"config", "speedup", "TOPS/W @DNN.B", "TOPS/mm2 @DNN.B",
             "TOPS/W @dense", "TOPS/mm2 @dense"});
    for (std::size_t a = 0; a < spec.archs.size(); ++a) {
        const auto &arch = spec.archs[a];
        const double s = geomeanSpeedup(sweep.slice(
            [&](const SweepJob &job) { return job.archIndex == a; }));
        t.addRow({arch.name, Table::num(s),
                  Table::num(effectiveTopsPerWatt(arch, DnnCategory::B,
                                                  s)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::B,
                                                 s)),
                  Table::num(effectiveTopsPerWatt(
                      arch, DnnCategory::Dense, 1.0)),
                  Table::num(effectiveTopsPerMm2(
                      arch, DnnCategory::Dense, 1.0))});
    }
    bench::show(t, args);
    return 0;
}
