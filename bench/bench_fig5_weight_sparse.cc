/**
 * @file
 * Regenerates paper Fig. 5: the weight-only (Sparse.B) design-space
 * sweep — normalized speedup on the DNN.B suite plus effective
 * power/area efficiency on DNN.B (y axis) and DNN.dense (x axis).
 */

#include "arch/presets.hh"
#include "bench_util.hh"
#include "power/cost_model.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto args = bench::parseArgs(
        argc, argv,
        "Fig. 5: Sparse.B design space (speedup and efficiency)",
        /*default_sample=*/0.02, /*default_rowcap=*/32);

    // The configurations the paper's bars display (db1 in {2,4,6}).
    const int points[][3] = {
        {2, 0, 0}, {2, 1, 0}, {2, 2, 0}, {2, 0, 1}, {2, 1, 1},
        {2, 0, 2}, {4, 0, 0}, {4, 0, 1}, {4, 0, 2}, {6, 0, 0},
        {6, 0, 1},
    };

    Table t("Fig. 5 — Sparse.B sweep (suite geomean)",
            {"config", "speedup", "TOPS/W @DNN.B", "TOPS/mm2 @DNN.B",
             "TOPS/W @dense", "TOPS/mm2 @dense"});
    for (const auto &p : points) {
        for (bool shuffle : {false, true}) {
            ArchConfig arch = denseBaseline();
            arch.routing =
                RoutingConfig::sparseB(p[0], p[1], p[2], shuffle);
            arch.name = arch.routing.str();
            const double s =
                bench::suiteSpeedup(arch, DnnCategory::B, args.run);
            t.addRow({arch.name, Table::num(s),
                      Table::num(effectiveTopsPerWatt(
                          arch, DnnCategory::B, s)),
                      Table::num(effectiveTopsPerMm2(
                          arch, DnnCategory::B, s)),
                      Table::num(effectiveTopsPerWatt(
                          arch, DnnCategory::Dense, 1.0)),
                      Table::num(effectiveTopsPerMm2(
                          arch, DnnCategory::Dense, 1.0))});
        }
    }
    // The paper's comparison rows.
    for (const auto &arch : {tclB(), sparseBStar()}) {
        const double s =
            bench::suiteSpeedup(arch, DnnCategory::B, args.run);
        t.addRow({arch.name, Table::num(s),
                  Table::num(effectiveTopsPerWatt(arch, DnnCategory::B,
                                                  s)),
                  Table::num(effectiveTopsPerMm2(arch, DnnCategory::B,
                                                 s)),
                  Table::num(effectiveTopsPerWatt(
                      arch, DnnCategory::Dense, 1.0)),
                  Table::num(effectiveTopsPerMm2(
                      arch, DnnCategory::Dense, 1.0))});
    }
    bench::show(t, args);
    return 0;
}
