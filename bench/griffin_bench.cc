/**
 * @file
 * The one bench driver: every paper figure, table, and ablation is a
 * registered Experiment (bench/experiments/), listed, described, and
 * executed here.
 *
 *   griffin_bench list
 *   griffin_bench describe fig5
 *   griffin_bench run fig5 fig6 --threads 8
 *   griffin_bench run --all --sample 0.01 --rowcap 4 --out results.jsonl
 *   griffin_bench run fig5 --grid-shard 0/3 --cache-file fleet.grfc \
 *       --out shard0.jsonl
 *
 * Every experiment accepts the same flag set: fidelity (--sample,
 * --rowcap, --seed, --lanebias; sample/rowcap default to the
 * experiment's tuned fidelity), parallelism (--threads, --layer-shard),
 * grid overrides (--grid, applied over the experiment's own axes),
 * batching (--batch-archs, on by default), cache persistence
 * (--cache-file/--cache-budget-mb for schedules,
 * --workset-cache-file/--workset-budget-mb for generated operand
 * worksets), and output (--csv tables, --json table JSON Lines,
 * --out result-row document: .json/.csv/.jsonl by suffix).
 *
 * Fleet sharding: --grid-shard i/n slices every sweep's job list into
 * n contiguous blocks and runs block i, so n processes sharing a
 * --cache-file cover a grid disjointly.  Sharded runs emit result rows
 * only (a shard's aggregate tables would be wrong); concatenating the
 * shards' --out .jsonl files in shard order is byte-identical to the
 * unsharded file, and
 *
 *   griffin_bench merge shard0.jsonl shard1.jsonl shard2.jsonl
 *
 * validates that the shard documents cover each experiment's grid
 * exactly (disjoint, complete, in order) and renders the aggregate
 * tables post hoc that the shards could not (--out rewrites the
 * merged row document, --csv/--json apply as in run).
 *
 * Fleet mode (live coordination, src/fleet/): `serve` runs the
 * static-shard story as one long-running coordinator —
 *
 *   griffin_bench serve fig5 --port-file port.txt --out rows.jsonl
 *   griffin_bench worker --connect 127.0.0.1:$(cat port.txt)
 *
 * — leasing job slices to workers over TCP, re-leasing slices whose
 * worker dies or stops heartbeating, validating every streamed row
 * online exactly as merge does offline, and rendering the aggregate
 * tables itself once every job is acked exactly once.  Tables and
 * --out rows are byte-identical to the unsharded run, worker deaths
 * included.
 */

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/socket.hh"
#include "common/strings.hh"
#include "fleet/coordinator.hh"
#include "fleet/worker.hh"
#include "sched/dag_schedule.hh"
#include "runtime/cache_store.hh"
#include "runtime/experiment.hh"
#include "runtime/perf_report.hh"
#include "runtime/result_sink.hh"
#include "runtime/shard_merge.hh"
#include "runtime/telemetry.hh"
#include "runtime/thread_pool.hh"
#include "simd/occupancy.hh"

using namespace griffin;

namespace {

std::vector<std::string>
registryNames()
{
    std::vector<std::string> names;
    for (const auto &exp : experimentRegistry())
        names.push_back(exp.name);
    return names;
}

const Experiment &
experimentOrDie(const std::string &name)
{
    const Experiment *exp = findExperiment(name);
    if (exp == nullptr)
        fatal("unknown experiment '", name, "'; did you mean '",
              nearestName(name, registryNames()),
              "'? (see griffin_bench list)");
    return *exp;
}

/** Case-insensitive benchmark-network lookup; nullopt-style via an
 *  empty name sentinel is avoided by returning a found flag. */
bool
findNetwork(const std::string &name, NetworkSpec &out)
{
    const auto fold = [](std::string s) {
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
            return static_cast<char>(std::tolower(c));
        });
        return s;
    };
    const std::string wanted = fold(name);
    for (auto &net : benchmarkSuite()) {
        if (fold(net.name) == wanted) {
            out = std::move(net);
            return true;
        }
    }
    return false;
}

/** The `networks` subcommand: the benchmark suite as a table. */
Table
networkListTable()
{
    Table t("Benchmark networks (paper Table IV)",
            {"network", "nodes", "edges", "macs", "dense cycles",
             "B/A sparsity", "accuracy"});
    const TileShape shape{};
    for (const auto &net : benchmarkSuite()) {
        std::size_t edges = 0;
        for (const auto &node : net.nodes)
            edges += node.inputs.size();
        t.addRow({net.name, std::to_string(net.layerCount()),
                  std::to_string(edges), std::to_string(net.macs()),
                  std::to_string(net.denseCycles(shape)),
                  Table::num(net.weightSparsity, 2) + "/" +
                      Table::num(net.actSparsity, 2),
                  net.accuracy});
    }
    return t;
}

/** bench-style table output: boxed or CSV on stdout, optional JSON
 *  Lines trajectory file (first table truncates, the rest append). */
struct TableEmitter
{
    bool csv = false;
    std::string jsonPath;
    bool jsonStarted = false;

    void
    show(const Table &table)
    {
        if (csv)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        std::cout << '\n';
        if (jsonPath.empty())
            return;
        std::ofstream os(jsonPath, jsonStarted ? std::ios::app
                                               : std::ios::trunc);
        if (!os)
            fatal("cannot open --json path '", jsonPath, "'");
        jsonStarted = true;
        writeTableJsonLine(os, table);
    }
};

/** The pinned `perf` microbench suite: one B-side, one A-side, one
 *  dual-sparse experiment, so every pipeline stage shows up in the
 *  breakdown while the suite stays CI-cheap (fig8-scale sweeps are
 *  deliberately excluded). */
const std::vector<std::string> perfSuite = {"fig5", "fig6", "fig7"};

/** `griffin_bench perf` fidelity defaults: far below the experiments'
 *  tuned defaults, because perf runs measure the harness, not the
 *  paper's numbers. */
constexpr double perfDefaultSample = 0.02;
constexpr std::int64_t perfDefaultRowCap = 8;

/**
 * `perf --kernels` micro-benchmark: time each entry of the active
 * KernelTable over synthetic operands sized like the hot path's real
 * inputs (64-wide tile rows, 4K-slot head arrays, one engine refill
 * block).  Numbers are machine-dependent by nature — they live in the
 * perf artifact, never in result rows — but the per-op normalization
 * makes backend-vs-backend and commit-over-commit deltas readable.
 */
std::vector<PerfKernel>
benchKernels()
{
    const simd::KernelTable &kern = simd::kernels();
    const std::string backend =
        simd::backendName(simd::activeBackend());

    // Synthetic operands: ~50% occupancy i8 tiles and head arrays
    // with a spread of values around the compare horizon.
    constexpr std::size_t kBytes = 1 << 16;
    constexpr std::int64_t kSlots = 4096;
    constexpr std::int64_t kBlock = 312; // one Mt64 refill
    Rng rng(Rng::defaultSeed);
    std::vector<std::int8_t> tile(kBytes);
    for (auto &v : tile)
        v = rng.bernoulli(0.5) ? rng.nonzeroInt8() : 0;
    std::vector<std::int64_t> heads(kSlots);
    for (auto &h : heads)
        h = rng.uniformInt(0, 1 << 20);
    std::vector<std::uint64_t> state(kBlock);
    for (auto &w : state)
        w = static_cast<std::uint64_t>(rng.uniformInt(0, 1 << 30));

    std::vector<std::uint64_t> masks(kBytes / 64);
    std::vector<std::int32_t> counts(kBytes, 0);
    std::vector<std::uint64_t> bits((kSlots + 63) / 64);
    std::vector<std::uint64_t> tempered(kBlock);

    std::vector<PerfKernel> out;
    const auto timed = [&out, &backend](const char *name,
                                        std::uint64_t reps,
                                        std::uint64_t ops_per_rep,
                                        const auto &body) {
        body(); // warm caches and the dispatch pointer
        const std::uint64_t begin = monotonicNowNs();
        for (std::uint64_t r = 0; r < reps; ++r)
            body();
        const std::uint64_t ns = monotonicNowNs() - begin;
        PerfKernel k;
        k.kernel = name;
        k.backend = backend;
        k.ops = reps * ops_per_rep;
        k.totalMs = static_cast<double>(ns) / 1e6;
        k.nsPerOp = static_cast<double>(ns) /
                    static_cast<double>(k.ops);
        out.push_back(std::move(k));
    };

    timed("nonzero_masks", 2000, kBytes, [&] {
        kern.nonzeroMasks(tile.data(), 64, 64,
                          static_cast<std::int64_t>(kBytes / 64),
                          masks.data());
    });
    timed("count_nonzero", 2000, kBytes, [&] {
        kern.countNonzero(tile.data(), kBytes);
    });
    timed("accumulate_nonzero", 1000, kBytes, [&] {
        kern.accumulateNonzero(tile.data(), kBytes, counts.data());
    });
    timed("le_mask", 20000, static_cast<std::uint64_t>(kSlots), [&] {
        kern.leMask(heads.data(), kSlots, 1 << 19, bits.data());
    });
    timed("min_i64", 20000, static_cast<std::uint64_t>(kSlots), [&] {
        kern.minI64(heads.data(), kSlots);
    });
    timed("mt_temper", 100000, static_cast<std::uint64_t>(kBlock), [&] {
        kern.mtTemper(state.data(), kBlock, tempered.data());
    });
    return out;
}

/**
 * `perf` subcommand: run the pinned suite with Aggregate telemetry and
 * fresh caches per experiment, and write the schema-versioned
 * BENCH_perf.json trajectory artifact.  With --kernels, the SIMD
 * kernel micro-benchmarks run too (and alone when no experiment names
 * are given), landing as the artifact's "kernels" section.
 */
int
runPerfSuite(const Cli &cli, const std::vector<std::string> &names)
{
    const bool kernels_mode = cli.getBool("kernels");
    std::vector<std::string> suite =
        names.empty() && !kernels_mode ? perfSuite : names;
    for (const auto &name : suite)
        experimentOrDie(name);

    ExperimentRunConfig config;
    config.threads = static_cast<int>(cli.getInt("threads"));
    config.layerShard = cli.getBool("layer-shard");
    config.batchArchs = cli.getBool("batch-archs");
    config.run = resolveFidelity(cli, perfDefaultSample,
                                 perfDefaultRowCap);
    // Fresh caches per experiment (config caches stay null): the
    // artifact's hit rates then describe each experiment's own reuse,
    // not whatever the previous suite entry happened to warm.

    Telemetry::setMode(Telemetry::Mode::Aggregate);
    MetricsRegistry &reg = MetricsRegistry::instance();

    PerfDocument doc;
    doc.threads = config.threads;
    doc.sample = config.run.sim.sampleFraction;
    doc.rowCap = config.run.rowCap;
    doc.seed = config.run.seed;

    const std::uint64_t suite_start_ns = monotonicNowNs();
    for (const auto &name : suite) {
        const Experiment &exp = experimentOrDie(name);
        Telemetry::clear();
        const auto outcome = runExperiment(exp, config);
        if (!outcome.hasSweep) {
            inform("perf: skipping render-only experiment '", name,
                   "'");
            continue;
        }
        PerfEntry entry;
        entry.experiment = name;
        entry.jobs = outcome.sweep.jobs().size();
        entry.wallMs = reg.gauge("sweep.wall_ms").value();
        entry.jobsPerSec = reg.gauge("sweep.jobs_per_sec").value();
        entry.threadUtilization = reg.gauge("pool.utilization").value();
        entry.poolSteals = static_cast<std::uint64_t>(
            reg.gauge("pool.steals").value());
        entry.poolBusyMs = reg.gauge("pool.busy_ms").value();
        for (const auto &stage : Telemetry::stageBreakdown())
            entry.stages.push_back(
                {stage.stage, stage.count, stage.totalMs()});
        entry.scheduleCache = outcome.sweep.cacheStats();
        entry.aScheduleCache = outcome.sweep.aScheduleStats();
        entry.worksetCache = outcome.sweep.worksetStats();
        doc.suite.push_back(std::move(entry));
    }
    if (kernels_mode) {
        doc.kernels = benchKernels();
        inform("kernels: micro-benchmarked ", doc.kernels.size(),
               " kernel(s) on the '",
               simd::backendName(simd::activeBackend()),
               "' backend");
    }
    doc.totalWallMs =
        static_cast<double>(monotonicNowNs() - suite_start_ns) / 1e6;

    std::string out_path = cli.getString("out");
    if (out_path.empty())
        out_path = "BENCH_perf.json";
    std::ofstream os(out_path);
    if (!os)
        fatal("cannot open perf output path '", out_path, "'");
    writePerfJson(os, doc);
    if (!os)
        fatal("write to perf output path '", out_path, "' failed");
    inform("wrote perf trajectory for ", doc.suite.size(),
           " experiment(s) to ", out_path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("griffin_bench: run registered paper experiments "
            "(subcommands: list | networks | describe <name...> | "
            "run <name...|--all> | merge <shard.jsonl...> | "
            "serve <name...|--all> | worker --connect host:port | "
            "perf [name...] [--kernels] | "
            "perf --compare [--gate] old.json new.json; "
            "describe also takes a benchmark network name and renders "
            "its dataflow DAG and schedules)");
    addFidelityFlags(cli);
    cli.addBool("all", false, "run every registered experiment");
    cli.addInt("threads", ThreadPool::hardwareThreads(),
               "worker threads (1 = serial; results are bit-identical "
               "for any value)");
    cli.addBool("layer-shard", false,
                "split each network job into per-layer sub-jobs "
                "(bit-identical results, finer pool granularity)");
    cli.addBool("batch-archs", true,
                "batch multiple GEMMs per job: all architectures of "
                "one (network, category, options) grid point share "
                "one sub-job per layer, generating each operand "
                "workset once (bit-identical results; disable with "
                "--batch-archs false)");
    cli.addString("grid", "",
                  "named-axis grid override applied over the "
                  "experiment's own axes, e.g. "
                  "\"network=alexnet,seed=1..4\"");
    cli.addString("grid-shard", "",
                  "run shard i of n (\"i/n\"): contiguous slice of "
                  "every sweep's job list; emits result rows only");
    cli.addInt("port", 0,
               "serve: TCP port to listen on (0 = ephemeral; see "
               "--port-file)");
    cli.addString("port-file", "",
                  "serve: write the resolved listen port to this file "
                  "(atomically), so scripts can start workers against "
                  "--port 0");
    cli.addInt("lease-jobs", 4,
               "serve: jobs per lease — the work-stealing granularity");
    cli.addInt("lease-timeout-ms", 10000,
               "serve: re-lease a slice whose worker has not "
               "heartbeat for this long");
    cli.addString("connect", "",
                  "worker: coordinator address as host:port");
    cli.addString("worker-name", "",
                  "worker: display name in coordinator logs "
                  "(default pid<pid>)");
    cli.addInt("heartbeat-ms", 1000,
               "worker: lease-heartbeat cadence while a sweep runs");
    cli.addInt("backoff-ms", 200,
               "worker: initial reconnect backoff (doubles per "
               "failed attempt)");
    cli.addInt("max-reconnects", 5,
               "worker: consecutive failed connection attempts "
               "before exiting with a run-failure status");
    cli.addInt("abandon-after", 0,
               "worker: test hook — exit without acking upon "
               "receiving the Nth lease (0 = never)");
    addCacheFlags(cli);
    cli.addBool("csv", false, "emit CSV tables instead of boxed ones");
    cli.addString("json", "",
                  "write each rendered table to this path as JSON "
                  "Lines (rewritten per run)");
    cli.addString("out", "",
                  "write result rows of every sweep to this path "
                  "(.json array, .csv, or .jsonl by suffix; for the "
                  "perf subcommand, the BENCH_perf.json path)");
    cli.addString("trace", "",
                  "record per-stage spans and write a Chrome "
                  "trace-event JSON file here (open in Perfetto; "
                  "result rows stay byte-identical)");
    cli.addBool("stats", false,
                "print the unified metrics registry (sweep, pool, and "
                "cache counters) as one JSON line on stdout after "
                "each experiment");
    cli.addBool("timings", false,
                "add per-job elapsed_ms to --out result rows "
                "(machine-dependent, so off by default to keep "
                "baseline documents byte-identical)");
    cli.addBool("compare", false,
                "perf subcommand: compare two BENCH_perf.json "
                "documents (perf --compare old.json new.json)");
    cli.addBool("gate", false,
                "perf --compare: exit nonzero when any experiment "
                "present in both documents regresses jobs_per_sec by "
                "more than 10%");
    cli.addBool("kernels", false,
                "perf subcommand: micro-benchmark the SIMD kernel "
                "table (active dispatch backend) and add the schema-v2 "
                "\"kernels\" section to the artifact; alone — no "
                "experiment names — only the kernels run");
    const auto positional = cli.parse(argc, argv);

    if (positional.empty())
        fatal("missing subcommand (list | networks | describe | run | "
              "merge | serve | worker | perf)\n",
              cli.usage());
    const std::string &command = positional.front();
    std::vector<std::string> names(positional.begin() + 1,
                                   positional.end());

    if (command == "list") {
        if (!names.empty())
            fatal("list takes no arguments");
        experimentListTable().print(std::cout);
        return 0;
    }

    if (command == "networks") {
        if (!names.empty())
            fatal("networks takes no arguments");
        networkListTable().print(std::cout);
        return 0;
    }

    if (command == "describe") {
        if (names.empty())
            fatal("describe needs at least one experiment or network "
                  "name");
        for (const auto &name : names) {
            const Experiment *exp = findExperiment(name);
            if (exp != nullptr) {
                std::cout << describeExperiment(*exp);
                continue;
            }
            // Fall back to the benchmark networks: describe a DAG.
            NetworkSpec net;
            if (findNetwork(name, net)) {
                std::cout << describeDag(net);
                continue;
            }
            std::cout.flush();
            auto candidates = registryNames();
            for (const auto &net_name : networkNames())
                candidates.push_back(net_name);
            fatal("unknown experiment or network '", name,
                  "'; did you mean '", nearestName(name, candidates),
                  "'? (see griffin_bench list / networks)");
        }
        return 0;
    }

    if (command == "merge") {
        if (names.empty())
            fatal("merge needs at least one shard .jsonl document");
        const auto rows = readShardRows(names);
        const auto merged =
            mergeShardRows(rows, cli.getString("grid"));

        TableEmitter emitter;
        emitter.csv = cli.getBool("csv");
        emitter.jsonPath = cli.getString("json");
        std::unique_ptr<ResultSink> sink;
        if (!cli.getString("out").empty())
            sink = std::make_unique<ResultSink>(cli.getString("out"));

        for (const auto &me : merged) {
            ExperimentContext ctx;
            ctx.run = me.run;
            ctx.spec = &me.spec;
            ctx.sweep = &me.sweep;
            for (const auto &table : me.experiment->render(ctx))
                emitter.show(table);
            if (sink)
                for (auto &row :
                     sweepRows(me.sweep, me.experiment->name))
                    sink->add(std::move(row));
        }
        if (sink) {
            sink->flush();
            inform("wrote ", sink->rows().size(),
                   " merged result rows to ", cli.getString("out"));
        }
        inform("merged ", rows.size(), " rows from ", names.size(),
               " shard document(s) across ", merged.size(),
               " experiment(s); coverage complete");
        return 0;
    }

    if (command == "serve") {
        if (cli.getBool("all")) {
            if (!names.empty())
                fatal("serve --all takes no experiment names");
            names = registryNames();
        }
        if (names.empty())
            fatal("serve needs experiment names or --all");

        std::vector<FleetServeSpec> specs;
        for (const auto &name : names) {
            const Experiment &exp = experimentOrDie(name);
            if (!exp.setup)
                fatal("experiment '", name,
                      "' is render-only; a fleet run has nothing to "
                      "lease");
            FleetServeSpec spec;
            spec.experiment = &exp;
            spec.run = resolveFidelity(cli, exp.defaultSample,
                                       exp.defaultRowCap);
            specs.push_back(spec);
        }

        CoordinatorConfig config;
        const auto port = cli.getInt("port");
        if (port < 0 || port > 65535)
            fatal("--port ", port, " is outside 0..65535");
        config.port = static_cast<std::uint16_t>(port);
        config.portFile = cli.getString("port-file");
        config.gridOverride = cli.getString("grid");
        const auto lease_jobs = cli.getInt("lease-jobs");
        if (lease_jobs <= 0)
            fatal("--lease-jobs must be positive, got ", lease_jobs);
        config.leaseJobs = static_cast<std::size_t>(lease_jobs);
        const auto lease_timeout = cli.getInt("lease-timeout-ms");
        if (lease_timeout <= 0)
            fatal("--lease-timeout-ms must be positive, got ",
                  lease_timeout);
        config.leaseTimeoutMs = static_cast<int>(lease_timeout);

        const FleetOutcome outcome = serveFleet(specs, config);

        TableEmitter emitter;
        emitter.csv = cli.getBool("csv");
        emitter.jsonPath = cli.getString("json");
        std::unique_ptr<ResultSink> sink;
        if (!cli.getString("out").empty())
            sink = std::make_unique<ResultSink>(cli.getString("out"));

        // Identical rendering/sink path to an unsharded `run`: the
        // coordinator reassembled each sweep positionally from
        // validated rows, so tables and --out bytes match it.
        for (const auto &eo : outcome.experiments) {
            ExperimentContext ctx;
            ctx.run = eo.run;
            ctx.spec = &eo.spec;
            ctx.sweep = &eo.sweep;
            for (const auto &table : eo.experiment->render(ctx))
                emitter.show(table);
            if (sink)
                sink->add(eo.sweep, eo.experiment->name);
        }
        if (cli.getBool("stats"))
            writeMetricsJsonLine(std::cout,
                                 MetricsRegistry::instance());
        if (sink) {
            sink->flush();
            inform("wrote ", sink->rows().size(),
                   " result rows to ", cli.getString("out"));
        }
        return 0;
    }

    if (command == "worker") {
        if (!names.empty())
            fatal("worker takes no positional arguments");
        const std::string connect = cli.getString("connect");
        if (connect.empty())
            fatal("worker needs --connect host:port (serve prints "
                  "its port, or use --port-file)");
        WorkerConfig config;
        if (!parseHostPort(connect, config.host, config.port))
            fatal("malformed --connect '", connect,
                  "'; expected host:port");
        config.name = cli.getString("worker-name");
        config.threads = static_cast<int>(cli.getInt("threads"));
        config.layerShard = cli.getBool("layer-shard");
        config.batchArchs = cli.getBool("batch-archs");
        const auto heartbeat = cli.getInt("heartbeat-ms");
        if (heartbeat <= 0)
            fatal("--heartbeat-ms must be positive, got ", heartbeat);
        config.heartbeatMs = static_cast<int>(heartbeat);
        const auto backoff = cli.getInt("backoff-ms");
        if (backoff <= 0)
            fatal("--backoff-ms must be positive, got ", backoff);
        config.backoffMs = static_cast<int>(backoff);
        const auto reconnects = cli.getInt("max-reconnects");
        if (reconnects < 0)
            fatal("--max-reconnects must be non-negative, got ",
                  reconnects);
        config.maxReconnects = static_cast<int>(reconnects);
        const auto abandon = cli.getInt("abandon-after");
        if (abandon < 0)
            fatal("--abandon-after must be non-negative, got ",
                  abandon);
        config.abandonAfter = static_cast<std::size_t>(abandon);

        ScheduleCache cache;
        WorksetCache worksets;
        loadCachesFromFlags(cli, cache, worksets);
        config.cache = &cache;
        config.worksetCache = &worksets;

        const int status = runWorker(config);
        saveCachesFromFlags(cli, cache, worksets);
        return status;
    }

    if (command == "perf") {
        if (cli.getBool("compare")) {
            if (names.size() != 2)
                fatal("perf --compare needs exactly two "
                      "BENCH_perf.json paths, got ", names.size());
            const PerfDocument old_doc = loadPerfDocument(names[0]);
            const PerfDocument new_doc = loadPerfDocument(names[1]);
            TableEmitter emitter;
            emitter.csv = cli.getBool("csv");
            emitter.jsonPath = cli.getString("json");
            for (const auto &table :
                 renderPerfCompare(old_doc, new_doc))
                emitter.show(table);
            if (cli.getBool("gate")) {
                const auto violations =
                    perfGateViolations(old_doc, new_doc, 0.10);
                for (const auto &v : violations)
                    std::cerr << "perf gate: " << v << "\n";
                if (!violations.empty()) {
                    std::cerr << "perf gate: " << violations.size()
                              << " experiment(s) regressed beyond "
                                 "the 10% band\n";
                    return 1;
                }
                inform("perf gate: no experiment regressed beyond "
                       "the 10% band");
            }
            return 0;
        }
        return runPerfSuite(cli, names);
    }

    if (command != "run")
        fatal("unknown subcommand '", command, "'; did you mean '",
              nearestName(command,
                          {"list", "networks", "describe", "run",
                           "merge", "serve", "worker", "perf"}),
              "'? (list | networks | describe | run | merge | serve "
              "| worker | perf)\n",
              cli.usage());

    if (cli.getBool("all")) {
        if (!names.empty())
            fatal("run --all takes no experiment names");
        names = registryNames();
    }
    if (names.empty())
        fatal("run needs experiment names or --all");
    // Resolve every name up front so a typo fails before hours of
    // sweeping, not after.
    for (const auto &name : names)
        experimentOrDie(name);

    ExperimentRunConfig config;
    config.threads = static_cast<int>(cli.getInt("threads"));
    config.layerShard = cli.getBool("layer-shard");
    config.batchArchs = cli.getBool("batch-archs");
    config.collectTimings = cli.getBool("timings");
    config.gridOverride = cli.getString("grid");

    // --trace turns span recording on for the whole run; the spans
    // observe the pipeline without touching any result byte, so --out
    // documents are identical with and without it (pinned by the
    // telemetry_smoke ctest).
    const std::string trace_path = cli.getString("trace");
    if (!trace_path.empty())
        Telemetry::setMode(Telemetry::Mode::Full);
    parseShardSpec(cli.getString("grid-shard"), config.shardIndex,
                   config.shardCount);
    // A shard renders no tables (it holds one slice of each grid), so
    // without a row sink the whole sweep would be computed and thrown
    // away — fail before the work, not after.
    if (config.shardCount > 1 && cli.getString("out").empty())
        fatal("--grid-shard emits result rows only; pass --out <path> "
              "(.jsonl, so shard files concatenate to the unsharded "
              "document)");

    ScheduleCache cache;
    WorksetCache worksets;
    loadCachesFromFlags(cli, cache, worksets);
    config.cache = &cache;
    config.worksetCache = &worksets;

    TableEmitter emitter;
    emitter.csv = cli.getBool("csv");
    emitter.jsonPath = cli.getString("json");

    std::unique_ptr<ResultSink> sink;
    if (!cli.getString("out").empty())
        sink = std::make_unique<ResultSink>(cli.getString("out"));

    for (const auto &name : names) {
        const Experiment &exp = experimentOrDie(name);
        config.run = resolveFidelity(cli, exp.defaultSample,
                                     exp.defaultRowCap);
        const auto outcome = runExperiment(exp, config);
        for (const auto &table : outcome.tables)
            emitter.show(table);
        if (outcome.hasSweep && sink)
            sink->add(outcome.sweep, exp.name);
        // The registry line carries the sweep/pool/cache counters the
        // sweep just published — the machine-readable form of stats
        // that merge and the table renderers drop.
        if (outcome.hasSweep && cli.getBool("stats"))
            writeMetricsJsonLine(std::cout,
                                 MetricsRegistry::instance());
    }

    if (!trace_path.empty()) {
        std::ofstream os(trace_path);
        if (!os)
            fatal("cannot open --trace path '", trace_path, "'");
        Telemetry::writeChromeTrace(os);
        if (!os)
            fatal("write to --trace path '", trace_path, "' failed");
        inform("wrote ", Telemetry::eventCount(), " trace events to ",
               trace_path);
    }

    // Flush the results document before the cache save: a fatal() on
    // an unwritable cache path must not discard completed sweeps.
    if (sink) {
        sink->flush();
        inform("wrote ", sink->rows().size(), " result rows to ",
               cli.getString("out"));
    }

    // Machine-readable cache counters land on stdout: CI and the
    // cache ctests assert warm runs report load_hits > 0.
    saveCachesFromFlags(cli, cache, worksets);
    return 0;
}
