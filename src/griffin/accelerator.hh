/**
 * @file
 * The library's top-level API: run a benchmark network on an
 * architecture and get latency, speedup, and effective efficiency.
 *
 * This is the layer a downstream user touches:
 *
 *   Accelerator acc(griffinArch());
 *   auto result = acc.run(resNet50(), DnnCategory::AB);
 *   std::cout << result.speedup << " x, "
 *             << result.topsPerWatt << " TOPS/W\n";
 *
 * Per layer, synthetic operand tensors are generated at the network's
 * published sparsity ratios (weights with the lane-biased structure of
 * real pruned models, activations with ReLU-like zero runs), the GEMM
 * is simulated cycle-level on the architecture (vector core or
 * SparTen-style MAC grid), and DRAM streaming is overlapped per layer.
 * Large layers are simulated on a statistically-equivalent row slice
 * and scaled (DESIGN.md Section 6).
 */

#ifndef GRIFFIN_GRIFFIN_ACCELERATOR_HH
#define GRIFFIN_GRIFFIN_ACCELERATOR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "arch/arch_config.hh"
#include "sched/dag_schedule.hh"
#include "sim/gemm_sim.hh"
#include "tensor/workset.hh"
#include "workloads/network.hh"

namespace griffin {

class WorksetCache; // runtime/workset_cache.hh

/** Knobs for an end-to-end network run. */
struct RunOptions
{
    SimOptions sim{};          ///< tile sampling etc.
    std::int64_t rowCap = 256; ///< max A rows simulated per layer
    std::uint64_t seed = 1;    ///< tensor-generation seed
    /** Lane-imbalance depth of synthetic weight masks (see
     *  tensor/sparsity.hh: laneBiasedSparse). */
    double weightLaneBias = 0.5;
    /** Mean zero-run length of synthetic activation maps.  Mild by
     *  default: im2col interleaves channels into k, which breaks up
     *  the spatial clustering of ReLU zeros. */
    double actRunLength = 2.0;

    /**
     * When true, a layer's latency is max(compute, DRAM streaming).
     * The paper dimensions DRAM so it never throttles ("50GB/s ...
     * enough to avoid any performance drop", Section V), so the
     * default only *reports* DRAM time; enable this to study
     * memory-bound regimes (uncompressed weights can dominate
     * fully-connected layers).
     */
    bool enforceDramBound = false;

    /**
     * Layer execution order over the network DAG
     * (sched/dag_schedule.hh).  Declaration order is the historical
     * behaviour; the optimized policies reorder execution to minimise
     * peak on-chip buffer bytes.  Per-layer cycle results are
     * schedule-independent (each layer's seed depends only on its node
     * index), so the policy affects only the schedule-derived fields
     * of NetworkResult.
     */
    SchedulePolicy schedulePolicy = SchedulePolicy::Declaration;

    /**
     * On-chip buffer budget in bytes for the spill model.  When
     * positive, every schedule step whose live bytes exceed the budget
     * pays DRAM round-trip cycles for the excess
     * (2 * excess / dramBytesPerCycle), added to the network total.
     * Zero (the default) disables spill accounting entirely.
     */
    std::int64_t sramBudgetBytes = 0;

    /**
     * Optional shared memoization of layer operand generation (not
     * owned).  Cached and freshly-generated worksets are bit-identical
     * — this only skips regenerating tensors another job with the same
     * generation parameters already produced (the arch axis of a sweep
     * grid).  nullptr generates every workset locally.
     */
    WorksetCache *worksetCache = nullptr;
};

/** Per-layer outcome (cycles are whole-layer, scaled). */
// griffin-lint: serialized (JSONL result rows)
struct LayerResult
{
    std::string name;
    std::int64_t denseCycles = 0;
    std::int64_t computeCycles = 0;
    std::int64_t dramCycles = 0;
    std::int64_t totalCycles = 0;
    std::int64_t macs = 0;
    double speedup = 1.0;
};

/** Whole-network outcome. */
// griffin-lint: serialized (JSONL result rows)
struct NetworkResult
{
    std::string network;
    std::string arch;
    DnnCategory category = DnnCategory::Dense;
    std::int64_t denseCycles = 0;
    std::int64_t totalCycles = 0;
    double speedup = 1.0;
    double topsPerWatt = 0.0;  ///< effective, Definition V.1
    double topsPerMm2 = 0.0;   ///< effective, Definition V.1
    std::vector<LayerResult> layers;

    /**
     * Schedule-derived fields, populated only when the run used a
     * non-declaration policy or a positive SRAM budget (scheduleLabel
     * empty otherwise, and none of them serialized — the opt-in keeps
     * default-run artifacts byte-identical).
     */
    std::string scheduleLabel;
    std::int64_t peakSramBytes = 0;  ///< peak live buffer bytes
    std::int64_t spillCycles = 0;    ///< DRAM round-trips over budget
    std::int64_t recomputeCycles = 0; ///< re-executed cheap layers
};

/**
 * An architecture instance ready to run workloads.
 */
class Accelerator
{
  public:
    explicit Accelerator(ArchConfig config);

    const ArchConfig &config() const { return config_; }

    /** Run one network in a workload category. */
    NetworkResult run(const NetworkSpec &net, DnnCategory cat,
                      const RunOptions &opt = {}) const;

    /**
     * Simulate one layer of a network.  Every layer's randomness is
     * derived as mixSeed(mixSeed(opt.seed, net.name), layerIndex) —
     * independent of which layers ran before it — so a network result
     * assembled from per-layer calls in *any* order (or from any
     * thread) is bit-identical to run().  This is the entry point the
     * runtime/ layer-sharded sweeps fan out over.
     */
    LayerResult runLayer(const NetworkSpec &net, std::size_t layerIndex,
                         DnnCategory cat,
                         const RunOptions &opt = {}) const;

    /**
     * Stage-1 parameters of one layer's simulation: the complete input
     * domain of operand generation — the row-capped slice height, the
     * category-resolved sparsity rates, the generation knobs, and the
     * layer stream seed.  Equal records generate bit-identical
     * worksets; the workset cache keys on exactly this.
     */
    WorksetParams layerWorksetParams(const NetworkSpec &net,
                                     std::size_t layerIndex,
                                     DnnCategory cat,
                                     const RunOptions &opt = {}) const;

    /**
     * Stages 2–3 over a prepared workset: simulate the layer's GEMM on
     * this architecture and scale the row slice back to the whole
     * layer.  `workset` must have been generated from
     * layerWorksetParams(net, layerIndex, cat, opt) — runLayer() is
     * exactly this composition with stage 1 (cache or generate)
     * in front.
     */
    LayerResult runLayer(const NetworkSpec &net, std::size_t layerIndex,
                         DnnCategory cat, const RunOptions &opt,
                         const LayerWorkset &workset) const;

    /**
     * Deterministic reduce step: assemble per-layer outcomes (in node
     * order, one per net node) into the NetworkResult run() would have
     * produced.  run(net, cat, opt) is exactly
     * reduceLayers(net, cat, {runLayer(net, 0..L-1, cat, opt)}, opt).
     * The two-argument overload reduces under default RunOptions
     * (declaration schedule, no budget).
     */
    NetworkResult reduceLayers(const NetworkSpec &net, DnnCategory cat,
                               std::vector<LayerResult> layers) const;

    /**
     * Schedule-aware reduce: additionally prices the layer-execution
     * schedule opt.schedulePolicy selects (peak live bytes, spill
     * cycles against opt.sramBudgetBytes, recompute cycles) and folds
     * the overhead cycles into the network totals.  A declaration
     * policy with no budget reduces exactly like the legacy overload.
     */
    NetworkResult reduceLayers(const NetworkSpec &net, DnnCategory cat,
                               std::vector<LayerResult> layers,
                               const RunOptions &opt) const;

    /**
     * Run the whole benchmark suite in one category and also return
     * the geometric-mean speedup (the paper's aggregate, Section V).
     */
    std::vector<NetworkResult> runSuite(DnnCategory cat,
                                        const RunOptions &opt = {}) const;

    /**
     * Run an explicit network list in one category.  run() is const
     * and keeps no per-call state, so concurrent calls on one
     * Accelerator are safe (the runtime/ subsystem relies on this).
     */
    std::vector<NetworkResult>
    runSuite(const std::vector<NetworkSpec> &nets, DnnCategory cat,
             const RunOptions &opt = {}) const;

  private:
    ArchConfig config_;
};

/** Geometric-mean speedup of a set of results. */
double geomeanSpeedup(const std::vector<NetworkResult> &results);

} // namespace griffin

#endif // GRIFFIN_GRIFFIN_ACCELERATOR_HH
