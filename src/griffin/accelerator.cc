#include "griffin/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "arch/overhead.hh"
#include "baselines/sparten.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "power/cost_model.hh"
#include "runtime/telemetry.hh"
#include "runtime/workset_cache.hh"

namespace griffin {

Accelerator::Accelerator(ArchConfig config) : config_(std::move(config))
{
    config_.validate();
}

namespace {

/** Round up to a multiple of the row-tile height. */
std::int64_t
roundUpTo(std::int64_t v, int quantum)
{
    return (v + quantum - 1) / quantum * quantum;
}

/** Whole-layer DRAM bytes (all groups and repeats). */
std::int64_t
layerDramBytes(const LayerSpec &layer, const RoutingConfig &routing,
               const TileShape &shape, double wsp, bool mac_grid)
{
    const auto per_group_a = layer.m * layer.k;
    const auto per_group_c = layer.m * layer.n;
    std::int64_t per_group_b = layer.k * layer.n;
    const auto nnz_b = static_cast<std::int64_t>(
        std::llround((1.0 - wsp) * static_cast<double>(per_group_b)));
    if (mac_grid) {
        if (routing.sparseB())
            per_group_b = nnz_b + (per_group_b + 7) / 8;
    } else if (routing.preprocessB) {
        const auto hw = computeOverhead(routing, shape);
        per_group_b = nnz_b + (nnz_b * hw.metadataBits + 7) / 8;
    }
    return (per_group_a + per_group_b + per_group_c) * layer.groups *
           layer.repeat;
}

} // namespace

WorksetParams
Accelerator::layerWorksetParams(const NetworkSpec &net,
                                std::size_t layerIndex, DnnCategory cat,
                                const RunOptions &opt) const
{
    net.validate();
    if (opt.rowCap <= 0)
        fatal("rowCap must be positive, got ", opt.rowCap);
    if (layerIndex >= net.layerCount())
        fatal("layer index ", layerIndex, " out of range for ", net.name,
              " (", net.layerCount(), " layers)");

    const LayerSpec &layer = net.layer(layerIndex);

    WorksetParams params;
    // Simulate a statistically-equivalent row slice of one group.
    params.m = std::min(layer.m, roundUpTo(std::min(layer.m, opt.rowCap),
                                           config_.tile.m0));
    params.k = layer.k;
    params.n = layer.n;
    params.weightSparsity = net.layerWeightSparsity(layer, cat);
    params.actSparsity = net.layerActSparsity(layer, cat);
    params.weightLaneBias = opt.weightLaneBias;
    params.actRunLength = std::max(1.0, opt.actRunLength);
    // The layer stream is derived from (seed, network name, layer
    // index) alone — mixSeed, not std::hash, so it is order-independent
    // (any layer can be simulated without simulating its predecessors)
    // and stable across platforms.
    params.seed =
        Rng::mixSeed(Rng::mixSeed(opt.seed, net.name), layerIndex);
    return params;
}

LayerResult
Accelerator::runLayer(const NetworkSpec &net, std::size_t layerIndex,
                      DnnCategory cat, const RunOptions &opt) const
{
    // Stage 1: obtain the layer workset (shared cache when the run
    // provides one, local generation otherwise — bit-identical either
    // way), then hand off to the staged simulation.
    const auto params = layerWorksetParams(net, layerIndex, cat, opt);
    const auto workset = obtainWorkset(opt.worksetCache, params);
    return runLayer(net, layerIndex, cat, opt, *workset);
}

LayerResult
Accelerator::runLayer(const NetworkSpec &net, std::size_t layerIndex,
                      DnnCategory cat, const RunOptions &opt,
                      const LayerWorkset &workset) const
{
    net.validate();
    if (layerIndex >= net.layerCount())
        fatal("layer index ", layerIndex, " out of range for ", net.name,
              " (", net.layerCount(), " layers)");

    const LayerSpec &layer = net.layer(layerIndex);
    const TileShape &shape = config_.tile;
    const double wsp = net.layerWeightSparsity(layer, cat);

    const auto m_sim = static_cast<std::int64_t>(workset.a.rows());
    const auto row_tiles_full = (layer.m + shape.m0 - 1) / shape.m0;
    const auto row_tiles_sim = (m_sim + shape.m0 - 1) / shape.m0;
    const double row_scale = static_cast<double>(row_tiles_full) /
                             static_cast<double>(row_tiles_sim);

    // Stages 2–3: tiling, per-side schedules, and cycle simulation of
    // the row slice on this architecture.
    SimOptions sim_opt = opt.sim;
    sim_opt.seed = workset.simSeed;
    const bool mac_grid = config_.style == DatapathStyle::MacGrid;
    const auto sim =
        mac_grid ? simulateSparTen(workset.a, workset.b, config_, cat,
                                   sim_opt)
                 : simulateGemm(gemmOperands(workset), config_, cat,
                                sim_opt);

    LayerResult lr;
    lr.name = layer.name;
    lr.macs = layer.macs();
    lr.denseCycles = layer.denseCycles(shape);
    lr.computeCycles = static_cast<std::int64_t>(std::llround(
        static_cast<double>(sim.computeCycles) * row_scale *
        static_cast<double>(layer.groups) *
        static_cast<double>(layer.repeat)));
    const auto dram_bytes = layerDramBytes(
        layer, config_.effectiveRouting(cat), shape, wsp, mac_grid);
    lr.dramCycles = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(dram_bytes) /
                  config_.mem.dramBytesPerCycle()));
    lr.totalCycles = opt.enforceDramBound
                         ? std::max(lr.computeCycles, lr.dramCycles)
                         : lr.computeCycles;
    lr.speedup = lr.totalCycles > 0
                     ? static_cast<double>(lr.denseCycles) /
                           static_cast<double>(lr.totalCycles)
                     : 1.0;
    return lr;
}

NetworkResult
Accelerator::reduceLayers(const NetworkSpec &net, DnnCategory cat,
                          std::vector<LayerResult> layers) const
{
    return reduceLayers(net, cat, std::move(layers), RunOptions{});
}

NetworkResult
Accelerator::reduceLayers(const NetworkSpec &net, DnnCategory cat,
                          std::vector<LayerResult> layers,
                          const RunOptions &opt) const
{
    if (layers.size() != net.layerCount())
        fatal("reduceLayers got ", layers.size(), " layer results for ",
              net.name, " (", net.layerCount(), " layers)");

    ScopedSpan span("reduce");
    NetworkResult result;
    result.network = net.name;
    result.arch = config_.name;
    result.category = cat;
    for (const auto &lr : layers) {
        result.denseCycles += lr.denseCycles;
        result.totalCycles += lr.totalCycles;
    }
    result.layers = std::move(layers);

    // Schedule-derived accounting is opt-in: the default (declaration
    // policy, no budget) takes the legacy path exactly, leaving
    // scheduleLabel empty so result serialization is byte-identical.
    const bool scheduled =
        opt.schedulePolicy != SchedulePolicy::Declaration ||
        opt.sramBudgetBytes > 0;
    if (scheduled) {
        ScopedSpan schedule_span("schedule");
        const DagSchedule schedule =
            scheduleFor(net, opt.schedulePolicy);
        result.scheduleLabel = schedule.label;
        result.peakSramBytes = schedule.peakBytes;
        for (std::size_t p = 0; p < schedule.entries.size(); ++p) {
            const ScheduleEntry &entry = schedule.entries[p];
            if (entry.recompute)
                result.recomputeCycles +=
                    result.layers[entry.node].totalCycles;
            if (opt.sramBudgetBytes > 0) {
                const std::int64_t over =
                    schedule.entryLiveBytes[p] - opt.sramBudgetBytes;
                if (over > 0) {
                    // Round trip: spilled bytes go out and come back.
                    result.spillCycles += static_cast<std::int64_t>(
                        std::ceil(2.0 * static_cast<double>(over) /
                                  config_.mem.dramBytesPerCycle()));
                }
            }
        }
        result.totalCycles +=
            result.recomputeCycles + result.spillCycles;
    }

    result.speedup = result.totalCycles > 0
                         ? static_cast<double>(result.denseCycles) /
                               static_cast<double>(result.totalCycles)
                         : 1.0;
    result.topsPerWatt =
        effectiveTopsPerWatt(config_, cat, result.speedup);
    result.topsPerMm2 =
        effectiveTopsPerMm2(config_, cat, result.speedup);
    return result;
}

NetworkResult
Accelerator::run(const NetworkSpec &net, DnnCategory cat,
                 const RunOptions &opt) const
{
    // Validate here too: a zero-layer network never reaches runLayer's
    // own check (the loop body never runs).
    net.validate();
    std::vector<LayerResult> layers;
    layers.reserve(net.layerCount());
    for (std::size_t l = 0; l < net.layerCount(); ++l)
        layers.push_back(runLayer(net, l, cat, opt));
    return reduceLayers(net, cat, std::move(layers), opt);
}

std::vector<NetworkResult>
Accelerator::runSuite(DnnCategory cat, const RunOptions &opt) const
{
    return runSuite(benchmarkSuite(), cat, opt);
}

std::vector<NetworkResult>
Accelerator::runSuite(const std::vector<NetworkSpec> &nets,
                      DnnCategory cat, const RunOptions &opt) const
{
    std::vector<NetworkResult> results;
    results.reserve(nets.size());
    for (const auto &net : nets)
        results.push_back(run(net, cat, opt));
    return results;
}

double
geomeanSpeedup(const std::vector<NetworkResult> &results)
{
    if (results.empty()) {
        warn("geomeanSpeedup over no results; returning 1.0");
        return 1.0;
    }
    std::vector<double> speedups;
    speedups.reserve(results.size());
    for (const auto &r : results) {
        // A degenerate run (all-zero cycles) can report a non-positive
        // speedup; the geometric mean is undefined over those, so skip
        // them rather than poisoning the aggregate.
        if (r.speedup <= 0.0) {
            warn("geomeanSpeedup skipping non-positive speedup ",
                 r.speedup, " of ", r.network, " on ", r.arch);
            continue;
        }
        speedups.push_back(r.speedup);
    }
    if (speedups.empty())
        return 1.0;
    return geomean(speedups);
}

} // namespace griffin
