#include "arch/presets.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace griffin {

namespace {

ArchConfig
base(const char *name)
{
    ArchConfig cfg;
    cfg.name = name;
    return cfg;
}

} // namespace

ArchConfig
denseBaseline()
{
    auto cfg = base("Baseline");
    cfg.routing = RoutingConfig::dense();
    return cfg;
}

ArchConfig
sparseBStar()
{
    auto cfg = base("Sparse.B*");
    cfg.routing = RoutingConfig::sparseB(4, 0, 1, true);
    return cfg;
}

ArchConfig
sparseAStar()
{
    auto cfg = base("Sparse.A*");
    cfg.routing = RoutingConfig::sparseA(2, 1, 0, true);
    return cfg;
}

ArchConfig
sparseABStar()
{
    auto cfg = base("Sparse.AB*");
    cfg.routing = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    return cfg;
}

ArchConfig
griffinArch()
{
    auto cfg = base("Griffin");
    cfg.routing = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    cfg.hybrid = true;
    return cfg;
}

ArchConfig
tclB()
{
    // BitTactical's lookahead/lookaside weight scheduler, expressed in
    // the routing framework: time + lane borrowing, no cross-PE
    // routing (db3 = 0) and no shuffler — exactly the two features the
    // paper credits Sparse.B* 47% power efficiency over TCL.B for.
    auto cfg = base("TCL.B");
    cfg.routing = RoutingConfig::sparseB(2, 2, 0, false);
    return cfg;
}

ArchConfig
tdashAB()
{
    // TensorDash matches both operands at runtime: symmetric windows,
    // no preprocessing, no shuffle.  Raw-stream co-residency limits
    // its effective lookahead (DESIGN.md Section 3).
    auto cfg = base("TDash.AB");
    cfg.routing =
        RoutingConfig::sparseAB(3, 1, 0, 3, 1, 0, false,
                                /*preprocess_b=*/false);
    return cfg;
}

namespace {

ArchConfig
sparTenCommon(const char *name, SparsityMode mode)
{
    // SparTen has no K unrolling: 1024 independent MACs, each matching
    // compressed operand pairs through prefix-sum logic backed by
    // 128-deep input buffers (paper Section VI-E).  Cycle behaviour
    // comes from the dedicated simulator in src/baselines.
    auto cfg = base(name);
    cfg.style = DatapathStyle::MacGrid;
    cfg.macBufferDepth = 128;
    RoutingConfig routing;
    routing.mode = mode;
    // Borrowing in time only, bounded by the deep per-MAC buffers.
    const Borrow deep{127, 0, 0};
    if (mode == SparsityMode::A || mode == SparsityMode::AB)
        routing.a = deep;
    if (mode == SparsityMode::B || mode == SparsityMode::AB)
        routing.b = deep;
    routing.preprocessB = false;
    // MacGrid routing is interpreted by the SparTen simulator, not the
    // window scheduler; keep the config self-consistent regardless.
    if (mode == SparsityMode::B)
        routing.preprocessB = true;
    cfg.routing = routing;
    return cfg;
}

} // namespace

ArchConfig
sparTenAB()
{
    return sparTenCommon("SparTen.AB", SparsityMode::AB);
}

ArchConfig
sparTenA()
{
    return sparTenCommon("SparTen.A", SparsityMode::A);
}

ArchConfig
sparTenB()
{
    return sparTenCommon("SparTen.B", SparsityMode::B);
}

ArchConfig
cnvlutinA()
{
    // Cnvlutin compresses activations in time only (da1), without
    // shuffling or lane borrowing.
    auto cfg = base("Cnvlutin.A");
    cfg.routing = RoutingConfig::sparseA(7, 0, 0, false);
    return cfg;
}

ArchConfig
cambriconXB()
{
    // Cambricon-X routes nonzero weights within a 16x16 window; the
    // resulting input crossbar is the scaling bottleneck the paper
    // calls out (Section VII).
    auto cfg = base("Cambricon-X.B");
    cfg.routing = RoutingConfig::sparseB(15, 15, 0, false);
    return cfg;
}

std::vector<ArchConfig>
allPresets()
{
    return {denseBaseline(), sparseBStar(), sparseAStar(), sparseABStar(),
            griffinArch(),   tclB(),        tdashAB(),     sparTenAB(),
            sparTenA(),      sparTenB(),    cnvlutinA(),   cambriconXB()};
}

std::vector<ArchConfig>
tableSevenPresets()
{
    return {denseBaseline(), sparseBStar(), tclB(),    sparseAStar(),
            sparseABStar(),  griffinArch(), tdashAB(), sparTenAB()};
}

namespace {

std::string
knownPresetsList()
{
    std::string known;
    for (const auto &cfg : allPresets())
        known += " '" + cfg.name + "'";
    return known;
}

} // namespace

ArchConfig
presetByName(const std::string &name)
{
    for (auto &cfg : allPresets())
        if (cfg.name == name)
            return cfg;
    fatal("unknown architecture preset '", name,
          "'; known:", knownPresetsList());
}

namespace {

int
routingDistance(const std::string &token, const std::string &spec)
{
    const auto t = trim(token);
    std::size_t pos = 0;
    int v = 0;
    bool any = false;
    for (; pos < t.size() && t[pos] >= '0' && t[pos] <= '9'; ++pos) {
        v = v * 10 + (t[pos] - '0');
        any = true;
    }
    if (!any || pos != t.size())
        fatal("bad routing distance '", token, "' in arch spec '", spec,
              "'");
    return v;
}

bool
routingShuffle(const std::string &token, const std::string &spec)
{
    const auto t = trim(token);
    if (t == "on")
        return true;
    if (t == "off")
        return false;
    fatal("bad shuffle flag '", token, "' in arch spec '", spec,
          "' (want on/off)");
}

[[noreturn]] void
unknownArch(const std::string &name)
{
    fatal("unknown architecture '", name,
          "': not a preset and not a routing spec "
          "(Dense | A(d1,d2,d3,on|off) | B(d1,d2,d3,on|off) | "
          "AB(a1,a2,a3,b1,b2,b3,on|off)[otf]); known presets:",
          knownPresetsList());
}

} // namespace

ArchConfig
archByName(const std::string &name)
{
    for (auto &cfg : allPresets())
        if (cfg.name == name)
            return cfg;

    auto cfg = denseBaseline();
    std::string spec = trim(name);
    if (spec == "Dense") {
        cfg.name = "Dense";
        return cfg;
    }

    bool preprocess_b = true;
    if (spec.size() > 5 &&
        spec.compare(spec.size() - 5, 5, "[otf]") == 0) {
        preprocess_b = false;
        spec = spec.substr(0, spec.size() - 5);
    }
    const auto open = spec.find('(');
    if (open == std::string::npos || spec.back() != ')')
        unknownArch(name);
    const auto mode = spec.substr(0, open);
    const auto fields =
        splitList(spec.substr(open + 1, spec.size() - open - 2), ',');
    if (mode == "A" && fields.size() == 4 && preprocess_b) {
        cfg.routing = RoutingConfig::sparseA(
            routingDistance(fields[0], name),
            routingDistance(fields[1], name),
            routingDistance(fields[2], name),
            routingShuffle(fields[3], name));
    } else if (mode == "B" && fields.size() == 4 && preprocess_b) {
        cfg.routing = RoutingConfig::sparseB(
            routingDistance(fields[0], name),
            routingDistance(fields[1], name),
            routingDistance(fields[2], name),
            routingShuffle(fields[3], name));
    } else if (mode == "AB" && fields.size() == 7) {
        cfg.routing = RoutingConfig::sparseAB(
            routingDistance(fields[0], name),
            routingDistance(fields[1], name),
            routingDistance(fields[2], name),
            routingDistance(fields[3], name),
            routingDistance(fields[4], name),
            routingDistance(fields[5], name),
            routingShuffle(fields[6], name), preprocess_b);
    } else {
        unknownArch(name);
    }
    cfg.name = cfg.routing.str();
    return cfg;
}

} // namespace griffin
