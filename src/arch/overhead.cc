#include "arch/overhead.hh"

#include <cmath>

namespace griffin {

namespace {

int
ceilLog2(int n)
{
    GRIFFIN_ASSERT(n >= 1, "ceilLog2 of ", n);
    int bits = 0;
    int capacity = 1;
    while (capacity < n) {
        capacity *= 2;
        ++bits;
    }
    return bits;
}

} // namespace

HardwareOverhead
computeOverhead(const RoutingConfig &cfg, const TileShape &shape)
{
    cfg.validate();
    HardwareOverhead hw;

    const std::int64_t pes =
        static_cast<std::int64_t>(shape.m0) * shape.n0;
    const std::int64_t lanes = shape.k0;

    switch (cfg.mode) {
      case SparsityMode::Dense:
        break;

      case SparsityMode::A: {
        const auto &d = cfg.a;
        hw.abufDepth = 1 + d.d1;
        hw.amuxFanin = 1 + d.d1 * (1 + d.d2) * (1 + d.d3);
        hw.bbufDepth = 1 + d.d1;
        hw.bmuxFanin = 1 + d.d1 * (1 + d.d2);
        hw.adtPerPe = 1 + d.d3;
        // ABUF shared per PE row; its selection muxes are likewise
        // shared per row (Fig. 2 discussion).  Each PE owns a BMUX per
        // lane.  One arbiter per PE row does on-the-fly detection.
        hw.abufWords = std::int64_t{hw.abufDepth} * lanes * shape.m0;
        hw.bbufWords = std::int64_t{hw.bbufDepth} * lanes * shape.n0;
        hw.amuxCount = (hw.amuxFanin > 1) ? lanes * shape.m0 : 0;
        hw.bmuxCount = (hw.bmuxFanin > 1) ? lanes * pes : 0;
        hw.ctrlUnits = shape.m0;
        break;
      }

      case SparsityMode::B: {
        const auto &d = cfg.b;
        hw.abufDepth = 1 + d.d1;
        hw.amuxFanin = 1 + d.d1 * (1 + d.d2);
        // B arrives compressed; no BBUF/BMUX, metadata drives AMUX.
        hw.bbufDepth = 1;
        hw.bmuxFanin = 1;
        hw.adtPerPe = 1 + d.d3;
        hw.abufWords = std::int64_t{hw.abufDepth} * lanes * shape.m0;
        hw.amuxCount = (hw.amuxFanin > 1) ? lanes * pes : 0;
        // Metadata per scheduled element: the borrow offset in time
        // (drives the AMUX window position).  The cross-PE route of
        // single-sparse B is encoded in the owning PE's stream, so it
        // costs no extra bit (matches conf.B's stated 4 bits).
        hw.metadataBits = ceilLog2(1 + d.d1);
        break;
      }

      case SparsityMode::AB: {
        const auto &da = cfg.a;
        const auto &db = cfg.b;
        if (cfg.preprocessB) {
            // Griffin-style: compressed B stream, Section IV-A.
            const int l = (1 + da.d1) * (1 + db.d1);
            hw.abufDepth = l;
            hw.bbufDepth = 1 + da.d1;
            hw.amuxFanin =
                1 + (l - 1) * (1 + da.d2 + db.d2) * (1 + da.d3);
            hw.bmuxFanin = 1 + da.d1 * (1 + da.d2);
            // Offset within the compressed window plus an explicit
            // adder-route bit when borrowing crosses PE columns.
            hw.metadataBits =
                ceilLog2(1 + db.d1) + (db.d3 > 0 ? 1 : 0);
        } else {
            // TensorDash-style: both raw streams resident, matched at
            // runtime — deeper raw BBUF, symmetric wide MUXes, and no
            // metadata savings (this is exactly the cost the paper
            // says weight preprocessing avoids, Section VI-C).
            hw.abufDepth = 1 + da.d1;
            hw.bbufDepth = 1 + db.d1;
            hw.amuxFanin =
                1 + da.d1 * (1 + da.d2 + db.d2) * (1 + da.d3);
            hw.bmuxFanin =
                1 + db.d1 * (1 + da.d2 + db.d2) * (1 + db.d3);
        }
        hw.adtPerPe = (1 + da.d3) * (1 + db.d3);
        hw.abufWords = std::int64_t{hw.abufDepth} * lanes * shape.m0;
        hw.bbufWords = std::int64_t{hw.bbufDepth} * lanes * shape.n0;
        hw.amuxCount = (hw.amuxFanin > 1) ? lanes * pes : 0;
        hw.bmuxCount = (hw.bmuxFanin > 1) ? lanes * pes : 0;
        // Dual sparsity needs a zero-mask/arbitration controller per
        // PE because each PE sees a different (A,B) pairing.
        hw.ctrlUnits = pes;
        break;
      }
    }

    hw.extraAdtCount = std::int64_t{hw.adtPerPe - 1} * pes;
    if (cfg.shuffle) {
        // K0/4 local 4x4 crossbars on the A side (per PE row) and on
        // the B side (per PE column), between SRAM and the buffers.
        hw.shufflerCrossbars =
            (lanes / 4) * (shape.m0 + shape.n0);
    }
    return hw;
}

bool
withinFaninLimits(const RoutingConfig &cfg, const TileShape &shape)
{
    const auto hw = computeOverhead(cfg, shape);
    switch (cfg.mode) {
      case SparsityMode::Dense:
        return true;
      case SparsityMode::A:
        // The paper's exclusion example (Section VI-B observation 4:
        // da1 >= 4 cannot use da2 > 0 because 1 + 4*2 = 9 > 8) counts
        // only the time x lane factor, while its own Table II AMUX
        // value also carries (1+da3) — and A(2,1,1)/A(2,1,2) stay in
        // the explored space.  We follow the exclusion rule: the
        // legality limit applies to 1 + d1*(1+d2); d3 shows up as
        // adder-tree/selection cost instead.
        return 1 + cfg.a.d1 * (1 + cfg.a.d2) <= 8 && hw.bmuxFanin <= 8;
      case SparsityMode::B:
        return hw.amuxFanin <= 8;
      case SparsityMode::AB:
        return hw.amuxFanin <= 16;
    }
    return false;
}

} // namespace griffin
