#include "arch/dse.hh"

#include "arch/overhead.hh"

namespace griffin {

namespace {

std::vector<bool>
shuffleChoices(const DseLimits &lim)
{
    if (lim.sweepShuffle)
        return {false, true};
    return {true};
}

} // namespace

std::vector<RoutingConfig>
enumerateSparseB(const TileShape &shape, const DseLimits &lim)
{
    std::vector<RoutingConfig> out;
    for (int d1 = 2; d1 <= lim.maxD1; ++d1) {
        for (int d2 = 0; d2 <= lim.maxD2; ++d2) {
            for (int d3 = 0; d3 <= lim.maxD3; ++d3) {
                for (bool sh : shuffleChoices(lim)) {
                    auto cfg = RoutingConfig::sparseB(d1, d2, d3, sh);
                    if (withinFaninLimits(cfg, shape))
                        out.push_back(cfg);
                }
            }
        }
    }
    return out;
}

std::vector<RoutingConfig>
enumerateSparseA(const TileShape &shape, const DseLimits &lim)
{
    std::vector<RoutingConfig> out;
    for (int d1 = 1; d1 <= lim.maxD1; ++d1) {
        for (int d2 = 0; d2 <= lim.maxD2; ++d2) {
            for (int d3 = 0; d3 <= lim.maxD3; ++d3) {
                for (bool sh : shuffleChoices(lim)) {
                    auto cfg = RoutingConfig::sparseA(d1, d2, d3, sh);
                    if (withinFaninLimits(cfg, shape))
                        out.push_back(cfg);
                }
            }
        }
    }
    return out;
}

std::vector<RoutingConfig>
enumerateSparseAB(const TileShape &shape, const DseLimits &lim)
{
    std::vector<RoutingConfig> out;
    for (int a1 = 0; a1 <= 2; ++a1) {
        for (int a2 = 0; a2 <= 1; ++a2) {
            for (int b1 = 1; b1 <= lim.maxD1 / 2; ++b1) {
                for (int b2 = 0; b2 <= 1; ++b2) {
                    for (int b3 = 0; b3 <= lim.maxD3; ++b3) {
                        for (bool sh : shuffleChoices(lim)) {
                            auto cfg = RoutingConfig::sparseAB(
                                a1, a2, 0, b1, b2, b3, sh);
                            if (withinFaninLimits(cfg, shape))
                                out.push_back(cfg);
                        }
                    }
                }
            }
        }
    }
    return out;
}

} // namespace griffin
