#include "arch/category.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace griffin {

const char *
toString(DnnCategory cat)
{
    switch (cat) {
      case DnnCategory::Dense:
        return "DNN.dense";
      case DnnCategory::A:
        return "DNN.A";
      case DnnCategory::B:
        return "DNN.B";
      case DnnCategory::AB:
        return "DNN.AB";
    }
    panic("unknown DNN category ", static_cast<int>(cat));
}

DnnCategory
categorize(bool a_sparse, bool b_sparse)
{
    if (a_sparse && b_sparse)
        return DnnCategory::AB;
    if (a_sparse)
        return DnnCategory::A;
    if (b_sparse)
        return DnnCategory::B;
    return DnnCategory::Dense;
}

DnnCategory
categoryFromString(const std::string &s)
{
    std::string lower = s;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (lower == "dense" || lower == "dnn.dense")
        return DnnCategory::Dense;
    if (lower == "a" || lower == "dnn.a")
        return DnnCategory::A;
    if (lower == "b" || lower == "dnn.b")
        return DnnCategory::B;
    if (lower == "ab" || lower == "dnn.ab")
        return DnnCategory::AB;
    fatal("unknown DNN category '", s, "' (want dense|a|b|ab)");
}

bool
hasSparseA(DnnCategory cat)
{
    return cat == DnnCategory::A || cat == DnnCategory::AB;
}

bool
hasSparseB(DnnCategory cat)
{
    return cat == DnnCategory::B || cat == DnnCategory::AB;
}

} // namespace griffin
