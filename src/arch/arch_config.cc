#include "arch/arch_config.hh"

#include <algorithm>

#include "common/logging.hh"

namespace griffin {

RoutingConfig
griffinMorph(DnnCategory cat)
{
    // Paper Fig. 4 / Table VI: the dual-sparse buffers and MUXes of
    // conf.AB are re-purposed into wider single-sparse windows.
    switch (cat) {
      case DnnCategory::Dense:
        return RoutingConfig::dense();
      case DnnCategory::A:
        return RoutingConfig::sparseA(2, 1, 1, true);
      case DnnCategory::B:
        return RoutingConfig::sparseB(8, 0, 1, true);
      case DnnCategory::AB:
        return RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    }
    panic("unknown category ", static_cast<int>(cat));
}

RoutingConfig
ArchConfig::effectiveRouting(DnnCategory cat) const
{
    return hybrid ? griffinMorph(cat) : routing;
}

double
ArchConfig::effectiveBwScale(DnnCategory cat) const
{
    if (bwScale > 0.0)
        return bwScale;
    // Auto: provision SRAM bandwidth to match the window depth so the
    // configuration never throttles (paper Section V).
    const auto w = windowParams(effectiveRouting(cat));
    return std::max(1, w.steps);
}

void
ArchConfig::validate() const
{
    routing.validate();
    if (tile.m0 <= 0 || tile.n0 <= 0 || tile.k0 <= 0)
        fatal("arch '", name, "': non-positive tile geometry");
    if (bwScale < 0.0)
        fatal("arch '", name, "': negative bwScale ", bwScale);
    if (style == DatapathStyle::MacGrid && macBufferDepth <= 0)
        fatal("arch '", name, "': MacGrid needs a positive buffer depth");
    if (mem.freqGHz <= 0.0 || mem.dramGBs <= 0.0)
        fatal("arch '", name, "': non-positive memory parameters");
}

} // namespace griffin
