/**
 * @file
 * DNN model / execution-mode categories (paper Table I).
 *
 * A model is categorised by which of its operand tensors are sparse:
 * activations (A), weights (B), both, or neither.  The optimal
 * architecture differs per category; Griffin morphs across them.
 */

#ifndef GRIFFIN_ARCH_CATEGORY_HH
#define GRIFFIN_ARCH_CATEGORY_HH

#include <array>
#include <string>

namespace griffin {

/** The four (activation, weight) tensor-type combinations. */
enum class DnnCategory
{
    Dense, ///< (dense, dense) — e.g. CNN+Swish, Transformer+GeLU
    A,     ///< (sparse, dense) — e.g. CNN+ReLU
    B,     ///< (dense, sparse) — e.g. pruned Transformer+GeLU
    AB     ///< (sparse, sparse) — e.g. pruned CNN+ReLU
};

inline constexpr std::array<DnnCategory, 4> allCategories{
    DnnCategory::Dense, DnnCategory::A, DnnCategory::B, DnnCategory::AB};

const char *toString(DnnCategory cat);

/** Category from per-tensor sparsity flags. */
DnnCategory categorize(bool a_sparse, bool b_sparse);

/** Parse "dense" / "a" / "b" / "ab" (case-insensitive); fatal() else. */
DnnCategory categoryFromString(const std::string &s);

/** Does the category have a sparse activation (resp. weight) tensor? */
bool hasSparseA(DnnCategory cat);
bool hasSparseB(DnnCategory cat);

} // namespace griffin

#endif // GRIFFIN_ARCH_CATEGORY_HH
