/**
 * @file
 * Design-space enumeration for the paper's Section VI sweeps.
 *
 * The spaces are bounded by the MUX fan-in legality limits of
 * arch/overhead.hh (<= 8 for single sparse, <= 16 for dual) plus the
 * pruning rules the paper states: Fig. 5 drops db1 = 1 ("far from the
 * optimal points"), Fig. 7 drops designs with da3 > 0 (they inflate
 * AMUX fan-in, Section VI-C observation 3) and designs where both da3
 * and db3 are nonzero (>= 4 adder trees per PE, observation 2).
 */

#ifndef GRIFFIN_ARCH_DSE_HH
#define GRIFFIN_ARCH_DSE_HH

#include <vector>

#include "arch/routing.hh"
#include "tensor/tile.hh"

namespace griffin {

/** Knobs for the enumerators; defaults mirror the paper. */
struct DseLimits
{
    int maxD1 = 8;        ///< largest lookahead considered
    int maxD2 = 2;        ///< largest lookaside considered
    int maxD3 = 2;        ///< largest cross-PE distance considered
    bool sweepShuffle = true; ///< emit both shuffle on and off
};

/** Weight-only space (Fig. 5): Sparse.B(d1,d2,d3,on/off), db1 >= 2. */
std::vector<RoutingConfig> enumerateSparseB(const TileShape &shape,
                                            const DseLimits &lim = {});

/** Activation-only space (Fig. 6): Sparse.A(d1,d2,d3,on/off). */
std::vector<RoutingConfig> enumerateSparseA(const TileShape &shape,
                                            const DseLimits &lim = {});

/** Dual space (Fig. 7): da3 = 0, not both d3 nonzero, fan-in <= 16. */
std::vector<RoutingConfig> enumerateSparseAB(const TileShape &shape,
                                             const DseLimits &lim = {});

} // namespace griffin

#endif // GRIFFIN_ARCH_DSE_HH
