/**
 * @file
 * Named architecture presets: the paper's design points (Table VI) and
 * the state-of-the-art comparison architectures (Table V).
 *
 * SOTA designs are expressed inside the same routing framework, which
 * is the paper's contribution 2 ("a model that encapsulates previous
 * work"):
 *
 *   TCL.B (BitTactical)   — weight-only lookahead+lookaside, no
 *                           shuffle, no cross-PE routing (db3 = 0).
 *   TDash.AB (TensorDash) — dual on-the-fly matching, no weight
 *                           preprocessing.
 *   SparTen.{A,B,AB}      — MAC-grid with prefix-sum matching and
 *                           128-deep per-MAC buffers (own simulator).
 *   Cnvlutin.A            — activation-only, time borrowing only.
 *   Cambricon-X.B         — weight-only with a 16x16 routing window
 *                           (violates the fan-in limits; kept to show
 *                           why it does not scale).
 */

#ifndef GRIFFIN_ARCH_PRESETS_HH
#define GRIFFIN_ARCH_PRESETS_HH

#include <vector>

#include "arch/arch_config.hh"

namespace griffin {

/** The optimized dense core every overhead is measured against. */
ArchConfig denseBaseline();

/** Sparse.B* = B(4,0,1,on), the paper's weight-only optimum. */
ArchConfig sparseBStar();

/** Sparse.A* = A(2,1,0,on), the paper's activation-only optimum. */
ArchConfig sparseAStar();

/** Sparse.AB* = AB(2,0,0,2,0,1,on), the paper's dual optimum. */
ArchConfig sparseABStar();

/** Griffin: Sparse.AB* hardware with hybrid morphing enabled. */
ArchConfig griffinArch();

/** BitTactical-style weight-only design. */
ArchConfig tclB();

/** TensorDash-style dual design (no weight preprocessing). */
ArchConfig tdashAB();

/** SparTen dual / single-sided variants (MAC-grid datapath). */
ArchConfig sparTenAB();
ArchConfig sparTenA();
ArchConfig sparTenB();

/** Cnvlutin-style activation-only design. */
ArchConfig cnvlutinA();

/** Cambricon-X-style weight-only design (16x16 window). */
ArchConfig cambriconXB();

/** All presets above, in report order. */
std::vector<ArchConfig> allPresets();

/** The eight architectures of the paper's Table VII, in row order. */
std::vector<ArchConfig> tableSevenPresets();

/** Look up by name ("Griffin", "Sparse.B*", ...); fatal() if absent. */
ArchConfig presetByName(const std::string &name);

/**
 * Preset lookup extended with routing-spec names: "Dense",
 * "B(4,0,1,on)", "A(2,1,0,off)", "AB(2,0,0,2,0,1,on)" (with an
 * optional "[otf]" suffix for on-the-fly dual matching) build
 * denseBaseline() hardware with that routing, named by the canonical
 * RoutingConfig::str() form.  This is what lets a sweep's `arch` axis
 * take arbitrary design points, not just the named presets.  fatal()
 * with the known presets and the spec grammar when neither matches.
 */
ArchConfig archByName(const std::string &name);

} // namespace griffin

#endif // GRIFFIN_ARCH_PRESETS_HH
