#include "arch/routing.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace griffin {

const char *
toString(SparsityMode mode)
{
    switch (mode) {
      case SparsityMode::Dense:
        return "Dense";
      case SparsityMode::A:
        return "Sparse.A";
      case SparsityMode::B:
        return "Sparse.B";
      case SparsityMode::AB:
        return "Sparse.AB";
    }
    panic("unknown sparsity mode ", static_cast<int>(mode));
}

namespace {

void
checkBorrow(const Borrow &d, const char *side)
{
    if (d.d1 < 0 || d.d2 < 0 || d.d3 < 0)
        panic("negative borrowing distance on ", side, " side (",
              d.d1, ",", d.d2, ",", d.d3, ")");
}

} // namespace

void
RoutingConfig::validate() const
{
    checkBorrow(a, "A");
    checkBorrow(b, "B");
    if (!sparseA() && a != Borrow{})
        panic(str(), ": A-side distances set but mode does not skip A");
    if (!sparseB() && b != Borrow{})
        panic(str(), ": B-side distances set but mode does not skip B");
    if (mode == SparsityMode::B && !preprocessB)
        panic(str(), ": Sparse.B requires preprocessing by definition");
    if (preprocessB && !sparseB())
        panic(str(), ": preprocessing set but B is not sparse");
}

std::string
RoutingConfig::str() const
{
    std::ostringstream os;
    const char *onoff = shuffle ? "on" : "off";
    switch (mode) {
      case SparsityMode::Dense:
        os << "Dense";
        break;
      case SparsityMode::A:
        os << "A(" << a.d1 << "," << a.d2 << "," << a.d3 << "," << onoff
           << ")";
        break;
      case SparsityMode::B:
        os << "B(" << b.d1 << "," << b.d2 << "," << b.d3 << "," << onoff
           << ")";
        break;
      case SparsityMode::AB:
        os << "AB(" << a.d1 << "," << a.d2 << "," << a.d3 << "," << b.d1
           << "," << b.d2 << "," << b.d3 << "," << onoff << ")";
        if (!preprocessB)
            os << "[otf]";
        break;
    }
    return os.str();
}

RoutingConfig
RoutingConfig::dense()
{
    return {};
}

RoutingConfig
RoutingConfig::sparseA(int d1, int d2, int d3, bool shuffle)
{
    RoutingConfig cfg;
    cfg.mode = SparsityMode::A;
    cfg.a = {d1, d2, d3};
    cfg.shuffle = shuffle;
    cfg.validate();
    return cfg;
}

RoutingConfig
RoutingConfig::sparseB(int d1, int d2, int d3, bool shuffle)
{
    RoutingConfig cfg;
    cfg.mode = SparsityMode::B;
    cfg.b = {d1, d2, d3};
    cfg.shuffle = shuffle;
    cfg.preprocessB = true;
    cfg.validate();
    return cfg;
}

RoutingConfig
RoutingConfig::sparseAB(int a1, int a2, int a3, int b1, int b2, int b3,
                        bool shuffle, bool preprocess_b)
{
    RoutingConfig cfg;
    cfg.mode = SparsityMode::AB;
    cfg.a = {a1, a2, a3};
    cfg.b = {b1, b2, b3};
    cfg.shuffle = shuffle;
    cfg.preprocessB = preprocess_b;
    cfg.validate();
    return cfg;
}

WindowParams
windowParams(const RoutingConfig &cfg)
{
    cfg.validate();
    WindowParams w;
    switch (cfg.mode) {
      case SparsityMode::Dense:
        break;
      case SparsityMode::A:
        w.steps = 1 + cfg.a.d1;
        w.laneDist = cfg.a.d2;
        w.rowDist = cfg.a.d3;
        break;
      case SparsityMode::B:
        w.steps = 1 + cfg.b.d1;
        w.laneDist = cfg.b.d2;
        w.colDist = cfg.b.d3;
        break;
      case SparsityMode::AB:
        if (cfg.preprocessB) {
            // BBUF holds (1+db1) *compressed* entries; each compressed
            // entry is drawn from (1+da1) raw steps of A in ABUF, so
            // the effective lookahead multiplies (ABUF depth L,
            // Section IV-A).
            w.steps = (1 + cfg.a.d1) * (1 + cfg.b.d1);
        } else {
            // Both raw streams must be co-resident; lookahead is
            // limited by the shallower buffer.
            w.steps = 1 + std::min(cfg.a.d1, cfg.b.d1);
        }
        w.laneDist = cfg.a.d2 + cfg.b.d2;
        w.rowDist = cfg.a.d3;
        w.colDist = cfg.b.d3;
        break;
    }
    return w;
}

} // namespace griffin
