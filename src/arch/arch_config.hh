/**
 * @file
 * Complete architecture configuration: core geometry, routing, memory
 * system, and datapath style (paper Table IV, bottom half).
 */

#ifndef GRIFFIN_ARCH_ARCH_CONFIG_HH
#define GRIFFIN_ARCH_ARCH_CONFIG_HH

#include <string>

#include "arch/category.hh"
#include "arch/routing.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * On-chip and off-chip memory parameters.  Defaults are the paper's
 * (Table IV): 512 KB ASRAM @ 51.2 GB/s, 32 KB BSRAM @ 204.8 GB/s,
 * 50 GB/s DRAM, 800 MHz.
 */
struct MemoryConfig
{
    double asramKB = 512.0;
    double bsramKB = 32.0;
    double asramGBs = 51.2;
    double bsramGBs = 204.8;
    double dramGBs = 50.0;
    double freqGHz = 0.8;

    /** Bytes one cycle of the given bandwidth delivers. */
    double
    bytesPerCycle(double gbs) const
    {
        return gbs / freqGHz;
    }

    double dramBytesPerCycle() const { return bytesPerCycle(dramGBs); }
};

/**
 * How the MACs are organised.  VectorCore is the paper's 3-D unrolled
 * dot-product design; MacGrid models SparTen-style independent MACs
 * with per-MAC deep buffers and no K unrolling.
 */
enum class DatapathStyle
{
    VectorCore,
    MacGrid
};

/**
 * A named, complete architecture point.  Construct via the factories
 * in arch/presets.hh or fill in the fields for design-space sweeps.
 */
struct ArchConfig
{
    std::string name = "unnamed";
    TileShape tile{};
    RoutingConfig routing{};
    DatapathStyle style = DatapathStyle::VectorCore;
    MemoryConfig mem{};

    /**
     * Griffin's hybrid morphing: when true, the effective routing for
     * a workload category comes from griffinMorph() instead of
     * `routing`.
     */
    bool hybrid = false;

    /**
     * SRAM bandwidth provisioning as a multiple of the baseline
     * (1 operand step per cycle).  The scheduler cannot advance the
     * window faster than this many steps per cycle.  0 = auto: match
     * the window depth so the paper configurations never throttle
     * ("SRAM BW should be equal or more than speedup x baseline BW").
     */
    double bwScale = 0.0;

    /** MacGrid only: per-MAC input buffer depth (SparTen: 128). */
    int macBufferDepth = 0;

    /**
     * Routing actually used for a given workload category: morphs for
     * hybrid designs, `routing` otherwise.  Non-hybrid designs run
     * their full machinery regardless of category (a dual-sparse core
     * "downgrades" by simply finding fewer zeros to skip).
     */
    RoutingConfig effectiveRouting(DnnCategory cat) const;

    /** Resolved bandwidth cap in window steps per cycle (>= 1). */
    double effectiveBwScale(DnnCategory cat) const;

    void validate() const;
};

/**
 * Griffin's morph table (paper Fig. 4 / Table VI): conf.AB for dual
 * sparse, conf.B(8,0,1,on) for weight-only, conf.A(2,1,1,on) for
 * activation-only, dense passthrough otherwise.
 */
RoutingConfig griffinMorph(DnnCategory cat);

} // namespace griffin

#endif // GRIFFIN_ARCH_ARCH_CONFIG_HH
