/**
 * @file
 * Hardware overhead formulas (paper Table II and Section IV-A).
 *
 * Canonical reconstruction validated against every concrete value the
 * paper states (see DESIGN.md Section 2):
 *
 *   Sparse.A(d1,d2,d3):
 *     ABUF depth 1+d1, AMUX fan-in 1 + d1*(1+d2)*(1+d3),
 *     BBUF depth 1+d1, BMUX fan-in 1 + d1*(1+d2), ADT/PE 1+d3,
 *     one arbiter per PE row.
 *   Sparse.B(d1,d2,d3):
 *     ABUF depth 1+d1, AMUX fan-in 1 + d1*(1+d2), no BBUF/BMUX
 *     (metadata-driven), ADT/PE 1+d3.
 *   Sparse.AB(x,y,z,x',y',z') with preprocessing:
 *     ABUF depth L=(1+x)(1+x'), BBUF depth 1+x',
 *     AMUX 1+(L-1)(1+y+y')(1+z), BMUX 1+x(1+y), ADT/PE (1+z)(1+z'),
 *     one controller per PE.
 *
 * The paper's prose says dual sparsity needs "z*z' extra adders"; the
 * (1+z)(1+z') form is what actually matches its own example
 * (AB(2,0,0,2,0,1) -> one extra adder tree), so we use that.
 */

#ifndef GRIFFIN_ARCH_OVERHEAD_HH
#define GRIFFIN_ARCH_OVERHEAD_HH

#include <cstdint>

#include "arch/routing.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * Per-configuration hardware inventory.  Depths and fan-ins are in
 * words (Table II); the Count/Words fields are whole-core totals the
 * power/area model.
 */
struct HardwareOverhead
{
    // -- Table II quantities (per instance) --------------------------
    int abufDepth = 1;   ///< words per lane, buffer shared per PE row
    int amuxFanin = 1;   ///< operand-select fan-in on the A path
    int bbufDepth = 1;   ///< words per lane, buffer shared per PE column
    int bmuxFanin = 1;   ///< operand-select fan-in on the B path
    int adtPerPe = 1;    ///< adder trees per PE (1 is the dense tree)

    /** Metadata bits per scheduled B element (preprocessed modes). */
    int metadataBits = 0;

    // -- whole-core totals (geometry-dependent) ----------------------
    std::int64_t abufWords = 0;   ///< total ABUF storage
    std::int64_t bbufWords = 0;   ///< total BBUF storage
    std::int64_t amuxCount = 0;   ///< number of AMUX instances
    std::int64_t bmuxCount = 0;   ///< number of BMUX instances
    std::int64_t extraAdtCount = 0; ///< adder trees beyond the dense one
    std::int64_t ctrlUnits = 0;   ///< arbiters/controllers
    std::int64_t shufflerCrossbars = 0; ///< 4x4 crossbars (A and B side)
};

/**
 * Compute the inventory for a routing config on a core geometry.
 * panic()s on invalid configs.
 */
HardwareOverhead computeOverhead(const RoutingConfig &cfg,
                                 const TileShape &shape);

/**
 * Design-space legality limits used in Section VI: AMUX fan-in must
 * not exceed 8 for single-sparse designs and 16 for dual-sparse ones.
 */
bool withinFaninLimits(const RoutingConfig &cfg, const TileShape &shape);

} // namespace griffin

#endif // GRIFFIN_ARCH_OVERHEAD_HH
