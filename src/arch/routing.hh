/**
 * @file
 * Routing configurations: the paper's core abstraction.
 *
 * A sparse architecture is defined by how far a multiplier can borrow
 * a nonzero operand along each axis of the blocked operand layout
 * (Definitions III.1, III.2, IV.1):
 *
 *   d1 — lookahead across temporal steps (k1),
 *   d2 — lookaside across lanes of the dot-product unit (k2),
 *   d3 — across the third axis: PE rows for A, PE columns for B
 *        (requires an extra adder tree to route the partial product
 *        back to the home accumulator).
 *
 * Plus the rotation shuffle flag (Section III, Load Balancing) and —
 * for dual-sparse designs — whether B is preprocessed offline into a
 * compressed stream (Griffin-style) or matched on the fly
 * (TensorDash-style).
 */

#ifndef GRIFFIN_ARCH_ROUTING_HH
#define GRIFFIN_ARCH_ROUTING_HH

#include <string>

namespace griffin {

/** Borrowing distances along (time, lane, cross-PE) for one matrix. */
struct Borrow
{
    int d1 = 0;
    int d2 = 0;
    int d3 = 0;

    bool
    operator==(const Borrow &o) const
    {
        return d1 == o.d1 && d2 == o.d2 && d3 == o.d3;
    }
    bool operator!=(const Borrow &o) const { return !(*this == o); }
};

/** Which operand tensors the datapath can skip zeros in. */
enum class SparsityMode
{
    Dense, ///< no zero skipping
    A,     ///< activation-only (on-the-fly)
    B,     ///< weight-only (preprocessed)
    AB     ///< dual sparsity
};

const char *toString(SparsityMode mode);

/**
 * Complete routing description of one architecture configuration.
 * Factory functions enforce that unused distances stay zero.
 */
struct RoutingConfig
{
    SparsityMode mode = SparsityMode::Dense;
    Borrow a;            ///< A-side distances (zero unless mode has A)
    Borrow b;            ///< B-side distances (zero unless mode has B)
    bool shuffle = false;
    /**
     * Offline compression of B.  Always true for Sparse.B; for
     * Sparse.AB, false models TensorDash-style designs that match both
     * operands at runtime and therefore need deeper raw buffers.
     */
    bool preprocessB = false;

    bool
    operator==(const RoutingConfig &o) const
    {
        return mode == o.mode && a == o.a && b == o.b &&
               shuffle == o.shuffle && preprocessB == o.preprocessB;
    }
    bool operator!=(const RoutingConfig &o) const { return !(*this == o); }

    /** Does the datapath skip zeros in A (resp. B)? */
    bool sparseA() const
    {
        return mode == SparsityMode::A || mode == SparsityMode::AB;
    }
    bool sparseB() const
    {
        return mode == SparsityMode::B || mode == SparsityMode::AB;
    }

    /** Paper-style short name, e.g. "AB(2,0,0,2,0,1,on)". */
    std::string str() const;

    /** Panic if distances are inconsistent with the mode. */
    void validate() const;

    // -- factories ---------------------------------------------------

    static RoutingConfig dense();
    static RoutingConfig sparseA(int d1, int d2, int d3, bool shuffle);
    static RoutingConfig sparseB(int d1, int d2, int d3, bool shuffle);
    static RoutingConfig sparseAB(int a1, int a2, int a3, int b1, int b2,
                                  int b3, bool shuffle,
                                  bool preprocess_b = true);
};

/**
 * Window geometry the scheduler runs with, derived from a routing
 * config (see DESIGN.md Section 3).
 *
 * steps:    how many original temporal steps are simultaneously
 *           resident in the operand buffers (ideal max speedup).
 * laneDist: how many lanes ahead a slot may steal from.
 * rowDist:  cross-PE distance along A's third axis (M0 rows).
 * colDist:  cross-PE distance along B's third axis (N0 columns).
 */
struct WindowParams
{
    int steps = 1;
    int laneDist = 0;
    int rowDist = 0;
    int colDist = 0;

    bool
    operator==(const WindowParams &o) const
    {
        return steps == o.steps && laneDist == o.laneDist &&
               rowDist == o.rowDist && colDist == o.colDist;
    }
    bool operator!=(const WindowParams &o) const { return !(*this == o); }
};

WindowParams windowParams(const RoutingConfig &cfg);

} // namespace griffin

#endif // GRIFFIN_ARCH_ROUTING_HH
