#include "fleet/protocol.hh"

#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "runtime/experiment.hh"
#include "runtime/result_sink.hh"

namespace griffin {

namespace {

const char *
typeName(FleetMessage::Type type)
{
    switch (type) {
      case FleetMessage::Type::Hello:
        return "hello";
      case FleetMessage::Type::Welcome:
        return "welcome";
      case FleetMessage::Type::LeaseRequest:
        return "lease_request";
      case FleetMessage::Type::Lease:
        return "lease";
      case FleetMessage::Type::Wait:
        return "wait";
      case FleetMessage::Type::Done:
        return "done";
      case FleetMessage::Type::Rows:
        return "rows";
      case FleetMessage::Type::RowsAck:
        return "rows_ack";
      case FleetMessage::Type::Heartbeat:
        return "heartbeat";
      case FleetMessage::Type::Error:
        return "error";
    }
    panic("unhandled fleet message type ", static_cast<int>(type));
}

bool
typeFromName(const std::string &name, FleetMessage::Type &out)
{
    for (const auto type :
         {FleetMessage::Type::Hello, FleetMessage::Type::Welcome,
          FleetMessage::Type::LeaseRequest, FleetMessage::Type::Lease,
          FleetMessage::Type::Wait, FleetMessage::Type::Done,
          FleetMessage::Type::Rows, FleetMessage::Type::RowsAck,
          FleetMessage::Type::Heartbeat, FleetMessage::Type::Error}) {
        if (name == typeName(type)) {
            out = type;
            return true;
        }
    }
    return false;
}

/**
 * Typed field accessors: a wire peer is another process, possibly of
 * another build, so a missing or mistyped field must fail the decode
 * — never fatal() (which JsonValue's own accessors do on mismatch).
 */
bool
getString(const JsonValue &doc, const char *key, std::string &dst,
          std::string &error)
{
    const JsonValue *value = doc.find(key);
    if (value == nullptr || !value->isString()) {
        error = std::string("missing or non-string '") + key +
                "' field";
        return false;
    }
    dst = value->text;
    return true;
}

bool
getNumber(const JsonValue &doc, const char *key,
          const JsonValue *&out, std::string &error)
{
    const JsonValue *value = doc.find(key);
    if (value == nullptr || !value->isNumber()) {
        error = std::string("missing or non-numeric '") + key +
                "' field";
        return false;
    }
    out = value;
    return true;
}

bool
getUint(const JsonValue &doc, const char *key, std::uint64_t &dst,
        std::string &error)
{
    const JsonValue *value = nullptr;
    if (!getNumber(doc, key, value, error))
        return false;
    dst = value->asUint();
    return true;
}

bool
getInt(const JsonValue &doc, const char *key, std::int64_t &dst,
       std::string &error)
{
    const JsonValue *value = nullptr;
    if (!getNumber(doc, key, value, error))
        return false;
    dst = value->asInt();
    return true;
}

bool
getDouble(const JsonValue &doc, const char *key, double &dst,
          std::string &error)
{
    const JsonValue *value = nullptr;
    if (!getNumber(doc, key, value, error))
        return false;
    dst = value->asDouble();
    return true;
}

bool
getBool(const JsonValue &doc, const char *key, bool &dst,
        std::string &error)
{
    const JsonValue *value = doc.find(key);
    if (value == nullptr || !value->isBool()) {
        error = std::string("missing or non-boolean '") + key +
                "' field";
        return false;
    }
    dst = value->boolean;
    return true;
}

bool
getSize(const JsonValue &doc, const char *key, std::size_t &dst,
        std::string &error)
{
    std::uint64_t value = 0;
    if (!getUint(doc, key, value, error))
        return false;
    dst = static_cast<std::size_t>(value);
    return true;
}

} // namespace

std::string
encodeFleetMessage(const FleetMessage &msg)
{
    std::ostringstream os;
    os << "{\"type\": \"" << typeName(msg.type) << '"';
    switch (msg.type) {
      case FleetMessage::Type::Hello:
        os << ", \"protocol\": " << msg.protocol << ", \"worker\": \""
           << jsonEscape(msg.worker) << '"';
        break;
      case FleetMessage::Type::Welcome:
        os << ", \"protocol\": " << msg.protocol;
        break;
      case FleetMessage::Type::LeaseRequest:
      case FleetMessage::Type::Done:
        break;
      case FleetMessage::Type::Lease:
        os << ", \"lease_id\": " << msg.leaseId
           << ", \"experiment\": \"" << jsonEscape(msg.experiment)
           << "\", \"job_begin\": " << msg.jobBegin
           << ", \"job_end\": " << msg.jobEnd << ", \"options\": {"
           << "\"seed\": " << msg.options.seed
           << ", \"row_cap\": " << msg.options.rowCap
           << ", \"weight_lane_bias\": "
           << jsonNumber(msg.options.weightLaneBias)
           << ", \"act_run_length\": "
           << jsonNumber(msg.options.actRunLength)
           << ", \"sample_fraction\": "
           << jsonNumber(msg.options.sim.sampleFraction)
           << ", \"enforce_dram_bound\": "
           << (msg.options.enforceDramBound ? "true" : "false") << "}"
           << ", \"grid\": \"" << jsonEscape(msg.gridOverride) << '"';
        break;
      case FleetMessage::Type::Wait:
        os << ", \"retry_ms\": " << msg.retryMs;
        break;
      case FleetMessage::Type::Rows:
        os << ", \"lease_id\": " << msg.leaseId << ", \"rows\": [";
        for (std::size_t i = 0; i < msg.rows.size(); ++i) {
            if (i != 0)
                os << ", ";
            os << '"' << jsonEscape(msg.rows[i]) << '"';
        }
        os << ']';
        break;
      case FleetMessage::Type::RowsAck:
        os << ", \"lease_id\": " << msg.leaseId << ", \"accepted\": "
           << (msg.accepted ? "true" : "false") << ", \"reason\": \""
           << jsonEscape(msg.reason) << '"';
        break;
      case FleetMessage::Type::Heartbeat:
        os << ", \"lease_id\": " << msg.leaseId;
        break;
      case FleetMessage::Type::Error:
        os << ", \"reason\": \"" << jsonEscape(msg.reason) << '"';
        break;
    }
    os << '}';
    return os.str();
}

bool
decodeFleetMessage(const std::string &line, FleetMessage &out,
                   std::string &error)
{
    JsonValue doc;
    if (!parseJson(line, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "message is not a JSON object";
        return false;
    }
    std::string type_name;
    if (!getString(doc, "type", type_name, error))
        return false;
    out = FleetMessage{};
    if (!typeFromName(type_name, out.type)) {
        error = "unknown message type '" + type_name + "'";
        return false;
    }

    switch (out.type) {
      case FleetMessage::Type::Hello: {
        std::int64_t protocol = 0;
        if (!getInt(doc, "protocol", protocol, error) ||
            !getString(doc, "worker", out.worker, error))
            return false;
        out.protocol = static_cast<int>(protocol);
        break;
      }
      case FleetMessage::Type::Welcome: {
        std::int64_t protocol = 0;
        if (!getInt(doc, "protocol", protocol, error))
            return false;
        out.protocol = static_cast<int>(protocol);
        break;
      }
      case FleetMessage::Type::LeaseRequest:
      case FleetMessage::Type::Done:
        break;
      case FleetMessage::Type::Lease: {
        if (!getUint(doc, "lease_id", out.leaseId, error) ||
            !getString(doc, "experiment", out.experiment, error) ||
            !getSize(doc, "job_begin", out.jobBegin, error) ||
            !getSize(doc, "job_end", out.jobEnd, error) ||
            !getString(doc, "grid", out.gridOverride, error))
            return false;
        const JsonValue *options = doc.find("options");
        if (options == nullptr || !options->isObject()) {
            error = "missing or non-object 'options' field";
            return false;
        }
        if (!getUint(*options, "seed", out.options.seed, error) ||
            !getInt(*options, "row_cap", out.options.rowCap, error) ||
            !getDouble(*options, "weight_lane_bias",
                       out.options.weightLaneBias, error) ||
            !getDouble(*options, "act_run_length",
                       out.options.actRunLength, error) ||
            !getDouble(*options, "sample_fraction",
                       out.options.sim.sampleFraction, error) ||
            !getBool(*options, "enforce_dram_bound",
                     out.options.enforceDramBound, error))
            return false;
        // Not on the wire (result rows do not carry it either); both
        // sides share the driver constant, exactly like shard_merge's
        // reconstruction of a shard run's fidelity.
        out.options.sim.minSampledTiles = defaultMinSampledTiles;
        break;
      }
      case FleetMessage::Type::Wait: {
        std::int64_t retry = 0;
        if (!getInt(doc, "retry_ms", retry, error))
            return false;
        out.retryMs = static_cast<int>(retry);
        break;
      }
      case FleetMessage::Type::Rows: {
        if (!getUint(doc, "lease_id", out.leaseId, error))
            return false;
        const JsonValue *rows = doc.find("rows");
        if (rows == nullptr || !rows->isArray()) {
            error = "missing or non-array 'rows' field";
            return false;
        }
        out.rows.reserve(rows->items.size());
        for (const JsonValue &row : rows->items) {
            if (!row.isString()) {
                error = "'rows' holds a non-string element";
                return false;
            }
            out.rows.push_back(row.text);
        }
        break;
      }
      case FleetMessage::Type::RowsAck: {
        if (!getUint(doc, "lease_id", out.leaseId, error) ||
            !getBool(doc, "accepted", out.accepted, error) ||
            !getString(doc, "reason", out.reason, error))
            return false;
        break;
      }
      case FleetMessage::Type::Heartbeat: {
        if (!getUint(doc, "lease_id", out.leaseId, error))
            return false;
        break;
      }
      case FleetMessage::Type::Error: {
        if (!getString(doc, "reason", out.reason, error))
            return false;
        break;
      }
    }
    return true;
}

} // namespace griffin
