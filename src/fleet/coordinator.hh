/**
 * @file
 * The fleet coordinator: `griffin_bench serve`.
 *
 * One long-running process owns a fleet run end to end: it expands
 * every requested experiment's grid into the job queue, listens for
 * workers on a TCP port, hands out contiguous job slices as leases
 * (fleet/lease_queue.hh), tracks lease heartbeats, re-leases slices
 * whose worker dies or goes silent past the timeout, validates and
 * stores the result rows workers stream back, and renders the final
 * aggregate tables once — and only once — every expanded job has been
 * acked exactly once.
 *
 * That completion rule is shard_merge's offline disjoint-and-complete
 * coverage validation turned into an online invariant: every streamed
 * row is parsed with the same parser (parseResultRowLine) and checked
 * against the same expanded job (validateRowAgainstJob) the merge
 * subcommand would have used after the fact, so the rendered tables
 * and the --out row document of a fleet run are byte-identical to the
 * unsharded `griffin_bench run` — including runs where workers died
 * mid-sweep and their leases were stolen.
 *
 * The server is single-threaded: one poll(2) loop multiplexes the
 * listener and every worker stream, so the lease queue needs no lock
 * and message handling is deterministic.  Row mismatches (a worker
 * that expanded a different grid — version or flag skew) are
 * fatalRun(): the run is unsalvageable and CI must distinguish that
 * from a usage error.
 */

#ifndef GRIFFIN_FLEET_COORDINATOR_HH
#define GRIFFIN_FLEET_COORDINATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/lease_queue.hh"
#include "runtime/experiment.hh"

namespace griffin {

/** One experiment the fleet run covers, at its resolved fidelity. */
struct FleetServeSpec
{
    const Experiment *experiment = nullptr;
    RunOptions run;
};

/** `serve` knobs (defaults match the bench flags). */
struct CoordinatorConfig
{
    /** Listen port; 0 binds an ephemeral port (see portFile). */
    std::uint16_t port = 0;
    /** When non-empty, the resolved port is written here (atomically,
     *  via rename) so scripts can start workers against port 0. */
    std::string portFile;
    /** --grid override forwarded to every worker verbatim. */
    std::string gridOverride;
    /** Jobs per lease (the work-stealing granularity). */
    std::size_t leaseJobs = 4;
    /** A lease not heartbeat for this long is re-leased. */
    int leaseTimeoutMs = 10000;
    /** Server tick: poll window, and the expiry check cadence. */
    int pollMs = 50;
    /** Wait.retry_ms hint sent when every chunk is leased out. */
    int waitRetryMs = 200;
    /** Live progress-table cadence on stderr; 0 disables. */
    int progressEveryMs = 2000;
};

/** One experiment's reassembled results. */
struct FleetExperimentOutcome
{
    const Experiment *experiment = nullptr;
    RunOptions run;
    SweepSpec spec;
    SweepResult sweep;
};

/** The whole run's outcome plus its fault-tolerance counters. */
struct FleetOutcome
{
    std::vector<FleetExperimentOutcome> experiments;
    LeaseQueue::Stats leases;
    std::size_t rowsStreamed = 0;  ///< accepted result rows
    std::size_t workersSeen = 0;   ///< distinct hello'd connections
    std::size_t workerDeaths = 0;  ///< disconnects holding live leases
};

/**
 * Run the coordinator until every job of every spec is acked exactly
 * once, then broadcast `done` and return the reassembled sweeps in
 * spec order, ready for each experiment's render().  Also publishes
 * the run's fleet.* counters to MetricsRegistry::instance().
 * fatal() on render-only experiments or an unbindable port;
 * fatalRun() when a worker streams rows that do not match the
 * expanded grid (coordinator/worker skew).
 */
FleetOutcome serveFleet(const std::vector<FleetServeSpec> &specs,
                        const CoordinatorConfig &config);

} // namespace griffin

#endif // GRIFFIN_FLEET_COORDINATOR_HH
