#include "fleet/lease_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace griffin {

LeaseQueue::LeaseQueue(const std::vector<std::size_t> &jobCounts,
                       std::size_t chunkJobs,
                       std::uint64_t leaseTimeoutNs)
    : leaseTimeoutNs_(leaseTimeoutNs)
{
    if (chunkJobs == 0)
        fatal("lease chunk size must be positive");
    for (std::size_t e = 0; e < jobCounts.size(); ++e) {
        for (std::size_t begin = 0; begin < jobCounts[e];
             begin += chunkJobs) {
            Chunk chunk;
            chunk.experimentIndex = e;
            chunk.begin = begin;
            chunk.end = std::min(begin + chunkJobs, jobCounts[e]);
            pending_.push_back(chunks_.size());
            chunks_.push_back(chunk);
        }
    }
    states_.resize(chunks_.size());
}

bool
LeaseQueue::grant(const std::string &worker, std::uint64_t now_ns,
                  Grant &out)
{
    if (pending_.empty())
        return false;
    const std::size_t index = pending_.front();
    pending_.pop_front();
    ChunkState &state = states_[index];
    GRIFFIN_ASSERT(state.state == State::Pending,
                   "pending queue holds a non-pending chunk");
    const std::uint64_t lease_id = nextLeaseId_++;
    leaseChunk_.push_back(index);
    state.state = State::Leased;
    state.currentLease = lease_id;
    state.worker = worker;
    state.deadlineNs = now_ns + leaseTimeoutNs_;
    ++stats_.leasesGranted;
    if (state.everLeased)
        ++stats_.reLeases;
    state.everLeased = true;
    out.leaseId = lease_id;
    out.chunk = chunks_[index];
    return true;
}

std::size_t
LeaseQueue::chunkOfLease(std::uint64_t leaseId) const
{
    if (leaseId == 0 || leaseId >= nextLeaseId_)
        return static_cast<std::size_t>(-1);
    return leaseChunk_[leaseId - 1];
}

bool
LeaseQueue::heartbeat(std::uint64_t leaseId, std::uint64_t now_ns)
{
    const std::size_t index = chunkOfLease(leaseId);
    if (index == static_cast<std::size_t>(-1))
        return false;
    ChunkState &state = states_[index];
    if (state.state != State::Leased || state.currentLease != leaseId)
        return false;
    state.deadlineNs = now_ns + leaseTimeoutNs_;
    return true;
}

LeaseQueue::AckResult
LeaseQueue::ack(std::uint64_t leaseId)
{
    const std::size_t index = chunkOfLease(leaseId);
    if (index == static_cast<std::size_t>(-1)) {
        ++stats_.duplicateAcks;
        return AckResult::Unknown;
    }
    ChunkState &state = states_[index];
    if (state.state == State::Done) {
        ++stats_.duplicateAcks;
        return AckResult::Duplicate;
    }
    if (state.currentLease != leaseId) {
        // The lease lapsed and the chunk was re-granted (or is back in
        // the pending queue): the presumed-dead worker resurfaced.
        // Its rows are discarded — the live lease owns the chunk.
        ++stats_.duplicateAcks;
        return AckResult::Stale;
    }
    if (state.state == State::Pending) {
        // Expired but not yet re-granted; the original holder was
        // merely slow.  Still reject: once expired, the grant is void
        // (the rows may race a future re-grant's) — the chunk will be
        // re-leased and recomputed.
        ++stats_.duplicateAcks;
        return AckResult::Stale;
    }
    state.state = State::Done;
    ++doneChunks_;
    doneJobs_ += chunks_[index].end - chunks_[index].begin;
    return AckResult::Accepted;
}

std::vector<LeaseQueue::Grant>
LeaseQueue::expire(std::uint64_t now_ns)
{
    std::vector<Grant> expired;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        ChunkState &state = states_[i];
        if (state.state != State::Leased || state.deadlineNs > now_ns)
            continue;
        Grant grant;
        grant.leaseId = state.currentLease;
        grant.chunk = chunks_[i];
        expired.push_back(grant);
        state.state = State::Pending;
        pending_.push_back(i);
        ++stats_.expired;
    }
    return expired;
}

std::size_t
LeaseQueue::abandon(const std::vector<std::uint64_t> &leaseIds)
{
    std::size_t requeued = 0;
    for (const std::uint64_t lease_id : leaseIds) {
        const std::size_t index = chunkOfLease(lease_id);
        if (index == static_cast<std::size_t>(-1))
            continue;
        ChunkState &state = states_[index];
        if (state.state != State::Leased ||
            state.currentLease != lease_id)
            continue;
        state.state = State::Pending;
        pending_.push_back(index);
        ++stats_.abandoned;
        ++requeued;
    }
    return requeued;
}

std::size_t
LeaseQueue::activeLeases() const
{
    std::size_t active = 0;
    for (const ChunkState &state : states_)
        if (state.state == State::Leased)
            ++active;
    return active;
}

} // namespace griffin
