/**
 * @file
 * The fleet worker: `griffin_bench worker`.
 *
 * Connects to a coordinator (fleet/coordinator.hh), identifies
 * itself, and loops: lease a job slice, re-expand the experiment's
 * grid locally from the leased options + --grid text (the exact
 * reconstruction shard_merge performs offline), run the
 * [job_begin, job_end) slice through the ordinary runSweep machinery
 * — shared schedule/workset caches included — and stream the result
 * rows back as the verbatim JSONL lines an unsharded run would have
 * written, so the coordinator can validate them positionally and
 * assemble byte-identical output.
 *
 * Fault tolerance: a background thread heartbeats the live lease so
 * long sweeps are not stolen; any connection loss drops the current
 * lease (the coordinator re-queues it) and the worker reconnects
 * with exponential backoff, surviving a coordinator restart.  When
 * the backoff budget is exhausted the worker dies with fatalRun()
 * (exit status exitRunFailure) so fleet scripts can tell "the run
 * failed" from "the flags were wrong".
 */

#ifndef GRIFFIN_FLEET_WORKER_HH
#define GRIFFIN_FLEET_WORKER_HH

#include <cstdint>
#include <string>

#include "runtime/schedule_cache.hh"
#include "runtime/workset_cache.hh"

namespace griffin {

/** `worker` knobs (defaults match the bench flags). */
struct WorkerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Display name in coordinator logs (default: "pid<pid>"). */
    std::string name;

    /** Sweep execution knobs, as in `griffin_bench run`. */
    int threads = 1;
    bool layerShard = false;
    bool batchArchs = true;

    /** Lease-heartbeat cadence while a sweep is running. */
    int heartbeatMs = 1000;
    /** Initial reconnect backoff; doubles per failed attempt. */
    int backoffMs = 200;
    /** Consecutive failed connection attempts before giving up. */
    int maxReconnects = 5;
    /** Deadline for any coordinator reply. */
    int replyTimeoutMs = 30000;

    /**
     * Deterministic worker-death test hook: exit(0) upon *receiving*
     * the Nth lease, without running or acking it — the smoke test's
     * reproducible stand-in for kill(2) mid-run.  0 disables.
     */
    std::size_t abandonAfter = 0;

    /** Shared caches (null = per-sweep). */
    ScheduleCache *cache = nullptr;
    WorksetCache *worksetCache = nullptr;
};

/**
 * Run the worker loop until the coordinator says `done`.  Returns the
 * process exit status (exitSuccess on done or on the abandonAfter
 * hook); fatalRun() when the coordinator is unreachable past the
 * backoff budget or leases something this binary cannot re-expand
 * (version skew).
 */
int runWorker(const WorkerConfig &config);

} // namespace griffin

#endif // GRIFFIN_FLEET_WORKER_HH
