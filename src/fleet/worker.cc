#include "fleet/worker.hh"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/logging.hh"
#include "common/socket.hh"
#include "fleet/protocol.hh"
#include "runtime/experiment.hh"
#include "runtime/result_sink.hh"
#include "runtime/runner.hh"
#include "runtime/telemetry.hh"

namespace griffin {

namespace {

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** One connection attempt: TCP connect + hello/welcome handshake.
 *  False with `error` set on anything retryable; fatalRun() on a
 *  definitive rejection (version skew), which no retry can fix. */
bool
connectAndHello(const WorkerConfig &config, TcpStream &stream,
                std::string &error)
{
    if (!stream.connect(config.host, config.port)) {
        error = stream.lastError();
        return false;
    }
    FleetMessage hello;
    hello.type = FleetMessage::Type::Hello;
    hello.protocol = fleetProtocolVersion;
    hello.worker = config.name;
    if (!stream.sendLine(encodeFleetMessage(hello))) {
        error = stream.lastError();
        return false;
    }
    std::string line;
    if (!stream.recvLine(line, config.replyTimeoutMs)) {
        error = stream.lastError();
        stream.close();
        return false;
    }
    FleetMessage reply;
    if (!decodeFleetMessage(line, reply, error)) {
        stream.close();
        return false;
    }
    if (reply.type == FleetMessage::Type::Error)
        fatalRun("fleet worker '", config.name,
                 "': coordinator rejected the connection: ",
                 reply.reason);
    if (reply.type != FleetMessage::Type::Welcome) {
        error = "expected welcome, got another message";
        stream.close();
        return false;
    }
    if (reply.protocol != fleetProtocolVersion)
        fatalRun("fleet worker '", config.name,
                 "': coordinator speaks protocol ", reply.protocol,
                 ", this binary speaks ", fleetProtocolVersion);
    return true;
}

/** A sweep's rows as the verbatim JSONL lines the unsharded run's
 *  --out document would hold for those jobs — the coordinator
 *  concatenates them, so bytes matter. */
std::vector<std::string>
rowLines(const SweepResult &sweep, const std::string &experiment)
{
    std::ostringstream os;
    writeJsonLines(os, sweepRows(sweep, experiment));
    const std::string text = os.str();
    std::vector<std::string> lines;
    std::size_t begin = 0;
    while (begin < text.size()) {
        const auto nl = text.find('\n', begin);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(begin));
            break;
        }
        lines.push_back(text.substr(begin, nl - begin));
        begin = nl + 1;
    }
    return lines;
}

} // namespace

int
runWorker(const WorkerConfig &config)
{
    WorkerConfig cfg = config;
    if (cfg.name.empty())
        cfg.name = "pid" + std::to_string(::getpid());
    MetricsRegistry &reg = MetricsRegistry::instance();

    TcpStream stream;
    const auto reconnect = [&]() {
        int backoff = cfg.backoffMs;
        int failed = 0;
        for (;;) {
            std::string error;
            if (connectAndHello(cfg, stream, error))
                return;
            ++failed;
            if (failed > cfg.maxReconnects)
                fatalRun("fleet worker '", cfg.name,
                         "': coordinator ", cfg.host, ":", cfg.port,
                         " unreachable after ", failed,
                         " attempt(s): ", error);
            inform("fleet worker '", cfg.name, "': connect failed (",
                   error, "); retrying in ", backoff, " ms (attempt ",
                   failed, "/", cfg.maxReconnects, ")");
            reg.counter("fleet.reconnects").add(1);
            sleepMs(backoff);
            if (backoff < 10000)
                backoff *= 2;
        }
    };

    std::size_t leases_taken = 0;
    for (;;) {
        if (!stream.open())
            reconnect();

        FleetMessage request;
        request.type = FleetMessage::Type::LeaseRequest;
        if (!stream.sendLine(encodeFleetMessage(request)))
            continue; // sendLine closed the stream; reconnect above
        std::string line;
        if (!stream.recvLine(line, cfg.replyTimeoutMs)) {
            inform("fleet worker '", cfg.name,
                   "': lost the coordinator (", stream.lastError(),
                   "); reconnecting");
            stream.close();
            continue;
        }
        FleetMessage msg;
        std::string error;
        if (!decodeFleetMessage(line, msg, error))
            fatalRun("fleet worker '", cfg.name,
                     "': malformed coordinator message: ", error);
        if (msg.type == FleetMessage::Type::Done) {
            inform("fleet worker '", cfg.name,
                   "': run complete after ", leases_taken,
                   " lease(s)");
            return exitSuccess;
        }
        if (msg.type == FleetMessage::Type::Wait) {
            sleepMs(msg.retryMs > 0 ? msg.retryMs : 100);
            continue;
        }
        if (msg.type == FleetMessage::Type::Error)
            fatalRun("fleet worker '", cfg.name,
                     "': coordinator error: ", msg.reason);
        if (msg.type != FleetMessage::Type::Lease)
            fatalRun("fleet worker '", cfg.name,
                     "': unexpected reply to lease_request");

        ++leases_taken;
        if (cfg.abandonAfter > 0 && leases_taken >= cfg.abandonAfter) {
            // Deterministic stand-in for a mid-run kill: hold the
            // lease, ack nothing, vanish.  The coordinator must
            // re-queue the chunk for another worker to steal.
            inform("fleet worker '", cfg.name,
                   "': exiting without acking lease ", msg.leaseId,
                   " (--abandon-after ", cfg.abandonAfter,
                   " test hook)");
            return exitSuccess;
        }

        const Experiment *exp = findExperiment(msg.experiment);
        if (exp == nullptr)
            fatalRun("fleet worker '", cfg.name,
                     "': leased unknown experiment '", msg.experiment,
                     "' — version skew with the coordinator?");
        SweepSpec spec =
            buildExperimentSpec(*exp, msg.options, msg.gridOverride);
        spec.shardLayers = cfg.layerShard;
        spec.batchArchs = cfg.batchArchs;
        spec.rangeBegin = msg.jobBegin;
        spec.rangeEnd = msg.jobEnd;

        // Heartbeat the lease from a side thread while the sweep
        // runs.  The main thread does not touch the stream until the
        // thread is joined, so the stream needs no lock; a heartbeat
        // send failure closes the stream, which the main thread
        // notices after the join.
        std::atomic<bool> stop{false};
        std::thread heartbeat([&stream, &stop, &cfg,
                               lease_id = msg.leaseId] {
            FleetMessage hb;
            hb.type = FleetMessage::Type::Heartbeat;
            hb.leaseId = lease_id;
            const std::string hb_line = encodeFleetMessage(hb);
            int since_ms = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                sleepMs(20);
                since_ms += 20;
                if (since_ms < cfg.heartbeatMs)
                    continue;
                since_ms = 0;
                if (!stream.sendLine(hb_line))
                    return;
            }
        });
        SweepResult sweep = runSweep(spec, cfg.threads, cfg.cache,
                                     cfg.worksetCache);
        stop.store(true, std::memory_order_relaxed);
        heartbeat.join();

        if (!stream.open()) {
            inform("fleet worker '", cfg.name,
                   "': connection died mid-lease; dropping lease ",
                   msg.leaseId, " and reconnecting");
            continue; // the coordinator re-queues the chunk
        }
        FleetMessage rows;
        rows.type = FleetMessage::Type::Rows;
        rows.leaseId = msg.leaseId;
        rows.rows = rowLines(sweep, exp->name);
        if (!stream.sendLine(encodeFleetMessage(rows)))
            continue;
        if (!stream.recvLine(line, cfg.replyTimeoutMs)) {
            inform("fleet worker '", cfg.name,
                   "': lost the coordinator before the rows ack (",
                   stream.lastError(), "); reconnecting");
            stream.close();
            continue;
        }
        FleetMessage ack;
        if (!decodeFleetMessage(line, ack, error))
            fatalRun("fleet worker '", cfg.name,
                     "': malformed coordinator message: ", error);
        if (ack.type == FleetMessage::Type::Done) {
            // The run completed while this (stale) lease was being
            // worked; the coordinator's done broadcast crossed our
            // rows in flight.
            inform("fleet worker '", cfg.name,
                   "': run complete after ", leases_taken,
                   " lease(s)");
            return exitSuccess;
        }
        if (ack.type != FleetMessage::Type::RowsAck)
            fatalRun("fleet worker '", cfg.name,
                     "': unexpected reply to rows");
        if (ack.accepted) {
            reg.counter("fleet.leases_worked").add(1);
            reg.counter("fleet.rows_sent").add(rows.rows.size());
        } else {
            inform("fleet worker '", cfg.name, "': rows for lease ",
                   msg.leaseId, " discarded (", ack.reason, ")");
        }
    }
}

} // namespace griffin
