/**
 * @file
 * Wire protocol of the fleet coordinator/worker pair.
 *
 * One JSON object per '\n'-terminated line over a TCP stream
 * (common/socket.hh handles the framing); every message carries a
 * "type" member.  The conversation:
 *
 *   worker                         coordinator
 *   ------                         -----------
 *   hello {worker, protocol}  ->
 *                             <-   welcome {protocol}
 *   lease_request             ->
 *                             <-   lease {lease_id, experiment,
 *                                         job_begin, job_end,
 *                                         options, grid}
 *                                  | wait {retry_ms}   (all leased out)
 *                                  | done              (run complete)
 *   heartbeat {lease_id}      ->                       (while working)
 *   rows {lease_id, rows[]}   ->
 *                             <-   rows_ack {lease_id, accepted,
 *                                            reason}
 *   ... lease_request again until done.
 *
 * A lease names a half-open [job_begin, job_end) slice of one
 * experiment's expanded job list plus everything the worker needs to
 * re-expand that list identically: the coordinator's resolved
 * RunOptions fidelity fields (the same six fields result rows
 * serialize — shard_merge reconstructs specs from exactly these) and
 * the --grid override text.  The rows of a completed lease travel as
 * the verbatim JSONL lines the worker's sink would have written, so
 * the coordinator can assemble a byte-identical --out document by
 * concatenating them in job order.
 *
 * Versioning: hello/welcome carry fleetProtocolVersion; a mismatch is
 * rejected before any work is leased.
 */

#ifndef GRIFFIN_FLEET_PROTOCOL_HH
#define GRIFFIN_FLEET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "griffin/accelerator.hh"

namespace griffin {

constexpr int fleetProtocolVersion = 1;

struct FleetMessage
{
    enum class Type
    {
        Hello,        ///< worker -> server: identify + version check
        Welcome,      ///< server -> worker: version accepted
        LeaseRequest, ///< worker -> server: give me work
        Lease,        ///< server -> worker: one job slice
        Wait,         ///< server -> worker: nothing leasable now
        Done,         ///< server -> worker: run complete, disconnect
        Rows,         ///< worker -> server: a lease's result rows
        RowsAck,      ///< server -> worker: rows accepted / rejected
        Heartbeat,    ///< worker -> server: lease still being worked
        Error         ///< either side: protocol violation, hang up
    };

    Type type = Type::Error;

    int protocol = fleetProtocolVersion; ///< Hello / Welcome
    std::string worker;                  ///< Hello: display name

    std::uint64_t leaseId = 0; ///< Lease / Rows / RowsAck / Heartbeat
    std::string experiment;    ///< Lease: registry name
    std::size_t jobBegin = 0;  ///< Lease: slice start (inclusive)
    std::size_t jobEnd = 0;    ///< Lease: slice end (exclusive)
    /** Lease: the coordinator's resolved fidelity (wire fields only;
     *  decode re-applies defaultMinSampledTiles like shard_merge). */
    RunOptions options{};
    std::string gridOverride; ///< Lease: --grid text (may be empty)

    std::vector<std::string> rows; ///< Rows: verbatim JSONL lines

    bool accepted = false; ///< RowsAck
    int retryMs = 0;       ///< Wait
    std::string reason;    ///< RowsAck rejection / Error text
};

/** The message as its one-line wire form (no trailing newline). */
std::string encodeFleetMessage(const FleetMessage &msg);

/**
 * Parse one wire line.  False with `error` set on malformed JSON, an
 * unknown type, or missing/mistyped fields for the given type.
 */
bool decodeFleetMessage(const std::string &line, FleetMessage &out,
                        std::string &error);

} // namespace griffin

#endif // GRIFFIN_FLEET_PROTOCOL_HH
