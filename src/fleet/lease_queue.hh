/**
 * @file
 * Fault-tolerant work-stealing lease queue of a fleet run.
 *
 * The coordinator expands every experiment's grid into an ordered job
 * list and carves it into contiguous chunks; this queue owns the
 * chunk state machine, free of any socket or clock dependency (time
 * is passed in as nanoseconds, so tests drive it deterministically):
 *
 *     Pending --grant()--> Leased --ack()--> Done
 *        ^                   |
 *        +---expire()/abandon()---+
 *
 * Every grant mints a fresh, monotonically-increasing lease id.  A
 * leased chunk whose holder stops heartbeating past the timeout is
 * expired back to Pending and re-granted to the next hungry worker
 * (work stealing); the superseded lease id stays on record so a late
 * ack from the presumed-dead worker is recognised as Stale and
 * rejected — a chunk is acked exactly *once*, which is the online
 * form of shard_merge's disjoint-and-complete coverage validation.
 * complete() is true only when every chunk is Done, i.e. every
 * expanded job has exactly one accepted result.
 *
 * Concurrency: this class is deliberately *unsynchronized*.  It is
 * thread-confined to the coordinator's single poll(2) loop — every
 * grant/ack/expire happens on that one thread, so a mutex here would
 * annotate a capability nothing else can contend for and hide the
 * real invariant.  If a second coordinator thread ever appears, wrap
 * the queue behind a griffin::Mutex (common/mutex.hh) and give these
 * fields GRIFFIN_GUARDED_BY annotations rather than sprinkling locks
 * at call sites.
 */

#ifndef GRIFFIN_FLEET_LEASE_QUEUE_HH
#define GRIFFIN_FLEET_LEASE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace griffin {

class LeaseQueue
{
  public:
    /** One leasable slice: jobs [begin, end) of one experiment. */
    struct Chunk
    {
        std::size_t experimentIndex = 0;
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    /** One granted lease. */
    struct Grant
    {
        std::uint64_t leaseId = 0;
        Chunk chunk;
    };

    /** Outcome of an ack. */
    enum class AckResult
    {
        Accepted,  ///< first ack of the current lease; chunk is Done
        Duplicate, ///< chunk already Done (double ack / replay)
        Stale,     ///< lease was expired and re-granted to another
        Unknown    ///< lease id never granted
    };

    /** Lifetime counters (mirrored into fleet.* metrics). */
    struct Stats
    {
        std::uint64_t leasesGranted = 0;
        std::uint64_t reLeases = 0; ///< grants of a previously-leased chunk
        std::uint64_t expired = 0;  ///< leases timed out (heartbeat lapse)
        std::uint64_t abandoned = 0; ///< leases returned on worker death
        std::uint64_t duplicateAcks = 0; ///< Duplicate + Stale + Unknown
    };

    /**
     * Build the queue: `jobCounts[i]` jobs for experiment i, carved
     * into chunks of up to `chunkJobs` jobs (the final chunk of each
     * experiment may be short; chunks never span experiments).  A
     * lease not heartbeat within `leaseTimeoutNs` is eligible for
     * expiry.  fatal() on chunkJobs == 0.
     */
    LeaseQueue(const std::vector<std::size_t> &jobCounts,
               std::size_t chunkJobs, std::uint64_t leaseTimeoutNs);

    /**
     * Lease the next pending chunk to `worker`.  False when nothing
     * is pending (either all Done, or all currently leased — check
     * complete() to tell the cases apart).
     */
    bool grant(const std::string &worker, std::uint64_t now_ns,
               Grant &out);

    /** Refresh a lease's deadline; false when the lease is not the
     *  live lease of a still-Leased chunk (expired, superseded, done,
     *  or never granted). */
    bool heartbeat(std::uint64_t leaseId, std::uint64_t now_ns);

    /** Account one completed lease. */
    AckResult ack(std::uint64_t leaseId);

    /**
     * Return every lease whose deadline predates `now_ns` to Pending.
     * Returns the expired leases (for logging / metrics).
     */
    std::vector<Grant> expire(std::uint64_t now_ns);

    /**
     * A worker died or disconnected: return its live leases to
     * Pending immediately (no need to wait out the timeout).  Lease
     * ids are matched against `leaseIds`; unknown or finished ids are
     * ignored.  Returns the number of chunks re-queued.
     */
    std::size_t abandon(const std::vector<std::uint64_t> &leaseIds);

    /** Every chunk Done — the completion invariant. */
    bool complete() const { return doneChunks_ == chunks_.size(); }

    const std::vector<Chunk> &chunks() const { return chunks_; }
    std::size_t pendingChunks() const { return pending_.size(); }
    std::size_t activeLeases() const;
    std::size_t doneChunks() const { return doneChunks_; }
    /** Jobs covered by Done chunks (progress reporting). */
    std::size_t doneJobs() const { return doneJobs_; }
    const Stats &stats() const { return stats_; }

  private:
    enum class State
    {
        Pending,
        Leased,
        Done
    };

    struct ChunkState
    {
        State state = State::Pending;
        std::uint64_t currentLease = 0; ///< live lease id when Leased
        std::string worker;
        std::uint64_t deadlineNs = 0;
        bool everLeased = false;
    };

    /** Index of the chunk a lease id was granted for; npos sentinel
     *  when unknown. */
    std::size_t chunkOfLease(std::uint64_t leaseId) const;

    std::vector<Chunk> chunks_;
    std::vector<ChunkState> states_;
    std::deque<std::size_t> pending_; ///< chunk indices, FIFO
    std::vector<std::size_t> leaseChunk_; ///< leaseChunk_[id-1] = chunk
    std::uint64_t nextLeaseId_ = 1;
    std::uint64_t leaseTimeoutNs_ = 0;
    std::size_t doneChunks_ = 0;
    std::size_t doneJobs_ = 0;
    Stats stats_;
};

} // namespace griffin

#endif // GRIFFIN_FLEET_LEASE_QUEUE_HH
