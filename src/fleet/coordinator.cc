#include "fleet/coordinator.hh"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/socket.hh"
#include "common/table.hh"
#include "fleet/protocol.hh"
#include "runtime/shard_merge.hh"
#include "runtime/telemetry.hh"

namespace griffin {

namespace {

/** One experiment's expansion plus its positionally-filled results. */
struct ExperimentState
{
    const Experiment *experiment = nullptr;
    RunOptions run;
    SweepSpec spec;
    std::vector<SweepJob> jobs;
    std::vector<NetworkResult> results; ///< results[i] <- jobs[i]
    std::size_t doneJobs = 0;
};

/** One connected worker. */
struct Client
{
    TcpStream stream;
    std::string name = "(pre-hello)";
    bool helloed = false;
    std::vector<std::uint64_t> leases; ///< live lease ids held
};

void
writePortFile(const std::string &path, std::uint16_t port)
{
    // Write-then-rename so a script polling for the file never reads
    // a partial port number.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os)
            fatal("cannot open --port-file path '", tmp, "'");
        os << port << '\n';
        if (!os)
            fatal("write to --port-file path '", tmp, "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename '", tmp, "' to --port-file '", path, "'");
}

void
removeLease(std::vector<std::uint64_t> &leases, std::uint64_t id)
{
    for (auto it = leases.begin(); it != leases.end(); ++it) {
        if (*it == id) {
            leases.erase(it);
            return;
        }
    }
}

constexpr std::uint64_t nsPerMs = 1000000ull;

} // namespace

FleetOutcome
serveFleet(const std::vector<FleetServeSpec> &specs,
           const CoordinatorConfig &config)
{
    if (specs.empty())
        fatal("serve needs at least one experiment");

    std::vector<ExperimentState> exps;
    std::vector<std::size_t> job_counts;
    std::size_t total_jobs = 0;
    for (const auto &spec : specs) {
        if (spec.experiment == nullptr)
            panic("serveFleet given a null experiment");
        if (!spec.experiment->setup)
            fatal("experiment '", spec.experiment->name,
                  "' is render-only; a fleet run has nothing to "
                  "lease");
        ExperimentState st;
        st.experiment = spec.experiment;
        st.run = spec.run;
        st.spec = buildExperimentSpec(*spec.experiment, spec.run,
                                      config.gridOverride);
        st.jobs = expandSweep(st.spec);
        st.results.resize(st.jobs.size());
        job_counts.push_back(st.jobs.size());
        total_jobs += st.jobs.size();
        exps.push_back(std::move(st));
    }
    if (total_jobs == 0)
        fatal("the requested grids expand to zero jobs");

    LeaseQueue queue(job_counts, config.leaseJobs,
                     static_cast<std::uint64_t>(config.leaseTimeoutMs) *
                         nsPerMs);
    /** Chunk of every lease ever granted (the queue keeps this
     *  private); Rows validation looks the slice back up here. */
    std::map<std::uint64_t, LeaseQueue::Chunk> chunk_of;

    TcpListener listener;
    if (!listener.listen(config.port))
        fatal("serve: cannot listen on port ", config.port, ": ",
              listener.lastError());
    if (!config.portFile.empty())
        writePortFile(config.portFile, listener.port());
    inform("fleet: serving ", exps.size(), " experiment(s), ",
           total_jobs, " job(s) in ", queue.chunks().size(),
           " lease(s) of up to ", config.leaseJobs,
           " job(s) on port ", listener.port());

    FleetOutcome out;
    std::vector<std::unique_ptr<Client>> clients;
    std::uint64_t last_progress_ns = monotonicNowNs();
    std::size_t last_progress_done = 0;

    /**
     * Handle one decoded message; returns false when the client must
     * be dropped (protocol violation, version skew, or a dead send).
     * `now` is the tick's clock so every message of one tick sees one
     * time.
     */
    const auto handle = [&](Client &c, const FleetMessage &msg,
                            std::uint64_t now) -> bool {
        switch (msg.type) {
          case FleetMessage::Type::Hello: {
            if (msg.protocol != fleetProtocolVersion) {
                FleetMessage err;
                err.type = FleetMessage::Type::Error;
                err.reason = "protocol version " +
                             std::to_string(msg.protocol) +
                             " does not match the coordinator's " +
                             std::to_string(fleetProtocolVersion);
                c.stream.sendLine(encodeFleetMessage(err));
                inform("fleet: rejected worker '", msg.worker, "': ",
                       err.reason);
                return false;
            }
            c.helloed = true;
            if (!msg.worker.empty())
                c.name = msg.worker;
            ++out.workersSeen;
            inform("fleet: worker '", c.name, "' connected (",
                   out.workersSeen, " seen)");
            FleetMessage welcome;
            welcome.type = FleetMessage::Type::Welcome;
            welcome.protocol = fleetProtocolVersion;
            return c.stream.sendLine(encodeFleetMessage(welcome));
          }
          case FleetMessage::Type::LeaseRequest: {
            if (!c.helloed) {
                FleetMessage err;
                err.type = FleetMessage::Type::Error;
                err.reason = "lease_request before hello";
                c.stream.sendLine(encodeFleetMessage(err));
                return false;
            }
            if (queue.complete()) {
                FleetMessage done;
                done.type = FleetMessage::Type::Done;
                return c.stream.sendLine(encodeFleetMessage(done));
            }
            LeaseQueue::Grant grant;
            if (!queue.grant(c.name, now, grant)) {
                // Everything is leased out to someone; the worker
                // should ask again shortly (a lease may expire).
                FleetMessage wait;
                wait.type = FleetMessage::Type::Wait;
                wait.retryMs = config.waitRetryMs;
                return c.stream.sendLine(encodeFleetMessage(wait));
            }
            chunk_of[grant.leaseId] = grant.chunk;
            c.leases.push_back(grant.leaseId);
            const ExperimentState &st =
                exps[grant.chunk.experimentIndex];
            FleetMessage lease;
            lease.type = FleetMessage::Type::Lease;
            lease.leaseId = grant.leaseId;
            lease.experiment = st.experiment->name;
            lease.jobBegin = grant.chunk.begin;
            lease.jobEnd = grant.chunk.end;
            lease.options = st.run;
            lease.gridOverride = config.gridOverride;
            return c.stream.sendLine(encodeFleetMessage(lease));
          }
          case FleetMessage::Type::Heartbeat:
            queue.heartbeat(msg.leaseId, now);
            return true;
          case FleetMessage::Type::Rows: {
            if (!c.helloed) {
                FleetMessage err;
                err.type = FleetMessage::Type::Error;
                err.reason = "rows before hello";
                c.stream.sendLine(encodeFleetMessage(err));
                return false;
            }
            const LeaseQueue::AckResult ack = queue.ack(msg.leaseId);
            FleetMessage reply;
            reply.type = FleetMessage::Type::RowsAck;
            reply.leaseId = msg.leaseId;
            if (ack == LeaseQueue::AckResult::Accepted) {
                const auto it = chunk_of.find(msg.leaseId);
                GRIFFIN_ASSERT(it != chunk_of.end(),
                               "accepted lease has no grant record");
                const LeaseQueue::Chunk &chunk = it->second;
                ExperimentState &st = exps[chunk.experimentIndex];
                // The online form of shard_merge's coverage check:
                // every streamed row must parse and match the exact
                // expanded job it claims to be, or the run is
                // unsalvageable (the two sides expanded different
                // grids — version or flag skew) and dies as a run
                // failure, not a usage error.
                if (msg.rows.size() != chunk.end - chunk.begin)
                    fatalRun("fleet: worker '", c.name, "' sent ",
                             msg.rows.size(), " row(s) for the ",
                             chunk.end - chunk.begin,
                             "-job lease ", msg.leaseId);
                for (std::size_t i = 0; i < msg.rows.size(); ++i) {
                    const std::size_t job_index = chunk.begin + i;
                    const std::string where =
                        "experiment '" + st.experiment->name +
                        "', job " + std::to_string(job_index) +
                        " (from worker '" + c.name + "')";
                    const ResultRow row =
                        parseResultRowLine(msg.rows[i], where);
                    if (row.experiment != st.experiment->name)
                        fatalRun(where, ": row is labeled '",
                                 row.experiment,
                                 "' — worker ran a different "
                                 "experiment?");
                    std::string error;
                    if (!validateRowAgainstJob(row, st.spec,
                                               st.jobs[job_index],
                                               error))
                        fatalRun(where, ": ", error,
                                 " — did the worker expand a "
                                 "different grid (version or flag "
                                 "skew)?");
                    st.results[job_index] = row.result;
                }
                st.doneJobs += msg.rows.size();
                out.rowsStreamed += msg.rows.size();
                removeLease(c.leases, msg.leaseId);
                reply.accepted = true;
            } else {
                reply.accepted = false;
                reply.reason =
                    ack == LeaseQueue::AckResult::Duplicate
                        ? "chunk already completed"
                    : ack == LeaseQueue::AckResult::Stale
                        ? "lease expired; the chunk was re-queued"
                        : "unknown lease id";
                removeLease(c.leases, msg.leaseId);
                inform("fleet: discarded rows from worker '", c.name,
                       "' for lease ", msg.leaseId, " (",
                       reply.reason, ")");
            }
            return c.stream.sendLine(encodeFleetMessage(reply));
          }
          case FleetMessage::Type::Error:
            inform("fleet: worker '", c.name,
                   "' reported an error: ", msg.reason);
            return false;
          default: {
            FleetMessage err;
            err.type = FleetMessage::Type::Error;
            err.reason = "unexpected message from a worker";
            c.stream.sendLine(encodeFleetMessage(err));
            return false;
          }
        }
    };

    while (!queue.complete()) {
        std::vector<int> fds;
        fds.reserve(clients.size() + 1);
        fds.push_back(listener.fd());
        for (const auto &c : clients)
            fds.push_back(c->stream.fd());
        const auto ready = pollReadable(fds, config.pollMs);
        const std::uint64_t now = monotonicNowNs();

        bool listener_ready = false;
        std::vector<bool> client_ready(clients.size(), false);
        for (const std::size_t index : ready) {
            if (index == 0)
                listener_ready = true;
            else
                client_ready[index - 1] = true;
        }

        if (listener_ready) {
            TcpStream stream;
            if (listener.accept(stream, 0)) {
                auto client = std::make_unique<Client>();
                client->stream = std::move(stream);
                clients.push_back(std::move(client));
                client_ready.push_back(false); // polled next tick
            }
        }

        std::vector<bool> drop(clients.size(), false);
        for (std::size_t i = 0; i < clients.size(); ++i) {
            Client &c = *clients[i];
            if (client_ready[i]) {
                const TcpStream::ReadStatus status =
                    c.stream.readIntoBuffer(0);
                if (status != TcpStream::ReadStatus::Ok)
                    drop[i] = true; // drain buffered lines first
            }
            std::string line;
            while (!drop[i] && c.stream.nextLine(line)) {
                FleetMessage msg;
                std::string error;
                if (!decodeFleetMessage(line, msg, error)) {
                    FleetMessage err;
                    err.type = FleetMessage::Type::Error;
                    err.reason = "malformed message: " + error;
                    c.stream.sendLine(encodeFleetMessage(err));
                    inform("fleet: dropping worker '", c.name,
                           "': ", err.reason);
                    drop[i] = true;
                    break;
                }
                if (!handle(c, msg, now))
                    drop[i] = true;
            }
        }

        for (std::size_t i = clients.size(); i-- > 0;) {
            if (!drop[i])
                continue;
            Client &c = *clients[i];
            if (!c.leases.empty()) {
                ++out.workerDeaths;
                const std::size_t requeued = queue.abandon(c.leases);
                inform("fleet: worker '", c.name,
                       "' disconnected holding ", c.leases.size(),
                       " lease(s); ", requeued,
                       " chunk(s) re-queued for stealing");
            } else if (c.helloed) {
                inform("fleet: worker '", c.name, "' disconnected");
            }
            clients.erase(clients.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }

        for (const auto &grant : queue.expire(now)) {
            inform("fleet: lease ", grant.leaseId, " (experiment '",
                   exps[grant.chunk.experimentIndex].experiment->name,
                   "', jobs [", grant.chunk.begin, ", ",
                   grant.chunk.end,
                   ")) missed its heartbeat deadline; re-queued");
            for (const auto &c : clients)
                removeLease(c->leases, grant.leaseId);
        }

        if (config.progressEveryMs > 0 &&
            now - last_progress_ns >=
                static_cast<std::uint64_t>(config.progressEveryMs) *
                    nsPerMs &&
            queue.doneJobs() != last_progress_done) {
            last_progress_ns = now;
            last_progress_done = queue.doneJobs();
            // Live aggregate view on stderr — stdout stays reserved
            // for the final tables so fleet output pipes cleanly.
            Table t("Fleet progress",
                    {"experiment", "jobs", "done", "%"});
            for (const auto &st : exps)
                t.addRow({st.experiment->name,
                          std::to_string(st.jobs.size()),
                          std::to_string(st.doneJobs),
                          Table::num(st.jobs.empty()
                                         ? 100.0
                                         : 100.0 *
                                               static_cast<double>(
                                                   st.doneJobs) /
                                               static_cast<double>(
                                                   st.jobs.size()),
                                     1)});
            t.print(std::cerr);
            std::cerr << "  workers: " << clients.size()
                      << "  active leases: " << queue.activeLeases()
                      << "  pending chunks: " << queue.pendingChunks()
                      << "\n\n";
        }
    }

    // Every job acked exactly once — tell every still-connected
    // worker to exit, then let the sockets close with the listener.
    FleetMessage done;
    done.type = FleetMessage::Type::Done;
    const std::string done_line = encodeFleetMessage(done);
    for (const auto &c : clients)
        if (c->stream.open())
            c->stream.sendLine(done_line);

    out.leases = queue.stats();
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.counter("fleet.leases_granted").add(out.leases.leasesGranted);
    reg.counter("fleet.re_leases").add(out.leases.reLeases);
    reg.counter("fleet.leases_expired").add(out.leases.expired);
    reg.counter("fleet.leases_abandoned").add(out.leases.abandoned);
    reg.counter("fleet.duplicate_acks").add(out.leases.duplicateAcks);
    reg.counter("fleet.rows_streamed").add(out.rowsStreamed);
    reg.counter("fleet.workers").add(out.workersSeen);
    reg.counter("fleet.worker_deaths").add(out.workerDeaths);

    inform("fleet: run complete — ", out.rowsStreamed,
           " row(s) from ", out.workersSeen, " worker(s); ",
           out.leases.leasesGranted, " lease(s) granted, ",
           out.leases.reLeases, " re-leased, ", out.workerDeaths,
           " worker death(s)");

    for (auto &st : exps) {
        FleetExperimentOutcome eo;
        eo.experiment = st.experiment;
        eo.run = st.run;
        eo.sweep = SweepResult(std::move(st.jobs),
                               std::move(st.results),
                               ScheduleCache::Stats{});
        eo.spec = std::move(st.spec);
        out.experiments.push_back(std::move(eo));
    }
    return out;
}

} // namespace griffin
