/**
 * @file
 * Summary statistics used across the evaluation.
 *
 * The paper aggregates per-benchmark metrics with the geometric mean
 * (Section V); geomean() here is that aggregator.
 */

#ifndef GRIFFIN_COMMON_STATS_HH
#define GRIFFIN_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace griffin {

/** Geometric mean of strictly positive values.  Empty input -> 1.0. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean.  Empty input -> 0.0. */
double mean(const std::vector<double> &values);

/**
 * Sample standard deviation (Bessel's N−1 divisor).  The inputs here
 * are small per-network samples — a handful of benchmark speedups, not
 * a full population — where the population (N) estimator is
 * noticeably biased low.  Fewer than 2 values -> 0.0.
 */
double stddev(const std::vector<double> &values);

/**
 * Streaming accumulator for min / max / mean / count without storing
 * samples.  Used by the simulator for per-tile cycle statistics.
 */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace griffin

#endif // GRIFFIN_COMMON_STATS_HH
