/**
 * @file
 * Minimal JSON parsing for the repo's own machine-readable outputs.
 *
 * The result sinks (runtime/result_sink.hh) emit deterministic JSON /
 * JSON Lines documents; the shard-merge tooling needs to read them
 * back to validate coverage and re-render aggregate tables post hoc.
 * This is a small recursive-descent parser over RFC 8259 — objects,
 * arrays, strings with the escapes our writer emits (plus \uXXXX),
 * numbers, booleans, null — returning an ordered document tree.
 *
 * Numbers keep their raw token alongside the parsed double, so 64-bit
 * cycle counts round-trip exactly (asInt() re-parses the token rather
 * than truncating a double).
 */

#ifndef GRIFFIN_COMMON_JSON_HH
#define GRIFFIN_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace griffin {

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** String contents (Kind::String, unescaped) or the raw numeric
     *  token (Kind::Number). */
    std::string text;
    std::vector<JsonValue> items; ///< Kind::Array elements, in order
    /** Kind::Object members in document order (our writers use fixed
     *  key order, so order-preserving round-trips are possible). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Member lookup (first match); null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Parsed forms; fatal() on a kind mismatch or unparsable token. */
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;
    bool asBool() const;
};

/**
 * Parse one JSON document.  Trailing content after the value is an
 * error (parse JSON Lines line by line).  Returns false and fills
 * `error` (with a byte offset) on malformed input.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace griffin

#endif // GRIFFIN_COMMON_JSON_HH
