/**
 * @file
 * Small portable TCP wrapper for the fleet coordinator/worker pair.
 *
 * Deliberately minimal: blocking POSIX sockets behind two RAII types —
 * TcpListener (bind/listen/accept) and TcpStream (connect/send/recv)
 * — plus a newline-framed message layer (sendLine / receive buffer /
 * nextLine) matching the fleet protocol's one-JSON-object-per-line
 * framing.  Readiness is poll(2)-based so a single-threaded server
 * can multiplex a listener and many client streams without ever
 * blocking on one of them.
 *
 * Error reporting is by return value (+ lastError() text), never
 * fatal(): connection loss is an expected event in a fleet — the
 * callers own the retry/re-lease policy.  SIGPIPE is suppressed per
 * send (MSG_NOSIGNAL), so a peer death surfaces as a send error, not
 * a process kill.
 */

#ifndef GRIFFIN_COMMON_SOCKET_HH
#define GRIFFIN_COMMON_SOCKET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace griffin {

/** Close an open fd, ignoring EINTR; no-op on -1. */
void closeFd(int fd);

/**
 * One connected, blocking TCP stream with a newline-framed receive
 * buffer.  Movable, not copyable; the destructor closes the fd.
 */
class TcpStream
{
  public:
    TcpStream() = default;
    /** Adopt an already-connected fd (e.g. from TcpListener::accept). */
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream() { close(); }

    TcpStream(TcpStream &&o) noexcept;
    TcpStream &operator=(TcpStream &&o) noexcept;
    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    /**
     * Connect to host:port (numeric or resolvable host).  Returns
     * false with lastError() set on failure; an already-open stream is
     * closed first.
     */
    bool connect(const std::string &host, std::uint16_t port);

    bool open() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /**
     * Send `line` plus a trailing '\n', looping until fully written.
     * Returns false (and closes the stream) on any send error — the
     * peer is gone.  `line` must not itself contain '\n' (the framing
     * delimiter); that is a caller bug and panics.
     */
    bool sendLine(const std::string &line);

    /** Outcome of one readIntoBuffer() call. */
    enum class ReadStatus
    {
        Ok,   ///< bytes arrived (or nothing ready yet)
        Eof,  ///< orderly peer close
        Error ///< read error; stream closed
    };

    /**
     * Wait up to `timeout_ms` for readability (-1 = forever, 0 = no
     * wait) and append whatever is available to the receive buffer.
     * One poll + one read; call in a loop for more.
     */
    ReadStatus readIntoBuffer(int timeout_ms);

    /**
     * Pop the next complete '\n'-terminated line (delimiter stripped)
     * off the receive buffer.  False when no complete line is
     * buffered.
     */
    bool nextLine(std::string &out);

    /**
     * Blocking convenience: poll/read until a full line, EOF, error,
     * or the deadline elapses (re-polling with the remaining budget,
     * so a line split across segments is not a spurious timeout).
     * -1 waits forever.  False on anything but a complete line
     * (lastError() distinguishes).
     */
    bool recvLine(std::string &out, int timeout_ms);

    const std::string &lastError() const { return error_; }

  private:
    int fd_ = -1;
    std::string buffer_;
    std::string error_;
};

/**
 * Listening TCP socket.  Binds 0.0.0.0; port 0 picks an ephemeral
 * port, readable afterwards via port() — tests and scripts hand it to
 * workers through a --port-file.
 */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** Bind + listen.  False with lastError() set on failure. */
    bool listen(std::uint16_t port, int backlog = 16);

    bool open() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    /** The bound port (resolves ephemeral port 0 requests). */
    std::uint16_t port() const { return port_; }
    void close();

    /**
     * Wait up to `timeout_ms` (-1 = forever) for a pending connection
     * and accept it.  False when nothing arrived (or on error; check
     * lastError()).
     */
    bool accept(TcpStream &out, int timeout_ms);

    const std::string &lastError() const { return error_; }

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::string error_;
};

/**
 * poll(2) a set of fds for readability; returns the indices of the
 * ready ones (empty on timeout).  -1 waits forever.
 */
std::vector<std::size_t> pollReadable(const std::vector<int> &fds,
                                      int timeout_ms);

/**
 * Split "host:port" into its parts; false on a malformed spec (no
 * colon, empty host, or a port outside 1..65535).
 */
bool parseHostPort(const std::string &spec, std::string &host,
                   std::uint16_t &port);

} // namespace griffin

#endif // GRIFFIN_COMMON_SOCKET_HH
