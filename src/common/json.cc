#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace griffin {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        fatal("JSON value is not a number");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("unparsable JSON number token '", text, "'");
    return v;
}

std::int64_t
JsonValue::asInt() const
{
    if (kind != Kind::Number)
        fatal("JSON value is not a number");
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        fatal("JSON number token '", text,
              "' is not a 64-bit integer");
    return static_cast<std::int64_t>(v);
}

std::uint64_t
JsonValue::asUint() const
{
    if (kind != Kind::Number)
        fatal("JSON value is not a number");
    if (!text.empty() && text[0] == '-')
        fatal("JSON number token '", text, "' is negative");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        fatal("JSON number token '", text,
              "' is not an unsigned 64-bit integer");
    return static_cast<std::uint64_t>(v);
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        fatal("JSON value is not a string");
    return text;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        fatal("JSON value is not a boolean");
    return boolean;
}

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing content after JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseLiteral(const char *word, JsonValue &out, JsonValue::Kind kind,
                 bool boolean)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size())
                return fail("truncated escape");
            const char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size())
                      return fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_ + i];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return fail("malformed \\u escape");
                  }
                  pos_ += 4;
                  // UTF-8-encode the code point (our writer only emits
                  // \u00xx control escapes, but accept the full BMP;
                  // surrogate pairs are out of scope for our files).
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xc0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3f));
                  } else {
                      out += static_cast<char>(0xe0 | (code >> 12));
                      out += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3f));
                      out += static_cast<char>(0x80 | (code & 0x3f));
                  }
                  break;
              }
              default:
                  return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("malformed number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (consume('.')) {
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed number fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed number exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out.kind = JsonValue::Kind::Number;
        out.text = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth_ > maxDepth)
            return fail("JSON nesting too deep");
        bool ok = parseValueInner(out);
        --depth_;
        return ok;
    }

    bool
    parseValueInner(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{': {
              ++pos_;
              out.kind = JsonValue::Kind::Object;
              skipSpace();
              if (consume('}'))
                  return true;
              while (true) {
                  skipSpace();
                  std::string key;
                  if (!parseString(key))
                      return false;
                  skipSpace();
                  if (!consume(':'))
                      return fail("expected ':' in object");
                  JsonValue value;
                  if (!parseValue(value))
                      return false;
                  out.members.emplace_back(std::move(key),
                                           std::move(value));
                  skipSpace();
                  if (consume(','))
                      continue;
                  if (consume('}'))
                      return true;
                  return fail("expected ',' or '}' in object");
              }
          }
          case '[': {
              ++pos_;
              out.kind = JsonValue::Kind::Array;
              skipSpace();
              if (consume(']'))
                  return true;
              while (true) {
                  JsonValue value;
                  if (!parseValue(value))
                      return false;
                  out.items.push_back(std::move(value));
                  skipSpace();
                  if (consume(','))
                      continue;
                  if (consume(']'))
                      return true;
                  return fail("expected ',' or ']' in array");
              }
          }
          case '"':
              out.kind = JsonValue::Kind::String;
              return parseString(out.text);
          case 't':
              return parseLiteral("true", out, JsonValue::Kind::Bool,
                                  true);
          case 'f':
              return parseLiteral("false", out, JsonValue::Kind::Bool,
                                  false);
          case 'n':
              return parseLiteral("null", out, JsonValue::Kind::Null,
                                  false);
          default:
              return parseNumber(out);
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    static constexpr int maxDepth = 64;

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    error.clear();
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace griffin
