/**
 * @file
 * Bump-pointer arena for per-layer scheduling worksets.
 *
 * The hot scheduling path builds the same transient structures for
 * every tile — occupancy masks, CSR slot queues, cursor arrays — and
 * used to hit the global allocator for each of them (a vector of
 * vectors per SlotQueues, reallocating op vectors).  The arena turns
 * that into pointer bumps: allocations are uninitialized, contiguous,
 * and freed wholesale by rewinding to a marker when the tile is done.
 *
 * Thread safety: an Arena is single-threaded by design.  The intended
 * use is the per-thread `workArena()`, so concurrent tiles on the
 * work-stealing pool never share one.  Memory is retained across
 * rewinds (per-thread high-water mark), which is exactly what a tile
 * loop wants: after the first tile, no allocation at all.
 */

#ifndef GRIFFIN_COMMON_ARENA_HH
#define GRIFFIN_COMMON_ARENA_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace griffin {

class Arena
{
  public:
    explicit Arena(std::size_t block_bytes = 1u << 16)
        : blockBytes_(block_bytes)
    {
        GRIFFIN_ASSERT(block_bytes > 0, "arena block size must be "
                       "positive");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Rewind target: (block index, bytes used inside it). */
    struct Marker
    {
        std::size_t block = 0;
        std::size_t used = 0;
    };

    Marker mark() const { return {block_, used_}; }

    /**
     * Drop every allocation made after `m`.  The memory stays owned by
     * the arena and is reused by later allocations.
     */
    void
    rewind(const Marker &m)
    {
        GRIFFIN_ASSERT(m.block < blocks_.size() ||
                       (m.block == 0 && blocks_.empty()),
                       "arena marker outlives its blocks");
        block_ = m.block;
        used_ = m.used;
    }

    /**
     * `count` default-constructible trivially-destructible objects,
     * uninitialized, aligned for T.  The pointer is valid until the
     * covering marker is rewound past.
     */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        static_assert(std::is_trivially_destructible<T>::value,
                      "arena memory is reclaimed without destructors");
        const std::size_t bytes = count * sizeof(T);
        return static_cast<T *>(allocBytes(bytes, alignof(T)));
    }

    /** `count` value-initialized (zeroed) objects. */
    template <typename T>
    T *
    allocZeroed(std::size_t count)
    {
        T *p = alloc<T>(count);
        for (std::size_t i = 0; i < count; ++i)
            p[i] = T{};
        return p;
    }

    /** Total bytes currently reserved (all blocks, used or not). */
    std::size_t
    reservedBytes() const
    {
        std::size_t total = 0;
        for (const auto &b : blocks_)
            total += b.size;
        return total;
    }

  private:
    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
    };

    void *
    allocBytes(std::size_t bytes, std::size_t align)
    {
        if (blocks_.empty())
            pushBlock(bytes + align);
        for (;;) {
            Block &b = blocks_[block_];
            const auto base =
                reinterpret_cast<std::uintptr_t>(b.data.get());
            const std::size_t aligned =
                (static_cast<std::size_t>(base) + used_ + align - 1) /
                    align * align -
                static_cast<std::size_t>(base);
            if (aligned + bytes <= b.size) {
                used_ = aligned + bytes;
                return b.data.get() + aligned;
            }
            // Current block is full: move to the next, growing the
            // chain if needed.  A block always fits the request.
            if (block_ + 1 == blocks_.size())
                pushBlock(bytes + align);
            ++block_;
            used_ = 0;
        }
    }

    void
    pushBlock(std::size_t at_least)
    {
        Block b;
        b.size = std::max(blockBytes_, at_least);
        b.data = std::make_unique<unsigned char[]>(b.size);
        blocks_.push_back(std::move(b));
    }

    std::size_t blockBytes_;
    std::vector<Block> blocks_;
    std::size_t block_ = 0;
    std::size_t used_ = 0;
};

/** RAII rewind: allocations made inside the scope die with it. */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena &arena)
        : arena_(arena), marker_(arena.mark())
    {
    }

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

    ~ArenaScope() { arena_.rewind(marker_); }

  private:
    Arena &arena_;
    Arena::Marker marker_;
};

/**
 * The calling thread's scheduling arena.  Every worker thread gets its
 * own, so tile jobs on the pool never contend; memory persists for the
 * thread's lifetime at its high-water mark.
 */
inline Arena &
workArena()
{
    thread_local Arena arena(1u << 18);
    return arena;
}

} // namespace griffin

#endif // GRIFFIN_COMMON_ARENA_HH
