/**
 * @file
 * ASCII / CSV table rendering for benches and reports.
 *
 * Every bench binary regenerates a paper table or figure series; this
 * writer keeps their output uniform and machine-parsable.
 */

#ifndef GRIFFIN_COMMON_TABLE_HH
#define GRIFFIN_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace griffin {

/**
 * Column-aligned text table with an optional title, renderable as
 * boxed ASCII or CSV.
 *
 * Usage:
 *   Table t("Fig. 5(a)", {"config", "speedup"});
 *   t.addRow({"B(4,0,1,on)", Table::num(2.47)});
 *   t.print(std::cout);
 */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> headers);

    /** Add one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with box-drawing alignment. */
    void print(std::ostream &os) const;

    /** Render as CSV (no title line). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t cols() const { return headers_.size(); }
    const std::string &cell(std::size_t r, std::size_t c) const;
    const std::string &title() const { return title_; }
    const std::vector<std::string> &headers() const { return headers_; }

    /** Format a double with fixed precision (default 2 decimals). */
    static std::string num(double v, int precision = 2);

    /** Format an integer with thousands separators (1,234,567). */
    static std::string count(std::uint64_t v);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace griffin

#endif // GRIFFIN_COMMON_TABLE_HH
