/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic choice in the library (synthetic sparsity masks,
 * tile sampling phases, test tensors) flows through Rng so that runs
 * are exactly reproducible from a single seed.
 */

#ifndef GRIFFIN_COMMON_RNG_HH
#define GRIFFIN_COMMON_RNG_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace griffin {

/**
 * MT19937-64 with block-buffered output: the twist refills all 312
 * state words at once and the output tempering — element-independent —
 * runs through the SIMD kernel table (simd/occupancy.hh).  Every value
 * is bit-identical to std::mt19937_64 from the same seed ([rand.eng.
 * mers] specifies the generator exactly; tests/test_rng.cc pins the
 * equivalence), so historical baselines are unaffected — operand
 * generation just stops paying a per-call engine.
 *
 * Satisfies UniformRandomBitGenerator with the same result_type and
 * range as std::mt19937_64, so the std distributions over it follow
 * the exact same value path.
 */
class Mt64
{
  public:
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    explicit Mt64(result_type seed);

    result_type
    operator()()
    {
        if (pos_ >= kN)
            refill();
        return out_[pos_++];
    }

  private:
    static constexpr int kN = 312;

    void refill();

    std::uint64_t state_[kN];
    std::uint64_t out_[kN];
    int pos_ = kN;
};

/**
 * A seeded mt19937_64 with the handful of draws the library needs.
 *
 * Not thread-safe; create one per thread of work.
 */
class Rng
{
  public:
    /** Library-wide default seed: reproducible out of the box. */
    static constexpr std::uint64_t defaultSeed = 0x5eed'061f'f100'2022ULL;

    explicit Rng(std::uint64_t seed);
    Rng() : Rng(defaultSeed) {}

    // The per-value draws are defined inline: operand generation calls
    // them once per matrix element, and the out-of-line versions spent
    // more time on call overhead than in the engine.  The distribution
    // objects and call order are unchanged — the value sequence from a
    // given seed is bit-identical to the historical one.

    /** Uniform integer in [lo, hi] inclusive.  Requires lo <= hi. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        GRIFFIN_ASSERT(lo <= hi, "uniformInt with lo ", lo, " > hi ",
                       hi);
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        // Explicit canonical form: one engine draw scaled by 2^-64,
        // clamped below one where the 53-bit rounding of the largest
        // draws lands on 1.0.  This is bit-identical to the
        // libstdc++ uniform_real_distribution(0,1) over mt19937_64
        // that produced every existing baseline, but skips the
        // generate_canonical long-double path that dominated operand
        // generation profiles.
        const double r =
            static_cast<double>(engine_()) * 0x1p-64;
        return r < 1.0 ? r : 0x1.fffffffffffffp-1;
    }

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool
    bernoulli(double p)
    {
        p = std::clamp(p, 0.0, 1.0);
        return uniform01() < p;
    }

    /**
     * Nonzero INT8 value, uniform over [-128,127] \ {0}.  Used when a
     * position must be effectual by construction.
     */
    std::int8_t
    nonzeroInt8()
    {
        // Draw from [-128, 126] and shift the zero out of the range so
        // all 255 nonzero values stay equally likely.
        auto v = uniformInt(-128, 126);
        if (v >= 0)
            ++v;
        return static_cast<std::int8_t>(v);
    }

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<std::size_t> &v);

    /**
     * Derive an independent child generator.  Used to give each layer
     * or tile its own stream so results do not depend on visit order.
     */
    Rng fork();

    /**
     * Deterministically fold `salt` into `seed` (splitmix64 finalizer).
     * Order-independent job seeding for the parallel runner and the
     * content hashing of the schedule cache both flow through this, so
     * derived streams never depend on which thread asked first.
     */
    static std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t salt);

    /** mixSeed over every byte of a string salt. */
    static std::uint64_t mixSeed(std::uint64_t seed,
                                 const std::string &salt);

  private:
    Mt64 engine_;
};

} // namespace griffin

#endif // GRIFFIN_COMMON_RNG_HH
