/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic choice in the library (synthetic sparsity masks,
 * tile sampling phases, test tensors) flows through Rng so that runs
 * are exactly reproducible from a single seed.
 */

#ifndef GRIFFIN_COMMON_RNG_HH
#define GRIFFIN_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace griffin {

/**
 * A seeded mt19937_64 with the handful of draws the library needs.
 *
 * Not thread-safe; create one per thread of work.
 */
class Rng
{
  public:
    /** Library-wide default seed: reproducible out of the box. */
    static constexpr std::uint64_t defaultSeed = 0x5eed'061f'f100'2022ULL;

    explicit Rng(std::uint64_t seed);
    Rng() : Rng(defaultSeed) {}

    /** Uniform integer in [lo, hi] inclusive.  Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /**
     * Nonzero INT8 value, uniform over [-128,127] \ {0}.  Used when a
     * position must be effectual by construction.
     */
    std::int8_t nonzeroInt8();

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<std::size_t> &v);

    /**
     * Derive an independent child generator.  Used to give each layer
     * or tile its own stream so results do not depend on visit order.
     */
    Rng fork();

    /**
     * Deterministically fold `salt` into `seed` (splitmix64 finalizer).
     * Order-independent job seeding for the parallel runner and the
     * content hashing of the schedule cache both flow through this, so
     * derived streams never depend on which thread asked first.
     */
    static std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t salt);

    /** mixSeed over every byte of a string salt. */
    static std::uint64_t mixSeed(std::uint64_t seed,
                                 const std::string &salt);

  private:
    std::mt19937_64 engine_;
};

} // namespace griffin

#endif // GRIFFIN_COMMON_RNG_HH
