/**
 * @file
 * Clang thread-safety annotation macros (no-ops everywhere else).
 *
 * These wrap Clang's `-Wthread-safety` attribute set so the locking
 * discipline of the concurrent subsystems — ThreadPool, the
 * ContentCache shards, MetricsRegistry, the telemetry thread buffers —
 * is machine-checked at compile time under Clang and costs nothing
 * under GCC (which silently has no such attributes; every macro
 * expands to nothing there).
 *
 * Vocabulary (see common/mutex.hh for the annotated Mutex/MutexLock
 * types these attach to):
 *
 *   GRIFFIN_CAPABILITY(x)      this class is a lockable capability
 *                              (put on Mutex itself)
 *   GRIFFIN_SCOPED_CAPABILITY  this class acquires on construction and
 *                              releases on destruction (MutexLock)
 *   GRIFFIN_GUARDED_BY(mu)     this field may only be read or written
 *                              while `mu` is held
 *   GRIFFIN_PT_GUARDED_BY(mu)  as above, for the pointee of a pointer
 *   GRIFFIN_REQUIRES(mu)       callers of this function must already
 *                              hold `mu`
 *   GRIFFIN_ACQUIRE(mu) / GRIFFIN_RELEASE(mu)
 *                              this function takes / drops `mu`
 *                              (annotate lock()/unlock() themselves)
 *   GRIFFIN_TRY_ACQUIRE(ok, mu)
 *                              acquires `mu` when returning `ok`
 *   GRIFFIN_EXCLUDES(mu)       this function must NOT be entered with
 *                              `mu` held (self-deadlock guard)
 *   GRIFFIN_RETURN_CAPABILITY(mu)
 *                              this function returns a reference to
 *                              the capability `mu`
 *   GRIFFIN_NO_THREAD_SAFETY_ANALYSIS
 *                              opt one function out (use sparingly,
 *                              with a comment saying why the analysis
 *                              cannot see the invariant)
 *
 * How to run the analysis locally (needs clang):
 *
 *     CXX=clang++ cmake -B build-tsa -S . \
 *         -DCMAKE_CXX_FLAGS=-Wthread-safety
 *     cmake --build build-tsa -j
 *
 * CI's clang build compiles with -Wthread-safety -Werror, so a
 * guarded field touched without its mutex fails the build.
 */

#ifndef GRIFFIN_COMMON_THREAD_ANNOTATIONS_HH
#define GRIFFIN_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GRIFFIN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef GRIFFIN_THREAD_ANNOTATION
#define GRIFFIN_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define GRIFFIN_CAPABILITY(x) GRIFFIN_THREAD_ANNOTATION(capability(x))

#define GRIFFIN_SCOPED_CAPABILITY GRIFFIN_THREAD_ANNOTATION(scoped_lockable)

#define GRIFFIN_GUARDED_BY(x) GRIFFIN_THREAD_ANNOTATION(guarded_by(x))

#define GRIFFIN_PT_GUARDED_BY(x) GRIFFIN_THREAD_ANNOTATION(pt_guarded_by(x))

#define GRIFFIN_REQUIRES(...)                                              \
    GRIFFIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define GRIFFIN_ACQUIRE(...)                                               \
    GRIFFIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define GRIFFIN_RELEASE(...)                                               \
    GRIFFIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define GRIFFIN_TRY_ACQUIRE(...)                                           \
    GRIFFIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define GRIFFIN_EXCLUDES(...)                                              \
    GRIFFIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define GRIFFIN_RETURN_CAPABILITY(x)                                       \
    GRIFFIN_THREAD_ANNOTATION(lock_returned(x))

#define GRIFFIN_NO_THREAD_SAFETY_ANALYSIS                                  \
    GRIFFIN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // GRIFFIN_COMMON_THREAD_ANNOTATIONS_HH
