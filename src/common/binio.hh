/**
 * @file
 * Fixed-width little-endian scalar I/O for binary file formats.
 *
 * The persistent schedule-cache format (sched/b_preprocess.cc payload,
 * runtime/cache_store.cc container) is defined in these units: every
 * scalar is written as exactly 8 little-endian bytes, independent of
 * host byte order and integer widths, so a cache file written on one
 * platform parses on any other.
 */

#ifndef GRIFFIN_COMMON_BINIO_HH
#define GRIFFIN_COMMON_BINIO_HH

#include <cstdint>
#include <istream>
#include <ostream>

namespace griffin {

inline void
putU64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf, 8);
}

inline void
putI64(std::ostream &os, std::int64_t v)
{
    putU64(os, static_cast<std::uint64_t>(v));
}

/** False on short read; `v` is unspecified then. */
inline bool
getU64(std::istream &is, std::uint64_t &v)
{
    char buf[8];
    if (!is.read(buf, 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    return true;
}

inline bool
getI64(std::istream &is, std::int64_t &v)
{
    std::uint64_t u = 0;
    if (!getU64(is, u))
        return false;
    v = static_cast<std::int64_t>(u);
    return true;
}

} // namespace griffin

#endif // GRIFFIN_COMMON_BINIO_HH
