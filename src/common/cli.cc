#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace griffin {

namespace {

/** Token a Kind::Bool flag accepts as a separate-argument value. */
bool
isBoolToken(const std::string &token)
{
    return token == "true" || token == "false" || token == "on" ||
           token == "off" || token == "0" || token == "1";
}

} // namespace

Cli::Cli(std::string program_description)
    : description_(std::move(program_description))
{
}

void
Cli::addInt(const std::string &name, std::int64_t def,
            const std::string &help)
{
    flags_[name] = {Kind::Int, std::to_string(def), std::to_string(def),
                    help};
}

void
Cli::addDouble(const std::string &name, double def, const std::string &help)
{
    std::ostringstream os;
    os << def;
    flags_[name] = {Kind::Double, os.str(), os.str(), help};
}

void
Cli::addString(const std::string &name, const std::string &def,
               const std::string &help)
{
    flags_[name] = {Kind::String, def, def, help};
}

void
Cli::addBool(const std::string &name, bool def, const std::string &help)
{
    const std::string v = def ? "true" : "false";
    flags_[name] = {Kind::Bool, v, v, help};
}

const Cli::Flag &
Cli::find(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    GRIFFIN_ASSERT(it != flags_.end(), "flag --", name, " not declared");
    GRIFFIN_ASSERT(it->second.kind == kind,
                   "flag --", name, " queried with the wrong type");
    return it->second;
}

void
Cli::set(const std::string &name, const std::string &value)
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        fatal("unknown flag --", name, "\n", usage());
    it->second.value = value;
}

std::vector<std::string>
Cli::parse(int argc, const char *const *argv)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            set(arg.substr(0, eq), arg.substr(eq + 1));
            continue;
        }
        auto it = flags_.find(arg);
        if (it == flags_.end())
            fatal("unknown flag --", arg, "\n", usage());
        if (it->second.kind == Kind::Bool) {
            // A bare switch means true, but honour a separate-token
            // boolean value ("--shuffle off") instead of silently
            // setting the flag and demoting the value to a positional.
            if (i + 1 < argc && isBoolToken(argv[i + 1]))
                it->second.value = argv[++i];
            else
                it->second.value = "true";
        } else {
            if (i + 1 >= argc)
                fatal("flag --", arg, " expects a value");
            it->second.value = argv[++i];
        }
    }
    return positional;
}

std::int64_t
Cli::getInt(const std::string &name) const
{
    const auto &flag = find(name, Kind::Int);
    char *end = nullptr;
    const auto v = std::strtoll(flag.value.c_str(), &end, 10);
    // end == start catches the empty value ("--iters="): strtoll
    // consumes nothing but still leaves *end == '\0' there.
    if (end == flag.value.c_str() || *end != '\0')
        fatal("flag --", name, " expects an integer, got '", flag.value,
              "'");
    return v;
}

double
Cli::getDouble(const std::string &name) const
{
    const auto &flag = find(name, Kind::Double);
    char *end = nullptr;
    const double v = std::strtod(flag.value.c_str(), &end);
    // end == start rejects the empty value, which strtod "parses" as
    // 0.0 with *end == '\0'.
    if (end == flag.value.c_str() || *end != '\0')
        fatal("flag --", name, " expects a number, got '", flag.value, "'");
    return v;
}

std::string
Cli::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

bool
Cli::getBool(const std::string &name) const
{
    const auto &flag = find(name, Kind::Bool);
    if (flag.value == "true" || flag.value == "1" || flag.value == "on")
        return true;
    if (flag.value == "false" || flag.value == "0" || flag.value == "off")
        return false;
    fatal("flag --", name, " expects a boolean, got '", flag.value, "'");
}

std::string
Cli::usage() const
{
    std::ostringstream os;
    os << description_ << "\n\nflags:\n";
    for (const auto &[name, flag] : flags_) {
        os << "  --" << name << " (default: " << flag.def << ")\n      "
           << flag.help << "\n";
    }
    return os.str();
}

} // namespace griffin
