/**
 * @file
 * Small string helpers shared by the CLI drivers and the grid parser.
 *
 * These existed as per-binary copies (bench_runner had its own
 * splitList); hoisted here so GridSpec parsing, preset lookup, and the
 * benches share one tested implementation.
 */

#ifndef GRIFFIN_COMMON_STRINGS_HH
#define GRIFFIN_COMMON_STRINGS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace griffin {

/**
 * Split on `sep`, dropping empty items — so trailing separators and
 * doubled separators are harmless ("a,,b," -> {"a", "b"}).
 */
std::vector<std::string> splitList(const std::string &text, char sep = ',');

/**
 * Like splitList, but a separator inside (...) or [...] does not
 * split: "B(2,0,0,off),B(2,1,0,on)" -> two items.  Needed because
 * routing-spec architecture names embed commas.  Unbalanced closers
 * are treated as literal characters (depth never goes negative).
 */
std::vector<std::string> splitTopLevel(const std::string &text,
                                       char sep = ',');

/** Strip leading and trailing whitespace (space, tab, CR, LF). */
std::string trim(const std::string &s);

/**
 * Levenshtein edit distance — used for "did you mean ...?" diagnostics
 * when an axis or flag name does not match anything known.
 */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The `candidates` entry closest to `name`: substring containment in
 * either direction wins outright, then edit distance (first candidate
 * on ties, in candidate order).  Empty string for no candidates.
 */
std::string nearestName(const std::string &name,
                        const std::vector<std::string> &candidates);

/**
 * Shortest decimal form that round-trips the double (std::to_chars):
 * deterministic for equal inputs and locale-independent.  The JSON
 * sink's number formatting and grid-range value tokens both use this.
 */
std::string formatShortestDouble(double v);

/**
 * RFC 4180 CSV field quoting: a field containing a comma, a double
 * quote, or a line break is wrapped in double quotes with embedded
 * quotes doubled; anything else passes through unchanged.  Routing-spec
 * architecture names like `B(4,0,1,on)` make this load-bearing — an
 * unquoted one shifts every downstream column of the row.
 */
std::string csvEscape(const std::string &field);

} // namespace griffin

#endif // GRIFFIN_COMMON_STRINGS_HH
