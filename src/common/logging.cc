#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace griffin {
namespace detail {

namespace {

/**
 * Serialises all log writes.  Parallel runner jobs warn() and inform()
 * concurrently; without the lock their lines interleave mid-message.
 * panic()/fatal() also take it so a crash message is never shredded by
 * a concurrent status line (abort/exit follow after release).
 */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace griffin
