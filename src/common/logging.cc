#include "common/logging.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace griffin {
namespace detail {

namespace {

/**
 * Serialises all log writes.  Parallel runner jobs warn() and inform()
 * concurrently; without the lock their lines interleave mid-message.
 * panic()/fatal() also take it so a crash message is never shredded by
 * a concurrent status line (abort/exit follow after release).
 */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

/**
 * Monotonic epoch for log timestamps, pinned at static-init time.
 * steady_clock, not system_clock: sweeps care about relative spacing
 * between lines, and a wall-clock adjustment (NTP step, suspend)
 * mid-run would make the log appear to travel in time.
 */
std::chrono::steady_clock::time_point
logEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

[[maybe_unused]] const auto log_epoch_initialized = logEpoch();

/** "[+12.345s] " — monotonic seconds since process start. */
std::string
timestamp()
{
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      logEpoch())
            .count();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[+%.3fs] ", seconds);
    return buf;
}

/**
 * One log record as a single fwrite + fflush under the lock.  fprintf
 * may issue several underlying writes for one format string, which can
 * shear against another *process* sharing the stream (fleet shards) or
 * against an unlocked stdio on some platforms even though our own
 * threads hold the mutex — so the whole record is materialised first
 * and handed to stdio as one buffer, flushed before the lock drops.
 */
void
emit(const std::string &record)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(record.data(), 1, record.size(), stderr);
    std::fflush(stderr);
}

std::string
errorRecord(const char *severity, const char *file, int line,
            const std::string &msg)
{
    return std::string(severity) + ": " + timestamp() + msg + "\n  @ " +
           file + ":" + std::to_string(line) + "\n";
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit(errorRecord("panic", file, line, msg));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emit(errorRecord("fatal", file, line, msg));
    std::exit(exitUsageError);
}

void
fatalRunImpl(const char *file, int line, const std::string &msg)
{
    emit(errorRecord("error", file, line, msg));
    std::exit(exitRunFailure);
}

void
warnImpl(const std::string &msg)
{
    emit("warn: " + timestamp() + msg + "\n");
}

void
informImpl(const std::string &msg)
{
    emit("info: " + timestamp() + msg + "\n");
}

} // namespace detail
} // namespace griffin
