/**
 * @file
 * Minimal command-line flag parser shared by examples and benches.
 *
 * Supports --name=value and --name value forms plus bare boolean
 * switches (--exact).  A boolean flag also honours a separate-token
 * value when the next argument is one of true/false/on/off/0/1
 * (--shuffle off), rather than treating it as a positional.  Unknown
 * flags and empty numeric values are fatal() user errors so typos
 * never silently fall back to defaults or parse as zero.
 */

#ifndef GRIFFIN_COMMON_CLI_HH
#define GRIFFIN_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace griffin {

/**
 * Declarative flag registry: declare flags with defaults and help
 * text, then parse() argv.  Query with getInt/getDouble/getString/
 * getBool after parsing.
 */
class Cli
{
  public:
    explicit Cli(std::string program_description);

    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    void addBool(const std::string &name, bool def, const std::string &help);

    /**
     * Parse argv.  Handles --help by printing usage and exiting 0.
     * Returns positional (non-flag) arguments in order.
     */
    std::vector<std::string> parse(int argc, const char *const *argv);

    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    std::string getString(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Render usage text (also shown by --help). */
    std::string usage() const;

  private:
    enum class Kind { Int, Double, String, Bool };

    struct Flag
    {
        Kind kind;
        std::string value;
        std::string def;
        std::string help;
    };

    const Flag &find(const std::string &name, Kind kind) const;
    void set(const std::string &name, const std::string &value);

    std::string description_;
    std::map<std::string, Flag> flags_;
};

} // namespace griffin

#endif // GRIFFIN_COMMON_CLI_HH
