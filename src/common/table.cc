#include "common/table.hh"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace griffin {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    GRIFFIN_ASSERT(!headers_.empty(), "table '", title_, "' has no columns");
}

void
Table::addRow(std::vector<std::string> cells)
{
    GRIFFIN_ASSERT(cells.size() == headers_.size(),
                   "table '", title_, "': row has ", cells.size(),
                   " cells, expected ", headers_.size());
    rows_.push_back(std::move(cells));
}

const std::string &
Table::cell(std::size_t r, std::size_t c) const
{
    GRIFFIN_ASSERT(r < rows_.size() && c < headers_.size(),
                   "table cell (", r, ",", c, ") out of range");
    return rows_[r][c];
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c] << " |";
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    rule();
    line(headers_);
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::count(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int since_sep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_sep == 3) {
            out += ',';
            since_sep = 0;
        }
        out += *it;
        ++since_sep;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace griffin
