/**
 * @file
 * Annotated mutex primitives for Clang's thread-safety analysis.
 *
 * The standard library's std::mutex / std::lock_guard carry no
 * capability annotations in libstdc++, so `-Wthread-safety` cannot see
 * them being taken and every GRIFFIN_GUARDED_BY field would warn on
 * correct code.  These thin wrappers — zero-overhead over the std
 * types they hold — exist purely to carry the annotations:
 *
 *   Mutex      an annotated std::mutex (CAPABILITY)
 *   MutexLock  an annotated scoped lock (SCOPED_CAPABILITY), the
 *              project's std::lock_guard / std::unique_lock
 *   CondVar    a condition variable that waits on a MutexLock; from
 *              the analysis' viewpoint the capability stays held
 *              across wait() (true at entry and exit, which is what
 *              callers may rely on)
 *
 * Discipline: fields shared across threads get GRIFFIN_GUARDED_BY in
 * the header; functions called with the lock already held get
 * GRIFFIN_REQUIRES.  See common/thread_annotations.hh for the macro
 * vocabulary and how to run the analysis.
 */

#ifndef GRIFFIN_COMMON_MUTEX_HH
#define GRIFFIN_COMMON_MUTEX_HH

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.hh"

namespace griffin {

class GRIFFIN_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() GRIFFIN_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() GRIFFIN_RELEASE()
    {
        mu_.unlock();
    }

    bool
    tryLock() GRIFFIN_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    friend class MutexLock;
    std::mutex mu_;
};

/** RAII lock over a Mutex — the annotated std::unique_lock. */
class GRIFFIN_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) GRIFFIN_ACQUIRE(mu)
        : lock_(mu.mu_)
    {
    }

    ~MutexLock() GRIFFIN_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable bound to MutexLock.  wait() atomically releases
 * and reacquires the underlying mutex; annotation-wise the capability
 * is held across the call, so guarded state read after wait() returns
 * analyzes correctly (and is correct: the lock IS held there).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(MutexLock &lock) { cv_.wait(lock.lock_); }

    template <typename Pred>
    void
    wait(MutexLock &lock, Pred pred)
    {
        cv_.wait(lock.lock_, std::move(pred));
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace griffin

#endif // GRIFFIN_COMMON_MUTEX_HH
