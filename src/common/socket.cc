#include "common/socket.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/logging.hh"

namespace griffin {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

/** poll one fd for POLLIN; 1 ready, 0 timeout, -1 error. */
int
pollOne(int fd, int timeout_ms)
{
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    for (;;) {
        const int rc = ::poll(&p, 1, timeout_ms);
        if (rc < 0 && errno == EINTR)
            continue;
        return rc;
    }
}

} // namespace

void
closeFd(int fd)
{
    if (fd < 0)
        return;
    // Retrying close on EINTR is unsafe (the fd may already be gone);
    // one call, result ignored, is the portable idiom.
    ::close(fd);
}

TcpStream::TcpStream(TcpStream &&o) noexcept
    : fd_(o.fd_), buffer_(std::move(o.buffer_)),
      error_(std::move(o.error_))
{
    o.fd_ = -1;
}

TcpStream &
TcpStream::operator=(TcpStream &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        buffer_ = std::move(o.buffer_);
        error_ = std::move(o.error_);
        o.fd_ = -1;
    }
    return *this;
}

void
TcpStream::close()
{
    closeFd(fd_);
    fd_ = -1;
    buffer_.clear();
}

bool
TcpStream::connect(const std::string &host, std::uint16_t port)
{
    close();
    error_.clear();

    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int gai = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                  &res);
    if (gai != 0) {
        error_ = std::string("getaddrinfo: ") + ::gai_strerror(gai);
        return false;
    }

    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                                ai->ai_protocol);
        if (fd < 0) {
            error_ = "socket: " + errnoText();
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            // Lease/heartbeat messages are small and latency-bound;
            // never batch them behind Nagle.
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            fd_ = fd;
            break;
        }
        error_ = "connect: " + errnoText();
        closeFd(fd);
    }
    ::freeaddrinfo(res);
    return fd_ >= 0;
}

bool
TcpStream::sendLine(const std::string &line)
{
    if (line.find('\n') != std::string::npos)
        panic("sendLine payload contains the '\\n' frame delimiter");
    if (fd_ < 0) {
        error_ = "send on a closed stream";
        return false;
    }
    std::string frame = line;
    frame.push_back('\n');
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(fd_, frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = "send: " + errnoText();
            close();
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

TcpStream::ReadStatus
TcpStream::readIntoBuffer(int timeout_ms)
{
    if (fd_ < 0) {
        error_ = "read on a closed stream";
        return ReadStatus::Error;
    }
    const int ready = pollOne(fd_, timeout_ms);
    if (ready < 0) {
        error_ = "poll: " + errnoText();
        close();
        return ReadStatus::Error;
    }
    if (ready == 0)
        return ReadStatus::Ok; // nothing yet; not an error
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = "recv: " + errnoText();
            close();
            return ReadStatus::Error;
        }
        if (n == 0)
            return ReadStatus::Eof;
        buffer_.append(chunk, static_cast<std::size_t>(n));
        return ReadStatus::Ok;
    }
}

bool
TcpStream::nextLine(std::string &out)
{
    const auto nl = buffer_.find('\n');
    if (nl == std::string::npos)
        return false;
    out.assign(buffer_, 0, nl);
    buffer_.erase(0, nl + 1);
    return true;
}

bool
TcpStream::recvLine(std::string &out, int timeout_ms)
{
    if (nextLine(out))
        return true;
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        int wait_ms = timeout_ms;
        if (timeout_ms >= 0) {
            const auto elapsed_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (elapsed_ms >= timeout_ms) {
                error_ = "timed out waiting for a message";
                return false;
            }
            wait_ms = timeout_ms - static_cast<int>(elapsed_ms);
        }
        const ReadStatus status = readIntoBuffer(wait_ms);
        if (status == ReadStatus::Eof) {
            error_ = "peer closed the connection";
            return false;
        }
        if (status == ReadStatus::Error)
            return false;
        if (nextLine(out))
            return true;
    }
}

void
TcpListener::close()
{
    closeFd(fd_);
    fd_ = -1;
    port_ = 0;
}

bool
TcpListener::listen(std::uint16_t port, int backlog)
{
    close();
    error_.clear();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error_ = "socket: " + errnoText();
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error_ = "bind: " + errnoText();
        closeFd(fd);
        return false;
    }
    if (::listen(fd, backlog) != 0) {
        error_ = "listen: " + errnoText();
        closeFd(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0) {
        error_ = "getsockname: " + errnoText();
        closeFd(fd);
        return false;
    }
    fd_ = fd;
    port_ = ntohs(addr.sin_port);
    return true;
}

bool
TcpListener::accept(TcpStream &out, int timeout_ms)
{
    error_.clear();
    if (fd_ < 0) {
        error_ = "accept on a closed listener";
        return false;
    }
    const int ready = pollOne(fd_, timeout_ms);
    if (ready <= 0) {
        if (ready < 0)
            error_ = "poll: " + errnoText();
        return false;
    }
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            error_ = "accept: " + errnoText();
            return false;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        out = TcpStream(fd);
        return true;
    }
}

std::vector<std::size_t>
pollReadable(const std::vector<int> &fds, int timeout_ms)
{
    std::vector<struct pollfd> pfds;
    pfds.reserve(fds.size());
    for (const int fd : fds) {
        struct pollfd p;
        p.fd = fd;
        p.events = POLLIN;
        p.revents = 0;
        pfds.push_back(p);
    }
    for (;;) {
        const int rc =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                   timeout_ms);
        if (rc < 0 && errno == EINTR)
            continue;
        std::vector<std::size_t> ready;
        if (rc > 0)
            for (std::size_t i = 0; i < pfds.size(); ++i)
                if (pfds[i].revents != 0)
                    ready.push_back(i);
        return ready;
    }
}

bool
parseHostPort(const std::string &spec, std::string &host,
              std::uint16_t &port)
{
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size())
        return false;
    const std::string port_text = spec.substr(colon + 1);
    try {
        std::size_t pos = 0;
        const unsigned long value = std::stoul(port_text, &pos);
        if (pos != port_text.size() || value == 0 || value > 65535)
            return false;
        port = static_cast<std::uint16_t>(value);
    } catch (...) {
        return false;
    }
    host = spec.substr(0, colon);
    return true;
}

} // namespace griffin
