#include "common/rng.hh"

#include <algorithm>

#include "common/logging.hh"

namespace griffin {

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    GRIFFIN_ASSERT(lo <= hi, "uniformInt with lo ", lo, " > hi ", hi);
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniform01()
{
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    p = std::clamp(p, 0.0, 1.0);
    return uniform01() < p;
}

std::int8_t
Rng::nonzeroInt8()
{
    // Draw from [-128, 126] and shift the zero out of the range so all
    // 255 nonzero values stay equally likely.
    auto v = uniformInt(-128, 126);
    if (v >= 0)
        ++v;
    return static_cast<std::int8_t>(v);
}

void
Rng::shuffle(std::vector<std::size_t> &v)
{
    std::shuffle(v.begin(), v.end(), engine_);
}

Rng
Rng::fork()
{
    return Rng(engine_());
}

std::uint64_t
Rng::mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    // splitmix64 finalizer over the sum: cheap, well-mixed, and stable
    // across platforms (no std:: hashing, whose values are unspecified).
    std::uint64_t z = seed + salt + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::mixSeed(std::uint64_t seed, const std::string &salt)
{
    std::uint64_t h = mixSeed(seed, salt.size());
    for (unsigned char c : salt)
        h = mixSeed(h, c);
    return h;
}

} // namespace griffin
