#include "common/rng.hh"

#include <algorithm>

#include "common/logging.hh"
#include "simd/occupancy.hh"

namespace griffin {

Mt64::Mt64(result_type seed)
{
    // [rand.eng.mers] default seeding: x0 = seed, then the LCG-style
    // initialization mixing each word from its predecessor.
    state_[0] = seed;
    for (int i = 1; i < kN; ++i)
        state_[i] = 6364136223846793005ULL *
                        (state_[i - 1] ^ (state_[i - 1] >> 62)) +
                    static_cast<std::uint64_t>(i);
}

void
Mt64::refill()
{
    // In-place twist: entry i becomes x_{i+N}, reading x_{i+M} from
    // the already-updated prefix once i + M wraps — the classic batch
    // form of the [rand.eng.mers] recurrence.
    constexpr int kM = 156;
    constexpr std::uint64_t kUpper = 0xFFFFFFFF80000000ULL;
    constexpr std::uint64_t kLower = 0x7FFFFFFFULL;
    constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
    const auto twisted = [](std::uint64_t hi, std::uint64_t lo) {
        const std::uint64_t x = (hi & kUpper) | (lo & kLower);
        return (x >> 1) ^ ((x & 1) ? kMatrixA : 0);
    };
    int i = 0;
    for (; i < kN - kM; ++i)
        state_[i] = state_[i + kM] ^ twisted(state_[i], state_[i + 1]);
    for (; i < kN - 1; ++i)
        state_[i] =
            state_[i + kM - kN] ^ twisted(state_[i], state_[i + 1]);
    state_[kN - 1] =
        state_[kM - 1] ^ twisted(state_[kN - 1], state_[0]);
    simd::kernels().mtTemper(state_, kN, out_);
    pos_ = 0;
}

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

void
Rng::shuffle(std::vector<std::size_t> &v)
{
    std::shuffle(v.begin(), v.end(), engine_);
}

Rng
Rng::fork()
{
    return Rng(engine_());
}

std::uint64_t
Rng::mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    // splitmix64 finalizer over the sum: cheap, well-mixed, and stable
    // across platforms (no std:: hashing, whose values are unspecified).
    std::uint64_t z = seed + salt + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::mixSeed(std::uint64_t seed, const std::string &salt)
{
    std::uint64_t h = mixSeed(seed, salt.size());
    for (unsigned char c : salt)
        h = mixSeed(h, c);
    return h;
}

} // namespace griffin
