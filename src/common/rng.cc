#include "common/rng.hh"

#include <algorithm>

#include "common/logging.hh"

namespace griffin {

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    GRIFFIN_ASSERT(lo <= hi, "uniformInt with lo ", lo, " > hi ", hi);
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::uniform01()
{
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    p = std::clamp(p, 0.0, 1.0);
    return uniform01() < p;
}

std::int8_t
Rng::nonzeroInt8()
{
    // Draw from [-128, 126] and shift the zero out of the range so all
    // 255 nonzero values stay equally likely.
    auto v = uniformInt(-128, 126);
    if (v >= 0)
        ++v;
    return static_cast<std::int8_t>(v);
}

void
Rng::shuffle(std::vector<std::size_t> &v)
{
    std::shuffle(v.begin(), v.end(), engine_);
}

Rng
Rng::fork()
{
    return Rng(engine_());
}

} // namespace griffin
