/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * Three error paths with distinct intent — and distinct, documented
 * exit statuses, so scripts (fleet orchestration, CI) can tell them
 * apart without parsing stderr:
 *   - panic():    an internal invariant was violated — a bug in this
 *                 library, never the user's fault.  Calls std::abort()
 *                 (the process dies with SIGABRT).
 *   - fatal():    the run cannot *start* (or continue meaningfully)
 *                 because of a user error — bad configuration, invalid
 *                 arguments, malformed input files.  Exits with
 *                 exitUsageError (2).
 *   - fatalRun(): a correctly-configured run *failed* — a peer died,
 *                 a fleet run could not complete, an external resource
 *                 vanished mid-flight.  Exits with exitRunFailure (1).
 *                 Retrying may succeed; fixing flags will not.
 *
 * Two status paths:
 *   - warn():   something works but not as well as it should; if odd
 *               behaviour follows, start looking here.
 *   - inform(): plain operating status, no connotation of a problem.
 */

#ifndef GRIFFIN_COMMON_LOGGING_HH
#define GRIFFIN_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace griffin {

/**
 * Process exit statuses, kept distinct per failure class so fleet
 * scripts and CI can branch on $? alone:
 *
 *   0  exitSuccess     the run completed
 *   1  exitRunFailure  fatalRun(): the run started but could not
 *                      complete (peer death, lost connection,
 *                      incomplete fleet coverage) — retryable
 *   2  exitUsageError  fatal(): user/configuration error (bad flags,
 *                      malformed input) — retrying identical
 *                      invocations cannot succeed
 *  SIGABRT (134)       panic(): internal invariant violation (a bug)
 */
constexpr int exitSuccess = 0;
constexpr int exitRunFailure = 1;
constexpr int exitUsageError = 2;

namespace detail {

/** Stream a parameter pack into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

/** Terminates via std::abort() after printing "panic: <msg>". */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminates via std::exit(exitUsageError) after printing
 *  "fatal: <msg>". */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Terminates via std::exit(exitRunFailure) after printing
 *  "error: <msg>". */
[[noreturn]] void fatalRunImpl(const char *file, int line,
                               const std::string &msg);

void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort on an internal invariant violation.  Arguments are streamed
 * together, e.g. panic("bad lane ", lane, " of ", lanes).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(__FILE__, __LINE__,
                      detail::concat(std::forward<Args>(args)...));
}

/** Exit(exitUsageError) on an unrecoverable user error (bad config,
 *  bad input). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(__FILE__, __LINE__,
                      detail::concat(std::forward<Args>(args)...));
}

/**
 * Exit(exitRunFailure) when a correctly-configured run cannot
 * complete: a fleet peer died past recovery, coverage cannot close,
 * an external resource vanished mid-run.  Distinct from fatal() so
 * orchestration can retry run failures but not usage errors.
 */
template <typename... Args>
[[noreturn]] void
fatalRun(Args &&...args)
{
    detail::fatalRunImpl(__FILE__, __LINE__,
                         detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational status to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Library assertion that survives NDEBUG builds.  Use for invariants
 * whose violation means a simulator bug.
 */
#define GRIFFIN_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::griffin::detail::panicImpl(                                  \
                __FILE__, __LINE__,                                        \
                ::griffin::detail::concat("assertion '" #cond "' failed: ",\
                                          ##__VA_ARGS__));                 \
        }                                                                  \
    } while (0)

} // namespace griffin

#endif // GRIFFIN_COMMON_LOGGING_HH
