/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * Two error paths with distinct intent:
 *   - panic():  an internal invariant was violated — a bug in this
 *               library, never the user's fault.  Calls std::abort().
 *   - fatal():  the simulation cannot continue because of a user error
 *               (bad configuration, invalid arguments).  Calls
 *               std::exit(1).
 *
 * Two status paths:
 *   - warn():   something works but not as well as it should; if odd
 *               behaviour follows, start looking here.
 *   - inform(): plain operating status, no connotation of a problem.
 */

#ifndef GRIFFIN_COMMON_LOGGING_HH
#define GRIFFIN_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace griffin {

namespace detail {

/** Stream a parameter pack into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

/** Terminates via std::abort() after printing "panic: <msg>". */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminates via std::exit(1) after printing "fatal: <msg>". */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort on an internal invariant violation.  Arguments are streamed
 * together, e.g. panic("bad lane ", lane, " of ", lanes).
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(__FILE__, __LINE__,
                      detail::concat(std::forward<Args>(args)...));
}

/** Exit(1) on an unrecoverable user error (bad config, bad input). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(__FILE__, __LINE__,
                      detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational status to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Library assertion that survives NDEBUG builds.  Use for invariants
 * whose violation means a simulator bug.
 */
#define GRIFFIN_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::griffin::detail::panicImpl(                                  \
                __FILE__, __LINE__,                                        \
                ::griffin::detail::concat("assertion '" #cond "' failed: ",\
                                          ##__VA_ARGS__));                 \
        }                                                                  \
    } while (0)

} // namespace griffin

#endif // GRIFFIN_COMMON_LOGGING_HH
