#include "common/strings.hh"

#include <algorithm>
#include <charconv>
#include <system_error>

#include "common/logging.hh"

namespace griffin {

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : text) {
        if (c == sep) {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

std::vector<std::string>
splitTopLevel(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string item;
    int depth = 0;
    for (char c : text) {
        if (c == '(' || c == '[') {
            ++depth;
        } else if (c == ')' || c == ']') {
            if (depth > 0)
                --depth;
        }
        if (c == sep && depth == 0) {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

std::string
trim(const std::string &s)
{
    const char *ws = " \t\r\n";
    const auto first = s.find_first_not_of(ws);
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(ws);
    return s.substr(first, last - first + 1);
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    // Single-row Levenshtein; the strings here are flag/axis names, so
    // quadratic time on tiny inputs is fine.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

std::string
nearestName(const std::string &name,
            const std::vector<std::string> &candidates)
{
    // A candidate containing the name as a substring (or vice versa)
    // beats any mere edit-distance neighbour: "lane_bias" should
    // suggest "weight_lane_bias", not whatever 7-edit name happens to
    // come first.
    std::string best;
    bool best_contains = false;
    std::size_t best_dist = 0;
    for (const auto &cand : candidates) {
        const bool contains =
            !name.empty() && (cand.find(name) != std::string::npos ||
                              name.find(cand) != std::string::npos);
        const auto d = editDistance(name, cand);
        if (best.empty() || (contains && !best_contains) ||
            (contains == best_contains && d < best_dist)) {
            best = cand;
            best_contains = contains;
            best_dist = d;
        }
    }
    return best;
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\r\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string
formatShortestDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    GRIFFIN_ASSERT(res.ec == std::errc{}, "double formatting failed");
    return std::string(buf, res.ptr);
}

} // namespace griffin
