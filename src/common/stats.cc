#include "common/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace griffin {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        GRIFFIN_ASSERT(v > 0.0, "geomean needs positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double ss = 0.0;
    for (double v : values)
        ss += (v - m) * (v - m);
    // Bessel's correction (N - 1): the callers pass small per-network
    // samples, where the population divisor N biases the spread low.
    return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    sum_ += x;
    ++count_;
}

double
RunningStat::min() const
{
    GRIFFIN_ASSERT(count_ > 0, "min() of empty RunningStat");
    return min_;
}

double
RunningStat::max() const
{
    GRIFFIN_ASSERT(count_ > 0, "max() of empty RunningStat");
    return max_;
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

} // namespace griffin
