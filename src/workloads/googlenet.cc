/**
 * @file
 * GoogLeNet / Inception-v1 (Szegedy et al.), pruned per [51]
 * (Table IV row 2).
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

namespace {

/**
 * One inception module: four parallel branches over the same grid.
 * Branch channel counts follow the original paper's Table 1.
 */
void
inception(NetworkSpec &net, const std::string &name, int hw, int cin,
          int c1x1, int c3r, int c3, int c5r, int c5, int cpool)
{
    using netutil::conv;
    net.layers.push_back(conv(name + "/1x1", cin, hw, 1, 1, c1x1));
    net.layers.push_back(conv(name + "/3x3_reduce", cin, hw, 1, 1, c3r));
    net.layers.push_back(conv(name + "/3x3", c3r, hw, 3, 3, c3));
    net.layers.push_back(conv(name + "/5x5_reduce", cin, hw, 1, 1, c5r));
    net.layers.push_back(conv(name + "/5x5", c5r, hw, 5, 5, c5));
    net.layers.push_back(conv(name + "/pool_proj", cin, hw, 1, 1, cpool));
}

} // namespace

NetworkSpec
googleNet()
{
    using netutil::conv;
    NetworkSpec net;
    net.name = "GoogLeNet";
    net.weightSparsity = 0.82;
    net.actSparsity = 0.37;
    net.accuracy = "68.2% (top-1)";
    net.paperDenseCycles = 2'200'000;

    auto stem = conv("conv1/7x7_s2", 3, 112, 7, 7, 64);
    stem.actSparsity = 0.0;
    stem.weightSparsity = 0.4;
    net.layers.push_back(stem);
    net.layers.push_back(conv("conv2/3x3_reduce", 64, 56, 1, 1, 64));
    net.layers.push_back(conv("conv2/3x3", 64, 56, 3, 3, 192));

    inception(net, "inception_3a", 28, 192, 64, 96, 128, 16, 32, 32);
    inception(net, "inception_3b", 28, 256, 128, 128, 192, 32, 96, 64);
    inception(net, "inception_4a", 14, 480, 192, 96, 208, 16, 48, 64);
    inception(net, "inception_4b", 14, 512, 160, 112, 224, 24, 64, 64);
    inception(net, "inception_4c", 14, 512, 128, 128, 256, 24, 64, 64);
    inception(net, "inception_4d", 14, 512, 112, 144, 288, 32, 64, 64);
    inception(net, "inception_4e", 14, 528, 256, 160, 320, 32, 128, 128);
    inception(net, "inception_5a", 7, 832, 256, 160, 320, 32, 128, 128);
    inception(net, "inception_5b", 7, 832, 384, 192, 384, 48, 128, 128);

    net.layers.push_back(fcLayer("loss3/classifier", 1024, 1000));
    net.validate();
    return net;
}

} // namespace griffin
