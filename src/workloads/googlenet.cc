/**
 * @file
 * GoogLeNet / Inception-v1 (Szegedy et al.), pruned per [51]
 * (Table IV row 2).
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

namespace {

/**
 * One inception module: four parallel branches over the same grid,
 * every branch head consuming the concatenated block input `from`.
 * Branch channel counts follow the original paper's Table 1.  Returns
 * the four branch terminals — the concat the next block consumes.
 *
 * Buffer-byte conventions (sched/dag_schedule.hh prices these):
 * pooling between stages is line-buffered into the producing layer's
 * output stream, so a terminal's resident buffer is the *pooled*
 * consumer-visible map (`hw_next` is the next stage's grid; equal to
 * `hw` when no pool follows).  Branch-internal tensors (the reduces)
 * materialise at full size — their consumers are schedulable at any
 * later position, which is exactly the freedom the schedule optimizer
 * exploits.
 */
std::vector<std::size_t>
inception(NetworkSpec &net, const std::string &name,
          const std::vector<std::size_t> &from, int hw, int hw_next,
          int cin, int c1x1, int c3r, int c3, int c5r, int c5, int cpool)
{
    using netutil::conv;
    const auto pooled = [&net, hw_next](std::size_t node, int channels) {
        net.nodes[node].outputBytes =
            static_cast<std::int64_t>(hw_next) * hw_next * channels;
        return node;
    };
    const auto b1 = pooled(
        net.addLayer(conv(name + "/1x1", cin, hw, 1, 1, c1x1), from),
        c1x1);
    const auto r3 =
        net.addLayer(conv(name + "/3x3_reduce", cin, hw, 1, 1, c3r), from);
    const auto b3 = pooled(
        net.addLayer(conv(name + "/3x3", c3r, hw, 3, 3, c3), {r3}), c3);
    const auto r5 =
        net.addLayer(conv(name + "/5x5_reduce", cin, hw, 1, 1, c5r), from);
    const auto b5 = pooled(
        net.addLayer(conv(name + "/5x5", c5r, hw, 5, 5, c5), {r5}), c5);
    const auto bp = pooled(
        net.addLayer(conv(name + "/pool_proj", cin, hw, 1, 1, cpool),
                     from),
        cpool);
    return {b1, b3, b5, bp};
}

} // namespace

NetworkSpec
googleNet()
{
    using netutil::conv;
    NetworkSpec net;
    net.name = "GoogLeNet";
    net.weightSparsity = 0.82;
    net.actSparsity = 0.37;
    net.accuracy = "68.2% (top-1)";
    net.paperDenseCycles = 2'200'000;

    // Stem: a pure chain whose producer→consumer adjacency is forced in
    // every topological order, so each hand-off executes as a fused
    // pipeline stage — only a three-row sliding window of the (pooled)
    // map is ever resident, never the full tensor.  conv2 feeds the
    // 3a branch heads, whose schedule positions are free, so it
    // materialises fully at the pooled 28x28 consumer-visible size.
    auto stem = conv("conv1/7x7_s2", 3, 112, 7, 7, 64);
    stem.actSparsity = 0.0;
    stem.weightSparsity = 0.4;
    net.nodes[net.chainLayer(stem)].outputBytes = 3 * 56 * 64;
    net.nodes[net.chainLayer(conv("conv2/3x3_reduce", 64, 56, 1, 1, 64))]
        .outputBytes = 3 * 56 * 64;
    const auto conv2 = net.chainLayer(conv("conv2/3x3", 64, 56, 3, 3, 192));
    net.nodes[conv2].outputBytes = 28 * 28 * 192;

    std::vector<std::size_t> concat{conv2};
    concat = inception(net, "inception_3a", concat, 28, 28, 192, 64, 96,
                       128, 16, 32, 32);
    concat = inception(net, "inception_3b", concat, 28, 14, 256, 128, 128,
                       192, 32, 96, 64);
    concat = inception(net, "inception_4a", concat, 14, 14, 480, 192, 96,
                       208, 16, 48, 64);
    concat = inception(net, "inception_4b", concat, 14, 14, 512, 160, 112,
                       224, 24, 64, 64);
    concat = inception(net, "inception_4c", concat, 14, 14, 512, 128, 128,
                       256, 24, 64, 64);
    concat = inception(net, "inception_4d", concat, 14, 14, 512, 112, 144,
                       288, 32, 64, 64);
    concat = inception(net, "inception_4e", concat, 14, 7, 528, 256, 160,
                       320, 32, 128, 128);
    concat = inception(net, "inception_5a", concat, 7, 7, 832, 256, 160,
                       320, 32, 128, 128);
    // 5b's terminals feed the global average pool into the classifier:
    // the consumer-visible map is 1x1 per channel.
    concat = inception(net, "inception_5b", concat, 7, 1, 832, 384, 192,
                       384, 48, 128, 128);

    net.addLayer(fcLayer("loss3/classifier", 1024, 1000), concat);
    net.validate();
    return net;
}

} // namespace griffin
