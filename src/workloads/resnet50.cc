/**
 * @file
 * ResNet-50 v1.5 (He et al.), pruned per [17] (Table IV row 3).
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

namespace {

/**
 * One bottleneck block: 1x1 reduce, 3x3 (optionally strided), 1x1
 * expand, plus the projection shortcut when the shape changes.
 *
 * @param hw_in grid at the block input; the 3x3 applies the stride
 */
void
bottleneck(NetworkSpec &net, const std::string &name, int hw_in, int cin,
           int mid, int cout, int stride, bool project)
{
    using netutil::conv;
    const int hw_out = hw_in / stride;
    net.chainLayer(conv(name + "/conv1", cin, hw_in, 1, 1, mid));
    net.chainLayer(conv(name + "/conv2", mid, hw_out, 3, 3, mid));
    net.chainLayer(conv(name + "/conv3", mid, hw_out, 1, 1, cout));
    if (project) {
        net.chainLayer(
            conv(name + "/shortcut", cin, hw_out, 1, 1, cout));
    }
}

/** One stage: `blocks` bottlenecks, first one strided/projected. */
void
stage(NetworkSpec &net, const std::string &name, int hw_in, int cin,
      int mid, int cout, int blocks, int stride)
{
    bottleneck(net, name + "_1", hw_in, cin, mid, cout, stride, true);
    const int hw = hw_in / stride;
    for (int i = 2; i <= blocks; ++i) {
        bottleneck(net, name + "_" + std::to_string(i), hw, cout, mid,
                   cout, 1, false);
    }
}

} // namespace

NetworkSpec
resNet50()
{
    using netutil::conv;
    NetworkSpec net;
    net.name = "ResNet50";
    net.weightSparsity = 0.81;
    net.actSparsity = 0.43;
    net.accuracy = "76.1% (top-1)";
    net.paperDenseCycles = 4'800'000;

    auto stem = conv("conv1", 3, 112, 7, 7, 64);
    stem.actSparsity = 0.0;
    stem.weightSparsity = 0.4;
    net.chainLayer(stem);
    // Max pool takes 112 -> 56 before the first stage.
    stage(net, "conv2_x", 56, 64, 64, 256, 3, 1);
    stage(net, "conv3_x", 56, 256, 128, 512, 4, 2);
    stage(net, "conv4_x", 28, 512, 256, 1024, 6, 2);
    stage(net, "conv5_x", 14, 1024, 512, 2048, 3, 2);
    net.chainLayer(fcLayer("fc", 2048, 1000));
    net.validate();
    return net;
}

} // namespace griffin
