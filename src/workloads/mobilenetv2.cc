/**
 * @file
 * MobileNetV2 (Sandler et al.), sparsified per RigL [16]
 * (Table IV row 5).  Depthwise convolutions lower to per-channel
 * grouped GEMMs.
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

namespace {

using netutil::conv;

/**
 * One inverted residual block: 1x1 expansion (skipped when t = 1),
 * 3x3 depthwise at `stride`, 1x1 linear projection.  Depthwise
 * weights are customarily left unpruned (they are <1% of parameters);
 * the linear projection has no ReLU after it, so the following
 * expansion sees denser activations — modelled via the block output.
 */
void
invertedResidual(NetworkSpec &net, const std::string &name, int hw_in,
                 int cin, int cout, int stride, int t)
{
    const int expanded = cin * t;
    const int hw_out = hw_in / stride;
    if (t != 1) {
        net.chainLayer(
            conv(name + "/expand", cin, hw_in, 1, 1, expanded));
    }
    auto dw = conv(name + "/depthwise", expanded, hw_out, 3, 3, expanded,
                   /*groups=*/expanded);
    dw.weightSparsity = 0.0;
    net.chainLayer(dw);
    auto project = conv(name + "/project", expanded, hw_out, 1, 1, cout);
    net.chainLayer(project);
}

} // namespace

NetworkSpec
mobileNetV2()
{
    NetworkSpec net;
    net.name = "MobileNetV2";
    net.weightSparsity = 0.81;
    net.actSparsity = 0.52;
    net.accuracy = "67.5% (top-1)";
    net.paperDenseCycles = 2'200'000;

    auto stem = conv("conv0", 3, 112, 3, 3, 32);
    stem.actSparsity = 0.0;
    stem.weightSparsity = 0.4;
    net.chainLayer(stem);

    invertedResidual(net, "block1", 112, 32, 16, 1, 1);
    invertedResidual(net, "block2", 112, 16, 24, 2, 6);
    invertedResidual(net, "block3", 56, 24, 24, 1, 6);
    invertedResidual(net, "block4", 56, 24, 32, 2, 6);
    invertedResidual(net, "block5", 28, 32, 32, 1, 6);
    invertedResidual(net, "block6", 28, 32, 32, 1, 6);
    invertedResidual(net, "block7", 28, 32, 64, 2, 6);
    invertedResidual(net, "block8", 14, 64, 64, 1, 6);
    invertedResidual(net, "block9", 14, 64, 64, 1, 6);
    invertedResidual(net, "block10", 14, 64, 64, 1, 6);
    invertedResidual(net, "block11", 14, 64, 96, 1, 6);
    invertedResidual(net, "block12", 14, 96, 96, 1, 6);
    invertedResidual(net, "block13", 14, 96, 96, 1, 6);
    invertedResidual(net, "block14", 14, 96, 160, 2, 6);
    invertedResidual(net, "block15", 7, 160, 160, 1, 6);
    invertedResidual(net, "block16", 7, 160, 160, 1, 6);
    invertedResidual(net, "block17", 7, 160, 320, 1, 6);

    net.chainLayer(conv("conv_last", 320, 7, 1, 1, 1280));
    net.chainLayer(fcLayer("fc", 1280, 1000));
    net.validate();
    return net;
}

} // namespace griffin
