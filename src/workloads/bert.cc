/**
 * @file
 * BERT-base fine-tuned on MNLI, sequence length 64, movement-pruned
 * per [57] (Table IV row 6).  GeLU keeps activations dense
 * (A sparsity 0), so BERT is the suite's DNN.B representative.
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

NetworkSpec
bertBase()
{
    NetworkSpec net;
    net.name = "BERT";
    net.weightSparsity = 0.82;
    net.actSparsity = 0.0;
    net.accuracy = "81.0% Dev / 81.4% MM";
    net.paperDenseCycles = 5'300'000;

    constexpr std::int64_t seq = 64;
    constexpr std::int64_t hidden = 768;
    constexpr std::int64_t ffn = 3072;
    constexpr int heads = 12;
    constexpr std::int64_t head_dim = hidden / heads;
    constexpr std::int64_t blocks = 12;

    auto repeat = [&](LayerSpec layer) {
        layer.repeat = blocks;
        net.chainLayer(layer);
    };

    repeat(fcLayer("attn/query", hidden, hidden, seq));
    repeat(fcLayer("attn/key", hidden, hidden, seq));
    repeat(fcLayer("attn/value", hidden, hidden, seq));

    // Q x K^T and P x V are activation-activation GEMMs, one per head:
    // neither operand is a pruned weight and softmax output is dense.
    LayerSpec scores;
    scores.name = "attn/scores";
    scores.m = seq;
    scores.k = head_dim;
    scores.n = seq;
    scores.groups = heads;
    scores.weightSparsity = 0.0;
    scores.actSparsity = 0.0;
    repeat(scores);

    LayerSpec context = scores;
    context.name = "attn/context";
    context.k = seq;
    context.n = head_dim;
    repeat(context);

    repeat(fcLayer("attn/output", hidden, hidden, seq));
    repeat(fcLayer("ffn/intermediate", hidden, ffn, seq));
    repeat(fcLayer("ffn/output", ffn, hidden, seq));

    net.chainLayer(fcLayer("classifier", hidden, 3, 1));
    net.validate();
    return net;
}

} // namespace griffin
