#include "workloads/network.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace griffin {

std::int64_t
NetworkSpec::macs() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.macs();
    return total;
}

std::int64_t
NetworkSpec::denseCycles(const TileShape &shape) const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.denseCycles(shape);
    return total;
}

double
NetworkSpec::layerWeightSparsity(const LayerSpec &layer,
                                 DnnCategory cat) const
{
    if (!hasSparseB(cat))
        return 0.0;
    return layer.weightSparsity >= 0.0 ? layer.weightSparsity
                                       : weightSparsity;
}

double
NetworkSpec::layerActSparsity(const LayerSpec &layer,
                              DnnCategory cat) const
{
    if (!hasSparseA(cat))
        return 0.0;
    if (layer.actSparsity >= 0.0)
        return layer.actSparsity;
    // GeLU-dense models switch to their ReLU variant in activation-
    // sparse categories (Table I's pairing).
    return actSparsity > 0.0 ? actSparsity : reluModeActSparsity;
}

void
NetworkSpec::validate() const
{
    if (layers.empty())
        fatal("network '", name, "' has no layers");
    for (const auto &layer : layers)
        layer.validate();
    if (weightSparsity < 0.0 || weightSparsity > 1.0 ||
        actSparsity < 0.0 || actSparsity > 1.0) {
        fatal("network '", name, "' sparsity outside [0,1]");
    }
}

std::vector<NetworkSpec>
benchmarkSuite()
{
    return {alexNet(),     googleNet(),    resNet50(),
            inceptionV3(), mobileNetV2(),  bertBase()};
}

NetworkSpec
networkByName(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    for (auto &net : benchmarkSuite()) {
        std::string candidate = net.name;
        std::transform(candidate.begin(), candidate.end(),
                       candidate.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        if (candidate == lower)
            return net;
    }
    fatal("unknown network '", name,
          "' (want AlexNet|GoogLeNet|ResNet50|InceptionV3|MobileNetV2|"
          "BERT)");
}

} // namespace griffin
