#include "workloads/network.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "common/strings.hh"

namespace griffin {

std::size_t
NetworkSpec::addLayer(LayerSpec layer, std::vector<std::size_t> inputs)
{
    const std::size_t index = nodes.size();
    for (const std::size_t input : inputs) {
        if (input >= index)
            fatal("network '", name, "': node '", layer.name,
                  "' (index ", index, ") consumes node ", input,
                  " which is not an earlier node");
    }
    NetworkNode node;
    node.outputBytes =
        layer.m * layer.n * static_cast<std::int64_t>(layer.groups);
    node.layer = std::move(layer);
    node.inputs = std::move(inputs);
    nodes.push_back(std::move(node));
    return index;
}

std::size_t
NetworkSpec::chainLayer(LayerSpec layer)
{
    std::vector<std::size_t> inputs;
    if (!nodes.empty())
        inputs.push_back(nodes.size() - 1);
    return addLayer(std::move(layer), std::move(inputs));
}

std::int64_t
NetworkSpec::macs() const
{
    std::int64_t total = 0;
    for (const auto &node : nodes)
        total += node.layer.macs();
    return total;
}

std::int64_t
NetworkSpec::denseCycles(const TileShape &shape) const
{
    std::int64_t total = 0;
    for (const auto &node : nodes)
        total += node.layer.denseCycles(shape);
    return total;
}

double
NetworkSpec::layerWeightSparsity(const LayerSpec &layer,
                                 DnnCategory cat) const
{
    if (!hasSparseB(cat))
        return 0.0;
    return layer.weightSparsity >= 0.0 ? layer.weightSparsity
                                       : weightSparsity;
}

double
NetworkSpec::layerActSparsity(const LayerSpec &layer,
                              DnnCategory cat) const
{
    if (!hasSparseA(cat))
        return 0.0;
    if (layer.actSparsity >= 0.0)
        return layer.actSparsity;
    // GeLU-dense models switch to their ReLU variant in activation-
    // sparse categories (Table I's pairing).
    return actSparsity > 0.0 ? actSparsity : reluModeActSparsity;
}

void
NetworkSpec::validate() const
{
    if (nodes.empty())
        fatal("network '", name, "' has no layers");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NetworkNode &node = nodes[i];
        node.layer.validate();
        if (node.outputBytes < 0)
            fatal("network '", name, "': node '", node.layer.name,
                  "' has negative output bytes");
        for (const std::size_t input : node.inputs)
            if (input >= i)
                fatal("network '", name, "': node '", node.layer.name,
                      "' (index ", i, ") consumes node ", input,
                      " which is not an earlier node");
    }
    if (weightSparsity < 0.0 || weightSparsity > 1.0 ||
        actSparsity < 0.0 || actSparsity > 1.0) {
        fatal("network '", name, "' sparsity outside [0,1]");
    }
}

std::vector<NetworkSpec>
benchmarkSuite()
{
    return {alexNet(),     googleNet(),    resNet50(),
            inceptionV3(), mobileNetV2(),  bertBase()};
}

std::vector<std::string>
networkNames()
{
    return {"AlexNet",     "GoogLeNet",   "ResNet50",
            "InceptionV3", "MobileNetV2", "BERT"};
}

NetworkSpec
networkByName(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    for (auto &net : benchmarkSuite()) {
        std::string candidate = net.name;
        std::transform(candidate.begin(), candidate.end(),
                       candidate.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        if (candidate == lower)
            return net;
    }
    fatal("unknown network '", name, "'; did you mean '",
          nearestName(name, networkNames()),
          "'? (see griffin_bench networks)");
}

} // namespace griffin
