/**
 * @file
 * Benchmark networks (paper Table IV).
 *
 * Layer shapes are the published architectures; the (weight,
 * activation) sparsity ratios, accuracies and dense-latency targets
 * are Table IV's.  Synthetic tensors are generated at these rates —
 * the cycle behaviour of the simulator depends only on zero positions,
 * not values (DESIGN.md, substitutions).
 */

#ifndef GRIFFIN_WORKLOADS_NETWORK_HH
#define GRIFFIN_WORKLOADS_NETWORK_HH

#include <string>
#include <vector>

#include "arch/category.hh"
#include "workloads/layer.hh"

namespace griffin {

/** A benchmark network: layers plus Table IV metadata. */
struct NetworkSpec
{
    std::string name;
    std::vector<LayerSpec> layers;

    double weightSparsity = 0.0; ///< Table IV column B
    double actSparsity = 0.0;    ///< Table IV column A
    /**
     * Activation sparsity of the network's ReLU variant, used when a
     * DNN.A / DNN.AB run asks for sparse activations but the Table IV
     * model is GeLU-dense (BERT).  Table I pairs each category with
     * the matching activation function ("Transformer+ReLU" for
     * DNN.A), and ReLU zeroes roughly half of pre-activations.
     */
    double reluModeActSparsity = 0.5;
    std::string accuracy;        ///< reported accuracy (constant)
    std::int64_t paperDenseCycles = 0; ///< Table IV dense latency

    std::int64_t macs() const;
    std::int64_t denseCycles(const TileShape &shape) const;

    /**
     * Effective per-layer sparsities when running a category: a layer
     * override wins, the network rate applies otherwise, and dense
     * categories zero the corresponding side.
     */
    double layerWeightSparsity(const LayerSpec &layer,
                               DnnCategory cat) const;
    double layerActSparsity(const LayerSpec &layer,
                            DnnCategory cat) const;

    void validate() const;
};

/** AlexNet, 89%/53% sparse, 1.0e6 dense cycles. */
NetworkSpec alexNet();
/** GoogLeNet (Inception v1), 82%/37%, 2.2e6. */
NetworkSpec googleNet();
/** ResNet-50, 81%/43%, 4.8e6. */
NetworkSpec resNet50();
/** Inception-V3, 79%/46%, 6.9e6. */
NetworkSpec inceptionV3();
/** MobileNetV2, 81%/52%, 2.2e6. */
NetworkSpec mobileNetV2();
/** BERT-base on MNLI, sequence length 64, 82%/0%, 5.3e6. */
NetworkSpec bertBase();

/** All six, Table IV order. */
std::vector<NetworkSpec> benchmarkSuite();

/** Look up by case-insensitive name; fatal() when unknown. */
NetworkSpec networkByName(const std::string &name);

} // namespace griffin

#endif // GRIFFIN_WORKLOADS_NETWORK_HH
