/**
 * @file
 * Benchmark networks (paper Table IV) as dataflow DAGs.
 *
 * Layer shapes are the published architectures; the (weight,
 * activation) sparsity ratios, accuracies and dense-latency targets
 * are Table IV's.  Synthetic tensors are generated at these rates —
 * the cycle behaviour of the simulator depends only on zero positions,
 * not values (DESIGN.md, substitutions).
 *
 * A network is a vector of nodes, each one a LayerSpec plus explicit
 * producer edges and the byte size of the output buffer the node
 * materialises on chip.  Branching (inception modules) is explicit;
 * chain networks are the degenerate single-predecessor case.  Node
 * order is load-bearing: the per-layer simulation seed is derived from
 * the node index (griffin/accelerator.hh), so builders must keep the
 * historical declaration order — schedulers reorder *execution*, never
 * the node vector itself.
 */

#ifndef GRIFFIN_WORKLOADS_NETWORK_HH
#define GRIFFIN_WORKLOADS_NETWORK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "arch/category.hh"
#include "workloads/layer.hh"

namespace griffin {

/**
 * One dataflow node: the layer, the node indices whose output buffers
 * it reads, and the bytes of on-chip buffer its own output occupies
 * until the last consumer has run.  An empty `inputs` means the node
 * reads the network input (streamed from DRAM, never counted against
 * on-chip liveness).
 */
struct NetworkNode
{
    LayerSpec layer;
    std::vector<std::size_t> inputs;
    /**
     * Output-buffer footprint.  Default is m * n * groups output
     * elements at one byte each — the element-count-as-bytes
     * convention layerDramBytes() already uses — so peaks compare
     * directly against byte-denominated SRAM budgets.
     */
    std::int64_t outputBytes = 0;
};

/** A benchmark network: a layer DAG plus Table IV metadata. */
struct NetworkSpec
{
    std::string name;
    std::vector<NetworkNode> nodes;

    double weightSparsity = 0.0; ///< Table IV column B
    double actSparsity = 0.0;    ///< Table IV column A
    /**
     * Activation sparsity of the network's ReLU variant, used when a
     * DNN.A / DNN.AB run asks for sparse activations but the Table IV
     * model is GeLU-dense (BERT).  Table I pairs each category with
     * the matching activation function ("Transformer+ReLU" for
     * DNN.A), and ReLU zeroes roughly half of pre-activations.
     */
    double reluModeActSparsity = 0.5;
    std::string accuracy;        ///< reported accuracy (constant)
    std::int64_t paperDenseCycles = 0; ///< Table IV dense latency

    std::size_t layerCount() const { return nodes.size(); }
    const LayerSpec &layer(std::size_t i) const { return nodes[i].layer; }

    /**
     * Append a node consuming the named producers.  Edges must point
     * backwards (every input index below the new node's), which makes
     * builder-produced networks acyclic by construction; hand-built
     * node vectors are checked by sched/dag_schedule.hh's validateDag.
     * Returns the new node's index so builders can wire branches.
     */
    std::size_t addLayer(LayerSpec layer, std::vector<std::size_t> inputs);

    /** addLayer consuming the most recent node (or the network input
     *  when the DAG is still empty) — the chain-network builder. */
    std::size_t chainLayer(LayerSpec layer);

    std::int64_t macs() const;
    std::int64_t denseCycles(const TileShape &shape) const;

    /**
     * Effective per-layer sparsities when running a category: a layer
     * override wins, the network rate applies otherwise, and dense
     * categories zero the corresponding side.
     */
    double layerWeightSparsity(const LayerSpec &layer,
                               DnnCategory cat) const;
    double layerActSparsity(const LayerSpec &layer,
                            DnnCategory cat) const;

    void validate() const;
};

/** AlexNet, 89%/53% sparse, 1.0e6 dense cycles. */
NetworkSpec alexNet();
/** GoogLeNet (Inception v1), 82%/37%, 2.2e6. */
NetworkSpec googleNet();
/** ResNet-50, 81%/43%, 4.8e6. */
NetworkSpec resNet50();
/** Inception-V3, 79%/46%, 6.9e6. */
NetworkSpec inceptionV3();
/** MobileNetV2, 81%/52%, 2.2e6. */
NetworkSpec mobileNetV2();
/** BERT-base on MNLI, sequence length 64, 82%/0%, 5.3e6. */
NetworkSpec bertBase();

/** All six, Table IV order. */
std::vector<NetworkSpec> benchmarkSuite();

/** The six suite names, Table IV order. */
std::vector<std::string> networkNames();

/** Look up by case-insensitive name; fatal() with a nearest-name
 *  suggestion when unknown. */
NetworkSpec networkByName(const std::string &name);

} // namespace griffin

#endif // GRIFFIN_WORKLOADS_NETWORK_HH
