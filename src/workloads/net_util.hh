/**
 * @file
 * Shared helpers for encoding network layer tables.
 */

#ifndef GRIFFIN_WORKLOADS_NET_UTIL_HH
#define GRIFFIN_WORKLOADS_NET_UTIL_HH

#include <string>

#include "workloads/layer.hh"

namespace griffin {
namespace netutil {

/**
 * Convolution lowered to GEMM from its *output* geometry (square
 * hw x hw grid): padding and stride are already folded into the
 * output size, which keeps asymmetric ("same") paddings trivial.
 */
inline LayerSpec
conv(const std::string &name, int cin, int hw, int r, int s, int cout,
     int groups = 1)
{
    LayerSpec layer;
    layer.name = name;
    layer.m = static_cast<std::int64_t>(hw) * hw;
    layer.k = static_cast<std::int64_t>(cin / groups) * r * s;
    layer.n = cout / groups;
    layer.groups = groups;
    layer.validate();
    return layer;
}

} // namespace netutil
} // namespace griffin

#endif // GRIFFIN_WORKLOADS_NET_UTIL_HH
