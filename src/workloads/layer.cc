#include "workloads/layer.hh"

#include <limits>

#include "common/logging.hh"

namespace griffin {

void
LayerSpec::validate() const
{
    if (m <= 0 || k <= 0 || n <= 0)
        fatal("layer '", name, "' has non-positive GEMM dims (", m, ",",
              k, ",", n, ")");
    if (groups <= 0 || repeat <= 0)
        fatal("layer '", name, "' has non-positive groups/repeat");
    if (weightSparsity > 1.0 || actSparsity > 1.0)
        fatal("layer '", name, "' has sparsity above 1");
    // macs() and denseCycles() multiply the five extents as plain
    // int64; catch the silent wraparound here so a bad layer table
    // fails by name instead of reporting garbage cycle counts.
    // denseCycles() rounds each GEMM dim up to its tile quantum, so
    // demand headroom beyond the raw product for the padded one.
    std::int64_t product = m;
    const std::int64_t factors[] = {k, n, static_cast<std::int64_t>(groups),
                                    repeat};
    for (const std::int64_t f : factors) {
        if (__builtin_mul_overflow(product, f, &product))
            fatal("layer '", name, "' MAC count overflows int64 (",
                  m, " x ", k, " x ", n, " x ", groups, " x ", repeat,
                  ")");
    }
    constexpr std::int64_t kTilePaddingHeadroom = 1 << 12;
    if (product > std::numeric_limits<std::int64_t>::max() /
                      kTilePaddingHeadroom)
        fatal("layer '", name, "' MAC count ", product,
              " leaves no headroom for tile-padded cycle counts");
}

LayerSpec
convLayer(const std::string &name, const ConvShape &shape)
{
    shape.validate();
    LayerSpec layer;
    layer.name = name;
    layer.m = shape.gemmM();
    layer.k = shape.gemmK();
    layer.n = shape.gemmN();
    layer.groups = shape.groups;
    layer.validate();
    return layer;
}

LayerSpec
fcLayer(const std::string &name, std::int64_t in, std::int64_t out,
        std::int64_t batch)
{
    LayerSpec layer;
    layer.name = name;
    layer.m = batch;
    layer.k = in;
    layer.n = out;
    layer.validate();
    return layer;
}

} // namespace griffin
