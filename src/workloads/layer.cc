#include "workloads/layer.hh"

#include "common/logging.hh"

namespace griffin {

void
LayerSpec::validate() const
{
    if (m <= 0 || k <= 0 || n <= 0)
        fatal("layer '", name, "' has non-positive GEMM dims (", m, ",",
              k, ",", n, ")");
    if (groups <= 0 || repeat <= 0)
        fatal("layer '", name, "' has non-positive groups/repeat");
    if (weightSparsity > 1.0 || actSparsity > 1.0)
        fatal("layer '", name, "' has sparsity above 1");
}

LayerSpec
convLayer(const std::string &name, const ConvShape &shape)
{
    shape.validate();
    LayerSpec layer;
    layer.name = name;
    layer.m = shape.gemmM();
    layer.k = shape.gemmK();
    layer.n = shape.gemmN();
    layer.groups = shape.groups;
    layer.validate();
    return layer;
}

LayerSpec
fcLayer(const std::string &name, std::int64_t in, std::int64_t out,
        std::int64_t batch)
{
    LayerSpec layer;
    layer.name = name;
    layer.m = batch;
    layer.k = in;
    layer.n = out;
    layer.validate();
    return layer;
}

} // namespace griffin
