/**
 * @file
 * Inception-V3 (Szegedy et al.), pruned per [73] (Table IV row 4).
 * Branch channel counts follow the reference TensorFlow slim model.
 *
 * Modules are explicit DAGs: every branch head consumes the previous
 * block's concatenated frontier, and each module returns its branch
 * terminals as the next frontier.  Grid reductions additionally pass
 * the incoming frontier through (the pooled branch of the concat has
 * no conv node), which is exactly what makes the channel counts add
 * up: mixed_b's 768 = 384 + 96 + the pooled 288.
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

namespace {

using netutil::conv;
using Frontier = std::vector<std::size_t>;

/** 35x35 module: 1x1, 5x5 (factor 48), double-3x3 (64->96->96),
 *  pool-proj. */
Frontier
inceptionA(NetworkSpec &net, const std::string &name,
           const Frontier &from, int cin, int cpool)
{
    const int hw = 35;
    const auto b1 = net.addLayer(conv(name + "/1x1", cin, hw, 1, 1, 64),
                                 from);
    const auto r5 =
        net.addLayer(conv(name + "/5x5_reduce", cin, hw, 1, 1, 48), from);
    const auto b5 = net.addLayer(conv(name + "/5x5", 48, hw, 5, 5, 64),
                                 {r5});
    const auto rd = net.addLayer(
        conv(name + "/3x3dbl_reduce", cin, hw, 1, 1, 64), from);
    const auto d1 = net.addLayer(conv(name + "/3x3dbl_1", 64, hw, 3, 3, 96),
                                 {rd});
    const auto d2 = net.addLayer(conv(name + "/3x3dbl_2", 96, hw, 3, 3, 96),
                                 {d1});
    const auto bp = net.addLayer(
        conv(name + "/pool_proj", cin, hw, 1, 1, cpool), from);
    return {b1, b5, d2, bp};
}

/** 17x17 module with factorized 7x7 convolutions of width c7. */
Frontier
inceptionB(NetworkSpec &net, const std::string &name,
           const Frontier &from, int c7)
{
    const int hw = 17, cin = 768;
    const auto b1 = net.addLayer(conv(name + "/1x1", cin, hw, 1, 1, 192),
                                 from);
    const auto r7 =
        net.addLayer(conv(name + "/7x7_reduce", cin, hw, 1, 1, c7), from);
    const auto s1 = net.addLayer(conv(name + "/1x7", c7, hw, 1, 7, c7),
                                 {r7});
    const auto s2 = net.addLayer(conv(name + "/7x1", c7, hw, 7, 1, 192),
                                 {s1});
    const auto rd = net.addLayer(
        conv(name + "/7x7dbl_reduce", cin, hw, 1, 1, c7), from);
    const auto d1 = net.addLayer(conv(name + "/7x7dbl_1", c7, hw, 7, 1, c7),
                                 {rd});
    const auto d2 = net.addLayer(conv(name + "/7x7dbl_2", c7, hw, 1, 7, c7),
                                 {d1});
    const auto d3 = net.addLayer(conv(name + "/7x7dbl_3", c7, hw, 7, 1, c7),
                                 {d2});
    const auto d4 = net.addLayer(
        conv(name + "/7x7dbl_4", c7, hw, 1, 7, 192), {d3});
    const auto bp = net.addLayer(
        conv(name + "/pool_proj", cin, hw, 1, 1, 192), from);
    return {b1, s2, d4, bp};
}

/** 8x8 module with split 3x3 branches: the reduce convs each fan out
 *  into two consumers (the 1x3 / 3x1 pair). */
Frontier
inceptionC(NetworkSpec &net, const std::string &name,
           const Frontier &from, int cin)
{
    const int hw = 8;
    const auto b1 = net.addLayer(conv(name + "/1x1", cin, hw, 1, 1, 320),
                                 from);
    const auto r3 = net.addLayer(
        conv(name + "/3x3_reduce", cin, hw, 1, 1, 384), from);
    const auto sa = net.addLayer(conv(name + "/3x3_a", 384, hw, 1, 3, 384),
                                 {r3});
    const auto sb = net.addLayer(conv(name + "/3x3_b", 384, hw, 3, 1, 384),
                                 {r3});
    const auto rd = net.addLayer(
        conv(name + "/3x3dbl_reduce", cin, hw, 1, 1, 448), from);
    const auto d1 = net.addLayer(
        conv(name + "/3x3dbl_1", 448, hw, 3, 3, 384), {rd});
    const auto da = net.addLayer(
        conv(name + "/3x3dbl_2a", 384, hw, 1, 3, 384), {d1});
    const auto db = net.addLayer(
        conv(name + "/3x3dbl_2b", 384, hw, 3, 1, 384), {d1});
    const auto bp = net.addLayer(
        conv(name + "/pool_proj", cin, hw, 1, 1, 192), from);
    return {b1, sa, sb, da, db, bp};
}

} // namespace

NetworkSpec
inceptionV3()
{
    NetworkSpec net;
    net.name = "InceptionV3";
    net.weightSparsity = 0.79;
    net.actSparsity = 0.46;
    net.accuracy = "75.1% (top-1)";
    net.paperDenseCycles = 6'900'000;

    // Stem on a 299x299 input.  The chain's producer→consumer adjacency
    // is forced in every topological order, so each hand-off executes
    // as a fused pipeline stage: only a three-row sliding window of the
    // (pooled) map is resident, never the full tensor.  conv5 feeds
    // mixed_a1's four branch heads, whose schedule positions are free,
    // so it materialises fully at the pooled 35x35 consumer-visible
    // size (pooling is line-buffered into the producer's output
    // stream).
    auto stem = conv("conv1_3x3_s2", 3, 149, 3, 3, 32);
    stem.actSparsity = 0.0;
    stem.weightSparsity = 0.4;
    net.nodes[net.chainLayer(stem)].outputBytes = 3 * 149 * 32;
    net.nodes[net.chainLayer(conv("conv2_3x3", 32, 147, 3, 3, 32))]
        .outputBytes = 3 * 147 * 32;
    net.nodes[net.chainLayer(conv("conv3_3x3", 32, 147, 3, 3, 64))]
        .outputBytes = 3 * 73 * 64;
    net.nodes[net.chainLayer(conv("conv4_1x1", 64, 73, 1, 1, 80))]
        .outputBytes = 3 * 73 * 80;
    const auto conv5 = net.chainLayer(conv("conv5_3x3", 80, 71, 3, 3, 192));
    net.nodes[conv5].outputBytes = 35 * 35 * 192;

    Frontier concat{conv5};
    concat = inceptionA(net, "mixed_a1", concat, 192, 32);
    concat = inceptionA(net, "mixed_a2", concat, 256, 64);
    concat = inceptionA(net, "mixed_a3", concat, 288, 64);

    // Reduction A: 35 -> 17.  The pooled branch of the concat has no
    // conv, so the incoming frontier passes through.
    {
        const auto s1 = net.addLayer(
            conv("red_a/3x3_s2", 288, 17, 3, 3, 384), concat);
        const auto rd = net.addLayer(
            conv("red_a/3x3dbl_reduce", 288, 35, 1, 1, 64), concat);
        const auto d1 = net.addLayer(
            conv("red_a/3x3dbl_1", 64, 35, 3, 3, 96), {rd});
        const auto d2 = net.addLayer(
            conv("red_a/3x3dbl_2_s2", 96, 17, 3, 3, 96), {d1});
        Frontier next{s1, d2};
        next.insert(next.end(), concat.begin(), concat.end());
        concat = std::move(next);
    }

    concat = inceptionB(net, "mixed_b1", concat, 128);
    concat = inceptionB(net, "mixed_b2", concat, 160);
    concat = inceptionB(net, "mixed_b3", concat, 160);
    concat = inceptionB(net, "mixed_b4", concat, 192);

    // Reduction B: 17 -> 8, same pooled pass-through.
    {
        const auto r3 = net.addLayer(
            conv("red_b/3x3_reduce", 768, 17, 1, 1, 192), concat);
        const auto s3 = net.addLayer(
            conv("red_b/3x3_s2", 192, 8, 3, 3, 320), {r3});
        const auto r7 = net.addLayer(
            conv("red_b/7x7_reduce", 768, 17, 1, 1, 192), concat);
        const auto f1 = net.addLayer(
            conv("red_b/1x7", 192, 17, 1, 7, 192), {r7});
        const auto f2 = net.addLayer(
            conv("red_b/7x1", 192, 17, 7, 1, 192), {f1});
        const auto s7 = net.addLayer(
            conv("red_b/3x3dbl_s2", 192, 8, 3, 3, 192), {f2});
        Frontier next{s3, s7};
        next.insert(next.end(), concat.begin(), concat.end());
        concat = std::move(next);
    }

    concat = inceptionC(net, "mixed_c1", concat, 1280);
    concat = inceptionC(net, "mixed_c2", concat, 2048);

    // mixed_c2's terminals feed the global average pool into the
    // classifier: the consumer-visible map is 1x1 per channel.
    const int c2Channels[] = {320, 384, 384, 384, 384, 192};
    for (std::size_t i = 0; i < concat.size(); ++i)
        net.nodes[concat[i]].outputBytes = c2Channels[i];

    net.addLayer(fcLayer("fc", 2048, 1000), concat);
    net.validate();
    return net;
}

} // namespace griffin
