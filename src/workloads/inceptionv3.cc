/**
 * @file
 * Inception-V3 (Szegedy et al.), pruned per [73] (Table IV row 4).
 * Branch channel counts follow the reference TensorFlow slim model.
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

namespace {

using netutil::conv;

/** 35x35 module: 1x1, 5x5 (factor 48), double-3x3 (64->96->96),
 *  pool-proj. */
void
inceptionA(NetworkSpec &net, const std::string &name, int cin,
           int cpool)
{
    const int hw = 35;
    net.layers.push_back(conv(name + "/1x1", cin, hw, 1, 1, 64));
    net.layers.push_back(conv(name + "/5x5_reduce", cin, hw, 1, 1, 48));
    net.layers.push_back(conv(name + "/5x5", 48, hw, 5, 5, 64));
    net.layers.push_back(conv(name + "/3x3dbl_reduce", cin, hw, 1, 1, 64));
    net.layers.push_back(conv(name + "/3x3dbl_1", 64, hw, 3, 3, 96));
    net.layers.push_back(conv(name + "/3x3dbl_2", 96, hw, 3, 3, 96));
    net.layers.push_back(conv(name + "/pool_proj", cin, hw, 1, 1, cpool));
}

/** 17x17 module with factorized 7x7 convolutions of width c7. */
void
inceptionB(NetworkSpec &net, const std::string &name, int c7)
{
    const int hw = 17, cin = 768;
    net.layers.push_back(conv(name + "/1x1", cin, hw, 1, 1, 192));
    net.layers.push_back(conv(name + "/7x7_reduce", cin, hw, 1, 1, c7));
    net.layers.push_back(conv(name + "/1x7", c7, hw, 1, 7, c7));
    net.layers.push_back(conv(name + "/7x1", c7, hw, 7, 1, 192));
    net.layers.push_back(conv(name + "/7x7dbl_reduce", cin, hw, 1, 1, c7));
    net.layers.push_back(conv(name + "/7x7dbl_1", c7, hw, 7, 1, c7));
    net.layers.push_back(conv(name + "/7x7dbl_2", c7, hw, 1, 7, c7));
    net.layers.push_back(conv(name + "/7x7dbl_3", c7, hw, 7, 1, c7));
    net.layers.push_back(conv(name + "/7x7dbl_4", c7, hw, 1, 7, 192));
    net.layers.push_back(conv(name + "/pool_proj", cin, hw, 1, 1, 192));
}

/** 8x8 module with split 3x3 branches. */
void
inceptionC(NetworkSpec &net, const std::string &name, int cin)
{
    const int hw = 8;
    net.layers.push_back(conv(name + "/1x1", cin, hw, 1, 1, 320));
    net.layers.push_back(conv(name + "/3x3_reduce", cin, hw, 1, 1, 384));
    net.layers.push_back(conv(name + "/3x3_a", 384, hw, 1, 3, 384));
    net.layers.push_back(conv(name + "/3x3_b", 384, hw, 3, 1, 384));
    net.layers.push_back(conv(name + "/3x3dbl_reduce", cin, hw, 1, 1, 448));
    net.layers.push_back(conv(name + "/3x3dbl_1", 448, hw, 3, 3, 384));
    net.layers.push_back(conv(name + "/3x3dbl_2a", 384, hw, 1, 3, 384));
    net.layers.push_back(conv(name + "/3x3dbl_2b", 384, hw, 3, 1, 384));
    net.layers.push_back(conv(name + "/pool_proj", cin, hw, 1, 1, 192));
}

} // namespace

NetworkSpec
inceptionV3()
{
    NetworkSpec net;
    net.name = "InceptionV3";
    net.weightSparsity = 0.79;
    net.actSparsity = 0.46;
    net.accuracy = "75.1% (top-1)";
    net.paperDenseCycles = 6'900'000;

    // Stem on a 299x299 input.
    auto stem = conv("conv1_3x3_s2", 3, 149, 3, 3, 32);
    stem.actSparsity = 0.0;
    stem.weightSparsity = 0.4;
    net.layers.push_back(stem);
    net.layers.push_back(conv("conv2_3x3", 32, 147, 3, 3, 32));
    net.layers.push_back(conv("conv3_3x3", 32, 147, 3, 3, 64));
    net.layers.push_back(conv("conv4_1x1", 64, 73, 1, 1, 80));
    net.layers.push_back(conv("conv5_3x3", 80, 71, 3, 3, 192));

    inceptionA(net, "mixed_a1", 192, 32);
    inceptionA(net, "mixed_a2", 256, 64);
    inceptionA(net, "mixed_a3", 288, 64);

    // Reduction A: 35 -> 17.
    net.layers.push_back(conv("red_a/3x3_s2", 288, 17, 3, 3, 384));
    net.layers.push_back(conv("red_a/3x3dbl_reduce", 288, 35, 1, 1, 64));
    net.layers.push_back(conv("red_a/3x3dbl_1", 64, 35, 3, 3, 96));
    net.layers.push_back(conv("red_a/3x3dbl_2_s2", 96, 17, 3, 3, 96));

    inceptionB(net, "mixed_b1", 128);
    inceptionB(net, "mixed_b2", 160);
    inceptionB(net, "mixed_b3", 160);
    inceptionB(net, "mixed_b4", 192);

    // Reduction B: 17 -> 8.
    net.layers.push_back(conv("red_b/3x3_reduce", 768, 17, 1, 1, 192));
    net.layers.push_back(conv("red_b/3x3_s2", 192, 8, 3, 3, 320));
    net.layers.push_back(conv("red_b/7x7_reduce", 768, 17, 1, 1, 192));
    net.layers.push_back(conv("red_b/1x7", 192, 17, 1, 7, 192));
    net.layers.push_back(conv("red_b/7x1", 192, 17, 7, 1, 192));
    net.layers.push_back(conv("red_b/3x3dbl_s2", 192, 8, 3, 3, 192));

    inceptionC(net, "mixed_c1", 1280);
    inceptionC(net, "mixed_c2", 2048);

    net.layers.push_back(fcLayer("fc", 2048, 1000));
    net.validate();
    return net;
}

} // namespace griffin
