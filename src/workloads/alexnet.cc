/**
 * @file
 * AlexNet (Krizhevsky et al.), the classic two-group Caffe variant,
 * pruned per Deep Compression [20] (Table IV row 1).
 */

#include "workloads/net_util.hh"
#include "workloads/network.hh"

namespace griffin {

NetworkSpec
alexNet()
{
    using netutil::conv;
    NetworkSpec net;
    net.name = "AlexNet";
    net.weightSparsity = 0.89;
    net.actSparsity = 0.53;
    net.accuracy = "57.3% (top-1)";
    net.paperDenseCycles = 1'000'000;

    // 227x227x3 input; pooling between stages halves the grid.
    auto conv1 = conv("conv1", 3, 55, 11, 11, 96);
    // The first convolution sees raw pixels (dense) and is pruned far
    // less aggressively than the rest of the model [20].
    conv1.actSparsity = 0.0;
    conv1.weightSparsity = 0.4;
    net.chainLayer(conv1);
    net.chainLayer(conv("conv2", 96, 27, 5, 5, 256, 2));
    net.chainLayer(conv("conv3", 256, 13, 3, 3, 384));
    net.chainLayer(conv("conv4", 384, 13, 3, 3, 384, 2));
    net.chainLayer(conv("conv5", 384, 13, 3, 3, 256, 2));
    net.chainLayer(fcLayer("fc6", 9216, 4096));
    net.chainLayer(fcLayer("fc7", 4096, 4096));
    net.chainLayer(fcLayer("fc8", 4096, 1000));
    net.validate();
    return net;
}

} // namespace griffin
