/**
 * @file
 * Layer descriptions: every benchmark layer reduces to one GEMM
 * (Section II-A), possibly grouped and possibly repeated.
 */

#ifndef GRIFFIN_WORKLOADS_LAYER_HH
#define GRIFFIN_WORKLOADS_LAYER_HH

#include <cstdint>
#include <string>

#include "tensor/im2col.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * One layer lowered to GEMM: A is (m x k) activations, B is (k x n)
 * weights, per group.  `groups` > 1 models grouped/depthwise
 * convolution (each group is an independent GEMM); `repeat` collapses
 * identical layers (e.g. the 12 transformer blocks of BERT).
 */
struct LayerSpec
{
    std::string name;
    std::int64_t m = 1;
    std::int64_t k = 1;
    std::int64_t n = 1;
    int groups = 1;
    std::int64_t repeat = 1;

    /**
     * Per-layer sparsity overrides in [0,1]; negative means "use the
     * network-level rate".  First convolutions, for example, are
     * customarily left unpruned.
     */
    double weightSparsity = -1.0;
    double actSparsity = -1.0;

    /** MACs over all groups and repeats. */
    std::int64_t
    macs() const
    {
        return m * k * n * groups * repeat;
    }

    /** Dense-core cycles over all groups and repeats. */
    std::int64_t
    denseCycles(const TileShape &shape) const
    {
        return griffin::denseCycles(m, k, n, shape) * groups * repeat;
    }

    void validate() const;
};

/** Convolution layer lowered through im2col. */
LayerSpec convLayer(const std::string &name, const ConvShape &shape);

/** Fully connected layer on a batch of `batch` activations. */
LayerSpec fcLayer(const std::string &name, std::int64_t in,
                  std::int64_t out, std::int64_t batch = 1);

} // namespace griffin

#endif // GRIFFIN_WORKLOADS_LAYER_HH
