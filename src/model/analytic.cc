#include "model/analytic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace griffin {

namespace {

/** log(n choose k) via lgamma. */
double
logChoose(int n, int k)
{
    return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
           std::lgamma(n - k + 1.0);
}

/** P(Binomial(n,p) <= x), exact summation (n is small here). */
double
binomialCdf(int n, double p, int x)
{
    if (x < 0)
        return 0.0;
    if (x >= n)
        return 1.0;
    if (p <= 0.0)
        return 1.0;
    if (p >= 1.0)
        return 0.0;
    double cdf = 0.0;
    for (int k = 0; k <= x; ++k) {
        cdf += std::exp(logChoose(n, k) + k * std::log(p) +
                        (n - k) * std::log1p(-p));
    }
    return std::min(cdf, 1.0);
}

/**
 * Interpolated median of the max of `groups` Binomial(n,p) draws.
 * The fractional quantile keeps the estimator monotone in the window
 * depth (an integer quantile saws against W/cycles).
 */
double
maxLoadQuantile(int n, double p, std::int64_t groups)
{
    const double q = std::pow(0.5, 1.0 / static_cast<double>(groups));
    double prev = binomialCdf(n, p, -1);
    for (int x = 0; x <= n; ++x) {
        const double cdf = binomialCdf(n, p, x);
        if (cdf >= q) {
            const double span = cdf - prev;
            const double frac =
                span > 0.0 ? (q - prev) / span : 0.0;
            return std::max(0.0, (x - 1) + frac);
        }
        prev = cdf;
    }
    return n;
}

/**
 * Speedup of one window-scheduled stage.
 *
 * @param w_steps   resident steps (ideal speedup bound)
 * @param group     slots that share work through borrowing
 * @param groups    independent balancing groups in the sync domain
 * @param p         effectual probability per slot-step
 */
double
stageSpeedup(int w_steps, std::int64_t group, std::int64_t groups,
             double p)
{
    if (p <= 0.0)
        return static_cast<double>(w_steps);
    if (p >= 1.0)
        return 1.0;
    const int n = static_cast<int>(w_steps * group);
    const double max_load = maxLoadQuantile(n, p, groups);
    const double cycles =
        std::max(1.0, max_load / static_cast<double>(group));
    return std::min(static_cast<double>(w_steps),
                    static_cast<double>(w_steps) / cycles);
}

} // namespace

int
binomialMaxMedian(int n, double p, std::int64_t groups)
{
    GRIFFIN_ASSERT(n >= 0 && groups >= 1, "bad max-median arguments");
    for (int x = 0; x <= n; ++x) {
        const double cdf = binomialCdf(n, p, x);
        if (cdf > 0.0 &&
            static_cast<double>(groups) * std::log(cdf) >=
                std::log(0.5)) {
            return x;
        }
    }
    return n;
}

double
analyticSpeedup(const RoutingConfig &cfg, const TileShape &shape,
                double a_sparsity, double b_sparsity)
{
    cfg.validate();
    GRIFFIN_ASSERT(a_sparsity >= 0.0 && a_sparsity <= 1.0 &&
                   b_sparsity >= 0.0 && b_sparsity <= 1.0,
                   "sparsity outside [0,1]");

    const auto w = windowParams(cfg);
    switch (cfg.mode) {
      case SparsityMode::Dense:
        return 1.0;

      case SparsityMode::B: {
        const double p = 1.0 - b_sparsity;
        const std::int64_t group =
            (1 + w.laneDist) * (1 + w.colDist);
        const std::int64_t population =
            static_cast<std::int64_t>(shape.k0) * shape.n0;
        return stageSpeedup(w.steps, group,
                            std::max<std::int64_t>(1,
                                                   population / group),
                            p);
      }

      case SparsityMode::A: {
        const double p = 1.0 - a_sparsity;
        const std::int64_t group =
            (1 + w.laneDist) * (1 + w.rowDist);
        const std::int64_t population =
            static_cast<std::int64_t>(shape.k0) * shape.m0;
        return stageSpeedup(w.steps, group,
                            std::max<std::int64_t>(1,
                                                   population / group),
                            p);
      }

      case SparsityMode::AB: {
        if (!cfg.preprocessB) {
            // On-the-fly matching: one stage over the raw grid.
            const double p = (1.0 - a_sparsity) * (1.0 - b_sparsity);
            const std::int64_t group = (1 + w.laneDist) *
                                       (1 + w.rowDist) *
                                       (1 + w.colDist);
            const std::int64_t population =
                static_cast<std::int64_t>(shape.k0) * shape.m0 *
                shape.n0;
            return stageSpeedup(
                w.steps, group,
                std::max<std::int64_t>(1, population / group), p);
        }
        // Preprocessed dual composes: stage 1 is the offline B
        // packing, stage 2 the runtime A-side skip over the
        // compressed stream (per-column sync domain).
        auto stage1_cfg =
            RoutingConfig::sparseB(cfg.b.d1, cfg.b.d2, cfg.b.d3,
                                   cfg.shuffle);
        const double s1 =
            analyticSpeedup(stage1_cfg, shape, 0.0, b_sparsity);
        // Stream-slot utilisation after packing: nonzeros compacted by
        // s1 into a stream 1/s1 as long.
        const double util =
            std::min(1.0, (1.0 - b_sparsity) * s1);
        const double p2 = util * (1.0 - a_sparsity);
        const std::int64_t group =
            (1 + cfg.a.d2) * (1 + cfg.a.d3);
        const std::int64_t population =
            static_cast<std::int64_t>(shape.k0) * shape.m0;
        const double s2 = stageSpeedup(
            1 + cfg.a.d1, group,
            std::max<std::int64_t>(1, population / group), p2);
        return std::min(static_cast<double>(w.steps), s1 * s2);
      }
    }
    panic("unreachable sparsity mode");
}

} // namespace griffin
