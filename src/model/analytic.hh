/**
 * @file
 * Closed-form speedup model (paper contribution 1: "an analytical
 * model, verified by a simulator").
 *
 * The window scheduler's steady state is governed by two forces:
 *
 *   1. throughput/window bound — the window slides at most W steps per
 *      cycle, so speedup <= W = 1 + d1 (or L for preprocessed dual);
 *   2. load imbalance — the window waits for the most loaded
 *      *balancing group* (a slot plus the neighbours that can steal
 *      its work).  With i.i.d. zeros the load of a group over one
 *      window is Binomial(W x g, p); the tile advances one window per
 *      E[max over groups of ceil(load / g)] cycles.
 *
 * The estimator computes that expectation from the exact binomial
 * quantile at the median-of-maxima point.  Tests verify it against the
 * cycle-level simulator across the routing design space.
 */

#ifndef GRIFFIN_MODEL_ANALYTIC_HH
#define GRIFFIN_MODEL_ANALYTIC_HH

#include "arch/routing.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * Estimated speedup over the dense baseline for i.i.d. operand
 * sparsity.  The rotation shuffle targets *structured* (non-i.i.d.)
 * lane bias, so it has no effect in this model by construction.
 *
 * @param a_sparsity zero fraction of the activation tensor
 * @param b_sparsity zero fraction of the weight tensor
 */
double analyticSpeedup(const RoutingConfig &cfg, const TileShape &shape,
                       double a_sparsity, double b_sparsity);

/**
 * Median of the maximum of `groups` i.i.d. Binomial(n, p) draws —
 * the load-imbalance statistic.  Exposed for testing.
 */
int binomialMaxMedian(int n, double p, std::int64_t groups);

} // namespace griffin

#endif // GRIFFIN_MODEL_ANALYTIC_HH
