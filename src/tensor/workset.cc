#include "tensor/workset.hh"

#include <istream>
#include <ostream>

#include "common/arena.hh"
#include "common/binio.hh"
#include "common/rng.hh"
#include "simd/occupancy.hh"
#include "tensor/sparsity.hh"

namespace griffin {

bool
WorksetParams::operator==(const WorksetParams &o) const
{
    return m == o.m && k == o.k && n == o.n &&
           weightSparsity == o.weightSparsity &&
           actSparsity == o.actSparsity &&
           weightLaneBias == o.weightLaneBias &&
           actRunLength == o.actRunLength && lanePeriod == o.lanePeriod &&
           seed == o.seed;
}

std::int64_t
countEffectualOps(const MatrixI8 &a, const MatrixI8 &b)
{
    GRIFFIN_ASSERT(a.cols() == b.rows(), "GEMM shape mismatch: A ",
                   a.rows(), "x", a.cols(), ", B ", b.rows(), "x",
                   b.cols());
    // Column-nnz of A accumulates row by row (rows are contiguous; the
    // k-strided column walk was the hot spot), then one contiguous
    // count per B row.
    const simd::KernelTable &kern = simd::kernels();
    Arena &arena = workArena();
    ArenaScope scope(arena);
    auto *a_nnz = arena.allocZeroed<std::int32_t>(a.cols());
    for (std::size_t m = 0; m < a.rows(); ++m)
        kern.accumulateNonzero(a.data() + m * a.cols(), a.cols(),
                               a_nnz);
    std::int64_t total = 0;
    for (std::size_t k = 0; k < a.cols(); ++k)
        total += static_cast<std::int64_t>(a_nnz[k]) *
                 kern.countNonzero(b.data() + k * b.cols(), b.cols());
    return total;
}

LayerWorkset
generateLayerWorkset(const WorksetParams &params)
{
    // The draw order (A, then B, then the sampling fork) is frozen:
    // it reproduces the stream Accelerator::runLayer drew before the
    // pipeline split, and every cached workset depends on it.
    LayerWorkset ws;
    Rng rng(params.seed);
    ws.a = clusteredSparse(static_cast<std::size_t>(params.m),
                           static_cast<std::size_t>(params.k),
                           params.actSparsity, params.actRunLength, rng);
    ws.b = laneBiasedSparse(static_cast<std::size_t>(params.k),
                            static_cast<std::size_t>(params.n),
                            params.weightSparsity, params.weightLaneBias,
                            params.lanePeriod, rng);
    ws.simSeed = static_cast<std::uint64_t>(
        rng.fork().uniformInt(0, 1 << 30));
    ws.effectualOps = countEffectualOps(ws.a, ws.b);
    ws.nnzB = static_cast<std::int64_t>(ws.b.nnz());
    return ws;
}

namespace {

void
putMatrix(std::ostream &os, const MatrixI8 &m)
{
    putU64(os, static_cast<std::uint64_t>(m.rows()));
    putU64(os, static_cast<std::uint64_t>(m.cols()));
    os.write(reinterpret_cast<const char *>(m.data()),
             static_cast<std::streamsize>(m.size()));
}

bool
getMatrix(std::istream &is, MatrixI8 &m)
{
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    if (!getU64(is, rows) || !getU64(is, cols))
        return false;
    // Reject absurd geometry before allocating: a corrupt header must
    // not become a multi-gigabyte allocation (overflow-safe — the
    // product of two large dims must not wrap past the check).  Real
    // worksets are a row-capped A slice and one layer's weight matrix;
    // the largest benchmark layer is ~4e7 elements, so 2^28 is
    // generous while keeping a corrupt header's demand under 256 MiB.
    constexpr std::uint64_t elem_limit = 1ull << 28;
    if (rows > elem_limit || cols > elem_limit ||
        (rows != 0 && cols > elem_limit / rows))
        return false;
    MatrixI8 fresh(static_cast<std::size_t>(rows),
                   static_cast<std::size_t>(cols));
    if (!is.read(reinterpret_cast<char *>(fresh.data()),
                 static_cast<std::streamsize>(fresh.size())))
        return false;
    m = std::move(fresh);
    return true;
}

} // namespace

void
LayerWorkset::serialize(std::ostream &os) const
{
    putMatrix(os, a);
    putMatrix(os, b);
    putU64(os, simSeed);
    putI64(os, effectualOps);
    putI64(os, nnzB);
}

bool
LayerWorkset::deserialize(std::istream &is, LayerWorkset &out)
{
    LayerWorkset ws;
    if (!getMatrix(is, ws.a) || !getMatrix(is, ws.b) ||
        !getU64(is, ws.simSeed) || !getI64(is, ws.effectualOps) ||
        !getI64(is, ws.nnzB))
        return false;
    if (ws.a.cols() != ws.b.rows())
        return false; // structurally inconsistent
    out = std::move(ws);
    return true;
}

} // namespace griffin
