/**
 * @file
 * Stage 1 of the staged simulation pipeline: operand generation.
 *
 * One layer's simulation consumes a *workset* — the synthetic A
 * (activation) and B (weight) matrices generated at the layer's
 * sparsity ratios, plus the operand statistics the memory model and
 * the result record need (effectual MACs, B nonzeros) and the derived
 * seed of the tile-sampling phase.  The workset is a pure function of
 * WorksetParams: along the architecture axis of any sweep grid, every
 * design point with the same tile height replays *bit-identical*
 * operand generation, which is why worksets are content-addressed and
 * cacheable (runtime/workset_cache.hh) rather than regenerated inside
 * every Accelerator::runLayer call.
 *
 * Convolution layers are already lowered to GEMM shapes by the
 * workload tables (tensor/im2col.hh does the lowering; workloads/
 * stores the resulting m/k/n), so generation works directly in GEMM
 * coordinates — the im2col output *is* the A matrix being modelled.
 */

#ifndef GRIFFIN_TENSOR_WORKSET_HH
#define GRIFFIN_TENSOR_WORKSET_HH

#include <cstdint>
#include <iosfwd>

#include "tensor/matrix.hh"

namespace griffin {

/**
 * The complete input domain of layer operand generation.  Two equal
 * parameter records generate bit-identical worksets on any platform;
 * the content key of the workset cache hashes exactly these fields.
 */
struct WorksetParams
{
    std::int64_t m = 0; ///< simulated A rows (row-cap applied)
    std::int64_t k = 0; ///< GEMM depth
    std::int64_t n = 0; ///< B columns
    double weightSparsity = 0.0;
    double actSparsity = 0.0;
    /** Lane-imbalance depth of the weight mask (sparsity.hh). */
    double weightLaneBias = 0.0;
    /** Effective mean zero-run length (already clamped to >= 1, so
     *  equivalent inputs share one cache entry). */
    double actRunLength = 1.0;
    /** Modulation period of laneBiasedSparse (crossbar granularity). */
    int lanePeriod = 4;
    /** Layer stream seed: mixSeed(mixSeed(run seed, net name), layer). */
    std::uint64_t seed = 0;

    bool operator==(const WorksetParams &o) const;
    bool operator!=(const WorksetParams &o) const { return !(*this == o); }
};

/** The stage-1 artifact: generated operands + their content statistics. */
struct LayerWorkset
{
    MatrixI8 a; ///< activations, m x k
    MatrixI8 b; ///< weights, k x n
    /** Seed of the tile-sampling phase (forked from the generation
     *  stream, so it is part of the workset, not of the simulation). */
    std::uint64_t simSeed = 0;
    /** MACs where both operands are nonzero. */
    std::int64_t effectualOps = 0;
    /** Nonzero count of B (compressed-stream payload size). */
    std::int64_t nnzB = 0;

    /** Approximate resident footprint, the workset-cache byte unit. */
    std::size_t
    approxBytes() const
    {
        return a.size() + b.size() + sizeof(LayerWorkset);
    }

    /**
     * Fixed-width little-endian binary form (common/binio.hh units):
     * both matrix geometries and raw element bytes, then the derived
     * seed and statistics.  deserialize() reproduces a bit-identical
     * workset on any platform.
     */
    void serialize(std::ostream &os) const;

    /**
     * Read one serialize()d workset.  Returns false (leaving `out`
     * unspecified) on truncated or structurally inconsistent input —
     * callers treat that as a corrupt cache file, not a fatal error.
     */
    static bool deserialize(std::istream &is, LayerWorkset &out);
};

/** Count MACs where both operands are nonzero, in O(MK + KN). */
std::int64_t countEffectualOps(const MatrixI8 &a, const MatrixI8 &b);

/**
 * Generate the workset for one parameter record: clustered-sparse
 * activations, lane-biased weights, then the forked sampling seed —
 * the exact stream Accelerator::runLayer historically drew inline, so
 * pipelined and monolithic runs are bit-identical.
 */
LayerWorkset generateLayerWorkset(const WorksetParams &params);

} // namespace griffin

#endif // GRIFFIN_TENSOR_WORKSET_HH
