#include "tensor/sparsity.hh"

#include <algorithm>

namespace griffin {

MatrixI8
randomSparse(std::size_t rows, std::size_t cols, double sparsity, Rng &rng)
{
    GRIFFIN_ASSERT(sparsity >= 0.0 && sparsity <= 1.0,
                   "sparsity ", sparsity, " outside [0,1]");
    MatrixI8 m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        std::int8_t *row = m.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
            if (!rng.bernoulli(sparsity))
                row[c] = rng.nonzeroInt8();
    }
    return m;
}

MatrixI8
randomDense(std::size_t rows, std::size_t cols, Rng &rng)
{
    return randomSparse(rows, cols, 0.0, rng);
}

MatrixI8
clusteredSparse(std::size_t rows, std::size_t cols, double sparsity,
                double run_len, Rng &rng)
{
    GRIFFIN_ASSERT(sparsity >= 0.0 && sparsity <= 1.0,
                   "sparsity ", sparsity, " outside [0,1]");
    GRIFFIN_ASSERT(run_len >= 1.0, "run length ", run_len, " below 1");
    MatrixI8 m(rows, cols);
    // Two-state Markov chain per row.  Stay in the zero state with
    // probability 1 - 1/run_len (mean zero-run length = run_len); the
    // entry rate into the zero state is chosen so the stationary zero
    // fraction equals `sparsity`.
    const double exit_zero = 1.0 / run_len;
    const double enter_zero =
        sparsity >= 1.0 ? 1.0
                        : std::min(1.0, exit_zero * sparsity /
                                            std::max(1e-9, 1.0 - sparsity));
    for (std::size_t r = 0; r < rows; ++r) {
        std::int8_t *row = m.data() + r * cols;
        bool in_zero_run = rng.bernoulli(sparsity);
        for (std::size_t c = 0; c < cols; ++c) {
            if (!in_zero_run)
                row[c] = rng.nonzeroInt8();
            in_zero_run = in_zero_run ? !rng.bernoulli(exit_zero)
                                      : rng.bernoulli(enter_zero);
        }
    }
    return m;
}

MatrixI8
unbalancedSparse(std::size_t rows, std::size_t cols, double sparsity,
                 double spread, Rng &rng)
{
    GRIFFIN_ASSERT(spread >= 0.0, "negative spread ", spread);
    MatrixI8 m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        const double lo = std::max(0.0, sparsity - spread);
        const double hi = std::min(1.0, sparsity + spread);
        const double row_sparsity = lo + (hi - lo) * rng.uniform01();
        std::int8_t *row = m.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
            if (!rng.bernoulli(row_sparsity))
                row[c] = rng.nonzeroInt8();
    }
    return m;
}

MatrixI8
laneBiasedSparse(std::size_t rows, std::size_t cols, double sparsity,
                 double bias, int period, Rng &rng)
{
    GRIFFIN_ASSERT(sparsity >= 0.0 && sparsity <= 1.0,
                   "sparsity ", sparsity, " outside [0,1]");
    GRIFFIN_ASSERT(bias >= 0.0 && bias <= 1.0,
                   "bias ", bias, " outside [0,1]");
    GRIFFIN_ASSERT(period >= 1, "period ", period, " below 1");
    const double density = 1.0 - sparsity;
    MatrixI8 m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        // Triangular profile over the period, zero-mean so the overall
        // rate stays on target: phase 0 is the densest position.
        const int phase = static_cast<int>(r % period);
        const double centered =
            period == 1
                ? 0.0
                : 1.0 - 2.0 * phase / static_cast<double>(period - 1);
        const double q =
            std::clamp(density * (1.0 + bias * centered), 0.0, 1.0);
        std::int8_t *row = m.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
            if (rng.bernoulli(q))
                row[c] = rng.nonzeroInt8();
    }
    return m;
}

void
pruneInPlace(MatrixI8 &m, double sparsity, Rng &rng)
{
    GRIFFIN_ASSERT(sparsity >= 0.0 && sparsity <= 1.0,
                   "sparsity ", sparsity, " outside [0,1]");
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (rng.bernoulli(sparsity))
                m.at(r, c) = 0;
}

} // namespace griffin
