/**
 * @file
 * Dense row-major matrix container and the reference GEMM.
 *
 * The whole library works on INT8 operands with INT32 accumulation,
 * matching the paper's datapath (Table IV: INT8 MACs).  matmulRef() is
 * the functional golden model every sparse schedule is checked
 * against.
 */

#ifndef GRIFFIN_TENSOR_MATRIX_HH
#define GRIFFIN_TENSOR_MATRIX_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace griffin {

/**
 * Row-major dense matrix.  Deliberately minimal: storage, checked
 * element access, and sparsity accounting.
 */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix, zero-initialised. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{0})
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &
    at(std::size_t r, std::size_t c)
    {
        GRIFFIN_ASSERT(r < rows_ && c < cols_,
                       "matrix index (", r, ",", c, ") out of ",
                       rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    const T &
    at(std::size_t r, std::size_t c) const
    {
        GRIFFIN_ASSERT(r < rows_ && c < cols_,
                       "matrix index (", r, ",", c, ") out of ",
                       rows_, "x", cols_);
        return data_[r * cols_ + c];
    }

    /**
     * Element access with zero padding outside the matrix.  Tile views
     * at the right/bottom edges read through this.
     */
    T
    atOrZero(std::size_t r, std::size_t c) const
    {
        return (r < rows_ && c < cols_) ? data_[r * cols_ + c] : T{0};
    }

    const T *data() const { return data_.data(); }
    T *data() { return data_.data(); }

    void
    fill(T value)
    {
        std::fill(data_.begin(), data_.end(), value);
    }

    /** Number of nonzero elements. */
    std::size_t
    nnz() const
    {
        std::size_t n = 0;
        for (const T &v : data_)
            n += (v != T{0});
        return n;
    }

    /** Fraction of zero elements in [0,1]; 0 for an empty matrix. */
    double
    sparsity() const
    {
        if (data_.empty())
            return 0.0;
        return 1.0 -
               static_cast<double>(nnz()) /
                   static_cast<double>(data_.size());
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

    bool
    operator!=(const Matrix &other) const
    {
        return !(*this == other);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

using MatrixI8 = Matrix<std::int8_t>;
using MatrixI32 = Matrix<std::int32_t>;

/**
 * INT8 nonzero counting routes through the SIMD occupancy kernels
 * (matrix.cc) — operand generation calls it per layer on multi-million
 * element matrices.
 */
template <> std::size_t Matrix<std::int8_t>::nnz() const;

/**
 * Reference dense GEMM, C = A x B, INT8 operands with INT32
 * accumulation.  The golden model for schedule verification.
 */
MatrixI32 matmulRef(const MatrixI8 &a, const MatrixI8 &b);

} // namespace griffin

#endif // GRIFFIN_TENSOR_MATRIX_HH
