/**
 * @file
 * Synthetic sparse tensor generation and sparsity measurement.
 *
 * The paper evaluates on pruned checkpoints we cannot redistribute;
 * cycle counts depend only on the *positions* of zeros, so we
 * substitute i.i.d. Bernoulli masks at the published per-network
 * sparsity ratios (Table IV) — the standard model for unstructured
 * magnitude pruning and ReLU-induced activation sparsity.  A clustered
 * generator is also provided to stress load-balancing behaviour
 * (shuffle and d2 borrowing) beyond the i.i.d. case.
 */

#ifndef GRIFFIN_TENSOR_SPARSITY_HH
#define GRIFFIN_TENSOR_SPARSITY_HH

#include "common/rng.hh"
#include "tensor/matrix.hh"

namespace griffin {

/**
 * rows x cols INT8 matrix whose elements are zero with probability
 * `sparsity`, nonzero (uniform over nonzero INT8) otherwise.
 */
MatrixI8 randomSparse(std::size_t rows, std::size_t cols, double sparsity,
                      Rng &rng);

/** Fully dense random matrix (every element nonzero). */
MatrixI8 randomDense(std::size_t rows, std::size_t cols, Rng &rng);

/**
 * Clustered sparsity: zeros arrive in runs of geometric mean length
 * `run_len` along each row, at overall rate `sparsity`.  Models the
 * bursty zero patterns of ReLU feature maps, which are harder to load
 * balance than i.i.d. masks.
 */
MatrixI8 clusteredSparse(std::size_t rows, std::size_t cols,
                         double sparsity, double run_len, Rng &rng);

/**
 * Unbalanced sparsity: each row r gets its own zero rate drawn
 * uniformly from [sparsity - spread, sparsity + spread] (clamped).
 * Stresses cross-lane imbalance.
 */
MatrixI8 unbalancedSparse(std::size_t rows, std::size_t cols,
                          double sparsity, double spread, Rng &rng);

/**
 * Lane-biased sparsity for weight tensors: the nonzero rate of row k
 * is modulated by a periodic profile over (k mod period).
 *
 * Real pruned models are not i.i.d. along K: im2col interleaves filter
 * positions and channel blocks into the k index, and magnitude pruning
 * keeps centre taps / salient channels denser.  Lanes of the
 * dot-product unit (k2 = k mod K0) therefore inherit *persistent* load
 * imbalance — the phenomenon the paper's rotation shuffle exists to
 * fix (Section III, Load Balancing).  `bias` in [0,1] scales the
 * modulation depth; period 4 aligns with the 4x4 crossbar granularity.
 */
MatrixI8 laneBiasedSparse(std::size_t rows, std::size_t cols,
                          double sparsity, double bias, int period,
                          Rng &rng);

/**
 * Apply a pruning mask in place: zero each element independently with
 * probability `sparsity` (used to sparsify an existing tensor).
 */
void pruneInPlace(MatrixI8 &m, double sparsity, Rng &rng);

} // namespace griffin

#endif // GRIFFIN_TENSOR_SPARSITY_HH
