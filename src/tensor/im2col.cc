#include "tensor/im2col.hh"

namespace griffin {

void
ConvShape::validate() const
{
    if (cin <= 0 || h <= 0 || w <= 0 || r <= 0 || s <= 0 || cout <= 0)
        fatal("conv shape has non-positive dimension");
    if (stride <= 0)
        fatal("conv stride must be positive, got ", stride);
    if (pad < 0)
        fatal("conv padding must be non-negative, got ", pad);
    if (groups <= 0 || cin % groups != 0 || cout % groups != 0)
        fatal("conv groups=", groups, " must divide cin=", cin,
              " and cout=", cout);
    if (h + 2 * pad < r || w + 2 * pad < s)
        fatal("filter ", r, "x", s, " larger than padded input ",
              h + 2 * pad, "x", w + 2 * pad);
}

MatrixI8
im2col(const FeatureMap &input, const ConvShape &shape, int group)
{
    shape.validate();
    GRIFFIN_ASSERT(input.channels() == shape.cin,
                   "input has ", input.channels(), " channels, shape says ",
                   shape.cin);
    GRIFFIN_ASSERT(group >= 0 && group < shape.groups,
                   "group ", group, " out of ", shape.groups);

    const int cg = shape.cin / shape.groups;
    const int c_base = group * cg;
    const int ho = shape.outH();
    const int wo = shape.outW();

    MatrixI8 a(static_cast<std::size_t>(ho) * wo,
               static_cast<std::size_t>(cg) * shape.r * shape.s);
    for (int y = 0; y < ho; ++y) {
        for (int x = 0; x < wo; ++x) {
            const std::size_t row = static_cast<std::size_t>(y) * wo + x;
            std::size_t col = 0;
            for (int c = 0; c < cg; ++c) {
                for (int dy = 0; dy < shape.r; ++dy) {
                    for (int dx = 0; dx < shape.s; ++dx, ++col) {
                        const int iy = y * shape.stride + dy - shape.pad;
                        const int ix = x * shape.stride + dx - shape.pad;
                        a.at(row, col) =
                            input.atOrZero(c_base + c, iy, ix);
                    }
                }
            }
        }
    }
    return a;
}

MatrixI8
kernelMatrix(const MatrixI8 &kernels, const ConvShape &shape, int group)
{
    shape.validate();
    const int cg = shape.cin / shape.groups;
    const int ng = shape.cout / shape.groups;
    const std::size_t k_per_group =
        static_cast<std::size_t>(cg) * shape.r * shape.s;
    GRIFFIN_ASSERT(kernels.rows() == static_cast<std::size_t>(shape.cout) &&
                   kernels.cols() == k_per_group,
                   "kernel matrix is ", kernels.rows(), "x", kernels.cols(),
                   ", expected ", shape.cout, "x", k_per_group);
    GRIFFIN_ASSERT(group >= 0 && group < shape.groups,
                   "group ", group, " out of ", shape.groups);

    MatrixI8 b(k_per_group, ng);
    for (int n = 0; n < ng; ++n) {
        const std::size_t oc = static_cast<std::size_t>(group) * ng + n;
        for (std::size_t k = 0; k < k_per_group; ++k)
            b.at(k, n) = kernels.at(oc, k);
    }
    return b;
}

MatrixI32
convRef(const FeatureMap &input, const MatrixI8 &kernels,
        const ConvShape &shape)
{
    shape.validate();
    const int cg = shape.cin / shape.groups;
    const int ng = shape.cout / shape.groups;
    const int ho = shape.outH();
    const int wo = shape.outW();

    MatrixI32 out(shape.cout, static_cast<std::size_t>(ho) * wo);
    for (int oc = 0; oc < shape.cout; ++oc) {
        const int group = oc / ng;
        const int c_base = group * cg;
        for (int y = 0; y < ho; ++y) {
            for (int x = 0; x < wo; ++x) {
                std::int32_t acc = 0;
                std::size_t k = 0;
                for (int c = 0; c < cg; ++c) {
                    for (int dy = 0; dy < shape.r; ++dy) {
                        for (int dx = 0; dx < shape.s; ++dx, ++k) {
                            const int iy = y * shape.stride + dy - shape.pad;
                            const int ix = x * shape.stride + dx - shape.pad;
                            acc += static_cast<std::int32_t>(
                                       input.atOrZero(c_base + c, iy, ix)) *
                                   kernels.at(oc, k);
                        }
                    }
                }
                out.at(oc, static_cast<std::size_t>(y) * wo + x) = acc;
            }
        }
    }
    return out;
}

} // namespace griffin
