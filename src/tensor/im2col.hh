/**
 * @file
 * Convolution-to-GEMM lowering (im2col) and the naive convolution
 * reference it is tested against.
 *
 * The paper maps a convolution layer onto the GEMM core as
 *   A: (Hout*Wout) x (Cin*R*S)   — unfolded input patches
 *   B: (Cin*R*S) x Cout          — flattened kernels
 * (Section II-A).  Grouped convolution (MobileNetV2 depthwise layers)
 * lowers each group independently.
 */

#ifndef GRIFFIN_TENSOR_IM2COL_HH
#define GRIFFIN_TENSOR_IM2COL_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace griffin {

/**
 * Channel-major 3-D feature map (c, y, x) with INT8 elements.
 */
class FeatureMap
{
  public:
    FeatureMap(int channels, int height, int width)
        : channels_(channels), height_(height), width_(width),
          data_(static_cast<std::size_t>(channels) * height * width, 0)
    {
        GRIFFIN_ASSERT(channels > 0 && height > 0 && width > 0,
                       "degenerate feature map ", channels, "x", height,
                       "x", width);
    }

    int channels() const { return channels_; }
    int height() const { return height_; }
    int width() const { return width_; }

    std::int8_t &
    at(int c, int y, int x)
    {
        GRIFFIN_ASSERT(c >= 0 && c < channels_ && y >= 0 && y < height_ &&
                       x >= 0 && x < width_,
                       "feature map index (", c, ",", y, ",", x,
                       ") out of range");
        return data_[(static_cast<std::size_t>(c) * height_ + y) * width_ +
                     x];
    }

    std::int8_t
    at(int c, int y, int x) const
    {
        return const_cast<FeatureMap *>(this)->at(c, y, x);
    }

    /** Zero outside the map: implements zero padding. */
    std::int8_t
    atOrZero(int c, int y, int x) const
    {
        if (c < 0 || c >= channels_ || y < 0 || y >= height_ || x < 0 ||
            x >= width_) {
            return 0;
        }
        return at(c, y, x);
    }

  private:
    int channels_;
    int height_;
    int width_;
    std::vector<std::int8_t> data_;
};

/** Convolution geometry. */
struct ConvShape
{
    int cin = 1;    ///< input channels
    int h = 1;      ///< input height
    int w = 1;      ///< input width
    int r = 1;      ///< filter height
    int s = 1;      ///< filter width
    int cout = 1;   ///< output channels
    int stride = 1;
    int pad = 0;
    int groups = 1; ///< grouped conv; cin and cout divisible by groups

    int outH() const { return (h + 2 * pad - r) / stride + 1; }
    int outW() const { return (w + 2 * pad - s) / stride + 1; }

    /** GEMM M dimension per group. */
    std::int64_t gemmM() const
    {
        return static_cast<std::int64_t>(outH()) * outW();
    }
    /** GEMM K dimension per group. */
    std::int64_t gemmK() const
    {
        return static_cast<std::int64_t>(cin / groups) * r * s;
    }
    /** GEMM N dimension per group. */
    std::int64_t gemmN() const { return cout / groups; }

    /** MAC count of the whole layer (all groups). */
    std::int64_t macs() const
    {
        return gemmM() * gemmK() * gemmN() * groups;
    }

    /** Sanity-check the geometry; fatal() on user error. */
    void validate() const;
};

/**
 * Unfold one group of the input into the A matrix:
 * rows = output pixels (y*outW + x), cols = (c, dy, dx) flattened.
 *
 * @param group which group's channels to unfold (0-based).
 */
MatrixI8 im2col(const FeatureMap &input, const ConvShape &shape,
                int group = 0);

/**
 * Flatten one group of kernels into the B matrix: rows = (c, dy, dx),
 * cols = output channel within the group.  `kernels` holds
 * cout x (cinPerGroup*r*s) weights, row per output channel.
 */
MatrixI8 kernelMatrix(const MatrixI8 &kernels, const ConvShape &shape,
                      int group = 0);

/**
 * Naive direct convolution used as the golden reference for the
 * im2col + GEMM path.  Returns (cout, outH, outW) results flattened to
 * a matrix of cout rows x (outH*outW) cols in INT32.
 */
MatrixI32 convRef(const FeatureMap &input, const MatrixI8 &kernels,
                  const ConvShape &shape);

} // namespace griffin

#endif // GRIFFIN_TENSOR_IM2COL_HH
