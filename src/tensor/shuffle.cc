#include "tensor/shuffle.hh"

namespace griffin {

Shuffler::Shuffler(bool enabled, int lanes, int group_size)
    : enabled_(enabled), lanes_(lanes), groupSize_(group_size)
{
    GRIFFIN_ASSERT(lanes > 0, "lanes must be positive, got ", lanes);
    if (enabled) {
        GRIFFIN_ASSERT(group_size > 0 && lanes % group_size == 0,
                       "group size ", group_size,
                       " must divide lane count ", lanes);
    }
}

} // namespace griffin
