/**
 * @file
 * Blocked 3-D tile views over GEMM operands (paper Fig. 1).
 *
 * The accelerator unrolls GEMM in (K0, N0, M0) and requires A and B to
 * be seen as 3-D tensors:
 *
 *   A(M x K):  (k1, k2, m)  with k = k1*K0 + k2, m inside an M0 block
 *   B(K x N):  (k1, k2, n)  with the same k split, n inside an N0 block
 *
 * k1 is the *temporal step* (one dense cycle each), k2 the *lane*
 * inside the K0-wide dot-product unit, and the third axis selects the
 * PE row (A) or PE column (B).  Borrowing distances d1/d2/d3 are
 * measured along exactly these axes.
 *
 * Views are zero-padded: coordinates past the matrix edge read as
 * zero, which the sparse schedulers naturally skip.
 */

#ifndef GRIFFIN_TENSOR_TILE_HH
#define GRIFFIN_TENSOR_TILE_HH

#include <cstdint>

#include "tensor/matrix.hh"

namespace griffin {

/** Core unroll geometry (paper Table IV: (K0,N0,M0) = (16,16,4)). */
struct TileShape
{
    int m0 = 4;  ///< rows per PE-grid block (A third axis)
    int n0 = 16; ///< columns per PE-grid block (B third axis)
    int k0 = 16; ///< dot-product width (lanes)

    int macsPerCycle() const { return m0 * n0 * k0; }
};

/**
 * Number of temporal steps a K-extent of `k` occupies: the dense core
 * spends exactly one cycle per step.
 */
inline std::int64_t
stepsForK(std::int64_t k, int k0)
{
    GRIFFIN_ASSERT(k0 > 0, "k0 must be positive");
    return (k + k0 - 1) / k0;
}

/**
 * 3-D view of one A tile: M0 rows starting at rowBase, the full K
 * extent split into (k1, k2).
 */
class TileViewA
{
  public:
    TileViewA(const MatrixI8 &a, const TileShape &shape,
              std::int64_t row_base)
        : a_(a), shape_(shape), rowBase_(row_base),
          steps_(stepsForK(static_cast<std::int64_t>(a.cols()), shape.k0))
    {
        GRIFFIN_ASSERT(row_base >= 0, "negative row base ", row_base);
    }

    std::int64_t steps() const { return steps_; }
    int lanes() const { return shape_.k0; }
    int units() const { return shape_.m0; }

    /** Element at (k1, k2, m); zero outside the matrix. */
    std::int8_t
    at(std::int64_t k1, int k2, int m) const
    {
        const auto k = k1 * shape_.k0 + k2;
        return a_.atOrZero(static_cast<std::size_t>(rowBase_ + m),
                           static_cast<std::size_t>(k));
    }

    bool
    nonzero(std::int64_t k1, int k2, int m) const
    {
        return at(k1, k2, m) != 0;
    }

    /** Backing matrix and first row — for bulk occupancy extraction. */
    const MatrixI8 &matrix() const { return a_; }
    std::int64_t unitBase() const { return rowBase_; }

  private:
    const MatrixI8 &a_;
    TileShape shape_;
    std::int64_t rowBase_;
    std::int64_t steps_;
};

/**
 * 3-D view of one B tile: N0 columns starting at colBase, the full K
 * extent split into (k1, k2).
 */
class TileViewB
{
  public:
    TileViewB(const MatrixI8 &b, const TileShape &shape,
              std::int64_t col_base)
        : b_(b), shape_(shape), colBase_(col_base),
          steps_(stepsForK(static_cast<std::int64_t>(b.rows()), shape.k0))
    {
        GRIFFIN_ASSERT(col_base >= 0, "negative column base ", col_base);
    }

    std::int64_t steps() const { return steps_; }
    int lanes() const { return shape_.k0; }
    int units() const { return shape_.n0; }

    /** Element at (k1, k2, n); zero outside the matrix. */
    std::int8_t
    at(std::int64_t k1, int k2, int n) const
    {
        const auto k = k1 * shape_.k0 + k2;
        return b_.atOrZero(static_cast<std::size_t>(k),
                           static_cast<std::size_t>(colBase_ + n));
    }

    bool
    nonzero(std::int64_t k1, int k2, int n) const
    {
        return at(k1, k2, n) != 0;
    }

    /** Backing matrix and first column — for bulk occupancy extraction. */
    const MatrixI8 &matrix() const { return b_; }
    std::int64_t unitBase() const { return colBase_; }

  private:
    const MatrixI8 &b_;
    TileShape shape_;
    std::int64_t colBase_;
    std::int64_t steps_;
};

/**
 * Dense-core cycle count for a full GEMM of the given dimensions: the
 * baseline every sparse speedup is normalised to.
 */
std::int64_t denseCycles(std::int64_t m, std::int64_t k, std::int64_t n,
                         const TileShape &shape);

} // namespace griffin

#endif // GRIFFIN_TENSOR_TILE_HH
