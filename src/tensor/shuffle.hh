/**
 * @file
 * Rotation-based load-balancing shuffle (paper Section III).
 *
 * Unstructured sparsity leaves some lanes with many more nonzeros than
 * others; the window can only advance as fast as the most loaded lane
 * drains.  The paper shuffles A and B along their second axis (k2)
 * before scheduling: element (i1, i2, i3) relocates within its step to
 * a rotated lane.  A full K0 x K0 crossbar is too expensive, so the
 * rotation is *local*: lanes are split into groups of `groupSize`
 * (paper: 4) consecutive lanes, realised as K0/4 cheap 4x4 crossbars,
 * and each group rotates by (i1 mod groupSize).
 *
 * Because both A and B rotate identically, A[m][k] still meets B[k][n]
 * at the same multiplier — lanes are merely relabelled per step, so
 * GEMM results are unchanged (tests verify).
 */

#ifndef GRIFFIN_TENSOR_SHUFFLE_HH
#define GRIFFIN_TENSOR_SHUFFLE_HH

#include <cstdint>

#include "common/logging.hh"

namespace griffin {

/**
 * The lane permutation applied per temporal step.  apply() maps an
 * original lane to its post-shuffle position; invert() undoes it.
 */
class Shuffler
{
  public:
    /**
     * @param enabled     identity permutation when false
     * @param lanes       K0, the dot-product width
     * @param group_size  crossbar granularity; `lanes` means a full
     *                    K0 x K0 crossbar, 4 is the paper's choice
     */
    Shuffler(bool enabled, int lanes, int group_size = 4);

    bool enabled() const { return enabled_; }
    int lanes() const { return lanes_; }
    int groupSize() const { return groupSize_; }

    /** Post-shuffle lane of the element originally at (step, lane). */
    int
    apply(std::int64_t step, int lane) const
    {
        GRIFFIN_ASSERT(lane >= 0 && lane < lanes_,
                       "lane ", lane, " out of ", lanes_);
        if (!enabled_)
            return lane;
        const int group = lane / groupSize_;
        const int offset = lane % groupSize_;
        const int rot = static_cast<int>(step % groupSize_);
        return group * groupSize_ + (offset + rot) % groupSize_;
    }

    /** Original lane of the element now at (step, lane). */
    int
    invert(std::int64_t step, int lane) const
    {
        GRIFFIN_ASSERT(lane >= 0 && lane < lanes_,
                       "lane ", lane, " out of ", lanes_);
        if (!enabled_)
            return lane;
        const int group = lane / groupSize_;
        const int offset = lane % groupSize_;
        const int rot = static_cast<int>(step % groupSize_);
        return group * groupSize_ +
               (offset - rot % groupSize_ + groupSize_) % groupSize_;
    }

  private:
    bool enabled_;
    int lanes_;
    int groupSize_;
};

} // namespace griffin

#endif // GRIFFIN_TENSOR_SHUFFLE_HH
