#include "tensor/tile.hh"

namespace griffin {

std::int64_t
denseCycles(std::int64_t m, std::int64_t k, std::int64_t n,
            const TileShape &shape)
{
    GRIFFIN_ASSERT(m >= 0 && k >= 0 && n >= 0,
                   "negative GEMM dimension (", m, ",", k, ",", n, ")");
    const auto row_tiles = (m + shape.m0 - 1) / shape.m0;
    const auto col_tiles = (n + shape.n0 - 1) / shape.n0;
    return row_tiles * col_tiles * stepsForK(k, shape.k0);
}

} // namespace griffin
