#include "tensor/matrix.hh"

#include "simd/occupancy.hh"

namespace griffin {

template <>
std::size_t
Matrix<std::int8_t>::nnz() const
{
    return static_cast<std::size_t>(
        simd::kernels().countNonzero(data_.data(), data_.size()));
}

MatrixI32
matmulRef(const MatrixI8 &a, const MatrixI8 &b)
{
    GRIFFIN_ASSERT(a.cols() == b.rows(),
                   "GEMM shape mismatch: A is ", a.rows(), "x", a.cols(),
                   ", B is ", b.rows(), "x", b.cols());
    MatrixI32 c(a.rows(), b.cols());
    for (std::size_t m = 0; m < a.rows(); ++m) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const std::int32_t av = a.at(m, k);
            if (av == 0)
                continue;
            for (std::size_t n = 0; n < b.cols(); ++n)
                c.at(m, n) += av * static_cast<std::int32_t>(b.at(k, n));
        }
    }
    return c;
}

} // namespace griffin
