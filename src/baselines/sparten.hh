/**
 * @file
 * SparTen-style MAC-grid simulator (Gondimalla et al., MICRO'19; the
 * paper's strongest dual-sparse comparison point).
 *
 * SparTen has no K unrolling: each of the 1024 MACs independently
 * matches compressed operand pairs with prefix-sum logic over deep
 * (128-entry) input buffers, and accumulates one output at a time.
 * Work per output is therefore the *exact* effectual-pair count (near
 * ideal zero skipping — SparTen's strength), but outputs must be load
 * balanced across MACs at coarse grain, accumulators are unshared, and
 * both operands travel with bitmask metadata (SparTen's cost, Section
 * VI-E).
 *
 * Timing model: outputs are assigned to the least-loaded MAC in
 * arrival order (the coarse-grain balancing of [18]); the grid
 * finishes when the most loaded MAC drains, plus a fixed per-output
 * match/writeback overhead.
 */

#ifndef GRIFFIN_BASELINES_SPARTEN_HH
#define GRIFFIN_BASELINES_SPARTEN_HH

#include "arch/arch_config.hh"
#include "sim/gemm_sim.hh"
#include "tensor/matrix.hh"

namespace griffin {

/** Cycles a MAC spends matching + writing back each output. */
inline constexpr int sparTenOutputOverhead = 2;

/**
 * Simulate C = A x B on a SparTen-style MacGrid architecture.  The
 * result's denseCycles is the vector-core baseline so speedups remain
 * normalized to the same yardstick as every other architecture.
 */
GemmSimResult simulateSparTen(const MatrixI8 &a, const MatrixI8 &b,
                              const ArchConfig &arch, DnnCategory cat,
                              const SimOptions &opt = {});

} // namespace griffin

#endif // GRIFFIN_BASELINES_SPARTEN_HH
