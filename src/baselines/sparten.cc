#include "baselines/sparten.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "tensor/tile.hh"

namespace griffin {

namespace {

/** Bit-packed nonzero masks of the K axis. */
class KMasks
{
  public:
    KMasks(std::size_t vectors, std::size_t k)
        : words_((k + 63) / 64),
          bits_(vectors * words_, 0)
    {
    }

    void
    set(std::size_t vec, std::size_t k)
    {
        bits_[vec * words_ + k / 64] |= std::uint64_t{1} << (k % 64);
    }

    std::size_t words() const { return words_; }

    const std::uint64_t *
    vec(std::size_t v) const
    {
        return &bits_[v * words_];
    }

  private:
    std::size_t words_;
    std::vector<std::uint64_t> bits_;
};

/** Popcount of the AND of a row mask with a column mask. */
std::int64_t
overlap(const KMasks &rows, std::size_t row, const KMasks &cols,
        std::size_t col)
{
    GRIFFIN_ASSERT(rows.words() == cols.words(),
                   "mask width mismatch");
    std::int64_t count = 0;
    const auto *px = rows.vec(row);
    const auto *py = cols.vec(col);
    for (std::size_t w = 0; w < rows.words(); ++w)
        count += __builtin_popcountll(px[w] & py[w]);
    return count;
}

} // namespace

GemmSimResult
simulateSparTen(const MatrixI8 &a, const MatrixI8 &b,
                const ArchConfig &arch, DnnCategory cat,
                const SimOptions &opt)
{
    arch.validate();
    if (arch.style != DatapathStyle::MacGrid)
        fatal("simulateSparTen needs a MacGrid architecture, got '",
              arch.name, "'");
    GRIFFIN_ASSERT(a.cols() == b.rows(), "GEMM shape mismatch");
    static_cast<void>(opt);

    const auto m = static_cast<std::int64_t>(a.rows());
    const auto k = static_cast<std::int64_t>(a.cols());
    const auto n = static_cast<std::int64_t>(b.cols());
    const auto routing = arch.effectiveRouting(cat);

    GemmSimResult result;
    result.denseCycles = denseCycles(m, k, n, arch.tile);
    result.denseOps = m * k * n;
    result.totalTiles = m * n; // one "tile" per output here
    if (m == 0 || n == 0 || k == 0) {
        return result;
    }

    // Which zeros can the hardware actually skip?  A single-sided
    // SparTen matches against a dense mask on the other operand.
    const bool skip_a = routing.sparseA();
    const bool skip_b = routing.sparseB();
    KMasks rows(static_cast<std::size_t>(m), static_cast<std::size_t>(k));
    KMasks cols(static_cast<std::size_t>(n), static_cast<std::size_t>(k));
    for (std::size_t mi = 0; mi < a.rows(); ++mi)
        for (std::size_t ki = 0; ki < a.cols(); ++ki)
            if (!skip_a || a.at(mi, ki) != 0)
                rows.set(mi, ki);
    for (std::size_t ki = 0; ki < b.rows(); ++ki)
        for (std::size_t ni = 0; ni < b.cols(); ++ni)
            if (!skip_b || b.at(ki, ni) != 0)
                cols.set(ni, ki);
    result.effectualOps = 0;

    // Least-loaded assignment of outputs to MACs, in output order.
    const auto macs =
        static_cast<std::size_t>(arch.tile.macsPerCycle());
    std::priority_queue<std::pair<std::int64_t, std::size_t>,
                        std::vector<std::pair<std::int64_t, std::size_t>>,
                        std::greater<>>
        bins;
    for (std::size_t i = 0; i < macs; ++i)
        bins.push({0, i});
    for (std::int64_t mi = 0; mi < m; ++mi) {
        for (std::int64_t ni = 0; ni < n; ++ni) {
            const auto work =
                overlap(rows, static_cast<std::size_t>(mi), cols,
                        static_cast<std::size_t>(ni)) +
                sparTenOutputOverhead;
            result.effectualOps += work - sparTenOutputOverhead;
            auto [load, idx] = bins.top();
            bins.pop();
            bins.push({load + work, idx});
        }
    }
    std::int64_t max_load = 0;
    while (!bins.empty()) {
        max_load = std::max(max_load, bins.top().first);
        bins.pop();
    }
    result.computeCycles = max_load;
    result.simulatedTiles = result.totalTiles;

    // SparTen's compressed format: values plus one mask bit per
    // element, on every side the hardware skips; dense sides stream
    // raw.
    const auto nnz_a = static_cast<std::int64_t>(a.nnz());
    const auto nnz_b = static_cast<std::int64_t>(b.nnz());
    const std::int64_t a_bytes =
        skip_a ? nnz_a + (m * k + 7) / 8 : m * k;
    const std::int64_t b_bytes =
        skip_b ? nnz_b + (k * n + 7) / 8 : k * n;
    result.dramBytes = a_bytes + b_bytes + m * n;
    result.dramCycles = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(result.dramBytes) /
                  arch.mem.dramBytesPerCycle()));
    result.totalCycles = std::max(result.computeCycles,
                                  result.dramCycles);
    return result;
}

} // namespace griffin
