/**
 * @file
 * Cycle-level simulation of one GEMM on a vector-core architecture.
 *
 * Pulls the scheduling engines together with the memory model:
 *
 *   - Sparse.B schedules are computed once per column tile and reused
 *     by every row tile (they are independent of A's values).
 *   - Sparse.A schedules are computed once per row tile and reused by
 *     every column tile.
 *   - Dual schedules are per tile pair; deterministic sampling keeps
 *     large layers tractable (sim/sampling.hh).
 *   - DRAM streams A, B (compressed + metadata when preprocessed) and
 *     C once per layer; the layer runs at
 *     max(compute, DRAM transfer) under double buffering.
 *   - Window advance is capped by the provisioned SRAM bandwidth
 *     (ArchConfig::effectiveBwScale), the paper's "SRAM BW must scale
 *     with speedup" constraint.
 *
 * MacGrid architectures (SparTen) have their own simulator in
 * src/baselines; this one panics on them.
 */

#ifndef GRIFFIN_SIM_GEMM_SIM_HH
#define GRIFFIN_SIM_GEMM_SIM_HH

#include <cstdint>

#include "arch/arch_config.hh"
#include "sched/schedule.hh"
#include "tensor/matrix.hh"

namespace griffin {

class ScheduleCache; // runtime/schedule_cache.hh

/** Simulation knobs. */
struct SimOptions
{
    /**
     * Fraction of tiles (or tile pairs, for dual sparsity) to
     * simulate; results are scaled back to the full grid.  1.0 = every
     * tile.
     */
    double sampleFraction = 1.0;

    /** Minimum tiles to simulate regardless of the fraction. */
    std::int64_t minSampledTiles = 8;

    /** Seed for the sampling phase (not for data generation). */
    std::uint64_t seed = 1;

    /**
     * Extra cycles per output tile for pipeline fill and accumulator
     * drain (output synchronization).  The paper's dense latencies are
     * compute-dominated, so the default is 0.
     */
    int drainCyclesPerTile = 0;

    /**
     * Optional shared memoization of B-side preprocessing (not owned).
     * Cached and freshly-computed schedules are identical — this only
     * skips recomputing streams for weight tiles another job already
     * packed.  nullptr computes every stream locally.
     */
    ScheduleCache *scheduleCache = nullptr;
};

/** Result of simulating one GEMM. */
struct GemmSimResult
{
    std::int64_t denseCycles = 0;   ///< dense-baseline cycles
    std::int64_t computeCycles = 0; ///< datapath cycles on this arch
    std::int64_t dramCycles = 0;    ///< DRAM streaming time
    std::int64_t totalCycles = 0;   ///< max(compute, dram) + drain
    std::int64_t dramBytes = 0;     ///< A + B(+metadata) + C traffic
    std::int64_t denseOps = 0;      ///< M*K*N MACs
    std::int64_t effectualOps = 0;  ///< MACs with both operands nonzero
    ScheduleStats sched;            ///< summed over simulated tiles
                                    ///< (unscaled)
    std::int64_t simulatedTiles = 0;
    std::int64_t totalTiles = 0;

    /** Normalized speedup over the dense baseline. */
    double
    speedup() const
    {
        return totalCycles > 0 ? static_cast<double>(denseCycles) /
                                     static_cast<double>(totalCycles)
                               : 1.0;
    }
};

/**
 * Simulate C = A x B on `arch` running in workload category `cat`
 * (the category selects Griffin's morph and the bandwidth
 * provisioning; non-hybrid architectures use their fixed routing).
 */
GemmSimResult simulateGemm(const MatrixI8 &a, const MatrixI8 &b,
                           const ArchConfig &arch, DnnCategory cat,
                           const SimOptions &opt = {});

} // namespace griffin

#endif // GRIFFIN_SIM_GEMM_SIM_HH
