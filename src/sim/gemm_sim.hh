/**
 * @file
 * Cycle-level simulation of one GEMM on a vector-core architecture,
 * structured as a staged pipeline with first-class intermediate
 * artifacts:
 *
 *   1. *Operand statistics* (GemmOperands): the A/B matrices plus the
 *      content statistics the later stages consume — effectual MACs
 *      and B nonzeros.  When the operands come from a LayerWorkset
 *      (tensor/workset.hh) the statistics were computed once at
 *      generation time and are reused verbatim; makeGemmOperands()
 *      computes them for free-standing matrices.
 *
 *   2. *Tiling + per-side schedule computation*: column tiles of B
 *      preprocess into compressed streams (cached across jobs via
 *      runtime/schedule_cache.hh: ScheduleCache), row tiles of A run
 *      the arbiter scheduler (symmetrically cached via
 *      AScheduleCache).  Schedules are pure functions of tile content
 *      and routing, so cached and fresh results are identical.
 *
 *   3. *Tile(-pair) cycle simulation + reduction*: the sampled tiles
 *      replay their schedules, sampled sums scale back to the full
 *      grid, and the memory model folds in DRAM streaming — A and C
 *      stream dense, B dense or compressed + metadata; the layer runs
 *      at max(compute, DRAM transfer) under double buffering.  Window
 *      advance is capped by the provisioned SRAM bandwidth
 *      (ArchConfig::effectiveBwScale), the paper's "SRAM BW must
 *      scale with speedup" constraint.
 *
 * Schedule reuse within one GEMM mirrors the hardware:
 *
 *   - Sparse.B schedules are computed once per column tile and reused
 *     by every row tile (they are independent of A's values).
 *   - Sparse.A schedules are computed once per row tile and reused by
 *     every column tile.
 *   - Dual schedules are per tile pair; deterministic sampling keeps
 *     large layers tractable (sim/sampling.hh).
 *
 * MacGrid architectures (SparTen) have their own simulator in
 * src/baselines; this one panics on them.
 */

#ifndef GRIFFIN_SIM_GEMM_SIM_HH
#define GRIFFIN_SIM_GEMM_SIM_HH

#include <cstdint>

#include "arch/arch_config.hh"
#include "sched/schedule.hh"
#include "tensor/matrix.hh"

namespace griffin {

class ScheduleCache;  // runtime/schedule_cache.hh
class AScheduleCache; // runtime/schedule_cache.hh
struct LayerWorkset;  // tensor/workset.hh

/** Simulation knobs. */
struct SimOptions
{
    /**
     * Fraction of tiles (or tile pairs, for dual sparsity) to
     * simulate; results are scaled back to the full grid.  1.0 = every
     * tile.
     */
    double sampleFraction = 1.0;

    /** Minimum tiles to simulate regardless of the fraction. */
    std::int64_t minSampledTiles = 8;

    /** Seed for the sampling phase (not for data generation). */
    std::uint64_t seed = 1;

    /**
     * Extra cycles per output tile for pipeline fill and accumulator
     * drain (output synchronization).  The paper's dense latencies are
     * compute-dominated, so the default is 0.
     */
    int drainCyclesPerTile = 0;

    /**
     * Optional shared memoization of B-side preprocessing (not owned).
     * Cached and freshly-computed schedules are identical — this only
     * skips recomputing streams for weight tiles another job already
     * packed.  nullptr computes every stream locally.
     */
    ScheduleCache *scheduleCache = nullptr;

    /**
     * The symmetric A-side memoization: arbiter schedules of row tiles
     * under identical routing and bandwidth (not owned).  Same
     * contract as scheduleCache — an optimization only, never a
     * result change.  nullptr schedules every tile locally.
     */
    AScheduleCache *aScheduleCache = nullptr;
};

/**
 * Stage-1 artifact: operand views plus their content statistics.  The
 * matrices are borrowed, not owned — the caller (a LayerWorkset held
 * by shared_ptr, or stack matrices in tests) must outlive the
 * simulation call.
 */
struct GemmOperands
{
    const MatrixI8 *a = nullptr;
    const MatrixI8 *b = nullptr;
    std::int64_t effectualOps = 0; ///< MACs with both operands nonzero
    std::int64_t nnzB = 0;         ///< nonzeros of B (payload bytes)
};

/** Compute the stage-1 statistics of two free-standing matrices. */
GemmOperands makeGemmOperands(const MatrixI8 &a, const MatrixI8 &b);

/** View a generated workset as stage-1 operands (statistics reused,
 *  nothing recomputed).  The workset must outlive the view. */
GemmOperands gemmOperands(const LayerWorkset &workset);

/** Result of simulating one GEMM. */
struct GemmSimResult
{
    std::int64_t denseCycles = 0;   ///< dense-baseline cycles
    std::int64_t computeCycles = 0; ///< datapath cycles on this arch
    std::int64_t dramCycles = 0;    ///< DRAM streaming time
    std::int64_t totalCycles = 0;   ///< max(compute, dram) + drain
    std::int64_t dramBytes = 0;     ///< A + B(+metadata) + C traffic
    std::int64_t denseOps = 0;      ///< M*K*N MACs
    std::int64_t effectualOps = 0;  ///< MACs with both operands nonzero
    ScheduleStats sched;            ///< summed over simulated tiles
                                    ///< (unscaled)
    std::int64_t simulatedTiles = 0;
    std::int64_t totalTiles = 0;

    /** Normalized speedup over the dense baseline. */
    double
    speedup() const
    {
        return totalCycles > 0 ? static_cast<double>(denseCycles) /
                                     static_cast<double>(totalCycles)
                               : 1.0;
    }
};

/**
 * Stages 2 + 3 over prepared operands: simulate C = A x B on `arch`
 * running in workload category `cat` (the category selects Griffin's
 * morph and the bandwidth provisioning; non-hybrid architectures use
 * their fixed routing).
 */
GemmSimResult simulateGemm(const GemmOperands &operands,
                           const ArchConfig &arch, DnnCategory cat,
                           const SimOptions &opt = {});

/** The monolithic convenience form: stage 1 (makeGemmOperands) plus
 *  the staged simulation, for callers without a cached workset. */
GemmSimResult simulateGemm(const MatrixI8 &a, const MatrixI8 &b,
                           const ArchConfig &arch, DnnCategory cat,
                           const SimOptions &opt = {});

} // namespace griffin

#endif // GRIFFIN_SIM_GEMM_SIM_HH
