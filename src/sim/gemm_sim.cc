#include "sim/gemm_sim.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "arch/overhead.hh"
#include "runtime/schedule_cache.hh"
#include "sched/a_arbiter.hh"
#include "sched/b_preprocess.hh"
#include "sched/dual_scheduler.hh"
#include "sim/sampling.hh"
#include "tensor/shuffle.hh"
#include "tensor/tile.hh"

namespace griffin {

namespace {

void
accumulate(ScheduleStats &into, const ScheduleStats &from)
{
    into.cycles += from.cycles;
    into.ops += from.ops;
    into.ownOps += from.ownOps;
    into.stolenOps += from.stolenOps;
    into.idleSlotCycles += from.idleSlotCycles;
    into.bwLimitedCycles += from.bwLimitedCycles;
}

/** Count MACs where both operands are nonzero, in O(MK + KN). */
std::int64_t
countEffectualOps(const MatrixI8 &a, const MatrixI8 &b)
{
    std::int64_t total = 0;
    for (std::size_t k = 0; k < a.cols(); ++k) {
        std::int64_t a_nnz = 0;
        for (std::size_t m = 0; m < a.rows(); ++m)
            a_nnz += a.at(m, k) != 0;
        std::int64_t b_nnz = 0;
        for (std::size_t n = 0; n < b.cols(); ++n)
            b_nnz += b.at(k, n) != 0;
        total += a_nnz * b_nnz;
    }
    return total;
}

/**
 * Preprocess one B tile, through the shared cache when the caller
 * provided one.  The returned pointer keeps the schedule alive either
 * way (locally computed streams are wrapped in fresh ownership).
 */
std::shared_ptr<const BSchedule>
obtainStream(ScheduleCache *cache, const TileViewB &vb, const Borrow &db,
             const Shuffler &shuffler)
{
    if (cache != nullptr)
        return cache->obtain(vb, db, shuffler);
    return std::make_shared<const BSchedule>(
        preprocessB(vb, db, shuffler, false));
}

/** Scale a sampled cycle total back to the full population. */
std::int64_t
scaleUp(std::int64_t sampled_sum, std::int64_t sampled_count,
        std::int64_t population)
{
    if (sampled_count == 0)
        return 0;
    const double scale = static_cast<double>(population) /
                         static_cast<double>(sampled_count);
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(sampled_sum) * scale));
}

} // namespace

GemmSimResult
simulateGemm(const MatrixI8 &a, const MatrixI8 &b, const ArchConfig &arch,
             DnnCategory cat, const SimOptions &opt)
{
    arch.validate();
    if (arch.style != DatapathStyle::VectorCore)
        fatal("simulateGemm handles vector-core architectures; use the "
              "SparTen simulator in src/baselines for '",
              arch.name, "'");
    GRIFFIN_ASSERT(a.cols() == b.rows(), "GEMM shape mismatch: A ",
                   a.rows(), "x", a.cols(), ", B ", b.rows(), "x",
                   b.cols());
    if (opt.sampleFraction <= 0.0 || opt.sampleFraction > 1.0)
        fatal("sample fraction ", opt.sampleFraction, " outside (0,1]");

    const TileShape &shape = arch.tile;
    const auto routing = arch.effectiveRouting(cat);
    const double bw = arch.effectiveBwScale(cat);
    const auto m = static_cast<std::int64_t>(a.rows());
    const auto k = static_cast<std::int64_t>(a.cols());
    const auto n = static_cast<std::int64_t>(b.cols());

    GemmSimResult result;
    result.denseCycles = denseCycles(m, k, n, shape);
    result.denseOps = m * k * n;
    result.effectualOps = countEffectualOps(a, b);
    const std::int64_t row_tiles = (m + shape.m0 - 1) / shape.m0;
    const std::int64_t col_tiles = (n + shape.n0 - 1) / shape.n0;
    result.totalTiles = row_tiles * col_tiles;
    if (result.totalTiles == 0 || k == 0) {
        result.totalCycles = 0;
        return result;
    }

    Shuffler shuffler(routing.shuffle, shape.k0);

    switch (routing.mode) {
      case SparsityMode::Dense: {
        result.computeCycles = result.denseCycles;
        result.simulatedTiles = result.totalTiles;
        break;
      }

      case SparsityMode::B: {
        // Schedules depend only on B: simulate (a subset of) column
        // tiles and multiply by the row-tile count.
        auto picks = sampleTiles(col_tiles, 1, opt.sampleFraction,
                                 opt.minSampledTiles, opt.seed);
        std::int64_t sum = 0;
        for (const auto &t : picks) {
            TileViewB vb(b, shape, t.row * shape.n0);
            auto stream =
                obtainStream(opt.scheduleCache, vb, routing.b, shuffler);
            // Runtime is bandwidth-capped even though packing is
            // offline: replaying the stream can consume at most `bw`
            // raw A steps per cycle.
            std::int64_t cycles = stream->cycles();
            const double min_cycles =
                static_cast<double>(vb.steps()) / bw;
            cycles = std::max<std::int64_t>(
                cycles, static_cast<std::int64_t>(
                            std::ceil(min_cycles)));
            sum += cycles;
            accumulate(result.sched, stream->stats());
        }
        result.computeCycles =
            scaleUp(sum, static_cast<std::int64_t>(picks.size()),
                    col_tiles) *
            row_tiles;
        result.simulatedTiles =
            static_cast<std::int64_t>(picks.size()) * row_tiles;
        break;
      }

      case SparsityMode::A: {
        auto picks = sampleTiles(row_tiles, 1, opt.sampleFraction,
                                 opt.minSampledTiles, opt.seed);
        std::int64_t sum = 0;
        for (const auto &t : picks) {
            TileViewA va(a, shape, t.row * shape.m0);
            auto sched = scheduleA(va, routing.a, shuffler, bw, false);
            sum += sched.stats.cycles;
            accumulate(result.sched, sched.stats);
        }
        result.computeCycles =
            scaleUp(sum, static_cast<std::int64_t>(picks.size()),
                    row_tiles) *
            col_tiles;
        result.simulatedTiles =
            static_cast<std::int64_t>(picks.size()) * col_tiles;
        break;
      }

      case SparsityMode::AB: {
        auto picks =
            sampleTiles(row_tiles, col_tiles, opt.sampleFraction,
                        opt.minSampledTiles, opt.seed);
        // One preprocessed stream per distinct column tile; the
        // per-call map short-circuits repeat columns of this GEMM even
        // when no cross-job cache is attached.
        std::map<std::int64_t, std::shared_ptr<const BSchedule>> streams;
        std::int64_t sum = 0;
        for (const auto &t : picks) {
            TileViewA va(a, shape, t.row * shape.m0);
            TileViewB vb(b, shape, t.col * shape.n0);
            const BSchedule *stream = nullptr;
            if (routing.preprocessB) {
                auto it = streams.find(t.col);
                if (it == streams.end()) {
                    it = streams
                             .emplace(t.col,
                                      obtainStream(opt.scheduleCache, vb,
                                                   routing.b, shuffler))
                             .first;
                }
                stream = it->second.get();
            }
            auto dual = scheduleDual(va, vb, routing, shuffler, stream,
                                     bw, false);
            sum += dual.cycles;
            accumulate(result.sched, dual.stage2);
        }
        result.computeCycles =
            scaleUp(sum, static_cast<std::int64_t>(picks.size()),
                    result.totalTiles);
        result.simulatedTiles =
            static_cast<std::int64_t>(picks.size());
        break;
      }
    }

    // DRAM traffic: A and C stream dense; B streams dense or as the
    // compressed payload plus metadata when preprocessed.
    const auto hw = computeOverhead(routing, shape);
    std::int64_t b_bytes = k * n;
    if (routing.preprocessB) {
        const auto nnz_b = static_cast<std::int64_t>(b.nnz());
        b_bytes = nnz_b + (nnz_b * hw.metadataBits + 7) / 8;
    }
    result.dramBytes = m * k + b_bytes + m * n;
    result.dramCycles = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(result.dramBytes) /
                  arch.mem.dramBytesPerCycle()));

    result.totalCycles =
        std::max(result.computeCycles, result.dramCycles) +
        static_cast<std::int64_t>(opt.drainCyclesPerTile) *
            result.totalTiles;
    return result;
}

} // namespace griffin
