#include "sim/gemm_sim.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "arch/overhead.hh"
#include "runtime/schedule_cache.hh"
#include "runtime/telemetry.hh"
#include "sched/a_arbiter.hh"
#include "sched/b_preprocess.hh"
#include "sched/dual_scheduler.hh"
#include "sim/sampling.hh"
#include "tensor/shuffle.hh"
#include "tensor/tile.hh"
#include "tensor/workset.hh"

namespace griffin {

namespace {

void
accumulate(ScheduleStats &into, const ScheduleStats &from)
{
    into.cycles += from.cycles;
    into.ops += from.ops;
    into.ownOps += from.ownOps;
    into.stolenOps += from.stolenOps;
    into.idleSlotCycles += from.idleSlotCycles;
    into.bwLimitedCycles += from.bwLimitedCycles;
}

/**
 * Preprocess one B tile, through the shared cache when the caller
 * provided one.  The returned pointer keeps the schedule alive either
 * way (locally computed streams are wrapped in fresh ownership).
 */
std::shared_ptr<const BSchedule>
obtainStream(ScheduleCache *cache, const TileViewB &vb, const Borrow &db,
             const Shuffler &shuffler)
{
    ScopedSpan span("b_schedule");
    if (cache != nullptr)
        return cache->obtain(vb, db, shuffler);
    return std::make_shared<const BSchedule>(
        preprocessB(vb, db, shuffler, false));
}

/** Arbiter-schedule one A tile, through the shared cache when the
 *  caller provided one (the cached value is the stats record, the only
 *  part single-sparse simulation consumes). */
ScheduleStats
obtainAStats(AScheduleCache *cache, const TileViewA &va, const Borrow &da,
             const Shuffler &shuffler, double advance_cap)
{
    ScopedSpan span("a_schedule");
    if (cache != nullptr)
        return cache->obtain(va, da, shuffler, advance_cap)->stats;
    return scheduleA(va, da, shuffler, advance_cap, false).stats;
}

/** Scale a sampled cycle total back to the full population. */
std::int64_t
scaleUp(std::int64_t sampled_sum, std::int64_t sampled_count,
        std::int64_t population)
{
    if (sampled_count == 0)
        return 0;
    const double scale = static_cast<double>(population) /
                         static_cast<double>(sampled_count);
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(sampled_sum) * scale));
}

/**
 * Everything the per-mode compute stages share: resolved geometry and
 * routing, plus the result record they fill in (computeCycles,
 * simulatedTiles, sched).
 */
struct ComputeStage
{
    const GemmOperands &ops;
    const SimOptions &opt;
    const TileShape &shape;
    const RoutingConfig &routing;
    const Shuffler &shuffler;
    double bw;
    std::int64_t rowTiles;
    std::int64_t colTiles;
};

/** Stage 2+3, SparsityMode::B: schedules depend only on B — simulate
 *  (a subset of) column tiles and multiply by the row-tile count. */
void
simulateSparseB(const ComputeStage &stage, GemmSimResult &result)
{
    auto picks = sampleTiles(stage.colTiles, 1, stage.opt.sampleFraction,
                             stage.opt.minSampledTiles, stage.opt.seed);
    std::int64_t sum = 0;
    for (const auto &t : picks) {
        TileViewB vb(*stage.ops.b, stage.shape, t.row * stage.shape.n0);
        auto stream = obtainStream(stage.opt.scheduleCache, vb,
                                   stage.routing.b, stage.shuffler);
        // Runtime is bandwidth-capped even though packing is offline:
        // replaying the stream can consume at most `bw` raw A steps
        // per cycle.
        std::int64_t cycles = stream->cycles();
        const double min_cycles =
            static_cast<double>(vb.steps()) / stage.bw;
        cycles = std::max<std::int64_t>(
            cycles,
            static_cast<std::int64_t>(std::ceil(min_cycles)));
        sum += cycles;
        accumulate(result.sched, stream->stats());
    }
    result.computeCycles =
        scaleUp(sum, static_cast<std::int64_t>(picks.size()),
                stage.colTiles) *
        stage.rowTiles;
    result.simulatedTiles =
        static_cast<std::int64_t>(picks.size()) * stage.rowTiles;
}

/** Stage 2+3, SparsityMode::A: the symmetric row-tile form. */
void
simulateSparseA(const ComputeStage &stage, GemmSimResult &result)
{
    auto picks = sampleTiles(stage.rowTiles, 1, stage.opt.sampleFraction,
                             stage.opt.minSampledTiles, stage.opt.seed);
    std::int64_t sum = 0;
    for (const auto &t : picks) {
        TileViewA va(*stage.ops.a, stage.shape, t.row * stage.shape.m0);
        const auto stats =
            obtainAStats(stage.opt.aScheduleCache, va, stage.routing.a,
                         stage.shuffler, stage.bw);
        sum += stats.cycles;
        accumulate(result.sched, stats);
    }
    result.computeCycles =
        scaleUp(sum, static_cast<std::int64_t>(picks.size()),
                stage.rowTiles) *
        stage.colTiles;
    result.simulatedTiles =
        static_cast<std::int64_t>(picks.size()) * stage.colTiles;
}

/** Stage 2+3, SparsityMode::AB: dual schedules are per tile pair; the
 *  B-side streams still compute per distinct column tile. */
void
simulateDualSparse(const ComputeStage &stage, GemmSimResult &result)
{
    auto picks = sampleTiles(stage.rowTiles, stage.colTiles,
                             stage.opt.sampleFraction,
                             stage.opt.minSampledTiles, stage.opt.seed);
    // One preprocessed stream per distinct column tile; the per-call
    // memo short-circuits repeat columns of this GEMM even when no
    // cross-job cache is attached.  A sorted flat vector beats a
    // node-based map here: a handful of distinct columns, looked up
    // once per sampled tile.
    std::vector<std::pair<std::int64_t,
                          std::shared_ptr<const BSchedule>>> streams;
    std::int64_t sum = 0;
    for (const auto &t : picks) {
        TileViewA va(*stage.ops.a, stage.shape, t.row * stage.shape.m0);
        TileViewB vb(*stage.ops.b, stage.shape, t.col * stage.shape.n0);
        const BSchedule *stream = nullptr;
        if (stage.routing.preprocessB) {
            auto it = std::lower_bound(
                streams.begin(), streams.end(), t.col,
                [](const auto &e, std::int64_t col) {
                    return e.first < col;
                });
            if (it == streams.end() || it->first != t.col) {
                it = streams.insert(
                    it, {t.col,
                         obtainStream(stage.opt.scheduleCache, vb,
                                      stage.routing.b,
                                      stage.shuffler)});
            }
            stream = it->second.get();
        }
        auto dual = scheduleDual(va, vb, stage.routing, stage.shuffler,
                                 stream, stage.bw, false);
        sum += dual.cycles;
        accumulate(result.sched, dual.stage2);
    }
    result.computeCycles = scaleUp(
        sum, static_cast<std::int64_t>(picks.size()), result.totalTiles);
    result.simulatedTiles = static_cast<std::int64_t>(picks.size());
}

/**
 * Stage 3 reduction, memory model: DRAM traffic of the whole GEMM —
 * A and C stream dense; B streams dense or as the compressed payload
 * plus metadata when preprocessed — and the layer total under double
 * buffering.
 */
void
applyMemoryModel(const GemmOperands &ops, const ArchConfig &arch,
                 const RoutingConfig &routing, std::int64_t m,
                 std::int64_t k, std::int64_t n, const SimOptions &opt,
                 GemmSimResult &result)
{
    ScopedSpan span("memory_model");
    const auto hw = computeOverhead(routing, arch.tile);
    std::int64_t b_bytes = k * n;
    if (routing.preprocessB) {
        const auto nnz_b = ops.nnzB;
        b_bytes = nnz_b + (nnz_b * hw.metadataBits + 7) / 8;
    }
    result.dramBytes = m * k + b_bytes + m * n;
    result.dramCycles = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(result.dramBytes) /
                  arch.mem.dramBytesPerCycle()));

    result.totalCycles =
        std::max(result.computeCycles, result.dramCycles) +
        static_cast<std::int64_t>(opt.drainCyclesPerTile) *
            result.totalTiles;
}

} // namespace

GemmOperands
makeGemmOperands(const MatrixI8 &a, const MatrixI8 &b)
{
    GemmOperands ops;
    ops.a = &a;
    ops.b = &b;
    ops.effectualOps = countEffectualOps(a, b);
    ops.nnzB = static_cast<std::int64_t>(b.nnz());
    return ops;
}

GemmOperands
gemmOperands(const LayerWorkset &workset)
{
    GemmOperands ops;
    ops.a = &workset.a;
    ops.b = &workset.b;
    ops.effectualOps = workset.effectualOps;
    ops.nnzB = workset.nnzB;
    return ops;
}

GemmSimResult
simulateGemm(const GemmOperands &operands, const ArchConfig &arch,
             DnnCategory cat, const SimOptions &opt)
{
    arch.validate();
    if (arch.style != DatapathStyle::VectorCore)
        fatal("simulateGemm handles vector-core architectures; use the "
              "SparTen simulator in src/baselines for '",
              arch.name, "'");
    GRIFFIN_ASSERT(operands.a != nullptr && operands.b != nullptr,
                   "simulateGemm needs both operand matrices");
    const MatrixI8 &a = *operands.a;
    const MatrixI8 &b = *operands.b;
    GRIFFIN_ASSERT(a.cols() == b.rows(), "GEMM shape mismatch: A ",
                   a.rows(), "x", a.cols(), ", B ", b.rows(), "x",
                   b.cols());
    if (opt.sampleFraction <= 0.0 || opt.sampleFraction > 1.0)
        fatal("sample fraction ", opt.sampleFraction, " outside (0,1]");

    const TileShape &shape = arch.tile;
    const auto routing = arch.effectiveRouting(cat);
    const double bw = arch.effectiveBwScale(cat);
    const auto m = static_cast<std::int64_t>(a.rows());
    const auto k = static_cast<std::int64_t>(a.cols());
    const auto n = static_cast<std::int64_t>(b.cols());

    GemmSimResult result;
    result.denseCycles = denseCycles(m, k, n, shape);
    result.denseOps = m * k * n;
    result.effectualOps = operands.effectualOps;
    const std::int64_t row_tiles = (m + shape.m0 - 1) / shape.m0;
    const std::int64_t col_tiles = (n + shape.n0 - 1) / shape.n0;
    result.totalTiles = row_tiles * col_tiles;
    if (result.totalTiles == 0 || k == 0) {
        result.totalCycles = 0;
        return result;
    }

    Shuffler shuffler(routing.shuffle, shape.k0);
    const ComputeStage stage{operands, opt,       shape,    routing,
                             shuffler, bw,        row_tiles, col_tiles};

    {
        // b_schedule / a_schedule spans nest inside this one; the
        // trace shows scheduling as sub-slices of tile simulation.
        ScopedSpan span("tile_sim");
        switch (routing.mode) {
          case SparsityMode::Dense:
            result.computeCycles = result.denseCycles;
            result.simulatedTiles = result.totalTiles;
            break;
          case SparsityMode::B:
            simulateSparseB(stage, result);
            break;
          case SparsityMode::A:
            simulateSparseA(stage, result);
            break;
          case SparsityMode::AB:
            simulateDualSparse(stage, result);
            break;
        }
    }

    applyMemoryModel(operands, arch, routing, m, k, n, opt, result);
    return result;
}

GemmSimResult
simulateGemm(const MatrixI8 &a, const MatrixI8 &b, const ArchConfig &arch,
             DnnCategory cat, const SimOptions &opt)
{
    return simulateGemm(makeGemmOperands(a, b), arch, cat, opt);
}

} // namespace griffin
