/**
 * @file
 * Deterministic strided tile sampling.
 *
 * End-to-end networks are billions of MACs and the benches sweep
 * dozens of configurations; simulating every tile of every layer is
 * wasteful because tiles of one layer are statistically exchangeable
 * (same shapes, same sparsity process).  The sampler picks an
 * evenly-strided, seed-phased subset of the R x C tile grid; the
 * simulator scales the sampled cycle total back up.  Tests compare
 * sampled against exact results on small layers.
 */

#ifndef GRIFFIN_SIM_SAMPLING_HH
#define GRIFFIN_SIM_SAMPLING_HH

#include <cstdint>
#include <vector>

namespace griffin {

/** One sampled tile coordinate. */
struct TileCoord
{
    std::int64_t row; ///< row-tile index (A side)
    std::int64_t col; ///< column-tile index (B side)

    bool
    operator==(const TileCoord &o) const
    {
        return row == o.row && col == o.col;
    }
};

/**
 * Pick ~fraction of the rows x cols grid, at least min_tiles (clamped
 * to the grid size), spread with an even stride whose phase is derived
 * from the seed so different layers sample different positions.
 * fraction >= 1 returns every tile.
 */
std::vector<TileCoord> sampleTiles(std::int64_t rows, std::int64_t cols,
                                   double fraction,
                                   std::int64_t min_tiles,
                                   std::uint64_t seed);

} // namespace griffin

#endif // GRIFFIN_SIM_SAMPLING_HH
