#include "sim/sampling.hh"

#include <algorithm>

#include "common/logging.hh"

namespace griffin {

std::vector<TileCoord>
sampleTiles(std::int64_t rows, std::int64_t cols, double fraction,
            std::int64_t min_tiles, std::uint64_t seed)
{
    GRIFFIN_ASSERT(rows >= 0 && cols >= 0, "negative tile grid");
    GRIFFIN_ASSERT(fraction > 0.0, "non-positive sample fraction ",
                   fraction);
    const std::int64_t total = rows * cols;
    std::vector<TileCoord> out;
    if (total == 0)
        return out;

    std::int64_t want = total;
    if (fraction < 1.0) {
        want = static_cast<std::int64_t>(
            static_cast<double>(total) * fraction + 0.5);
        want = std::clamp<std::int64_t>(want,
                                        std::min(min_tiles, total),
                                        total);
        want = std::max<std::int64_t>(want, 1);
    }

    out.reserve(static_cast<std::size_t>(want));
    if (want == total) {
        for (std::int64_t r = 0; r < rows; ++r)
            for (std::int64_t c = 0; c < cols; ++c)
                out.push_back({r, c});
        return out;
    }

    // Even stride over the flattened grid with a seed-derived phase.
    // Using exact integer arithmetic keeps every index distinct:
    // flat_i = floor((i + phase01) * total / want) mod total.
    const std::int64_t phase =
        static_cast<std::int64_t>(seed % static_cast<std::uint64_t>(
                                             std::max<std::int64_t>(
                                                 total / want, 1)));
    for (std::int64_t i = 0; i < want; ++i) {
        const std::int64_t flat = (i * total / want + phase) % total;
        out.push_back({flat / cols, flat % cols});
    }
    std::sort(out.begin(), out.end(),
              [](const TileCoord &a, const TileCoord &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace griffin
