/**
 * @file
 * NEON (AArch64) kernels.  Occupancy extraction uses vceqq + a
 * bit-select/horizontal-add narrowing to turn 16 bytes into 16 mask
 * bits; the int64 head-compare and min kernels delegate to the scalar
 * reference — on a 16-lane grid they are not the bottleneck, and the
 * byte-exactness contract is trivially kept.
 *
 * Compiled to the nullptr stub everywhere else (including the x86 CI
 * fleet); tests/test_simd.cc exercises whichever backends the build
 * actually has.
 */

#include "simd/kernels.hh"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace griffin {
namespace simd {
namespace detail {

namespace {

inline std::uint32_t
nonzeroBits16Neon(const std::int8_t *p)
{
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t *>(p));
    const uint8x16_t nz = vmvnq_u8(vceqq_u8(v, vdupq_n_u8(0)));
    static const std::uint8_t kBits[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                           1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t sel = vandq_u8(nz, vld1q_u8(kBits));
    const std::uint32_t lo = vaddv_u8(vget_low_u8(sel));
    const std::uint32_t hi = vaddv_u8(vget_high_u8(sel));
    return lo | (hi << 8);
}

void
nonzeroMasksNeon(const std::int8_t *src, std::size_t stride, int width,
                 std::int64_t groups, std::uint64_t *out)
{
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int8_t *row = src + static_cast<std::size_t>(g) *
                                           stride;
        std::uint64_t mask = 0;
        int j = 0;
        for (; width - j >= 16; j += 16)
            mask |= static_cast<std::uint64_t>(
                        nonzeroBits16Neon(row + j))
                    << j;
        for (; j < width; ++j)
            mask |= static_cast<std::uint64_t>(row[j] != 0) << j;
        out[g] = mask;
    }
}

std::int64_t
countNonzeroNeon(const std::int8_t *src, std::size_t len)
{
    std::int64_t n = 0;
    std::size_t i = 0;
    const uint8x16_t one = vdupq_n_u8(1);
    for (; len - i >= 16; i += 16) {
        const uint8x16_t v =
            vld1q_u8(reinterpret_cast<const std::uint8_t *>(src + i));
        const uint8x16_t nz = vmvnq_u8(vceqq_u8(v, vdupq_n_u8(0)));
        n += vaddvq_u8(vandq_u8(nz, one));
    }
    for (; i < len; ++i)
        n += src[i] != 0;
    return n;
}

void
accumulateNonzeroNeon(const std::int8_t *src, std::size_t len,
                      std::int32_t *counts)
{
    const uint8x16_t one = vdupq_n_u8(1);
    std::size_t i = 0;
    for (; len - i >= 16; i += 16) {
        const uint8x16_t v =
            vld1q_u8(reinterpret_cast<const std::uint8_t *>(src + i));
        const uint8x16_t ind8 =
            vandq_u8(vmvnq_u8(vceqq_u8(v, vdupq_n_u8(0))), one);
        const uint16x8_t lo16 = vmovl_u8(vget_low_u8(ind8));
        const uint16x8_t hi16 = vmovl_u8(vget_high_u8(ind8));
        const uint32x4_t w[4] = {
            vmovl_u16(vget_low_u16(lo16)),
            vmovl_u16(vget_high_u16(lo16)),
            vmovl_u16(vget_low_u16(hi16)),
            vmovl_u16(vget_high_u16(hi16)),
        };
        for (int q = 0; q < 4; ++q) {
            std::int32_t *dst =
                counts + i + static_cast<std::size_t>(q) * 4;
            vst1q_s32(dst, vaddq_s32(vld1q_s32(dst),
                                     vreinterpretq_s32_u32(w[q])));
        }
    }
    for (; i < len; ++i)
        counts[i] += src[i] != 0;
}

} // namespace

void
mtTemperNeon(const std::uint64_t *src, std::int64_t n,
             std::uint64_t *out)
{
    const uint64x2_t d = vdupq_n_u64(0x5555555555555555ULL);
    const uint64x2_t b = vdupq_n_u64(0x71D67FFFEDA60000ULL);
    const uint64x2_t c = vdupq_n_u64(0xFFF7EEE000000000ULL);
    std::int64_t i = 0;
    for (; n - i >= 2; i += 2) {
        uint64x2_t y = vld1q_u64(src + i);
        y = veorq_u64(y, vandq_u64(vshrq_n_u64(y, 29), d));
        y = veorq_u64(y, vandq_u64(vshlq_n_u64(y, 17), b));
        y = veorq_u64(y, vandq_u64(vshlq_n_u64(y, 37), c));
        y = veorq_u64(y, vshrq_n_u64(y, 43));
        vst1q_u64(out + i, y);
    }
    for (; i < n; ++i) {
        std::uint64_t y = src[i];
        y ^= (y >> 29) & 0x5555555555555555ULL;
        y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
        y ^= (y << 37) & 0xFFF7EEE000000000ULL;
        y ^= y >> 43;
        out[i] = y;
    }
}

const KernelTable *
neonTable()
{
    static const KernelTable table = {
        nonzeroMasksNeon,          countNonzeroNeon,
        accumulateNonzeroNeon,     scalarTable().leMask,
        scalarTable().minI64,      mtTemperNeon,
    };
    return &table;
}

} // namespace detail
} // namespace simd
} // namespace griffin

#else // non-NEON builds have no NEON backend

namespace griffin {
namespace simd {
namespace detail {

const KernelTable *
neonTable()
{
    return nullptr;
}

} // namespace detail
} // namespace simd
} // namespace griffin

#endif
