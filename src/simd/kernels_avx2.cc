/**
 * @file
 * AVX2 kernels: compare-to-zero + movemask turns 32 occupancy bytes
 * into 32 mask bits per instruction pair.  Functions carry the
 * target("avx2") attribute so this TU builds without a global -mavx2
 * and the choice stays a *runtime* cpuid decision — the same binary
 * runs (scalar) on pre-AVX2 hardware.
 *
 * Byte-exactness against kernels_scalar.cc is pinned by
 * tests/test_simd.cc; none of these kernels reads outside the ranges
 * the KernelTable contract names (tails are finished scalar, never
 * over-read).
 */

#include "simd/kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>
#include <limits>

#define GRIFFIN_AVX2 __attribute__((target("avx2")))

namespace griffin {
namespace simd {
namespace detail {

namespace {

GRIFFIN_AVX2 inline std::uint32_t
nonzeroBits32(const std::int8_t *p)
{
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    const __m256i zero = _mm256_setzero_si256();
    const __m256i eq = _mm256_cmpeq_epi8(v, zero);
    return ~static_cast<std::uint32_t>(_mm256_movemask_epi8(eq));
}

GRIFFIN_AVX2 inline std::uint32_t
nonzeroBits16(const std::int8_t *p)
{
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    const __m128i eq = _mm_cmpeq_epi8(v, _mm_setzero_si128());
    return ~static_cast<std::uint32_t>(_mm_movemask_epi8(eq)) &
           0xFFFFu;
}

GRIFFIN_AVX2 void
nonzeroMasksAvx2(const std::int8_t *src, std::size_t stride, int width,
                 std::int64_t groups, std::uint64_t *out)
{
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int8_t *row = src + static_cast<std::size_t>(g) *
                                           stride;
        std::uint64_t mask = 0;
        int j = 0;
        for (; width - j >= 32; j += 32)
            mask |= static_cast<std::uint64_t>(nonzeroBits32(row + j))
                    << j;
        if (width - j >= 16) {
            mask |= static_cast<std::uint64_t>(nonzeroBits16(row + j))
                    << j;
            j += 16;
        }
        for (; j < width; ++j)
            mask |= static_cast<std::uint64_t>(row[j] != 0) << j;
        out[g] = mask;
    }
}

GRIFFIN_AVX2 std::int64_t
countNonzeroAvx2(const std::int8_t *src, std::size_t len)
{
    std::int64_t n = 0;
    std::size_t i = 0;
    for (; len - i >= 32 && i < len; i += 32)
        n += __builtin_popcount(nonzeroBits32(src + i));
    for (; i < len; ++i)
        n += src[i] != 0;
    return n;
}

GRIFFIN_AVX2 void
accumulateNonzeroAvx2(const std::int8_t *src, std::size_t len,
                      std::int32_t *counts)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi8(1);
    std::size_t i = 0;
    for (; len - i >= 32 && i < len; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        // cmpeq yields -1 on zero bytes; adding 1 leaves exactly the
        // nonzero indicator.
        const __m256i ind8 =
            _mm256_add_epi8(one, _mm256_cmpeq_epi8(v, zero));
        const __m128i lo = _mm256_castsi256_si128(ind8);
        const __m128i hi = _mm256_extracti128_si256(ind8, 1);
        const __m128i parts[4] = {lo, _mm_srli_si128(lo, 8), hi,
                                  _mm_srli_si128(hi, 8)};
        for (int q = 0; q < 4; ++q) {
            std::int32_t *dst =
                counts + i + static_cast<std::size_t>(q) * 8;
            const __m256i wide = _mm256_cvtepu8_epi32(parts[q]);
            const __m256i acc = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(dst));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst),
                                _mm256_add_epi32(acc, wide));
        }
    }
    for (; i < len; ++i)
        counts[i] += src[i] != 0;
}

GRIFFIN_AVX2 void
leMaskAvx2(const std::int64_t *heads, std::int64_t n,
           std::int64_t horizon, std::uint64_t *out)
{
    const std::int64_t words = (n + 63) / 64;
    for (std::int64_t w = 0; w < words; ++w)
        out[w] = 0;
    const __m256i h = _mm256_set1_epi64x(horizon);
    std::int64_t s = 0;
    for (; n - s >= 4; s += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(heads + s));
        // heads <= horizon  <=>  !(heads > horizon)
        const __m256i gt = _mm256_cmpgt_epi64(v, h);
        const std::uint64_t nibble =
            ~static_cast<std::uint64_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(gt))) &
            0xFu;
        out[s >> 6] |= nibble << (s & 63);
    }
    for (; s < n; ++s)
        out[s >> 6] |= static_cast<std::uint64_t>(heads[s] <= horizon)
                       << (s & 63);
}

GRIFFIN_AVX2 std::int64_t
minI64Avx2(const std::int64_t *heads, std::int64_t n)
{
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    std::int64_t s = 0;
    if (n - s >= 4) {
        __m256i acc = _mm256_set1_epi64x(best);
        for (; n - s >= 4; s += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(heads + s));
            // Where acc > v, take v (no native epi64 min in AVX2).
            acc = _mm256_blendv_epi8(acc, v,
                                     _mm256_cmpgt_epi64(acc, v));
        }
        alignas(32) std::int64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (int q = 0; q < 4; ++q)
            best = lanes[q] < best ? lanes[q] : best;
    }
    for (; s < n; ++s)
        best = heads[s] < best ? heads[s] : best;
    return best;
}

GRIFFIN_AVX2 void
mtTemperAvx2(const std::uint64_t *src, std::int64_t n,
             std::uint64_t *out)
{
    const __m256i d = _mm256_set1_epi64x(0x5555555555555555LL);
    const __m256i b = _mm256_set1_epi64x(0x71D67FFFEDA60000LL);
    const __m256i c = _mm256_set1_epi64x(
        static_cast<long long>(0xFFF7EEE000000000ULL));
    std::int64_t i = 0;
    for (; n - i >= 4; i += 4) {
        __m256i y = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        y = _mm256_xor_si256(
            y, _mm256_and_si256(_mm256_srli_epi64(y, 29), d));
        y = _mm256_xor_si256(
            y, _mm256_and_si256(_mm256_slli_epi64(y, 17), b));
        y = _mm256_xor_si256(
            y, _mm256_and_si256(_mm256_slli_epi64(y, 37), c));
        y = _mm256_xor_si256(y, _mm256_srli_epi64(y, 43));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), y);
    }
    for (; i < n; ++i) {
        std::uint64_t y = src[i];
        y ^= (y >> 29) & 0x5555555555555555ULL;
        y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
        y ^= (y << 37) & 0xFFF7EEE000000000ULL;
        y ^= y >> 43;
        out[i] = y;
    }
}

} // namespace

const KernelTable *
avx2Table()
{
    if (!__builtin_cpu_supports("avx2"))
        return nullptr;
    static const KernelTable table = {
        nonzeroMasksAvx2, countNonzeroAvx2, accumulateNonzeroAvx2,
        leMaskAvx2,       minI64Avx2,       mtTemperAvx2,
    };
    return &table;
}

} // namespace detail
} // namespace simd
} // namespace griffin

#else // non-x86 builds have no AVX2 backend

namespace griffin {
namespace simd {
namespace detail {

const KernelTable *
avx2Table()
{
    return nullptr;
}

} // namespace detail
} // namespace simd
} // namespace griffin

#endif
