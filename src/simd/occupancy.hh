/**
 * @file
 * Tile-occupancy bitmask kernels with runtime SIMD dispatch.
 *
 * The sparse schedulers only ever ask one question of an operand
 * element: is it nonzero?  This layer answers it in bulk — a tile's
 * occupancy becomes one bitmask word per temporal position (bit n set
 * iff the byte is nonzero), extracted with compare-to-zero + movemask
 * on AVX2, `vceqq`/narrowing on NEON, and a portable scalar loop
 * everywhere else.  The schedulers then walk set bits instead of
 * calling bounds-checked `nonzero()` per element.
 *
 * Dispatch: the backend is chosen once per process.  Order:
 *
 *   1. `GRIFFIN_FORCE_SCALAR` (CMake option or a non-empty, non-"0"
 *      environment variable) pins the scalar fallback;
 *   2. AVX2 when the CPU reports it (cpuid via
 *      __builtin_cpu_supports);
 *   3. NEON when compiled for an ARM target that has it;
 *   4. scalar.
 *
 * Every backend is byte-exact against the scalar reference
 * (tests/test_simd.cc), and the e2e baselines are byte-identical under
 * forced-scalar and auto dispatch (tests/simd_dispatch.cmake) — the
 * kernels are pure data-parallel rewrites, never behaviour changes.
 *
 * Raw intrinsics live only in src/simd/kernels_*.cc; griffin-lint's
 * intrinsics-outside-simd rule keeps it that way.  Everything here is
 * plain C++ over function pointers.
 */

#ifndef GRIFFIN_SIMD_OCCUPANCY_HH
#define GRIFFIN_SIMD_OCCUPANCY_HH

#include <cstdint>

#include "tensor/matrix.hh"

namespace griffin {
namespace simd {

enum class Backend { Scalar, Avx2, Neon };

/** Stable lower-case name ("scalar", "avx2", "neon") for reports. */
const char *backendName(Backend backend);

/**
 * One backend's kernel set.  Width contracts: `width` is 1..64 and no
 * kernel reads any byte outside the ranges named below, so callers may
 * pass views right up to an allocation edge (ASan-clean).
 */
struct KernelTable
{
    /**
     * Nonzero masks of `groups` rows, each `width` (1..64) bytes,
     * starting `stride` bytes apart: bit j of out[g] is set iff
     * src[g*stride + j] != 0.  Reads only [src + g*stride,
     * src + g*stride + width) per group.
     */
    void (*nonzeroMasks)(const std::int8_t *src, std::size_t stride,
                         int width, std::int64_t groups,
                         std::uint64_t *out);

    /** Number of nonzero bytes in [src, src + len). */
    std::int64_t (*countNonzero)(const std::int8_t *src,
                                 std::size_t len);

    /** counts[i] += (src[i] != 0) for i in [0, len). */
    void (*accumulateNonzero)(const std::int8_t *src, std::size_t len,
                              std::int32_t *counts);

    /**
     * Pack bit s of out[s/64] = (heads[s] <= horizon) for s in [0, n).
     * Bits at and above n in the last word are zero.
     */
    void (*leMask)(const std::int64_t *heads, std::int64_t n,
                   std::int64_t horizon, std::uint64_t *out);

    /** Minimum of heads[0..n); INT64_MAX when n == 0. */
    std::int64_t (*minI64)(const std::int64_t *heads, std::int64_t n);

    /**
     * MT19937-64 output tempering of `n` raw state words (the shift /
     * xor / mask cascade from [rand.eng.mers]).  Tempering is
     * element-independent, so the engine refill vectorizes even though
     * the twist itself is a serial recurrence.  out[i] may alias
     * nothing in [src, src + n).
     */
    void (*mtTemper)(const std::uint64_t *src, std::int64_t n,
                     std::uint64_t *out);
};

/** The backend picked by the dispatch order above (cached). */
Backend activeBackend();

/** Kernels of the active backend. */
const KernelTable &kernels();

/** The portable reference implementation (always available). */
const KernelTable &scalarKernels();

/** AVX2 kernels, or nullptr when the CPU/build lacks AVX2. */
const KernelTable *avx2Kernels();

/** NEON kernels, or nullptr when not built for an ARM NEON target. */
const KernelTable *neonKernels();

/** Portable popcount (not confined: contains no intrinsics). */
inline int
popcount64(std::uint64_t word)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_popcountll(word);
#else
    int n = 0;
    while (word != 0) {
        word &= word - 1;
        ++n;
    }
    return n;
#endif
}

/** Index of the lowest set bit; undefined for word == 0. */
inline int
ctz64(std::uint64_t word)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(word);
#else
    int n = 0;
    while ((word & 1u) == 0) {
        word >>= 1;
        ++n;
    }
    return n;
#endif
}

/**
 * B-tile occupancy: out[k1*k0 + k2] bit n set iff the tile element
 * (k1, k2, n) — matrix cell (k1*k0 + k2, col_base + n) — is nonzero.
 * `out` holds steps*k0 words.  Positions past the matrix edge (rows
 * beyond b.rows(), columns beyond b.cols()) read as zero, matching the
 * zero-padded TileViewB.  Requires units <= 64.
 */
void bTileOccupancy(const MatrixI8 &b, std::int64_t col_base, int units,
                    std::int64_t steps, int k0, std::uint64_t *out);

/**
 * A-tile occupancy: out[k1*k0 + k2] bit m set iff the tile element
 * (k1, k2, m) — matrix cell (row_base + m, k1*k0 + k2) — is nonzero.
 * `out` holds steps*k0 words; zero-padded like the TileViewA.
 * Requires units <= 64.
 */
void aTileOccupancy(const MatrixI8 &a, std::int64_t row_base, int units,
                    std::int64_t steps, int k0, std::uint64_t *out);

} // namespace simd
} // namespace griffin

#endif // GRIFFIN_SIMD_OCCUPANCY_HH
