/**
 * @file
 * Internal seam between the dispatcher (occupancy.cc) and the backend
 * translation units.  Each backend TU exports exactly one accessor;
 * unsupported backends return nullptr so the dispatcher needs no
 * per-architecture preprocessor logic.
 */

#ifndef GRIFFIN_SIMD_KERNELS_HH
#define GRIFFIN_SIMD_KERNELS_HH

#include "simd/occupancy.hh"

namespace griffin {
namespace simd {
namespace detail {

/** The portable reference kernels; always available. */
const KernelTable &scalarTable();

/** AVX2 kernels when the build targets x86 and the CPU has AVX2. */
const KernelTable *avx2Table();

/** NEON kernels when the build targets ARM with NEON. */
const KernelTable *neonTable();

} // namespace detail
} // namespace simd
} // namespace griffin

#endif // GRIFFIN_SIMD_KERNELS_HH
