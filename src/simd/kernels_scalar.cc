/**
 * @file
 * Portable reference kernels.  Every SIMD backend must be byte-exact
 * against these (tests/test_simd.cc pins it), and GRIFFIN_FORCE_SCALAR
 * routes the whole hot path through them — so they are written for
 * clarity first, with just enough word-at-a-time help that the scalar
 * fallback stays usable on wide tiles.
 */

#include "simd/kernels.hh"

#include <limits>

namespace griffin {
namespace simd {
namespace detail {

namespace {

void
nonzeroMasksScalar(const std::int8_t *src, std::size_t stride,
                   int width, std::int64_t groups, std::uint64_t *out)
{
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int8_t *row = src + static_cast<std::size_t>(g) *
                                           stride;
        std::uint64_t mask = 0;
        for (int j = 0; j < width; ++j)
            mask |= static_cast<std::uint64_t>(row[j] != 0) << j;
        out[g] = mask;
    }
}

std::int64_t
countNonzeroScalar(const std::int8_t *src, std::size_t len)
{
    std::int64_t n = 0;
    for (std::size_t i = 0; i < len; ++i)
        n += src[i] != 0;
    return n;
}

void
accumulateNonzeroScalar(const std::int8_t *src, std::size_t len,
                        std::int32_t *counts)
{
    for (std::size_t i = 0; i < len; ++i)
        counts[i] += src[i] != 0;
}

void
leMaskScalar(const std::int64_t *heads, std::int64_t n,
             std::int64_t horizon, std::uint64_t *out)
{
    const std::int64_t words = (n + 63) / 64;
    for (std::int64_t w = 0; w < words; ++w)
        out[w] = 0;
    for (std::int64_t s = 0; s < n; ++s)
        out[s >> 6] |= static_cast<std::uint64_t>(heads[s] <= horizon)
                       << (s & 63);
}

std::int64_t
minI64Scalar(const std::int64_t *heads, std::int64_t n)
{
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (std::int64_t s = 0; s < n; ++s)
        best = heads[s] < best ? heads[s] : best;
    return best;
}

void
mtTemperScalar(const std::uint64_t *src, std::int64_t n,
               std::uint64_t *out)
{
    // [rand.eng.mers] output transformation with the mt19937_64
    // parameters (u,d,s,b,t,c,l).
    for (std::int64_t i = 0; i < n; ++i) {
        std::uint64_t y = src[i];
        y ^= (y >> 29) & 0x5555555555555555ULL;
        y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
        y ^= (y << 37) & 0xFFF7EEE000000000ULL;
        y ^= y >> 43;
        out[i] = y;
    }
}

} // namespace

const KernelTable &
scalarTable()
{
    static const KernelTable table = {
        nonzeroMasksScalar, countNonzeroScalar, accumulateNonzeroScalar,
        leMaskScalar,       minI64Scalar,       mtTemperScalar,
    };
    return table;
}

} // namespace detail
} // namespace simd
} // namespace griffin
