#include "simd/occupancy.hh"

#include <cstdlib>

#include "common/arena.hh"
#include "simd/kernels.hh"

namespace griffin {
namespace simd {

namespace {

bool
forceScalar()
{
#if defined(GRIFFIN_FORCE_SCALAR)
    return true;
#else
    // A set, non-empty, non-"0" GRIFFIN_FORCE_SCALAR pins the scalar
    // backend — the e2e dispatch test and the forced-scalar CI leg
    // both drive this knob.
    const char *env = std::getenv("GRIFFIN_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
#endif
}

Backend
chooseBackend()
{
    if (forceScalar())
        return Backend::Scalar;
    if (detail::avx2Table() != nullptr)
        return Backend::Avx2;
    if (detail::neonTable() != nullptr)
        return Backend::Neon;
    return Backend::Scalar;
}

} // namespace

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
      case Backend::Scalar:
        break;
    }
    return "scalar";
}

Backend
activeBackend()
{
    static const Backend backend = chooseBackend();
    return backend;
}

const KernelTable &
kernels()
{
    static const KernelTable &table = []() -> const KernelTable & {
        switch (activeBackend()) {
          case Backend::Avx2:
            return *detail::avx2Table();
          case Backend::Neon:
            return *detail::neonTable();
          case Backend::Scalar:
            break;
        }
        return detail::scalarTable();
    }();
    return table;
}

const KernelTable &
scalarKernels()
{
    return detail::scalarTable();
}

const KernelTable *
avx2Kernels()
{
    return detail::avx2Table();
}

const KernelTable *
neonKernels()
{
    return detail::neonTable();
}

void
bTileOccupancy(const MatrixI8 &b, std::int64_t col_base, int units,
               std::int64_t steps, int k0, std::uint64_t *out)
{
    GRIFFIN_ASSERT(units >= 1 && units <= 64,
                   "B occupancy needs 1..64 units, got ", units);
    GRIFFIN_ASSERT(col_base >= 0, "negative column base ", col_base);
    const std::int64_t flat = steps * k0;
    const auto rows = static_cast<std::int64_t>(b.rows());
    const auto cols = static_cast<std::int64_t>(b.cols());
    // Rows of B are contiguous along n: one masked compare per flat-k
    // row covers the whole unit axis.  The matrix edge clips the
    // width; everything past it is tile zero padding.
    const std::int64_t valid = std::min(flat, rows);
    const std::int64_t width =
        col_base < cols
            ? std::min<std::int64_t>(units, cols - col_base)
            : 0;
    if (width > 0 && valid > 0)
        kernels().nonzeroMasks(b.data() + col_base,
                               static_cast<std::size_t>(cols),
                               static_cast<int>(width), valid, out);
    for (std::int64_t r = (width > 0 ? valid : 0); r < flat; ++r)
        out[r] = 0;
}

void
aTileOccupancy(const MatrixI8 &a, std::int64_t row_base, int units,
               std::int64_t steps, int k0, std::uint64_t *out)
{
    GRIFFIN_ASSERT(units >= 1 && units <= 64,
                   "A occupancy needs 1..64 units, got ", units);
    GRIFFIN_ASSERT(row_base >= 0, "negative row base ", row_base);
    const std::int64_t flat = steps * k0;
    for (std::int64_t f = 0; f < flat; ++f)
        out[f] = 0;
    const auto rows = static_cast<std::int64_t>(a.rows());
    const auto cols = static_cast<std::int64_t>(a.cols());
    if (cols == 0)
        return;
    GRIFFIN_ASSERT(flat >= cols, "A occupancy buffer of ", flat,
                   " flat steps cannot cover k = ", cols);

    // A rows are contiguous along k: extract each unit's row as 64-bit
    // chunk masks, then scatter set bits into the per-flat-k masks —
    // proportional to nnz, not to the tile volume.
    Arena &arena = workArena();
    ArenaScope scope(arena);
    const std::int64_t chunks = (cols + 63) / 64;
    std::uint64_t *row_masks = arena.alloc<std::uint64_t>(
        static_cast<std::size_t>(chunks));
    const auto &k = kernels();
    for (int m = 0; m < units; ++m) {
        const std::int64_t r = row_base + m;
        if (r >= rows)
            break;
        const std::int8_t *row =
            a.data() + static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(cols);
        const std::int64_t full = cols / 64;
        if (full > 0)
            k.nonzeroMasks(row, 64, 64, full, row_masks);
        if (cols % 64 != 0)
            k.nonzeroMasks(row + full * 64, 0,
                           static_cast<int>(cols % 64), 1,
                           row_masks + full);
        const std::uint64_t unit_bit = std::uint64_t{1} << m;
        for (std::int64_t c = 0; c < chunks; ++c) {
            std::uint64_t word = row_masks[c];
            while (word != 0) {
                const int j = ctz64(word);
                word &= word - 1;
                out[c * 64 + j] |= unit_bit;
            }
        }
    }
}

} // namespace simd
} // namespace griffin
