#include "runtime/result_sink.hh"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "common/logging.hh"
#include "common/strings.hh"
#include "runtime/telemetry.hh"

namespace griffin {

namespace {

std::string
indentStr(int level)
{
    return std::string(static_cast<std::size_t>(level) * 2, ' ');
}

/** The "options" JSON object: every RunOptions field a grid axis can
 *  address, fixed key order. */
void
writeOptionsObject(std::ostream &os, const RunOptions &opt)
{
    os << "{\"seed\": " << opt.seed << ", \"row_cap\": " << opt.rowCap
       << ", \"weight_lane_bias\": " << jsonNumber(opt.weightLaneBias)
       << ", \"act_run_length\": " << jsonNumber(opt.actRunLength)
       << ", \"sample_fraction\": "
       << jsonNumber(opt.sim.sampleFraction)
       << ", \"enforce_dram_bound\": "
       << (opt.enforceDramBound ? "true" : "false") << "}";
}

void
writeCoordsObject(std::ostream &os,
                  const std::vector<AxisCoordinate> &coords)
{
    os << "{";
    for (std::size_t i = 0; i < coords.size(); ++i) {
        if (i != 0)
            os << ", ";
        os << '"' << jsonEscape(coords[i].axis) << "\": \""
           << jsonEscape(coords[i].value) << '"';
    }
    os << "}";
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // Shortest round-tripping decimal form, locale-independent —
    // printf's %g would honour a comma LC_NUMERIC separator and emit
    // invalid JSON.
    return formatShortestDouble(v);
}

namespace {

/**
 * One result as a JSON object; `row` adds experiment/options/coords
 * fields.  Compact mode (writeJsonLines) drops every newline and
 * indent so the object fits one line; the key order is identical.
 */
void
writeJsonRow(std::ostream &os, const NetworkResult &result,
             const ResultRow *row, int indent, bool compact = false)
{
    const char *nl = compact ? "" : "\n";
    const std::string in0 = compact ? "" : indentStr(indent);
    const std::string in1 = compact ? "" : indentStr(indent + 1);
    const std::string in2 = compact ? "" : indentStr(indent + 2);
    os << in0 << "{" << nl;
    if (row != nullptr && !row->experiment.empty())
        os << in1 << "\"experiment\": \"" << jsonEscape(row->experiment)
           << "\"," << nl;
    os << in1 << "\"network\": \"" << jsonEscape(result.network)
       << "\"," << nl
       << in1 << "\"arch\": \"" << jsonEscape(result.arch) << "\"," << nl
       << in1 << "\"category\": \"" << toString(result.category)
       << "\"," << nl;
    if (row != nullptr && row->annotated) {
        os << in1 << "\"options\": ";
        writeOptionsObject(os, row->options);
        os << "," << nl;
        if (!row->coords.empty()) {
            os << in1 << "\"coords\": ";
            writeCoordsObject(os, row->coords);
            os << "," << nl;
        }
    }
    os << in1 << "\"dense_cycles\": " << result.denseCycles << ","
       << nl
       << in1 << "\"total_cycles\": " << result.totalCycles << ","
       << nl
       << in1 << "\"speedup\": " << jsonNumber(result.speedup) << ","
       << nl
       << in1 << "\"tops_per_watt\": " << jsonNumber(result.topsPerWatt)
       << "," << nl
       << in1 << "\"tops_per_mm2\": " << jsonNumber(result.topsPerMm2)
       << "," << nl;
    // Schedule fields are opt-in (like elapsed_ms): only runs that
    // priced a schedule emit them, so default artifacts stay
    // byte-identical.
    if (!result.scheduleLabel.empty()) {
        os << in1 << "\"schedule\": \""
           << jsonEscape(result.scheduleLabel) << "\"," << nl
           << in1 << "\"peak_sram_bytes\": " << result.peakSramBytes
           << "," << nl
           << in1 << "\"spill_cycles\": " << result.spillCycles << ","
           << nl
           << in1 << "\"recompute_cycles\": " << result.recomputeCycles
           << "," << nl;
    }
    if (row != nullptr && row->timed)
        os << in1 << "\"elapsed_ms\": " << jsonNumber(row->elapsedMs)
           << "," << nl;
    os << in1 << "\"layers\": [";
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
        const auto &l = result.layers[i];
        os << (i == 0 ? nl : (compact ? "," : ",\n"))
           << in2 << "{\"name\": \"" << jsonEscape(l.name) << "\", "
           << "\"dense_cycles\": " << l.denseCycles << ", "
           << "\"compute_cycles\": " << l.computeCycles << ", "
           << "\"dram_cycles\": " << l.dramCycles << ", "
           << "\"total_cycles\": " << l.totalCycles << ", "
           << "\"macs\": " << l.macs << ", "
           << "\"speedup\": " << jsonNumber(l.speedup) << "}";
    }
    if (!result.layers.empty())
        os << nl << in1;
    os << "]" << nl << in0 << "}";
}

} // namespace

void
writeJson(std::ostream &os, const NetworkResult &result, int indent)
{
    writeJsonRow(os, result, nullptr, indent);
}

void
writeJson(std::ostream &os, const std::vector<NetworkResult> &results)
{
    os << "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        writeJson(os, results[i], 1);
    }
    if (!results.empty())
        os << "\n";
    os << "]\n";
}

std::vector<ResultRow>
sweepRows(const SweepResult &sweep, const std::string &experiment)
{
    GRIFFIN_ASSERT(sweep.jobs().size() == sweep.results().size(),
                   "sweep jobs/results length mismatch");
    std::vector<ResultRow> rows;
    rows.reserve(sweep.results().size());
    for (std::size_t i = 0; i < sweep.results().size(); ++i) {
        ResultRow row;
        row.result = sweep.results()[i];
        row.annotated = true;
        row.options = sweep.jobs()[i].options;
        row.coords = sweep.jobs()[i].coords;
        row.experiment = experiment;
        if (i < sweep.jobElapsedMs().size()) {
            row.timed = true;
            row.elapsedMs = sweep.jobElapsedMs()[i];
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void
writeJson(std::ostream &os, const std::vector<ResultRow> &rows)
{
    os << "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        writeJsonRow(os, rows[i].result, &rows[i], 1);
    }
    if (!rows.empty())
        os << "\n";
    os << "]\n";
}

void
writeJson(std::ostream &os, const SweepResult &sweep)
{
    writeJson(os, sweepRows(sweep));
}

void
writeCsv(std::ostream &os, const std::vector<NetworkResult> &results)
{
    os << "network,arch,category,layer,dense_cycles,compute_cycles,"
          "dram_cycles,total_cycles,macs,speedup\n";
    for (const auto &r : results) {
        const auto prefix = csvEscape(r.network) + ',' +
                            csvEscape(r.arch) + ',' +
                            toString(r.category) + ',';
        for (const auto &l : r.layers) {
            os << prefix << csvEscape(l.name) << ',' << l.denseCycles
               << ',' << l.computeCycles << ',' << l.dramCycles << ','
               << l.totalCycles << ',' << l.macs << ','
               << jsonNumber(l.speedup) << '\n';
        }
        os << prefix << "total," << r.denseCycles << ",,,"
           << r.totalCycles << ",," << jsonNumber(r.speedup) << '\n';
    }
}

namespace {

/** The per-row options cells ("seed,...,enforce_dram_bound"), empty
 *  cells when the row is unannotated. */
std::string
optionsCsvCells(const ResultRow &row)
{
    if (!row.annotated)
        return ",,,,,";
    const auto &opt = row.options;
    return std::to_string(opt.seed) + ',' + std::to_string(opt.rowCap) +
           ',' + jsonNumber(opt.weightLaneBias) + ',' +
           jsonNumber(opt.actRunLength) + ',' +
           jsonNumber(opt.sim.sampleFraction) + ',' +
           (opt.enforceDramBound ? "true" : "false");
}

} // namespace

void
writeCsv(std::ostream &os, const std::vector<ResultRow> &rows)
{
    // The experiment column only appears when some row is labeled, so
    // unlabeled documents (bench_runner) keep their layout.  Same for
    // elapsed_ms: only `--timings` documents grow the column.
    bool labeled = false;
    bool timed = false;
    bool scheduled = false;
    for (const auto &row : rows) {
        labeled = labeled || !row.experiment.empty();
        timed = timed || row.timed;
        scheduled = scheduled || !row.result.scheduleLabel.empty();
    }
    if (labeled)
        os << "experiment,";
    os << "network,arch,category,seed,row_cap,weight_lane_bias,"
          "act_run_length,sample_fraction,enforce_dram_bound,layer,"
          "dense_cycles,compute_cycles,dram_cycles,total_cycles,macs,"
          "speedup";
    // Schedule columns are whole-network quantities; like elapsed_ms
    // they only appear when some row priced a schedule.
    if (scheduled)
        os << ",schedule,peak_sram_bytes,spill_cycles,recompute_cycles";
    if (timed)
        os << ",elapsed_ms";
    os << '\n';
    for (const auto &row : rows) {
        const auto &r = row.result;
        const auto prefix =
            (labeled ? csvEscape(row.experiment) + ',' : std::string()) +
            csvEscape(r.network) + ',' + csvEscape(r.arch) + ',' +
            toString(r.category) + ',' + optionsCsvCells(row) + ',';
        // elapsed_ms is a whole-job quantity: the total row carries it,
        // layer rows leave the cell empty.  Same for the schedule
        // columns.
        for (const auto &l : r.layers) {
            os << prefix << csvEscape(l.name) << ',' << l.denseCycles
               << ',' << l.computeCycles << ',' << l.dramCycles << ','
               << l.totalCycles << ',' << l.macs << ','
               << jsonNumber(l.speedup);
            if (scheduled)
                os << ",,,,";
            if (timed)
                os << ',';
            os << '\n';
        }
        os << prefix << "total," << r.denseCycles << ",,,"
           << r.totalCycles << ",," << jsonNumber(r.speedup);
        if (scheduled) {
            if (r.scheduleLabel.empty()) {
                os << ",,,,";
            } else {
                os << ',' << csvEscape(r.scheduleLabel) << ','
                   << r.peakSramBytes << ',' << r.spillCycles << ','
                   << r.recomputeCycles;
            }
        }
        if (timed)
            os << ',' << (row.timed ? jsonNumber(row.elapsedMs) : "");
        os << '\n';
    }
}

void
writeCsv(std::ostream &os, const SweepResult &sweep)
{
    writeCsv(os, sweepRows(sweep));
}

void
writeJsonLines(std::ostream &os, const std::vector<ResultRow> &rows)
{
    for (const auto &row : rows) {
        writeJsonRow(os, row.result, &row, 0, /*compact=*/true);
        os << '\n';
    }
}

void
writeJsonLines(std::ostream &os, const SweepResult &sweep)
{
    writeJsonLines(os, sweepRows(sweep));
}

void
writeTableJsonLine(std::ostream &os, const Table &table)
{
    os << "{\"table\": \"" << jsonEscape(table.title()) << "\", "
       << "\"columns\": [";
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (c != 0)
            os << ", ";
        os << '"' << jsonEscape(table.headers()[c]) << '"';
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows(); ++r) {
        os << (r == 0 ? "[" : ", [");
        for (std::size_t c = 0; c < table.cols(); ++c) {
            if (c != 0)
                os << ", ";
            os << '"' << jsonEscape(table.cell(r, c)) << '"';
        }
        os << "]";
    }
    os << "]}\n";
}

void
writeCacheStatsJsonLine(std::ostream &os, const CacheStats &stats,
                        const std::string &label)
{
    os << "{\"" << jsonEscape(label) << "\": {"
       << "\"hits\": " << stats.hits << ", "
       << "\"misses\": " << stats.misses << ", "
       << "\"hit_rate\": " << jsonNumber(stats.hitRate()) << ", "
       << "\"entries\": " << stats.entries << ", "
       << "\"resident_bytes\": " << stats.residentBytes << ", "
       << "\"evictions\": " << stats.evictions << ", "
       << "\"loaded_entries\": " << stats.loadedEntries << ", "
       << "\"load_hits\": " << stats.loadHits << "}}\n";
}

void
writeMetricsJsonLine(std::ostream &os, const MetricsRegistry &registry,
                     const std::string &label)
{
    os << "{\"" << jsonEscape(label) << "\": {";
    const auto metrics = registry.snapshot();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const auto &m = metrics[i];
        if (i != 0)
            os << ", ";
        os << '"' << jsonEscape(m.name) << "\": ";
        switch (m.kind) {
          case MetricSnapshot::Kind::Counter:
            os << m.counter;
            break;
          case MetricSnapshot::Kind::Gauge:
            os << jsonNumber(m.gauge);
            break;
          case MetricSnapshot::Kind::Histogram:
            os << "{\"count\": " << m.histogram.count
               << ", \"sum\": " << m.histogram.sum
               << ", \"min\": " << m.histogram.min
               << ", \"max\": " << m.histogram.max
               << ", \"mean\": " << jsonNumber(m.histogram.mean())
               << "}";
            break;
        }
    }
    os << "}}\n";
}

ResultSink::ResultSink(std::string path) : path_(std::move(path))
{
    if (path_.empty())
        fatal("result sink needs a non-empty path");
}

void
ResultSink::add(NetworkResult result)
{
    ResultRow row;
    row.result = std::move(result);
    rows_.push_back(std::move(row));
}

void
ResultSink::add(ResultRow row)
{
    rows_.push_back(std::move(row));
}

void
ResultSink::add(const std::vector<NetworkResult> &results)
{
    for (const auto &r : results)
        add(r);
}

void
ResultSink::add(const SweepResult &sweep, const std::string &experiment)
{
    auto rows = sweepRows(sweep, experiment);
    rows_.insert(rows_.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
}

namespace {

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // namespace

void
ResultSink::flush() const
{
    std::ofstream os(path_);
    if (!os)
        fatal("cannot open result sink path '", path_, "'");
    const bool csv = hasSuffix(path_, ".csv");
    const bool jsonl = hasSuffix(path_, ".jsonl");
    // All-plain documents keep the stable legacy NetworkResult shape.
    bool annotated = false;
    for (const auto &row : rows_)
        annotated = annotated || row.annotated;
    std::vector<NetworkResult> plain;
    if (!annotated)
        for (const auto &row : rows_)
            plain.push_back(row.result);
    if (csv) {
        if (annotated)
            writeCsv(os, rows_);
        else
            writeCsv(os, plain);
    } else if (jsonl) {
        // JSON Lines rows always carry their annotations — the format
        // exists for shard-concatenated fleet output, where rows must
        // be self-describing with no enclosing document.
        writeJsonLines(os, rows_);
    } else {
        if (annotated)
            writeJson(os, rows_);
        else
            writeJson(os, plain);
    }
    if (!os)
        fatal("write to result sink path '", path_, "' failed");
}

} // namespace griffin
