#include "runtime/result_sink.hh"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "common/logging.hh"
#include "common/strings.hh"

namespace griffin {

namespace {

std::string
indentStr(int level)
{
    return std::string(static_cast<std::size_t>(level) * 2, ' ');
}

/** The "options" JSON object: every RunOptions field a grid axis can
 *  address, fixed key order. */
void
writeOptionsObject(std::ostream &os, const RunOptions &opt)
{
    os << "{\"seed\": " << opt.seed << ", \"row_cap\": " << opt.rowCap
       << ", \"weight_lane_bias\": " << jsonNumber(opt.weightLaneBias)
       << ", \"act_run_length\": " << jsonNumber(opt.actRunLength)
       << ", \"sample_fraction\": "
       << jsonNumber(opt.sim.sampleFraction)
       << ", \"enforce_dram_bound\": "
       << (opt.enforceDramBound ? "true" : "false") << "}";
}

void
writeCoordsObject(std::ostream &os,
                  const std::vector<AxisCoordinate> &coords)
{
    os << "{";
    for (std::size_t i = 0; i < coords.size(); ++i) {
        if (i != 0)
            os << ", ";
        os << '"' << jsonEscape(coords[i].axis) << "\": \""
           << jsonEscape(coords[i].value) << '"';
    }
    os << "}";
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // Shortest round-tripping decimal form, locale-independent —
    // printf's %g would honour a comma LC_NUMERIC separator and emit
    // invalid JSON.
    return formatShortestDouble(v);
}

namespace {

/** One result as a JSON object; `row` adds options/coords fields. */
void
writeJsonRow(std::ostream &os, const NetworkResult &result,
             const ResultRow *row, int indent)
{
    const std::string in0 = indentStr(indent);
    const std::string in1 = indentStr(indent + 1);
    const std::string in2 = indentStr(indent + 2);
    os << in0 << "{\n"
       << in1 << "\"network\": \"" << jsonEscape(result.network) << "\",\n"
       << in1 << "\"arch\": \"" << jsonEscape(result.arch) << "\",\n"
       << in1 << "\"category\": \"" << toString(result.category) << "\",\n";
    if (row != nullptr && row->annotated) {
        os << in1 << "\"options\": ";
        writeOptionsObject(os, row->options);
        os << ",\n";
        if (!row->coords.empty()) {
            os << in1 << "\"coords\": ";
            writeCoordsObject(os, row->coords);
            os << ",\n";
        }
    }
    os << in1 << "\"dense_cycles\": " << result.denseCycles << ",\n"
       << in1 << "\"total_cycles\": " << result.totalCycles << ",\n"
       << in1 << "\"speedup\": " << jsonNumber(result.speedup) << ",\n"
       << in1 << "\"tops_per_watt\": " << jsonNumber(result.topsPerWatt)
       << ",\n"
       << in1 << "\"tops_per_mm2\": " << jsonNumber(result.topsPerMm2)
       << ",\n"
       << in1 << "\"layers\": [";
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
        const auto &l = result.layers[i];
        os << (i == 0 ? "\n" : ",\n")
           << in2 << "{\"name\": \"" << jsonEscape(l.name) << "\", "
           << "\"dense_cycles\": " << l.denseCycles << ", "
           << "\"compute_cycles\": " << l.computeCycles << ", "
           << "\"dram_cycles\": " << l.dramCycles << ", "
           << "\"total_cycles\": " << l.totalCycles << ", "
           << "\"macs\": " << l.macs << ", "
           << "\"speedup\": " << jsonNumber(l.speedup) << "}";
    }
    if (!result.layers.empty())
        os << "\n" << in1;
    os << "]\n" << in0 << "}";
}

} // namespace

void
writeJson(std::ostream &os, const NetworkResult &result, int indent)
{
    writeJsonRow(os, result, nullptr, indent);
}

void
writeJson(std::ostream &os, const std::vector<NetworkResult> &results)
{
    os << "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        writeJson(os, results[i], 1);
    }
    if (!results.empty())
        os << "\n";
    os << "]\n";
}

std::vector<ResultRow>
sweepRows(const SweepResult &sweep)
{
    GRIFFIN_ASSERT(sweep.jobs().size() == sweep.results().size(),
                   "sweep jobs/results length mismatch");
    std::vector<ResultRow> rows;
    rows.reserve(sweep.results().size());
    for (std::size_t i = 0; i < sweep.results().size(); ++i) {
        ResultRow row;
        row.result = sweep.results()[i];
        row.annotated = true;
        row.options = sweep.jobs()[i].options;
        row.coords = sweep.jobs()[i].coords;
        rows.push_back(std::move(row));
    }
    return rows;
}

void
writeJson(std::ostream &os, const std::vector<ResultRow> &rows)
{
    os << "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        writeJsonRow(os, rows[i].result, &rows[i], 1);
    }
    if (!rows.empty())
        os << "\n";
    os << "]\n";
}

void
writeJson(std::ostream &os, const SweepResult &sweep)
{
    writeJson(os, sweepRows(sweep));
}

void
writeCsv(std::ostream &os, const std::vector<NetworkResult> &results)
{
    os << "network,arch,category,layer,dense_cycles,compute_cycles,"
          "dram_cycles,total_cycles,macs,speedup\n";
    for (const auto &r : results) {
        for (const auto &l : r.layers) {
            os << r.network << ',' << r.arch << ','
               << toString(r.category) << ',' << l.name << ','
               << l.denseCycles << ',' << l.computeCycles << ','
               << l.dramCycles << ',' << l.totalCycles << ',' << l.macs
               << ',' << jsonNumber(l.speedup) << '\n';
        }
        os << r.network << ',' << r.arch << ',' << toString(r.category)
           << ",total," << r.denseCycles << ",,," << r.totalCycles
           << ",," << jsonNumber(r.speedup) << '\n';
    }
}

namespace {

/** The per-row options cells ("seed,...,enforce_dram_bound"), empty
 *  cells when the row is unannotated. */
std::string
optionsCsvCells(const ResultRow &row)
{
    if (!row.annotated)
        return ",,,,,";
    const auto &opt = row.options;
    return std::to_string(opt.seed) + ',' + std::to_string(opt.rowCap) +
           ',' + jsonNumber(opt.weightLaneBias) + ',' +
           jsonNumber(opt.actRunLength) + ',' +
           jsonNumber(opt.sim.sampleFraction) + ',' +
           (opt.enforceDramBound ? "true" : "false");
}

} // namespace

void
writeCsv(std::ostream &os, const std::vector<ResultRow> &rows)
{
    os << "network,arch,category,seed,row_cap,weight_lane_bias,"
          "act_run_length,sample_fraction,enforce_dram_bound,layer,"
          "dense_cycles,compute_cycles,dram_cycles,total_cycles,macs,"
          "speedup\n";
    for (const auto &row : rows) {
        const auto &r = row.result;
        const auto prefix = r.network + ',' + r.arch + ',' +
                            toString(r.category) + ',' +
                            optionsCsvCells(row) + ',';
        for (const auto &l : r.layers) {
            os << prefix << l.name << ',' << l.denseCycles << ','
               << l.computeCycles << ',' << l.dramCycles << ','
               << l.totalCycles << ',' << l.macs << ','
               << jsonNumber(l.speedup) << '\n';
        }
        os << prefix << "total," << r.denseCycles << ",,,"
           << r.totalCycles << ",," << jsonNumber(r.speedup) << '\n';
    }
}

void
writeCsv(std::ostream &os, const SweepResult &sweep)
{
    writeCsv(os, sweepRows(sweep));
}

void
writeTableJsonLine(std::ostream &os, const Table &table)
{
    os << "{\"table\": \"" << jsonEscape(table.title()) << "\", "
       << "\"columns\": [";
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (c != 0)
            os << ", ";
        os << '"' << jsonEscape(table.headers()[c]) << '"';
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows(); ++r) {
        os << (r == 0 ? "[" : ", [");
        for (std::size_t c = 0; c < table.cols(); ++c) {
            if (c != 0)
                os << ", ";
            os << '"' << jsonEscape(table.cell(r, c)) << '"';
        }
        os << "]";
    }
    os << "]}\n";
}

void
writeCacheStatsJsonLine(std::ostream &os,
                        const ScheduleCache::Stats &stats)
{
    os << "{\"cache_stats\": {"
       << "\"hits\": " << stats.hits << ", "
       << "\"misses\": " << stats.misses << ", "
       << "\"hit_rate\": " << jsonNumber(stats.hitRate()) << ", "
       << "\"entries\": " << stats.entries << ", "
       << "\"resident_bytes\": " << stats.residentBytes << ", "
       << "\"evictions\": " << stats.evictions << ", "
       << "\"loaded_entries\": " << stats.loadedEntries << ", "
       << "\"load_hits\": " << stats.loadHits << "}}\n";
}

ResultSink::ResultSink(std::string path) : path_(std::move(path))
{
    if (path_.empty())
        fatal("result sink needs a non-empty path");
}

void
ResultSink::add(NetworkResult result)
{
    ResultRow row;
    row.result = std::move(result);
    rows_.push_back(std::move(row));
}

void
ResultSink::add(const std::vector<NetworkResult> &results)
{
    for (const auto &r : results)
        add(r);
}

void
ResultSink::add(const SweepResult &sweep)
{
    auto rows = sweepRows(sweep);
    rows_.insert(rows_.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
}

void
ResultSink::flush() const
{
    std::ofstream os(path_);
    if (!os)
        fatal("cannot open result sink path '", path_, "'");
    const bool csv = path_.size() >= 4 &&
                     path_.compare(path_.size() - 4, 4, ".csv") == 0;
    // All-plain documents keep the stable legacy NetworkResult shape.
    bool annotated = false;
    for (const auto &row : rows_)
        annotated = annotated || row.annotated;
    std::vector<NetworkResult> plain;
    if (!annotated)
        for (const auto &row : rows_)
            plain.push_back(row.result);
    if (csv) {
        if (annotated)
            writeCsv(os, rows_);
        else
            writeCsv(os, plain);
    } else {
        if (annotated)
            writeJson(os, rows_);
        else
            writeJson(os, plain);
    }
    if (!os)
        fatal("write to result sink path '", path_, "' failed");
}

} // namespace griffin
