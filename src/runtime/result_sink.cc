#include "runtime/result_sink.hh"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <system_error>

#include "common/logging.hh"

namespace griffin {

namespace {

std::string
indentStr(int level)
{
    return std::string(static_cast<std::size_t>(level) * 2, ' ');
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // std::to_chars emits the shortest round-tripping decimal form and
    // ignores the process locale — printf's %g would honour a comma
    // LC_NUMERIC separator and emit invalid JSON.
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    GRIFFIN_ASSERT(res.ec == std::errc{}, "double formatting failed");
    return std::string(buf, res.ptr);
}

void
writeJson(std::ostream &os, const NetworkResult &result, int indent)
{
    const std::string in0 = indentStr(indent);
    const std::string in1 = indentStr(indent + 1);
    const std::string in2 = indentStr(indent + 2);
    os << in0 << "{\n"
       << in1 << "\"network\": \"" << jsonEscape(result.network) << "\",\n"
       << in1 << "\"arch\": \"" << jsonEscape(result.arch) << "\",\n"
       << in1 << "\"category\": \"" << toString(result.category) << "\",\n"
       << in1 << "\"dense_cycles\": " << result.denseCycles << ",\n"
       << in1 << "\"total_cycles\": " << result.totalCycles << ",\n"
       << in1 << "\"speedup\": " << jsonNumber(result.speedup) << ",\n"
       << in1 << "\"tops_per_watt\": " << jsonNumber(result.topsPerWatt)
       << ",\n"
       << in1 << "\"tops_per_mm2\": " << jsonNumber(result.topsPerMm2)
       << ",\n"
       << in1 << "\"layers\": [";
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
        const auto &l = result.layers[i];
        os << (i == 0 ? "\n" : ",\n")
           << in2 << "{\"name\": \"" << jsonEscape(l.name) << "\", "
           << "\"dense_cycles\": " << l.denseCycles << ", "
           << "\"compute_cycles\": " << l.computeCycles << ", "
           << "\"dram_cycles\": " << l.dramCycles << ", "
           << "\"total_cycles\": " << l.totalCycles << ", "
           << "\"macs\": " << l.macs << ", "
           << "\"speedup\": " << jsonNumber(l.speedup) << "}";
    }
    if (!result.layers.empty())
        os << "\n" << in1;
    os << "]\n" << in0 << "}";
}

void
writeJson(std::ostream &os, const std::vector<NetworkResult> &results)
{
    os << "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        writeJson(os, results[i], 1);
    }
    if (!results.empty())
        os << "\n";
    os << "]\n";
}

void
writeCsv(std::ostream &os, const std::vector<NetworkResult> &results)
{
    os << "network,arch,category,layer,dense_cycles,compute_cycles,"
          "dram_cycles,total_cycles,macs,speedup\n";
    for (const auto &r : results) {
        for (const auto &l : r.layers) {
            os << r.network << ',' << r.arch << ','
               << toString(r.category) << ',' << l.name << ','
               << l.denseCycles << ',' << l.computeCycles << ','
               << l.dramCycles << ',' << l.totalCycles << ',' << l.macs
               << ',' << jsonNumber(l.speedup) << '\n';
        }
        os << r.network << ',' << r.arch << ',' << toString(r.category)
           << ",total," << r.denseCycles << ",,," << r.totalCycles
           << ",," << jsonNumber(r.speedup) << '\n';
    }
}

void
writeTableJsonLine(std::ostream &os, const Table &table)
{
    os << "{\"table\": \"" << jsonEscape(table.title()) << "\", "
       << "\"columns\": [";
    for (std::size_t c = 0; c < table.cols(); ++c) {
        if (c != 0)
            os << ", ";
        os << '"' << jsonEscape(table.headers()[c]) << '"';
    }
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows(); ++r) {
        os << (r == 0 ? "[" : ", [");
        for (std::size_t c = 0; c < table.cols(); ++c) {
            if (c != 0)
                os << ", ";
            os << '"' << jsonEscape(table.cell(r, c)) << '"';
        }
        os << "]";
    }
    os << "]}\n";
}

void
writeCacheStatsJsonLine(std::ostream &os,
                        const ScheduleCache::Stats &stats)
{
    os << "{\"cache_stats\": {"
       << "\"hits\": " << stats.hits << ", "
       << "\"misses\": " << stats.misses << ", "
       << "\"hit_rate\": " << jsonNumber(stats.hitRate()) << ", "
       << "\"entries\": " << stats.entries << ", "
       << "\"resident_bytes\": " << stats.residentBytes << ", "
       << "\"evictions\": " << stats.evictions << ", "
       << "\"loaded_entries\": " << stats.loadedEntries << ", "
       << "\"load_hits\": " << stats.loadHits << "}}\n";
}

ResultSink::ResultSink(std::string path) : path_(std::move(path))
{
    if (path_.empty())
        fatal("result sink needs a non-empty path");
}

void
ResultSink::add(NetworkResult result)
{
    results_.push_back(std::move(result));
}

void
ResultSink::add(const std::vector<NetworkResult> &results)
{
    results_.insert(results_.end(), results.begin(), results.end());
}

void
ResultSink::flush() const
{
    std::ofstream os(path_);
    if (!os)
        fatal("cannot open result sink path '", path_, "'");
    const bool csv = path_.size() >= 4 &&
                     path_.compare(path_.size() - 4, 4, ".csv") == 0;
    if (csv)
        writeCsv(os, results_);
    else
        writeJson(os, results_);
    if (!os)
        fatal("write to result sink path '", path_, "' failed");
}

} // namespace griffin
