#include "runtime/perf_report.hh"

#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "runtime/result_sink.hh"

namespace griffin {

namespace {

void
writeCacheObject(std::ostream &os, const CacheStats &stats)
{
    os << "{\"hits\": " << stats.hits << ", \"misses\": " << stats.misses
       << ", \"hit_rate\": " << jsonNumber(stats.hitRate())
       << ", \"entries\": " << stats.entries
       << ", \"resident_bytes\": " << stats.residentBytes
       << ", \"evictions\": " << stats.evictions
       << ", \"loaded_entries\": " << stats.loadedEntries
       << ", \"load_hits\": " << stats.loadHits << "}";
}

} // namespace

void
writePerfJson(std::ostream &os, const PerfDocument &doc)
{
    os << "{\n"
       << "  \"schema\": \"" << perfSchemaName << "\",\n"
       << "  \"schema_version\": " << doc.schemaVersion << ",\n"
       << "  \"threads\": " << doc.threads << ",\n"
       << "  \"fidelity\": {\"sample\": " << jsonNumber(doc.sample)
       << ", \"rowcap\": " << doc.rowCap << ", \"seed\": " << doc.seed
       << "},\n"
       << "  \"total_wall_ms\": " << jsonNumber(doc.totalWallMs)
       << ",\n";
    if (!doc.kernels.empty()) {
        os << "  \"kernels\": [";
        for (std::size_t i = 0; i < doc.kernels.size(); ++i) {
            const PerfKernel &k = doc.kernels[i];
            os << (i == 0 ? "\n" : ",\n") << "    {\"kernel\": \""
               << jsonEscape(k.kernel) << "\", \"backend\": \""
               << jsonEscape(k.backend) << "\", \"ops\": " << k.ops
               << ", \"total_ms\": " << jsonNumber(k.totalMs)
               << ", \"ns_per_op\": " << jsonNumber(k.nsPerOp) << "}";
        }
        os << "\n  ],\n";
    }
    os << "  \"suite\": [";
    for (std::size_t i = 0; i < doc.suite.size(); ++i) {
        const PerfEntry &e = doc.suite[i];
        os << (i == 0 ? "\n" : ",\n") << "    {\n"
           << "      \"experiment\": \"" << jsonEscape(e.experiment)
           << "\",\n"
           << "      \"jobs\": " << e.jobs << ",\n"
           << "      \"wall_ms\": " << jsonNumber(e.wallMs) << ",\n"
           << "      \"jobs_per_sec\": " << jsonNumber(e.jobsPerSec)
           << ",\n"
           << "      \"thread_utilization\": "
           << jsonNumber(e.threadUtilization) << ",\n"
           << "      \"pool\": {\"steals\": " << e.poolSteals
           << ", \"busy_ms\": " << jsonNumber(e.poolBusyMs) << "},\n"
           << "      \"stages\": [";
        for (std::size_t s = 0; s < e.stages.size(); ++s) {
            const PerfStage &stage = e.stages[s];
            os << (s == 0 ? "\n" : ",\n")
               << "        {\"stage\": \"" << jsonEscape(stage.stage)
               << "\", \"count\": " << stage.count
               << ", \"total_ms\": " << jsonNumber(stage.totalMs)
               << "}";
        }
        if (!e.stages.empty())
            os << "\n      ";
        os << "],\n"
           << "      \"caches\": {\n"
           << "        \"schedule\": ";
        writeCacheObject(os, e.scheduleCache);
        os << ",\n        \"a_schedule\": ";
        writeCacheObject(os, e.aScheduleCache);
        os << ",\n        \"workset\": ";
        writeCacheObject(os, e.worksetCache);
        os << "\n      }\n    }";
    }
    if (!doc.suite.empty())
        os << "\n  ";
    os << "]\n}\n";
}

namespace {

/**
 * Strict field accessors: a missing or mistyped member fails the whole
 * parse with a path-ish message, so a truncated or hand-edited
 * artifact is rejected rather than read as zeros.
 */
const JsonValue *
requireMember(const JsonValue &obj, const std::string &key,
              const char *where, std::string &error)
{
    if (!obj.isObject()) {
        error = std::string(where) + " is not an object";
        return nullptr;
    }
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        error = std::string(where) + " is missing \"" + key + "\"";
    return v;
}

bool
requireNumber(const JsonValue &obj, const std::string &key,
              const char *where, double &into, std::string &error)
{
    const JsonValue *v = requireMember(obj, key, where, error);
    if (v == nullptr)
        return false;
    if (!v->isNumber()) {
        error = std::string(where) + " \"" + key + "\" is not a number";
        return false;
    }
    into = v->asDouble();
    return true;
}

bool
requireUint(const JsonValue &obj, const std::string &key,
            const char *where, std::uint64_t &into, std::string &error)
{
    const JsonValue *v = requireMember(obj, key, where, error);
    if (v == nullptr)
        return false;
    if (!v->isNumber()) {
        error = std::string(where) + " \"" + key + "\" is not a number";
        return false;
    }
    into = v->asUint();
    return true;
}

bool
requireString(const JsonValue &obj, const std::string &key,
              const char *where, std::string &into, std::string &error)
{
    const JsonValue *v = requireMember(obj, key, where, error);
    if (v == nullptr)
        return false;
    if (!v->isString()) {
        error = std::string(where) + " \"" + key + "\" is not a string";
        return false;
    }
    into = v->asString();
    return true;
}

bool
parseCacheObject(const JsonValue &obj, const char *where,
                 CacheStats &into, std::string &error)
{
    double ignored_rate = 0.0;
    return requireUint(obj, "hits", where, into.hits, error) &&
           requireUint(obj, "misses", where, into.misses, error) &&
           requireNumber(obj, "hit_rate", where, ignored_rate, error) &&
           requireUint(obj, "entries", where, into.entries, error) &&
           requireUint(obj, "resident_bytes", where, into.residentBytes,
                       error) &&
           requireUint(obj, "evictions", where, into.evictions,
                       error) &&
           requireUint(obj, "loaded_entries", where, into.loadedEntries,
                       error) &&
           requireUint(obj, "load_hits", where, into.loadHits, error);
}

} // namespace

bool
parsePerfDocument(const std::string &text, PerfDocument &out,
                  std::string &error)
{
    JsonValue doc;
    if (!parseJson(text, doc, error))
        return false;
    std::string schema;
    if (!requireString(doc, "schema", "document", schema, error))
        return false;
    if (schema != perfSchemaName) {
        error = "\"schema\" is \"" + schema + "\", expected \"" +
                perfSchemaName + "\"";
        return false;
    }
    double version = 0.0;
    if (!requireNumber(doc, "schema_version", "document", version,
                       error))
        return false;
    out.schemaVersion = static_cast<int>(version);
    if (out.schemaVersion < 1 ||
        out.schemaVersion > perfSchemaVersion) {
        error = "\"schema_version\" " +
                std::to_string(out.schemaVersion) +
                " is not understood by this build (max " +
                std::to_string(perfSchemaVersion) + ")";
        return false;
    }
    double threads = 0.0;
    if (!requireNumber(doc, "threads", "document", threads, error))
        return false;
    out.threads = static_cast<int>(threads);
    const JsonValue *fidelity =
        requireMember(doc, "fidelity", "document", error);
    if (fidelity == nullptr)
        return false;
    double rowcap = 0.0;
    if (!requireNumber(*fidelity, "sample", "\"fidelity\"", out.sample,
                       error) ||
        !requireNumber(*fidelity, "rowcap", "\"fidelity\"", rowcap,
                       error) ||
        !requireUint(*fidelity, "seed", "\"fidelity\"", out.seed,
                     error))
        return false;
    out.rowCap = static_cast<std::int64_t>(rowcap);
    if (!requireNumber(doc, "total_wall_ms", "document",
                       out.totalWallMs, error))
        return false;
    // "kernels" arrived in schema v2 and is optional even there (only
    // --kernels runs emit it); its absence is not an error, but a
    // present-and-malformed section is.
    out.kernels.clear();
    const JsonValue *kernels = doc.find("kernels");
    if (kernels != nullptr) {
        if (!kernels->isArray()) {
            error = "\"kernels\" is not an array";
            return false;
        }
        for (const JsonValue &item : kernels->items) {
            PerfKernel k;
            if (!requireString(item, "kernel", "kernels entry",
                               k.kernel, error) ||
                !requireString(item, "backend", "kernels entry",
                               k.backend, error) ||
                !requireUint(item, "ops", "kernels entry", k.ops,
                             error) ||
                !requireNumber(item, "total_ms", "kernels entry",
                               k.totalMs, error) ||
                !requireNumber(item, "ns_per_op", "kernels entry",
                               k.nsPerOp, error))
                return false;
            out.kernels.push_back(std::move(k));
        }
    }
    const JsonValue *suite =
        requireMember(doc, "suite", "document", error);
    if (suite == nullptr)
        return false;
    if (!suite->isArray()) {
        error = "\"suite\" is not an array";
        return false;
    }
    out.suite.clear();
    for (const JsonValue &item : suite->items) {
        PerfEntry e;
        if (!requireString(item, "experiment", "suite entry",
                           e.experiment, error) ||
            !requireUint(item, "jobs", "suite entry", e.jobs, error) ||
            !requireNumber(item, "wall_ms", "suite entry", e.wallMs,
                           error) ||
            !requireNumber(item, "jobs_per_sec", "suite entry",
                           e.jobsPerSec, error) ||
            !requireNumber(item, "thread_utilization", "suite entry",
                           e.threadUtilization, error))
            return false;
        const JsonValue *pool =
            requireMember(item, "pool", "suite entry", error);
        if (pool == nullptr ||
            !requireUint(*pool, "steals", "\"pool\"", e.poolSteals,
                         error) ||
            !requireNumber(*pool, "busy_ms", "\"pool\"", e.poolBusyMs,
                           error))
            return false;
        const JsonValue *stages =
            requireMember(item, "stages", "suite entry", error);
        if (stages == nullptr)
            return false;
        if (!stages->isArray()) {
            error = "\"stages\" is not an array";
            return false;
        }
        for (const JsonValue &stage : stages->items) {
            PerfStage s;
            if (!requireString(stage, "stage", "stage entry", s.stage,
                               error) ||
                !requireUint(stage, "count", "stage entry", s.count,
                             error) ||
                !requireNumber(stage, "total_ms", "stage entry",
                               s.totalMs, error))
                return false;
            e.stages.push_back(std::move(s));
        }
        const JsonValue *caches =
            requireMember(item, "caches", "suite entry", error);
        if (caches == nullptr)
            return false;
        const JsonValue *schedule =
            requireMember(*caches, "schedule", "\"caches\"", error);
        const JsonValue *a_schedule =
            schedule == nullptr
                ? nullptr
                : requireMember(*caches, "a_schedule", "\"caches\"",
                                error);
        const JsonValue *workset =
            a_schedule == nullptr
                ? nullptr
                : requireMember(*caches, "workset", "\"caches\"",
                                error);
        if (workset == nullptr ||
            !parseCacheObject(*schedule, "\"caches.schedule\"",
                              e.scheduleCache, error) ||
            !parseCacheObject(*a_schedule, "\"caches.a_schedule\"",
                              e.aScheduleCache, error) ||
            !parseCacheObject(*workset, "\"caches.workset\"",
                              e.worksetCache, error))
            return false;
        out.suite.push_back(std::move(e));
    }
    return true;
}

PerfDocument
loadPerfDocument(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open perf document '", path, "'");
    std::ostringstream text;
    text << is.rdbuf();
    PerfDocument doc;
    std::string error;
    if (!parsePerfDocument(text.str(), doc, error))
        fatal("perf document '", path, "': ", error);
    return doc;
}

namespace {

std::string
deltaPercent(double old_value, double new_value)
{
    if (old_value == 0.0)
        return "-";
    const double pct = (new_value - old_value) / old_value * 100.0;
    return (pct >= 0.0 ? "+" : "") + Table::num(pct, 1) + "%";
}

const PerfEntry *
findEntry(const PerfDocument &doc, const std::string &experiment)
{
    for (const auto &e : doc.suite)
        if (e.experiment == experiment)
            return &e;
    return nullptr;
}

const PerfStage *
findStage(const PerfEntry &entry, const std::string &stage)
{
    for (const auto &s : entry.stages)
        if (s.stage == stage)
            return &s;
    return nullptr;
}

/** Old document's order first, new-only names appended after. */
std::vector<std::string>
unionNames(const std::vector<std::string> &old_names,
           const std::vector<std::string> &new_names)
{
    std::vector<std::string> out = old_names;
    for (const auto &name : new_names) {
        bool present = false;
        for (const auto &have : out)
            present = present || have == name;
        if (!present)
            out.push_back(name);
    }
    return out;
}

} // namespace

std::vector<Table>
renderPerfCompare(const PerfDocument &oldDoc, const PerfDocument &newDoc)
{
    std::vector<std::string> old_names;
    std::vector<std::string> new_names;
    for (const auto &e : oldDoc.suite)
        old_names.push_back(e.experiment);
    for (const auto &e : newDoc.suite)
        new_names.push_back(e.experiment);
    const auto experiments = unionNames(old_names, new_names);

    Table summary("Perf comparison (old -> new)",
                  {"experiment", "wall_ms old", "wall_ms new", "delta",
                   "jobs/s old", "jobs/s new", "util old", "util new"});
    for (const auto &name : experiments) {
        const PerfEntry *o = findEntry(oldDoc, name);
        const PerfEntry *n = findEntry(newDoc, name);
        summary.addRow(
            {name,
             o != nullptr ? Table::num(o->wallMs) : "-",
             n != nullptr ? Table::num(n->wallMs) : "-",
             o != nullptr && n != nullptr
                 ? deltaPercent(o->wallMs, n->wallMs)
                 : "-",
             o != nullptr ? Table::num(o->jobsPerSec, 1) : "-",
             n != nullptr ? Table::num(n->jobsPerSec, 1) : "-",
             o != nullptr ? Table::num(o->threadUtilization) : "-",
             n != nullptr ? Table::num(n->threadUtilization) : "-"});
    }

    Table stages("Per-stage wall time (old -> new)",
                 {"experiment", "stage", "total_ms old", "total_ms new",
                  "delta"});
    for (const auto &name : experiments) {
        const PerfEntry *o = findEntry(oldDoc, name);
        const PerfEntry *n = findEntry(newDoc, name);
        std::vector<std::string> old_stages;
        std::vector<std::string> new_stages;
        if (o != nullptr)
            for (const auto &s : o->stages)
                old_stages.push_back(s.stage);
        if (n != nullptr)
            for (const auto &s : n->stages)
                new_stages.push_back(s.stage);
        for (const auto &stage : unionNames(old_stages, new_stages)) {
            const PerfStage *os_ =
                o != nullptr ? findStage(*o, stage) : nullptr;
            const PerfStage *ns_ =
                n != nullptr ? findStage(*n, stage) : nullptr;
            stages.addRow(
                {name, stage,
                 os_ != nullptr ? Table::num(os_->totalMs) : "-",
                 ns_ != nullptr ? Table::num(ns_->totalMs) : "-",
                 os_ != nullptr && ns_ != nullptr
                     ? deltaPercent(os_->totalMs, ns_->totalMs)
                     : "-"});
        }
    }

    return {std::move(summary), std::move(stages)};
}

std::vector<std::string>
perfGateViolations(const PerfDocument &oldDoc, const PerfDocument &newDoc,
                   double tolerance)
{
    std::vector<std::string> violations;
    for (const auto &o : oldDoc.suite) {
        const PerfEntry *n = findEntry(newDoc, o.experiment);
        if (n == nullptr || o.jobsPerSec <= 0.0)
            continue;
        const double floor = o.jobsPerSec * (1.0 - tolerance);
        if (n->jobsPerSec < floor)
            violations.push_back(
                o.experiment + ": jobs_per_sec " +
                Table::num(n->jobsPerSec, 2) + " is below " +
                Table::num(floor, 2) + " (old " +
                Table::num(o.jobsPerSec, 2) + " - " +
                Table::num(tolerance * 100.0, 0) + "% band)");
    }
    return violations;
}

} // namespace griffin
