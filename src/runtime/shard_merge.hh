/**
 * @file
 * Post-hoc merging of fleet-sharded result documents.
 *
 * A fleet run covers one experiment grid with N processes
 * (`griffin_bench run <exp> --grid-shard i/n --out shard_i.jsonl`);
 * each shard emits result rows only, because its slice of the grid
 * cannot render correct aggregate tables.  This module reads the
 * shard .jsonl documents back (common/json.hh), validates that they
 * cover each experiment's expanded job list exactly once and in
 * submission order — disjoint, complete, duplicate-free — and rebuilds
 * the SweepResult the unsharded run would have produced, so the
 * experiment's own render() can produce the aggregate tables after
 * the fact (`griffin_bench merge shard0.jsonl shard1.jsonl ...`).
 *
 * Validation is positional: shard slices are contiguous blocks of the
 * submission order, so concatenating the shard files in shard order
 * must reproduce the expanded job list row for row.  Every mismatch —
 * a missing shard, a duplicated file, a different fidelity or --grid,
 * a stale binary with a different registry — surfaces as a fatal()
 * naming the first divergent row.
 */

#ifndef GRIFFIN_RUNTIME_SHARD_MERGE_HH
#define GRIFFIN_RUNTIME_SHARD_MERGE_HH

#include <string>
#include <vector>

#include "runtime/experiment.hh"
#include "runtime/result_sink.hh"

namespace griffin {

/**
 * Parse the result rows of shard .jsonl documents, concatenated in
 * argument order.  fatal() on unreadable files, malformed JSON, rows
 * missing required fields, or rows without an experiment label
 * (unlabeled documents cannot be validated against the registry).
 * Cache-stats lines are not expected in --out documents and are
 * rejected like any other non-row object.
 */
std::vector<ResultRow>
readShardRows(const std::vector<std::string> &paths);

/**
 * Parse one --out .jsonl line back into the ResultRow the sink
 * serialized.  fatal() on malformed JSON or missing/mistyped fields,
 * naming `where` (a "file:line"-style locator).  Shared by the
 * offline merge path and the fleet coordinator, which validates each
 * worker-streamed row online with the same parser.
 */
ResultRow
parseResultRowLine(const std::string &line, const std::string &where);

/**
 * Check that `row` embodies exactly the expanded `job` of `spec`:
 * same network, architecture, category, grid coordinates, and
 * serialized RunOptions fields.  Returns false with `error` naming
 * the first divergent field; the offline merge wraps the error in a
 * fatal(), the fleet coordinator in a run failure.
 */
bool
validateRowAgainstJob(const ResultRow &row, const SweepSpec &spec,
                      const SweepJob &job, std::string &error);

/** One experiment's reassembled sweep. */
struct MergedExperiment
{
    const Experiment *experiment = nullptr;
    /** The fidelity the shards ran at (reconstructed from the rows). */
    RunOptions run;
    SweepSpec spec;
    SweepResult sweep;
};

/**
 * Group `rows` by experiment (first-appearance order, preserving row
 * order within each group) and validate each group against the
 * experiment's expanded spec: same job count, and per position the
 * same network, architecture, category, grid coordinates, and
 * RunOptions fields.  `gridOverride` must repeat the --grid text the
 * shards ran with (empty for none).  Returns the reassembled sweeps,
 * ready for render(); fatal() on any coverage violation.
 */
std::vector<MergedExperiment>
mergeShardRows(const std::vector<ResultRow> &rows,
               const std::string &gridOverride = "");

} // namespace griffin

#endif // GRIFFIN_RUNTIME_SHARD_MERGE_HH
