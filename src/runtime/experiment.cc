#include "runtime/experiment.hh"

#include <algorithm>
#include <iostream>

#include "common/logging.hh"
#include "common/strings.hh"
#include "runtime/cache_store.hh"
#include "runtime/result_sink.hh"

namespace griffin {

namespace {

std::vector<Experiment> &
registry()
{
    static std::vector<Experiment> experiments;
    return experiments;
}

} // namespace

double
ExperimentContext::archGeomean(std::size_t archIndex) const
{
    GRIFFIN_ASSERT(sweep != nullptr,
                   "archGeomean on a render-only experiment");
    GRIFFIN_ASSERT(archIndex < spec->archs.size(),
                   "archGeomean index out of range");
    return geomeanSpeedup(sweep->slice([&](const SweepJob &job) {
        return job.archIndex == archIndex;
    }));
}

double
ExperimentContext::suiteGeomean(std::size_t archIndex,
                                std::size_t categoryIndex) const
{
    GRIFFIN_ASSERT(sweep != nullptr,
                   "suiteGeomean on a render-only experiment");
    GRIFFIN_ASSERT(archIndex < spec->archs.size() &&
                       categoryIndex < spec->categories.size(),
                   "suiteGeomean index out of range");
    return geomeanSpeedup(sweep->slice([&](const SweepJob &job) {
        return job.archIndex == archIndex &&
               job.categoryIndex == categoryIndex;
    }));
}

double
ExperimentContext::variantGeomean(std::size_t optionsIndex,
                                  std::size_t archIndex,
                                  std::size_t categoryIndex) const
{
    GRIFFIN_ASSERT(sweep != nullptr,
                   "variantGeomean on a render-only experiment");
    GRIFFIN_ASSERT(optionsIndex < spec->optionVariants.size() &&
                       archIndex < spec->archs.size() &&
                       categoryIndex < spec->categories.size(),
                   "variantGeomean index out of range");
    return geomeanSpeedup(sweep->slice([&](const SweepJob &job) {
        return job.optionsIndex == optionsIndex &&
               job.archIndex == archIndex &&
               job.categoryIndex == categoryIndex;
    }));
}

bool
registerExperiment(Experiment experiment)
{
    if (experiment.name.empty())
        fatal("experiment registration needs a name");
    if (!experiment.render)
        fatal("experiment '", experiment.name, "' has no render");
    auto &experiments = registry();
    const auto pos = std::lower_bound(
        experiments.begin(), experiments.end(), experiment,
        [](const Experiment &a, const Experiment &b) {
            return a.name < b.name;
        });
    if (pos != experiments.end() && pos->name == experiment.name)
        fatal("experiment '", experiment.name, "' registered twice");
    experiments.insert(pos, std::move(experiment));
    return true;
}

const std::vector<Experiment> &
experimentRegistry()
{
    return registry();
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const auto &exp : registry())
        if (exp.name == name)
            return &exp;
    return nullptr;
}

namespace {

/** Expand an experiment's plan at its default fidelity (for list/
 *  describe sizing; never simulated). */
SweepSpec
planSpec(const Experiment &exp)
{
    RunOptions run;
    run.sim.sampleFraction = exp.defaultSample;
    run.rowCap = exp.defaultRowCap;
    ExperimentPlan plan = exp.setup(run);
    plan.base.optionVariants = {run};
    return plan.grid.axes().empty()
               ? plan.base
               : plan.grid.toSweepSpec(plan.base);
}

} // namespace

Table
experimentListTable()
{
    Table t("Registered experiments",
            {"name", "jobs", "description"});
    for (const auto &exp : registry()) {
        std::string jobs = "-";
        if (exp.setup)
            jobs = std::to_string(expandSweep(planSpec(exp)).size());
        t.addRow({exp.name, jobs, exp.description});
    }
    return t;
}

std::string
describeExperiment(const Experiment &exp)
{
    std::string out = exp.name + " — " + exp.description + "\n";
    out += "  defaults: --sample " +
           formatShortestDouble(exp.defaultSample) + " --rowcap " +
           std::to_string(exp.defaultRowCap) + "\n";
    if (!exp.setup) {
        out += "  sweep: none (render-only)\n";
        return out;
    }
    RunOptions run;
    run.sim.sampleFraction = exp.defaultSample;
    run.rowCap = exp.defaultRowCap;
    const ExperimentPlan plan = exp.setup(run);
    for (const auto &axis : plan.grid.axes()) {
        out += "  axis " + axis.name + " (" +
               std::to_string(axis.values.size()) + " values):";
        for (const auto &v : axis.values)
            out += " " + v;
        out += "\n";
    }
    const SweepSpec spec = planSpec(exp);
    out += "  grid: " + std::to_string(spec.archs.size()) +
           " archs x " + std::to_string(spec.networks.size()) +
           " networks x " + std::to_string(spec.categories.size()) +
           " categories x " +
           std::to_string(spec.optionVariants.size()) +
           " option variants = " +
           std::to_string(expandSweep(spec).size()) + " jobs";
    if (spec.jobFilter)
        out += " (job filter applied)";
    out += "\n";
    return out;
}

SweepSpec
buildExperimentSpec(const Experiment &exp, const RunOptions &run,
                    const std::string &gridOverride)
{
    if (!exp.setup)
        fatal("experiment '", exp.name,
              "' is render-only and has no sweep spec");
    ExperimentPlan plan = exp.setup(run);
    if (plan.base.optionVariants.size() != 1 ||
        !plan.base.optionCoords.empty())
        fatal("experiment '", exp.name,
              "' setup populated base option variants; RunOptions "
              "sweeps must be grid axes");
    plan.base.optionVariants = {run};
    GridSpec grid = std::move(plan.grid);
    if (!gridOverride.empty()) {
        // Merge the override into the plan's own grid *before*
        // expansion: same-named axes take the override's values in
        // place, new axes append after the plan's — so experiments
        // whose plans already declare RunOptions axes stay
        // overridable, and the merged coordinates stay complete.
        const GridSpec over = GridSpec::parse(gridOverride);
        for (const auto &axis : over.axes())
            for (const auto &locked : plan.lockedAxes)
                if (axis.name == locked)
                    fatal("experiment '", exp.name, "': the '", locked,
                          "' axis is structural (its values and "
                          "order are baked into the rendered "
                          "tables) and cannot be overridden with "
                          "--grid");
        auto overrideValues =
            [&](const std::string &name)
            -> const std::vector<std::string> * {
            for (const auto &axis : over.axes())
                if (axis.name == name)
                    return &axis.values;
            return nullptr;
        };
        GridSpec merged;
        for (const auto &axis : grid.axes()) {
            const auto *replacement = overrideValues(axis.name);
            merged.axis(axis.name, replacement != nullptr
                                       ? *replacement
                                       : axis.values);
        }
        for (const auto &axis : over.axes())
            if (!grid.has(axis.name))
                merged.axis(axis.name, axis.values);
        grid = std::move(merged);
    }
    return grid.axes().empty() ? plan.base : grid.toSweepSpec(plan.base);
}

ExperimentOutcome
runExperiment(const Experiment &exp, const ExperimentRunConfig &config)
{
    ExperimentOutcome outcome;
    ExperimentContext ctx;
    ctx.run = config.run;

    if (exp.setup) {
        SweepSpec spec = buildExperimentSpec(exp, config.run,
                                             config.gridOverride);
        spec.shardLayers = config.layerShard;
        spec.batchArchs = config.batchArchs;
        spec.collectTimings = config.collectTimings;
        spec.shardIndex = config.shardIndex;
        spec.shardCount = config.shardCount;
        outcome.sweep = runSweep(spec, config.threads, config.cache,
                                 config.worksetCache);
        outcome.spec = std::move(spec);
        outcome.hasSweep = true;
        ctx.spec = &outcome.spec;
        ctx.sweep = &outcome.sweep;
    }

    // A shard sees only its slice of the grid, so rendered aggregate
    // tables would silently mix complete and missing slices — sharded
    // runs emit result rows only.
    if (config.shardCount <= 1)
        outcome.tables = exp.render(ctx);
    return outcome;
}

void
addFidelityFlags(Cli &cli)
{
    cli.addDouble("sample", -1.0,
                  "fraction of tiles simulated per layer "
                  "(-1 = the experiment's default)");
    cli.addInt("rowcap", -1,
               "max activation rows simulated per layer "
               "(-1 = the experiment's default)");
    cli.addInt("seed", 1, "tensor generation seed");
    cli.addDouble("lanebias", 0.5,
                  "weight lane-imbalance depth (see sparsity.hh)");
}

RunOptions
resolveFidelity(const Cli &cli, double default_sample,
                std::int64_t default_rowcap)
{
    RunOptions run;
    const double sample = cli.getDouble("sample");
    run.sim.sampleFraction = sample < 0.0 ? default_sample : sample;
    run.sim.minSampledTiles = defaultMinSampledTiles;
    const auto rowcap = cli.getInt("rowcap");
    run.rowCap = rowcap < 0 ? default_rowcap : rowcap;
    run.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    run.weightLaneBias = cli.getDouble("lanebias");
    return run;
}

void
addCacheFlags(Cli &cli)
{
    cli.addString("cache-file", "",
                  "persist preprocessed B schedules to this GRFC file "
                  "(loaded before the run, saved after)");
    cli.addInt("cache-budget-mb", 0,
               "schedule-cache byte budget in MiB (0 = unbounded; "
               "oldest entries evicted FIFO per shard)");
    cli.addString("workset-cache-file", "",
                  "persist generated layer worksets to this GRFW file "
                  "(loaded before the run, saved after)");
    cli.addInt("workset-budget-mb",
               static_cast<std::int64_t>(defaultWorksetByteBudget >>
                                         20),
               "workset-cache byte budget in MiB (0 = unbounded; "
               "worksets hold whole weight matrices, so the default "
               "is bounded)");
}

namespace {

std::uint64_t
budgetFromFlag(const Cli &cli, const char *flag)
{
    const auto budget_mb = cli.getInt(flag);
    if (budget_mb < 0)
        fatal("--", flag, " must be non-negative, got ", budget_mb);
    return static_cast<std::uint64_t>(budget_mb) << 20;
}

} // namespace

void
loadCachesFromFlags(const Cli &cli, ScheduleCache &schedules,
                    WorksetCache &worksets)
{
    const auto schedule_budget = budgetFromFlag(cli, "cache-budget-mb");
    if (schedule_budget > 0)
        schedules.setByteBudget(schedule_budget);
    const auto workset_budget =
        budgetFromFlag(cli, "workset-budget-mb");
    if (workset_budget > 0)
        worksets.setByteBudget(workset_budget);

    const auto schedule_path = cli.getString("cache-file");
    if (!schedule_path.empty())
        inform("schedule cache: loaded ",
               loadCacheFile(schedule_path, schedules),
               " entries from ", schedule_path);
    const auto workset_path = cli.getString("workset-cache-file");
    if (!workset_path.empty())
        inform("workset cache: loaded ",
               loadWorksetCacheFile(workset_path, worksets),
               " entries from ", workset_path);
}

void
saveCachesFromFlags(const Cli &cli, const ScheduleCache &schedules,
                    const WorksetCache &worksets)
{
    const auto schedule_path = cli.getString("cache-file");
    if (!schedule_path.empty()) {
        inform("schedule cache: stored ",
               saveCacheFile(schedule_path, schedules), " entries to ",
               schedule_path);
        writeCacheStatsJsonLine(std::cout, schedules.stats());
    }
    const auto workset_path = cli.getString("workset-cache-file");
    if (!workset_path.empty()) {
        inform("workset cache: stored ",
               saveWorksetCacheFile(workset_path, worksets),
               " entries to ", workset_path);
        writeCacheStatsJsonLine(std::cout, worksets.stats(),
                                "workset_cache_stats");
    }
}

void
parseShardSpec(const std::string &text, std::size_t &index,
               std::size_t &count)
{
    index = 0;
    count = 1;
    if (text.empty())
        return;
    const auto slash = text.find('/');
    bool ok = slash != std::string::npos && slash > 0 &&
              slash + 1 < text.size();
    std::size_t i = 0;
    std::size_t n = 0;
    if (ok) {
        try {
            std::size_t pos = 0;
            i = std::stoul(text.substr(0, slash), &pos);
            ok = pos == slash;
            std::size_t pos2 = 0;
            const auto rest = text.substr(slash + 1);
            n = std::stoul(rest, &pos2);
            ok = ok && pos2 == rest.size();
        } catch (...) {
            ok = false;
        }
    }
    if (!ok || n == 0 || i >= n)
        fatal("--grid-shard '", text,
              "' is not of the form i/n with 0 <= i < n");
    index = i;
    count = n;
}

} // namespace griffin
