/**
 * @file
 * Declarative experiment registry: the paper's figures, tables, and
 * ablations as data, executed by one driver.
 *
 * The repo used to ship one hand-written bench `main()` per paper
 * artifact, each re-implementing flag parsing, serial grid walking,
 * and table/sink plumbing.  An Experiment instead *describes* the
 * artifact:
 *
 *   - `setup` builds an ExperimentPlan — a GridSpec plus the base
 *     SweepSpec it expands over — from the resolved RunOptions.  The
 *     driver expands the plan and executes it through runSweep, so
 *     every registered experiment is parallel (`--threads`), cache-
 *     aware (`--cache-file`), and fleet-shardable (`--grid-shard i/n`)
 *     for free.  A null setup declares a render-only experiment (the
 *     static paper tables) that runs no sweep.
 *
 *   - `render` reduces the merged SweepResult into the experiment's
 *     Table(s).  SweepResult::slice plus the ExperimentContext geomean
 *     helpers are the reduce primitives; render never re-runs
 *     anything, so its output is a pure function of the sweep.
 *
 * Registration happens at static-init time from bench/experiments/
 * translation units:
 *
 *   const bool registered = registerExperiment({
 *       "fig5", "Fig. 5: Sparse.B design space",
 *       0.02, 32, setup, render});
 *
 * and `griffin_bench list | describe <name> | run <name...|--all>` is
 * the single driver over the registry.  The registry is kept sorted by
 * name so list/run order is deterministic regardless of static-init
 * order across translation units.
 */

#ifndef GRIFFIN_RUNTIME_EXPERIMENT_HH
#define GRIFFIN_RUNTIME_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "runtime/grid.hh"
#include "runtime/runner.hh"

namespace griffin {

/**
 * What an experiment's sweep covers: named grid axes expanded over a
 * base spec.  The grid may be empty (a hand-built base is enough, e.g.
 * non-rectangular sweeps via SweepSpec::jobFilter); the base's
 * optionVariants are overwritten by the driver with the resolved
 * fidelity options, so setup must not populate them — RunOptions
 * sweeps are declared as grid axes.
 */
struct ExperimentPlan
{
    GridSpec grid;
    SweepSpec base;
    /**
     * Axes this experiment's render depends on structurally — fixed
     * arch/category indices, hard-coded labels, or a jobFilter keyed
     * to the declared order.  A --grid override naming one is a
     * fatal() user error rather than a silently mislabeled (or
     * out-of-bounds) table.  Axes not listed here merge freely: an
     * override replaces the values of a same-named plan axis and
     * appends new axes after the plan's own.
     */
    std::vector<std::string> lockedAxes;
};

/** Everything render() may read. */
struct ExperimentContext
{
    /** Resolved fidelity options (seed, sample, rowcap, lane bias). */
    RunOptions run;
    /** Expanded spec / merged results; null for render-only
     *  experiments. */
    const SweepSpec *spec = nullptr;
    const SweepResult *sweep = nullptr;

    /** Geomean speedup over every network of one architecture (all
     *  categories and variants) — Fig. 5/6's per-config aggregate. */
    double archGeomean(std::size_t archIndex) const;

    /** Geomean speedup over every network of (arch, category) — the
     *  old per-bench suiteSpeedup() aggregate. */
    double suiteGeomean(std::size_t archIndex,
                        std::size_t categoryIndex) const;

    /** Geomean speedup of (options variant, arch, category). */
    double variantGeomean(std::size_t optionsIndex,
                          std::size_t archIndex,
                          std::size_t categoryIndex) const;
};

/**
 * One registered experiment.  `name` is the registry key (and the
 * `run` subcommand argument); defaults are the fidelity the paper
 * artifact was tuned at, used when the driver's --sample/--rowcap are
 * left at their sentinel.
 */
struct Experiment
{
    std::string name;
    std::string description;
    double defaultSample = 0.04;
    std::int64_t defaultRowCap = 48;
    /** Build the sweep plan; null = render-only (no sweep). */
    std::function<ExperimentPlan(const RunOptions &)> setup;
    /** Reduce + render: the experiment's tables, print order. */
    std::function<std::vector<Table>(const ExperimentContext &)> render;
};

/**
 * Register one experiment.  fatal() on an empty or duplicate name or a
 * null render.  Returns true so static-init registration can bind the
 * result (`const bool registered = registerExperiment(...)`).
 */
bool registerExperiment(Experiment experiment);

/** Registered experiments, sorted by name. */
const std::vector<Experiment> &experimentRegistry();

/** Lookup by name; null when absent. */
const Experiment *findExperiment(const std::string &name);

/** The `list` subcommand's table: name, sweep size, description. */
Table experimentListTable();

/**
 * The `describe <name>` text: description, default fidelity, grid
 * axes, and expanded job count (at default options).
 */
std::string describeExperiment(const Experiment &experiment);

/** Execution knobs the driver resolves from its flags. */
struct ExperimentRunConfig
{
    RunOptions run;
    int threads = 1;
    bool layerShard = false;
    /** Batch multiple GEMMs per job: one sub-job per layer sweeps
     *  every architecture of a (network, category, options) grid
     *  point, so worksets generate once per point (see
     *  SweepSpec::batchArchs).  Bit-identical results. */
    bool batchArchs = false;
    /** Wall-clock every job so sinks can emit elapsed_ms rows
     *  (--timings; see SweepSpec::collectTimings). */
    bool collectTimings = false;
    /** Fleet shard (--grid-shard i/n); (0, 1) runs everything. */
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    /** --grid override text, applied over the experiment's expanded
     *  spec (empty = none). */
    std::string gridOverride;
    /** Shared schedule cache; null = per-run cache. */
    ScheduleCache *cache = nullptr;
    /** Shared workset cache; null = per-run cache. */
    WorksetCache *worksetCache = nullptr;
};

/** One experiment's executed outcome. */
struct ExperimentOutcome
{
    bool hasSweep = false;
    SweepSpec spec;
    SweepResult sweep;
    /** Rendered tables, print order.  Empty for sharded runs: a shard
     *  holds only its slice of the grid, so aggregate tables would be
     *  wrong — sharded runs emit result rows, not tables. */
    std::vector<Table> tables;
};

/**
 * Expand one experiment's plan into the sweep spec it runs: setup at
 * the resolved fidelity, the --grid override merged over the plan's
 * own axes (same-named unlocked axes replaced in place, new axes
 * appended), and the grid expanded onto the base.  No sharding or
 * batching fields are set — runExperiment applies those; the merge
 * subcommand re-derives shard expectations from the same spec.
 * fatal() on a render-only experiment (no setup).
 */
SweepSpec buildExperimentSpec(const Experiment &experiment,
                              const RunOptions &run,
                              const std::string &gridOverride = "");

/**
 * Execute one experiment: expand its plan (grid override, fleet
 * sharding, layer sharding, arch batching applied), run the sweep on
 * the pool, and render.  Render-only experiments skip straight to
 * render.
 */
ExperimentOutcome runExperiment(const Experiment &experiment,
                                const ExperimentRunConfig &config);

/**
 * Fidelity floor applied by every driver-resolved RunOptions: the
 * minimum tiles simulated per layer regardless of --sample.  The shard
 * merger reconstructs run options from serialized rows, which do not
 * carry this field, so both sides must share the one constant.
 */
constexpr std::int64_t defaultMinSampledTiles = 4;

/**
 * Declare the shared fidelity flags (--sample, --rowcap, --seed,
 * --lanebias).  `sample`/`rowcap` default to -1, the "use the
 * experiment's default" sentinel, so one flag set serves experiments
 * with different tuned fidelities.
 */
void addFidelityFlags(Cli &cli);

/**
 * Read the fidelity flags back, substituting `default_sample` /
 * `default_rowcap` where the sentinel was left untouched.
 */
RunOptions resolveFidelity(const Cli &cli, double default_sample,
                           std::int64_t default_rowcap);

/**
 * Parse a `--grid-shard` value "i/n" (0 <= i < n); fatal() with the
 * expected form otherwise.  Empty text means unsharded (0, 1).
 */
void parseShardSpec(const std::string &text, std::size_t &index,
                    std::size_t &count);

/**
 * Declare the shared cache persistence/budget flags (--cache-file,
 * --cache-budget-mb, --workset-cache-file, --workset-budget-mb), the
 * same set for every sweep driver.
 */
void addCacheFlags(Cli &cli);

/**
 * Read the cache flags back: validate and apply the byte budgets and
 * load any cache files into the caller's caches (inform() per load).
 * fatal() on a negative budget.
 */
void loadCachesFromFlags(const Cli &cli, ScheduleCache &schedules,
                         WorksetCache &worksets);

/**
 * The save half: store each cache to its flagged file (when given) and
 * print its machine-readable stats line on stdout — "cache_stats" for
 * the schedule cache, then "workset_cache_stats" — the lines CI and
 * the cache ctests assert warm-run load_hits on.  Call after flushing
 * result sinks: a fatal() on an unwritable cache path must not
 * discard completed sweeps.
 */
void saveCachesFromFlags(const Cli &cli, const ScheduleCache &schedules,
                         const WorksetCache &worksets);

} // namespace griffin

#endif // GRIFFIN_RUNTIME_EXPERIMENT_HH
