/**
 * @file
 * Named-axis experiment grids: the declarative face of the sweep
 * runner.
 *
 * A GridSpec is a list of ParamAxis entries, each addressing one sweep
 * dimension by name — the three identity axes (`arch`, `network`,
 * `category`) plus the RunOptions fields sparse-optimization studies
 * sweep (`weight_lane_bias`, `act_run_length`, `sample_fraction`,
 * `row_cap`, `seed`, `enforce_dram_bound`).  It replaces hand-built
 * `std::vector<RunOptions>` variant lists: the grid expands onto a
 * SweepSpec, and every expanded variant carries its AxisCoordinate
 * record, so result rows written by the sinks are self-describing.
 *
 * Build one from the compact text syntax (the `--grid` flag):
 *
 *   weight_lane_bias=0:1:0.25,seed=1..8,arch=Griffin,Sparse.B*
 *
 * Items are comma-separated; an item containing '=' starts a new axis
 * and items without '=' extend the previous axis's value list (so
 * comma lists of names need no extra quoting).  Separators inside
 * parentheses do not split, so routing-spec architecture names like
 * `B(2,0,0,off)` work as arch values.  Numeric axes accept three value
 * forms: a literal (`0.5`), an inclusive integer range (`1..8`), and
 * an inclusive stepped range (`lo:hi:step`).
 *
 * Or from the builder API:
 *
 *   GridSpec grid;
 *   grid.axis("arch", {"Griffin", "Sparse.B*"})
 *       .axis("category", {"b", "ab"})
 *       .axis("weight_lane_bias", {0.25, 0.75});
 *   SweepSpec spec = grid.toSweepSpec(base);
 *
 * Expansion is a cartesian product in deterministic axis order:
 * RunOptions axes multiply out in declaration order (first axis
 * outermost) into SweepSpec::optionVariants, and expandSweep() then
 * nests (options, arch, network, category) exactly as before — so a
 * grid-driven sweep keeps the runner's bit-identical parallel/serial
 * merge.
 *
 * Every malformed input is a fatal() with a real diagnostic: unknown
 * axis names suggest the nearest valid name, malformed ranges and
 * unparsable values report the offending token.
 */

#ifndef GRIFFIN_RUNTIME_GRID_HH
#define GRIFFIN_RUNTIME_GRID_HH

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "runtime/runner.hh"

namespace griffin {

/** One named sweep axis: canonical name + value tokens in sweep order. */
struct ParamAxis
{
    std::string name;
    std::vector<std::string> values;
};

class GridSpec
{
  public:
    GridSpec() = default;

    /** Parse the compact text syntax (see file comment); fatal() with
     *  a diagnostic on any malformed item. */
    static GridSpec parse(const std::string &text);

    /**
     * Append one axis.  The name must be a known axis (else fatal()
     * suggests the nearest valid name), may not repeat, and every
     * value token is validated — and range tokens expanded — up front,
     * so errors surface at declaration, not mid-sweep.  Returns *this
     * for chaining.
     */
    GridSpec &axis(const std::string &name,
                   std::vector<std::string> values);

    /** Numeric convenience: axis("weight_lane_bias", {0.25, 0.75}). */
    GridSpec &axis(const std::string &name,
                   std::initializer_list<double> values);

    /** Axes in declaration order (value tokens already expanded). */
    const std::vector<ParamAxis> &axes() const { return axes_; }

    bool has(const std::string &name) const;

    /** Product of all axis value counts (1 for an empty grid). */
    std::size_t pointCount() const;

    /**
     * Expand onto a sweep spec.  `base` supplies every axis the grid
     * does not name: its archs/networks/categories survive unless an
     * `arch`/`network`/`category` axis overrides them, and its single
     * RunOptions variant (exactly one, or fatal()) seeds the fields
     * the RunOptions axes do not touch.  The result's optionVariants
     * is the cartesian product of the RunOptions axes in declaration
     * order (first axis outermost), with optionCoords recording each
     * variant's (axis, value) coordinates.
     */
    SweepSpec toSweepSpec(const SweepSpec &base) const;

    /** All valid axis names, declaration order (for help text). */
    static std::vector<std::string> axisNames();

  private:
    std::vector<ParamAxis> axes_;
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_GRID_HH
