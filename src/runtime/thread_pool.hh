/**
 * @file
 * Work-stealing thread pool for the experiment runner.
 *
 * Each worker owns a deque: it pops its own work LIFO (hot caches) and
 * steals FIFO from a victim when empty (oldest jobs first, so long
 * sweeps drain from the front).  Submission round-robins across the
 * worker deques, which spreads a burst of jobs without a global queue
 * becoming the contention point.
 *
 * Scheduling order is *not* deterministic — any worker may run any
 * job.  Determinism is the runner's problem, and it solves it by
 * giving every job an order-independent seed and merging results by
 * submission index (runner.hh).
 */

#ifndef GRIFFIN_RUNTIME_THREAD_POOL_HH
#define GRIFFIN_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hh"

namespace griffin {

class ThreadPool
{
  public:
    /**
     * Spawn `threads` workers (>= 1; fatal() on 0 or negative).
     * hardwareThreads() is the usual argument.
     */
    explicit ThreadPool(int threads);

    /** Drains every pending job, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue one job.  Jobs must not throw (the library reports
     * errors via fatal()/panic()); an escaping exception terminates.
     * Submitting after shutdown began is a panic().
     */
    void submit(std::function<void()> job);

    /** Block until every job submitted so far has finished. */
    void wait();

    /** Jobs submitted but not yet finished (racy; for status lines). */
    std::size_t pendingJobs() const;

    /**
     * Execution totals since construction.  Reads are racy relaxed
     * loads — call after wait() for a settled view.  busyNs is summed
     * job wall-time across workers; busyNs / (threads * sweep wall)
     * gives utilization.
     */
    struct Stats
    {
        std::uint64_t executed = 0; ///< jobs run to completion
        std::uint64_t steals = 0;   ///< jobs taken from another deque
        std::uint64_t busyNs = 0;   ///< summed job wall-time
    };

    Stats stats() const;

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

  private:
    struct Worker
    {
        mutable Mutex mu;
        std::deque<std::function<void()>> jobs GRIFFIN_GUARDED_BY(mu);
    };

    bool popOwn(std::size_t self, std::function<void()> &job);
    bool steal(std::size_t self, std::function<void()> &job);
    void workerLoop(std::size_t self);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> busyNs_{0};

    mutable Mutex mu_;
    CondVar workCv_; ///< workers sleep here
    CondVar idleCv_; ///< wait() sleeps here
    /** Submitted minus completed. */
    std::size_t unfinished_ GRIFFIN_GUARDED_BY(mu_) = 0;
    /** Submitted minus started. */
    std::size_t queued_ GRIFFIN_GUARDED_BY(mu_) = 0;
    /** Round-robin submit cursor. */
    std::size_t nextWorker_ GRIFFIN_GUARDED_BY(mu_) = 0;
    bool stopping_ GRIFFIN_GUARDED_BY(mu_) = false;
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_THREAD_POOL_HH
