#include "runtime/runner.hh"

#include <atomic>
#include <map>
#include <memory>
#include <tuple>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/telemetry.hh"
#include "runtime/thread_pool.hh"

namespace griffin {

std::string
coordsLabel(const std::vector<AxisCoordinate> &coords)
{
    std::string out;
    for (const auto &c : coords) {
        if (!out.empty())
            out += ' ';
        out += c.axis + '=' + c.value;
    }
    return out;
}

std::size_t
SweepSpec::jobCount() const
{
    return archs.size() * networks.size() * categories.size() *
           optionVariants.size();
}

void
SweepSpec::validate() const
{
    if (archs.empty())
        fatal("sweep spec has no architectures");
    if (networks.empty())
        fatal("sweep spec has no networks");
    if (categories.empty())
        fatal("sweep spec has no categories");
    if (optionVariants.empty())
        fatal("sweep spec has no RunOptions variants");
    if (!optionCoords.empty() &&
        optionCoords.size() != optionVariants.size())
        fatal("sweep spec has ", optionCoords.size(),
              " axis-coordinate records for ", optionVariants.size(),
              " RunOptions variants (must match, or be empty)");
    if (shardCount == 0)
        fatal("sweep shard count must be positive");
    if (shardIndex >= shardCount)
        fatal("sweep shard index ", shardIndex, " out of range for ",
              shardCount, " shards (need 0 <= i < n)");
    for (const auto &arch : archs)
        arch.validate();
    for (const auto &net : networks)
        net.validate();
}

std::vector<SweepJob>
expandSweep(const SweepSpec &spec)
{
    spec.validate();
    std::vector<SweepJob> jobs;
    jobs.reserve(spec.jobCount());
    for (std::size_t o = 0; o < spec.optionVariants.size(); ++o) {
        for (std::size_t a = 0; a < spec.archs.size(); ++a) {
            for (std::size_t n = 0; n < spec.networks.size(); ++n) {
                for (std::size_t c = 0; c < spec.categories.size();
                     ++c) {
                    SweepJob job;
                    job.archIndex = a;
                    job.networkIndex = n;
                    job.categoryIndex = c;
                    job.optionsIndex = o;
                    job.options = spec.optionVariants[o];
                    if (!spec.optionCoords.empty())
                        job.coords = spec.optionCoords[o];
                    if (spec.perArchSeeds)
                        job.options.seed = Rng::mixSeed(
                            job.options.seed, spec.archs[a].name);
                    if (spec.jobFilter && !spec.jobFilter(job))
                        continue;
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    if (spec.shardCount > 1) {
        // Contiguous blocks, not modulo striping: concatenating the
        // shards' job lists in shard order must reproduce the
        // unsharded submission order byte-for-byte.
        const std::size_t total = jobs.size();
        const std::size_t lo = total * spec.shardIndex / spec.shardCount;
        const std::size_t hi =
            total * (spec.shardIndex + 1) / spec.shardCount;
        jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(hi),
                   jobs.end());
        jobs.erase(jobs.begin(),
                   jobs.begin() + static_cast<std::ptrdiff_t>(lo));
    }
    if (spec.rangeBegin != 0 || spec.rangeEnd != SweepSpec::rangeNpos) {
        // Explicit lease slice.  Bounds outside the expanded list mean
        // the leasing coordinator and this process expanded different
        // grids — fail loudly rather than silently running a wrong or
        // empty slice.
        const std::size_t hi = spec.rangeEnd == SweepSpec::rangeNpos
                                   ? jobs.size()
                                   : spec.rangeEnd;
        if (hi > jobs.size() || spec.rangeBegin > hi)
            fatal("sweep job range [", spec.rangeBegin, ", ", hi,
                  ") out of bounds for ", jobs.size(),
                  " expanded jobs — coordinator and worker expanded "
                  "different grids?");
        jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(hi),
                   jobs.end());
        jobs.erase(jobs.begin(),
                   jobs.begin() +
                       static_cast<std::ptrdiff_t>(spec.rangeBegin));
    }
    return jobs;
}

SweepResult
runSweep(const SweepSpec &spec, int threads, ScheduleCache *cache,
         WorksetCache *worksets)
{
    auto jobs = expandSweep(spec);

    std::unique_ptr<ScheduleCache> owned_cache;
    if (cache == nullptr) {
        owned_cache = std::make_unique<ScheduleCache>();
        cache = owned_cache.get();
    }
    std::unique_ptr<WorksetCache> owned_worksets;
    if (worksets == nullptr) {
        // Bounded by default: worksets hold whole weight matrices, and
        // an unbounded per-sweep cache would retain every generated
        // tensor until the sweep ends.  Callers wanting a different
        // bound (or none) pass their own cache.
        owned_worksets = std::make_unique<WorksetCache>();
        owned_worksets->setByteBudget(defaultWorksetByteBudget);
        worksets = owned_worksets.get();
    }
    // A-side arbiter schedules are cheap to persist but small to win
    // from across processes; share them per sweep only.
    AScheduleCache a_cache;

    const auto jobOptions = [&](const SweepJob &job) {
        RunOptions opt = job.options;
        opt.sim.scheduleCache = cache;
        opt.sim.aScheduleCache = &a_cache;
        opt.worksetCache = worksets;
        return opt;
    };

    // One Accelerator per architecture, shared read-only by every job.
    std::vector<Accelerator> accelerators;
    accelerators.reserve(spec.archs.size());
    for (const auto &arch : spec.archs)
        accelerators.emplace_back(arch);

    // Per-job wall-time accumulators (--timings).  Atomics because a
    // batched sub-job adds into several jobs' slots from one worker
    // while other workers add into the same job from other layers.
    std::unique_ptr<std::atomic<std::int64_t>[]> job_ns;
    if (spec.collectTimings) {
        job_ns =
            std::make_unique<std::atomic<std::int64_t>[]>(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            job_ns[i].store(0, std::memory_order_relaxed);
    }
    const auto timeInto = [&job_ns](std::size_t i, auto &&body) {
        if (job_ns == nullptr) {
            body();
            return;
        }
        const std::uint64_t start = monotonicNowNs();
        body();
        job_ns[i].fetch_add(
            static_cast<std::int64_t>(monotonicNowNs() - start),
            std::memory_order_relaxed);
    };

    const std::uint64_t sweep_start_ns = monotonicNowNs();
    ThreadPool::Stats pool_stats;

    // Each (sub-)job writes only its own slot: no result lock needed,
    // and the merge is the identity — submission order is result order.
    std::vector<NetworkResult> results(jobs.size());
    if (spec.batchArchs) {
        // Batched multi-GEMM jobs: group the jobs of one (network,
        // category, options) grid point — the arch axis — in
        // submission order, then run one sub-job per (batch, layer)
        // that sweeps every architecture of the batch over that
        // layer's workset while it is warm in the cache.
        std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
                 std::size_t>
            batch_of;
        std::vector<std::vector<std::size_t>> batches;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const auto key =
                std::make_tuple(jobs[i].networkIndex,
                                jobs[i].categoryIndex,
                                jobs[i].optionsIndex);
            auto [it, fresh] =
                batch_of.emplace(key, batches.size());
            if (fresh)
                batches.emplace_back();
            batches[it->second].push_back(i);
        }
        std::vector<std::vector<LayerResult>> layer_results(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            layer_results[i].resize(
                spec.networks[jobs[i].networkIndex].layerCount());
        {
            ThreadPool pool(threads);
            for (const auto &batch : batches) {
                const auto layer_count =
                    layer_results[batch.front()].size();
                for (std::size_t l = 0; l < layer_count; ++l) {
                    pool.submit([&spec, &jobs, &accelerators,
                                 &layer_results, &jobOptions, &batch,
                                 &timeInto, l] {
                        for (const std::size_t i : batch) {
                            const SweepJob &job = jobs[i];
                            timeInto(i, [&] {
                                layer_results[i][l] =
                                    accelerators[job.archIndex]
                                        .runLayer(
                                            spec.networks
                                                [job.networkIndex],
                                            l,
                                            spec.categories
                                                [job.categoryIndex],
                                            jobOptions(job));
                            });
                        }
                    });
                }
            }
            pool.wait();
            pool_stats = pool.stats();
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SweepJob &job = jobs[i];
            results[i] = accelerators[job.archIndex].reduceLayers(
                spec.networks[job.networkIndex],
                spec.categories[job.categoryIndex],
                std::move(layer_results[i]), jobOptions(job));
        }
    } else if (spec.shardLayers) {
        // Layer granularity: one sub-job per (job, layer) pair, all
        // independent (runLayer derives its stream from the layer index
        // alone), reduced per job in layer order afterwards.
        std::vector<std::vector<LayerResult>> layer_results(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            layer_results[i].resize(
                spec.networks[jobs[i].networkIndex].layerCount());
        {
            ThreadPool pool(threads);
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const auto layer_count = layer_results[i].size();
                for (std::size_t l = 0; l < layer_count; ++l) {
                    pool.submit([&spec, &jobs, &accelerators,
                                 &layer_results, &jobOptions, &timeInto,
                                 i, l] {
                        const SweepJob &job = jobs[i];
                        timeInto(i, [&] {
                            layer_results[i][l] =
                                accelerators[job.archIndex].runLayer(
                                    spec.networks[job.networkIndex], l,
                                    spec.categories[job.categoryIndex],
                                    jobOptions(job));
                        });
                    });
                }
            }
            pool.wait();
            pool_stats = pool.stats();
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SweepJob &job = jobs[i];
            results[i] = accelerators[job.archIndex].reduceLayers(
                spec.networks[job.networkIndex],
                spec.categories[job.categoryIndex],
                std::move(layer_results[i]), jobOptions(job));
        }
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&spec, &jobs, &accelerators, &results,
                         &jobOptions, &timeInto, i] {
                const SweepJob &job = jobs[i];
                timeInto(i, [&] {
                    results[i] = accelerators[job.archIndex].run(
                        spec.networks[job.networkIndex],
                        spec.categories[job.categoryIndex],
                        jobOptions(job));
                });
            });
        }
        pool.wait();
        pool_stats = pool.stats();
    }

    const std::uint64_t sweep_ns = monotonicNowNs() - sweep_start_ns;

    std::vector<double> job_elapsed_ms;
    if (job_ns != nullptr) {
        job_elapsed_ms.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            job_elapsed_ms.push_back(
                static_cast<double>(
                    job_ns[i].load(std::memory_order_relaxed)) /
                1e6);
    }

    // Publish the sweep's execution profile to the process registry —
    // the one source of truth the `--stats` line and `griffin_bench
    // perf` both read.  Pure observation: nothing below feeds back into
    // a result.
    {
        MetricsRegistry &reg = MetricsRegistry::instance();
        const double wall_ms = static_cast<double>(sweep_ns) / 1e6;
        const double wall_s = static_cast<double>(sweep_ns) / 1e9;
        reg.gauge("sweep.jobs").set(static_cast<double>(jobs.size()));
        reg.gauge("sweep.wall_ms").set(wall_ms);
        reg.gauge("sweep.jobs_per_sec")
            .set(wall_s > 0.0
                     ? static_cast<double>(jobs.size()) / wall_s
                     : 0.0);
        reg.gauge("pool.threads").set(static_cast<double>(threads));
        reg.gauge("pool.executed_jobs")
            .set(static_cast<double>(pool_stats.executed));
        reg.gauge("pool.steals")
            .set(static_cast<double>(pool_stats.steals));
        reg.gauge("pool.busy_ms")
            .set(static_cast<double>(pool_stats.busyNs) / 1e6);
        const double capacity_ns =
            static_cast<double>(sweep_ns) * threads;
        reg.gauge("pool.utilization")
            .set(capacity_ns > 0.0
                     ? static_cast<double>(pool_stats.busyNs) /
                           capacity_ns
                     : 0.0);
        reg.publishCacheStats("schedule_cache", cache->stats());
        reg.publishCacheStats("a_schedule_cache", a_cache.stats());
        reg.publishCacheStats("workset_cache", worksets->stats());
        if (!job_elapsed_ms.empty()) {
            Histogram &h = reg.histogram("pool.job_us");
            for (const double ms : job_elapsed_ms)
                h.record(static_cast<std::uint64_t>(ms * 1e3));
        }
    }

    return SweepResult(std::move(jobs), std::move(results),
                       cache->stats(), worksets->stats(),
                       a_cache.stats(), std::move(job_elapsed_ms));
}

} // namespace griffin
