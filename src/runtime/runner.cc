#include "runtime/runner.hh"

#include <map>
#include <memory>
#include <tuple>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/thread_pool.hh"

namespace griffin {

std::string
coordsLabel(const std::vector<AxisCoordinate> &coords)
{
    std::string out;
    for (const auto &c : coords) {
        if (!out.empty())
            out += ' ';
        out += c.axis + '=' + c.value;
    }
    return out;
}

std::size_t
SweepSpec::jobCount() const
{
    return archs.size() * networks.size() * categories.size() *
           optionVariants.size();
}

void
SweepSpec::validate() const
{
    if (archs.empty())
        fatal("sweep spec has no architectures");
    if (networks.empty())
        fatal("sweep spec has no networks");
    if (categories.empty())
        fatal("sweep spec has no categories");
    if (optionVariants.empty())
        fatal("sweep spec has no RunOptions variants");
    if (!optionCoords.empty() &&
        optionCoords.size() != optionVariants.size())
        fatal("sweep spec has ", optionCoords.size(),
              " axis-coordinate records for ", optionVariants.size(),
              " RunOptions variants (must match, or be empty)");
    if (shardCount == 0)
        fatal("sweep shard count must be positive");
    if (shardIndex >= shardCount)
        fatal("sweep shard index ", shardIndex, " out of range for ",
              shardCount, " shards (need 0 <= i < n)");
    for (const auto &arch : archs)
        arch.validate();
    for (const auto &net : networks)
        net.validate();
}

std::vector<SweepJob>
expandSweep(const SweepSpec &spec)
{
    spec.validate();
    std::vector<SweepJob> jobs;
    jobs.reserve(spec.jobCount());
    for (std::size_t o = 0; o < spec.optionVariants.size(); ++o) {
        for (std::size_t a = 0; a < spec.archs.size(); ++a) {
            for (std::size_t n = 0; n < spec.networks.size(); ++n) {
                for (std::size_t c = 0; c < spec.categories.size();
                     ++c) {
                    SweepJob job;
                    job.archIndex = a;
                    job.networkIndex = n;
                    job.categoryIndex = c;
                    job.optionsIndex = o;
                    job.options = spec.optionVariants[o];
                    if (!spec.optionCoords.empty())
                        job.coords = spec.optionCoords[o];
                    if (spec.perArchSeeds)
                        job.options.seed = Rng::mixSeed(
                            job.options.seed, spec.archs[a].name);
                    if (spec.jobFilter && !spec.jobFilter(job))
                        continue;
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    if (spec.shardCount > 1) {
        // Contiguous blocks, not modulo striping: concatenating the
        // shards' job lists in shard order must reproduce the
        // unsharded submission order byte-for-byte.
        const std::size_t total = jobs.size();
        const std::size_t lo = total * spec.shardIndex / spec.shardCount;
        const std::size_t hi =
            total * (spec.shardIndex + 1) / spec.shardCount;
        jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(hi),
                   jobs.end());
        jobs.erase(jobs.begin(),
                   jobs.begin() + static_cast<std::ptrdiff_t>(lo));
    }
    return jobs;
}

SweepResult
runSweep(const SweepSpec &spec, int threads, ScheduleCache *cache,
         WorksetCache *worksets)
{
    auto jobs = expandSweep(spec);

    std::unique_ptr<ScheduleCache> owned_cache;
    if (cache == nullptr) {
        owned_cache = std::make_unique<ScheduleCache>();
        cache = owned_cache.get();
    }
    std::unique_ptr<WorksetCache> owned_worksets;
    if (worksets == nullptr) {
        // Bounded by default: worksets hold whole weight matrices, and
        // an unbounded per-sweep cache would retain every generated
        // tensor until the sweep ends.  Callers wanting a different
        // bound (or none) pass their own cache.
        owned_worksets = std::make_unique<WorksetCache>();
        owned_worksets->setByteBudget(defaultWorksetByteBudget);
        worksets = owned_worksets.get();
    }
    // A-side arbiter schedules are cheap to persist but small to win
    // from across processes; share them per sweep only.
    AScheduleCache a_cache;

    const auto jobOptions = [&](const SweepJob &job) {
        RunOptions opt = job.options;
        opt.sim.scheduleCache = cache;
        opt.sim.aScheduleCache = &a_cache;
        opt.worksetCache = worksets;
        return opt;
    };

    // One Accelerator per architecture, shared read-only by every job.
    std::vector<Accelerator> accelerators;
    accelerators.reserve(spec.archs.size());
    for (const auto &arch : spec.archs)
        accelerators.emplace_back(arch);

    // Each (sub-)job writes only its own slot: no result lock needed,
    // and the merge is the identity — submission order is result order.
    std::vector<NetworkResult> results(jobs.size());
    if (spec.batchArchs) {
        // Batched multi-GEMM jobs: group the jobs of one (network,
        // category, options) grid point — the arch axis — in
        // submission order, then run one sub-job per (batch, layer)
        // that sweeps every architecture of the batch over that
        // layer's workset while it is warm in the cache.
        std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
                 std::size_t>
            batch_of;
        std::vector<std::vector<std::size_t>> batches;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const auto key =
                std::make_tuple(jobs[i].networkIndex,
                                jobs[i].categoryIndex,
                                jobs[i].optionsIndex);
            auto [it, fresh] =
                batch_of.emplace(key, batches.size());
            if (fresh)
                batches.emplace_back();
            batches[it->second].push_back(i);
        }
        std::vector<std::vector<LayerResult>> layer_results(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            layer_results[i].resize(
                spec.networks[jobs[i].networkIndex].layers.size());
        {
            ThreadPool pool(threads);
            for (const auto &batch : batches) {
                const auto layer_count =
                    layer_results[batch.front()].size();
                for (std::size_t l = 0; l < layer_count; ++l) {
                    pool.submit([&spec, &jobs, &accelerators,
                                 &layer_results, &jobOptions, &batch,
                                 l] {
                        for (const std::size_t i : batch) {
                            const SweepJob &job = jobs[i];
                            layer_results[i][l] =
                                accelerators[job.archIndex].runLayer(
                                    spec.networks[job.networkIndex], l,
                                    spec.categories[job.categoryIndex],
                                    jobOptions(job));
                        }
                    });
                }
            }
            pool.wait();
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SweepJob &job = jobs[i];
            results[i] = accelerators[job.archIndex].reduceLayers(
                spec.networks[job.networkIndex],
                spec.categories[job.categoryIndex],
                std::move(layer_results[i]));
        }
    } else if (spec.shardLayers) {
        // Layer granularity: one sub-job per (job, layer) pair, all
        // independent (runLayer derives its stream from the layer index
        // alone), reduced per job in layer order afterwards.
        std::vector<std::vector<LayerResult>> layer_results(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            layer_results[i].resize(
                spec.networks[jobs[i].networkIndex].layers.size());
        {
            ThreadPool pool(threads);
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const auto layer_count = layer_results[i].size();
                for (std::size_t l = 0; l < layer_count; ++l) {
                    pool.submit([&spec, &jobs, &accelerators,
                                 &layer_results, &jobOptions, i, l] {
                        const SweepJob &job = jobs[i];
                        layer_results[i][l] =
                            accelerators[job.archIndex].runLayer(
                                spec.networks[job.networkIndex], l,
                                spec.categories[job.categoryIndex],
                                jobOptions(job));
                    });
                }
            }
            pool.wait();
        }
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SweepJob &job = jobs[i];
            results[i] = accelerators[job.archIndex].reduceLayers(
                spec.networks[job.networkIndex],
                spec.categories[job.categoryIndex],
                std::move(layer_results[i]));
        }
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&spec, &jobs, &accelerators, &results,
                         &jobOptions, i] {
                const SweepJob &job = jobs[i];
                results[i] = accelerators[job.archIndex].run(
                    spec.networks[job.networkIndex],
                    spec.categories[job.categoryIndex],
                    jobOptions(job));
            });
        }
        pool.wait();
    }

    return SweepResult(std::move(jobs), std::move(results),
                       cache->stats(), worksets->stats());
}

} // namespace griffin
