/**
 * @file
 * Structured serialization of run results.
 *
 * Benches and the experiment runner historically emitted boxed ASCII
 * tables only; perf-trajectory tooling needs the same results machine-
 * readable.  This sink renders NetworkResult / LayerResult trees as
 * JSON documents and flat CSV, and Table objects as JSON Lines
 * records (one object per table, append-friendly across a bench's
 * multiple tables).
 *
 * Sweep output is written per ResultRow: the result plus the resolved
 * RunOptions values and grid AxisCoordinates of the job that produced
 * it, so rows from different RunOptions variants of one sweep are
 * distinguishable in the file alone.
 *
 * Output is byte-deterministic: fixed key order, no timestamps, and
 * shortest-round-trip double formatting, so a parallel sweep merged in
 * submission order serializes identically to its serial run.
 */

#ifndef GRIFFIN_RUNTIME_RESULT_SINK_HH
#define GRIFFIN_RUNTIME_RESULT_SINK_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "griffin/accelerator.hh"
#include "runtime/runner.hh"
#include "runtime/schedule_cache.hh"

namespace griffin {

/** JSON string escaping per RFC 8259 (quotes, backslash, control). */
std::string jsonEscape(const std::string &s);

/**
 * Shortest decimal form that round-trips the double (std::to_chars) —
 * deterministic for equal inputs and locale-independent.
 */
std::string jsonNumber(double v);

/**
 * One network run as a JSON object: identity, cycle totals, aggregate
 * metrics, and the per-layer breakdown.
 */
void writeJson(std::ostream &os, const NetworkResult &result,
               int indent = 0);

/** A result list as a JSON array (the runner's merged sweep output). */
void writeJson(std::ostream &os, const std::vector<NetworkResult> &results);

/**
 * Flat CSV: one row per layer plus one `total` row per network, with
 * the network/arch/category identity repeated per row.
 */
void writeCsv(std::ostream &os, const std::vector<NetworkResult> &results);

/**
 * One output row: a result plus, when `annotated`, the resolved
 * RunOptions and the grid coordinates that produced it.  `experiment`
 * optionally names the registered experiment that produced the row
 * (griffin_bench `run --all` mixes several experiments' rows in one
 * document); empty on rows from unlabeled sweeps.
 */
// griffin-lint: serialized (JSONL result rows)
struct ResultRow
{
    NetworkResult result;
    bool annotated = false;
    RunOptions options{};
    std::vector<AxisCoordinate> coords;
    std::string experiment;
    /**
     * Wall-time of the job that produced this row (`--timings`).
     * `timed` gates serialization: an untimed row emits no elapsed_ms
     * field at all, keeping default output byte-identical to the
     * checked-in baselines (elapsed time is machine-dependent).
     */
    bool timed = false;
    double elapsedMs = 0.0;
};

/**
 * A sweep as self-describing rows: results()[i] annotated with
 * jobs()[i]'s resolved options and grid coordinates, in submission
 * order.  `experiment` labels every row (empty = unlabeled).
 */
std::vector<ResultRow> sweepRows(const SweepResult &sweep,
                                 const std::string &experiment = "");

/**
 * JSON array of annotated rows.  An annotated row carries an
 * "options" object (every RunOptions field the grid can address) and,
 * when the job has grid coordinates, a "coords" object mapping axis
 * name to value token.  Unannotated rows keep the plain
 * NetworkResult shape.
 */
void writeJson(std::ostream &os, const std::vector<ResultRow> &rows);
void writeJson(std::ostream &os, const SweepResult &sweep);

/**
 * CSV of annotated rows: the plain layout plus one column per
 * RunOptions field (empty cells on unannotated rows).  When any row
 * carries an experiment label, an `experiment` column is prepended.
 * Every text field is RFC-4180 quoted on demand (csvEscape), so
 * comma-bearing architecture names stay one column.
 */
void writeCsv(std::ostream &os, const std::vector<ResultRow> &rows);
void writeCsv(std::ostream &os, const SweepResult &sweep);

/**
 * JSON Lines: one compact object per row per line, same key order as
 * the pretty writer.  Because the document has no enclosing array,
 * concatenating the files of a sharded sweep (`--grid-shard i/n`, in
 * shard order) is byte-identical to the unsharded file — this is the
 * fleet-run output format.
 */
void writeJsonLines(std::ostream &os, const std::vector<ResultRow> &rows);
void writeJsonLines(std::ostream &os, const SweepResult &sweep);

/** One Table as a single-line JSON object (for JSON Lines streams). */
void writeTableJsonLine(std::ostream &os, const Table &table);

/**
 * Content-cache counters as a single-line JSON object
 * ({"<label>": {...}}), load/store accounting included — the
 * machine-readable form of the hit-rate status line the sweep drivers
 * print.  The default label keeps the schedule cache's historical
 * {"cache_stats": ...} line; the workset cache emits
 * "workset_cache_stats" so one stdout stream can carry both.
 */
void writeCacheStatsJsonLine(std::ostream &os, const CacheStats &stats,
                             const std::string &label = "cache_stats");

class MetricsRegistry;

/**
 * A registry snapshot as a single-line JSON object
 * ({"<label>": {"name": value, ...}}), name-sorted so equal registry
 * states serialize identically.  Counters render as integers, gauges
 * as shortest-round-trip numbers, histograms as
 * {"count", "sum", "min", "max", "mean"} objects.
 */
void writeMetricsJsonLine(std::ostream &os, const MetricsRegistry &registry,
                          const std::string &label = "metrics");

/**
 * File-backed sink: collects rows and writes one document on flush().
 * Format is chosen by the path suffix: ".csv" writes CSV, ".jsonl"
 * writes JSON Lines (one row per line, shard-concatenation-safe),
 * anything else a pretty JSON array.  Rows added from a SweepResult
 * are annotated with their job's options and coordinates; bare
 * NetworkResults are not.
 */
class ResultSink
{
  public:
    explicit ResultSink(std::string path);

    void add(NetworkResult result);
    void add(const std::vector<NetworkResult> &results);
    void add(const SweepResult &sweep,
             const std::string &experiment = "");
    /** A preformed row (e.g. parsed back by the shard merger). */
    void add(ResultRow row);

    const std::vector<ResultRow> &rows() const { return rows_; }

    /** Write the collected document; fatal() on an unwritable path. */
    void flush() const;

  private:
    std::string path_;
    std::vector<ResultRow> rows_;
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_RESULT_SINK_HH
