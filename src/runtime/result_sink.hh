/**
 * @file
 * Structured serialization of run results.
 *
 * Benches and the experiment runner historically emitted boxed ASCII
 * tables only; perf-trajectory tooling needs the same results machine-
 * readable.  This sink renders NetworkResult / LayerResult trees as
 * JSON documents and flat CSV, and Table objects as JSON Lines
 * records (one object per table, append-friendly across a bench's
 * multiple tables).
 *
 * Output is byte-deterministic: fixed key order, no timestamps, and
 * shortest-round-trip double formatting, so a parallel sweep merged in
 * submission order serializes identically to its serial run.
 */

#ifndef GRIFFIN_RUNTIME_RESULT_SINK_HH
#define GRIFFIN_RUNTIME_RESULT_SINK_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "griffin/accelerator.hh"
#include "runtime/schedule_cache.hh"

namespace griffin {

/** JSON string escaping per RFC 8259 (quotes, backslash, control). */
std::string jsonEscape(const std::string &s);

/**
 * Shortest decimal form that round-trips the double (std::to_chars) —
 * deterministic for equal inputs and locale-independent.
 */
std::string jsonNumber(double v);

/**
 * One network run as a JSON object: identity, cycle totals, aggregate
 * metrics, and the per-layer breakdown.
 */
void writeJson(std::ostream &os, const NetworkResult &result,
               int indent = 0);

/** A result list as a JSON array (the runner's merged sweep output). */
void writeJson(std::ostream &os, const std::vector<NetworkResult> &results);

/**
 * Flat CSV: one row per layer plus one `total` row per network, with
 * the network/arch/category identity repeated per row.
 */
void writeCsv(std::ostream &os, const std::vector<NetworkResult> &results);

/** One Table as a single-line JSON object (for JSON Lines streams). */
void writeTableJsonLine(std::ostream &os, const Table &table);

/**
 * Schedule-cache counters as a single-line JSON object
 * ({"cache_stats": {...}}), load/store accounting included — the
 * machine-readable form of the hit-rate status line the sweep drivers
 * print.
 */
void writeCacheStatsJsonLine(std::ostream &os,
                             const ScheduleCache::Stats &stats);

/**
 * File-backed sink: collects results and writes one document on
 * flush().  Format is chosen by the path suffix: ".csv" writes CSV,
 * anything else JSON.
 */
class ResultSink
{
  public:
    explicit ResultSink(std::string path);

    void add(NetworkResult result);
    void add(const std::vector<NetworkResult> &results);

    const std::vector<NetworkResult> &results() const { return results_; }

    /** Write the collected document; fatal() on an unwritable path. */
    void flush() const;

  private:
    std::string path_;
    std::vector<NetworkResult> results_;
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_RESULT_SINK_HH
