#include "runtime/workset_cache.hh"

#include "runtime/telemetry.hh"

namespace griffin {

WorksetCache::Key
WorksetCache::contentKey(const WorksetParams &params)
{
    // Salts and fold order are frozen: cache files persist these keys
    // (cache_store.hh), so any change here is a GRFW version bump.
    ContentHasher h(0x0b5e55edULL, 0x7e4a50e5ULL, params.seed);
    h.fold(static_cast<std::uint64_t>(params.m));
    h.fold(static_cast<std::uint64_t>(params.k));
    h.fold(static_cast<std::uint64_t>(params.n));
    h.foldDouble(params.weightSparsity);
    h.foldDouble(params.actSparsity);
    h.foldDouble(params.weightLaneBias);
    h.foldDouble(params.actRunLength);
    h.fold(static_cast<std::uint64_t>(params.lanePeriod));
    return h.key();
}

std::shared_ptr<const LayerWorkset>
WorksetCache::obtain(const WorksetParams &params)
{
    // Only the cache-miss generation is the operand_gen stage; a hit
    // costs a hash lookup and should not inflate the stage total.
    return cache_.obtain(contentKey(params), [&] {
        ScopedSpan span("operand_gen");
        return generateLayerWorkset(params);
    });
}

std::shared_ptr<const LayerWorkset>
obtainWorkset(WorksetCache *cache, const WorksetParams &params)
{
    if (cache != nullptr)
        return cache->obtain(params);
    ScopedSpan span("operand_gen");
    return std::make_shared<const LayerWorkset>(
        generateLayerWorkset(params));
}

} // namespace griffin
