/**
 * @file
 * Low-overhead metrics and tracing for the staged simulation pipeline.
 *
 * Two cooperating facilities, both process-wide:
 *
 *   - MetricsRegistry: named counters, gauges, and histograms behind
 *     stable references.  The runner publishes its previously ad-hoc
 *     stats here once per sweep — schedule/A-schedule/workset cache
 *     counters (content_cache.hh CacheStats), thread-pool
 *     steal/execution totals, jobs-per-second and utilization — so
 *     every consumer (the `--stats` JSON line, `griffin_bench perf`)
 *     reads one source of truth instead of scraping driver stdout.
 *     Metric updates are lock-free atomics; registration (name -> slot)
 *     takes a mutex and is expected once per site, not per update.
 *
 *   - Telemetry + ScopedSpan: per-thread scoped wall-time spans over
 *     the pipeline seams (operand_gen, b_schedule, a_schedule,
 *     tile_sim, memory_model, reduce, and — on schedule-aware runs —
 *     the nested schedule span).  Spans are compiled in but
 *     off-by-default cheap: a disabled span is one relaxed atomic load
 *     and two pointer writes — no clock read, no allocation.  Enabled
 *     spans record into thread-local buffers (no cross-thread
 *     contention on the hot path) that merge at export time:
 *
 *       Mode::Aggregate keeps per-stage (count, total-ns) totals only
 *       — what `griffin_bench perf` turns into the per-stage wall-time
 *       breakdown of BENCH_perf.json.
 *
 *       Mode::Full additionally retains every span as an event and
 *       exports Chrome trace-event JSON (writeChromeTrace) that opens
 *       directly in Perfetto / chrome://tracing — the `--trace <file>`
 *       flag.
 *
 * Telemetry never feeds back into simulation: enabling it changes no
 * RNG stream, no schedule, no result byte.  The trace ctest pins this
 * (result rows byte-identical with tracing on and off).
 */

#ifndef GRIFFIN_RUNTIME_TELEMETRY_HH
#define GRIFFIN_RUNTIME_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.hh"
#include "runtime/content_cache.hh"

namespace griffin {

/** Monotonically increasing event count (add is lock-free). */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (set is lock-free). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Value distribution: count/sum/min/max plus power-of-two buckets
 * (bucket b counts values v with 2^b <= v < 2^(b+1); bucket 0 also
 * takes v = 0).  record() is a handful of relaxed atomics — safe on
 * the pool's hot path.
 */
class Histogram
{
  public:
    static constexpr int bucketCount = 64;

    void record(std::uint64_t v);

    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0; ///< 0 when count == 0
        std::uint64_t max = 0;
        std::uint64_t buckets[bucketCount] = {};

        double
        mean() const
        {
            return count == 0 ? 0.0
                              : static_cast<double>(sum) /
                                    static_cast<double>(count);
        }
    };

    Snapshot snapshot() const;
    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> buckets_[bucketCount] = {};
};

/** One metric in a registry snapshot (writeMetricsJsonLine renders a
 *  name-sorted list of these). */
// griffin-lint: serialized (metrics JSON line)
struct MetricSnapshot
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };

    Kind kind = Kind::Counter;
    std::string name;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram::Snapshot histogram;
};

/**
 * Named metric slots with stable addresses: counter()/gauge()/
 * histogram() register on first use and return the same reference
 * forever after, so call sites resolve once and update lock-free.
 * Registering one name as two different kinds is a panic() (it means
 * two subsystems disagree about what the metric is).
 *
 * instance() is the process-wide registry every production site uses;
 * tests may construct private registries.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Every registered metric, sorted by name. */
    std::vector<MetricSnapshot> snapshot() const;

    /** Gauge the full CacheStats record under "<prefix>.<field>" —
     *  the registry form of writeCacheStatsJsonLine's object. */
    void publishCacheStats(const std::string &prefix,
                           const CacheStats &stats);

    /** Zero every value (registrations and references survive). */
    void reset();

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Slot
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Slot &slot(const std::string &name, Kind kind);

    mutable Mutex mu_;
    /** Name-sorted iteration. */
    std::map<std::string, Slot> slots_ GRIFFIN_GUARDED_BY(mu_);
};

/** Merged per-stage span totals (Telemetry::stageBreakdown). */
// griffin-lint: serialized (--timings table and perf JSON)
struct StageAgg
{
    std::string stage;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;

    double
    totalMs() const
    {
        return static_cast<double>(totalNs) / 1e6;
    }
};

/**
 * Process-wide tracing control and export.  All static: spans from any
 * thread land in that thread's buffer; export merges under the
 * registration lock.
 */
class Telemetry
{
  public:
    enum class Mode
    {
        Off,       ///< spans are a relaxed load, nothing recorded
        Aggregate, ///< per-stage totals only (griffin_bench perf)
        Full       ///< totals + every event, for --trace export
    };

    static Mode mode();
    static void setMode(Mode mode);

    static bool
    enabled()
    {
        return modeFlag().load(std::memory_order_relaxed) !=
               static_cast<int>(Mode::Off);
    }

    /**
     * Merge every thread's per-stage totals, sorted by stage name.
     * Stage identity is the span's name *string* (two call sites using
     * one name merge into one stage).
     */
    static std::vector<StageAgg> stageBreakdown();

    /**
     * Chrome trace-event JSON ("X" complete events, microsecond
     * timestamps relative to process start, one tid per traced
     * thread, thread_name metadata) — load the file in Perfetto or
     * chrome://tracing.  Spans recorded under Mode::Aggregate carry no
     * events, so a trace written after an Aggregate-only run holds
     * metadata only.
     */
    static void writeChromeTrace(std::ostream &os);

    /** Retained events across all threads (tests and sizing). */
    static std::uint64_t eventCount();

    /** Drop all recorded events and stage totals (thread registrations
     *  and the mode survive). */
    static void clear();

  private:
    friend class ScopedSpan;

    static std::atomic<int> &modeFlag();
    static void record(const char *name, std::uint64_t start_ns,
                       std::uint64_t dur_ns);
};

/** Monotonic (steady_clock) nanoseconds since process start. */
std::uint64_t monotonicNowNs();

/**
 * RAII wall-time span over one pipeline stage.  `name` must be a
 * string literal (or otherwise outlive the Telemetry buffers): spans
 * store the pointer, not a copy, to keep the enabled path allocation-
 * free.  Nesting is by construction order per thread — strictly LIFO —
 * which is exactly the containment Chrome "X" events render.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
    {
        if (Telemetry::enabled()) {
            name_ = name;
            startNs_ = monotonicNowNs();
        }
    }

    ~ScopedSpan()
    {
        if (name_ != nullptr)
            Telemetry::record(name_, startNs_,
                              monotonicNowNs() - startNs_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_ = nullptr;
    std::uint64_t startNs_ = 0;
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_TELEMETRY_HH
