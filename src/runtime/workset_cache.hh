/**
 * @file
 * Content-addressed cache of layer worksets — the stage-1 artifact of
 * the staged simulation pipeline (tensor/workset.hh).
 *
 * Along the architecture axis of a sweep grid, every design point
 * with the same tile height consumes the *same* generated operands:
 * the workset is a pure function of (layer shape, sparsity rates,
 * generation knobs, layer stream seed), none of which the arch axis
 * touches.  The monolithic simulator regenerated them per job; this
 * cache keys the workset by a 128-bit content hash of exactly those
 * parameters (WorksetCache::contentKey) and shares one immutable
 * LayerWorkset across every job that asks.
 *
 * Built on the shared cache policy of content_cache.hh — sharded maps,
 * compute-outside-the-lock generation, FIFO byte budget, load/hit
 * stats — so eviction and accounting behave exactly like the schedule
 * caches.  Worksets can be large (B is a full k x n weight matrix), so
 * bounded deployments should set a byte budget; eviction never changes
 * a result, only regeneration cost.
 *
 * Persistence: cache_store.hh serializes worksets to a versioned GRFW
 * file between runs; entries restored from disk are tracked separately
 * (Stats::loadedEntries / loadHits) so a warm run can report how much
 * generation the file actually skipped.
 */

#ifndef GRIFFIN_RUNTIME_WORKSET_CACHE_HH
#define GRIFFIN_RUNTIME_WORKSET_CACHE_HH

#include "runtime/content_cache.hh"
#include "tensor/workset.hh"

namespace griffin {

/**
 * Default resident-byte bound for driver-owned and runner-owned
 * workset caches.  Worksets hold whole weight matrices, so unbounded
 * retention across a large sweep costs hundreds of megabytes; 256 MiB
 * keeps the arch-axis reuse window while bounding the footprint.
 */
constexpr std::uint64_t defaultWorksetByteBudget = 256ull << 20;

/**
 * Shard count sized to the budget: worksets are large, so the
 * per-shard slice of a byte budget must stay bigger than one entry or
 * big-layer worksets evict on insert.
 */
constexpr std::size_t defaultWorksetShards = 4;

class WorksetCache
{
  public:
    using Key = CacheKey128;
    using Stats = CacheStats;
    using Value = LayerWorkset;

    explicit WorksetCache(std::size_t shards = defaultWorksetShards)
        : cache_(shards)
    {
    }

    /**
     * The workset of one parameter record, generated on first request
     * and shared afterwards.  The returned workset is immutable and
     * outlives the cache entry (shared ownership), so callers may hold
     * it across clear() or eviction.
     */
    std::shared_ptr<const LayerWorkset>
    obtain(const WorksetParams &params);

    Stats stats() const { return cache_.stats(); }
    void clear() { cache_.clear(); }
    void setByteBudget(std::uint64_t bytes)
    {
        cache_.setByteBudget(bytes);
    }

    /** Insert a disk-restored workset (see ContentCache::insertLoaded). */
    bool
    insertLoaded(const Key &key, LayerWorkset workset)
    {
        return cache_.insertLoaded(key, std::move(workset));
    }

    /** Visit every resident entry (see ContentCache::forEachEntry). */
    void
    forEachEntry(const std::function<void(
                     const Key &,
                     const std::shared_ptr<const LayerWorkset> &)> &fn)
        const
    {
        cache_.forEachEntry(fn);
    }

    /**
     * The key of one workset: every WorksetParams field, doubles by
     * bit pattern.  Part of the persistent cache-file contract
     * (cache_store.hh): changing it requires a GRFW version bump.
     */
    static Key contentKey(const WorksetParams &params);

  private:
    ContentCache<LayerWorkset> cache_;
};

/**
 * Obtain through `cache` when the caller provided one, generate
 * locally otherwise.  The workset is identical either way — the cache
 * only skips regeneration.
 */
std::shared_ptr<const LayerWorkset>
obtainWorkset(WorksetCache *cache, const WorksetParams &params);

} // namespace griffin

#endif // GRIFFIN_RUNTIME_WORKSET_CACHE_HH
