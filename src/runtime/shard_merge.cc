#include "runtime/shard_merge.hh"

#include <fstream>
#include <map>

#include "common/json.hh"
#include "common/logging.hh"

namespace griffin {

namespace {

DnnCategory
categoryFromName(const std::string &name, const std::string &where)
{
    for (const DnnCategory cat : allCategories)
        if (name == toString(cat))
            return cat;
    fatal(where, ": unknown category '", name, "'");
}

const JsonValue &
requireMember(const JsonValue &object, const std::string &key,
              const std::string &where)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr)
        fatal(where, ": row is missing the '", key, "' field");
    return *value;
}

/** One .jsonl row back into the ResultRow the sink serialized. */
ResultRow
parseRow(const JsonValue &doc, const std::string &where)
{
    if (!doc.isObject())
        fatal(where, ": expected a JSON object per line");
    ResultRow row;
    const JsonValue *experiment = doc.find("experiment");
    if (experiment != nullptr)
        row.experiment = experiment->asString();

    NetworkResult &r = row.result;
    r.network = requireMember(doc, "network", where).asString();
    r.arch = requireMember(doc, "arch", where).asString();
    r.category = categoryFromName(
        requireMember(doc, "category", where).asString(), where);
    r.denseCycles = requireMember(doc, "dense_cycles", where).asInt();
    r.totalCycles = requireMember(doc, "total_cycles", where).asInt();
    r.speedup = requireMember(doc, "speedup", where).asDouble();
    r.topsPerWatt =
        requireMember(doc, "tops_per_watt", where).asDouble();
    r.topsPerMm2 = requireMember(doc, "tops_per_mm2", where).asDouble();
    // Opt-in schedule fields (schedule-aware runs only); the label's
    // presence implies the other three.
    const JsonValue *schedule = doc.find("schedule");
    if (schedule != nullptr) {
        r.scheduleLabel = schedule->asString();
        r.peakSramBytes =
            requireMember(doc, "peak_sram_bytes", where).asInt();
        r.spillCycles =
            requireMember(doc, "spill_cycles", where).asInt();
        r.recomputeCycles =
            requireMember(doc, "recompute_cycles", where).asInt();
    }
    const JsonValue &layers = requireMember(doc, "layers", where);
    if (!layers.isArray())
        fatal(where, ": 'layers' is not an array");
    for (const JsonValue &layer : layers.items) {
        LayerResult lr;
        lr.name = requireMember(layer, "name", where).asString();
        lr.denseCycles =
            requireMember(layer, "dense_cycles", where).asInt();
        lr.computeCycles =
            requireMember(layer, "compute_cycles", where).asInt();
        lr.dramCycles =
            requireMember(layer, "dram_cycles", where).asInt();
        lr.totalCycles =
            requireMember(layer, "total_cycles", where).asInt();
        lr.macs = requireMember(layer, "macs", where).asInt();
        lr.speedup = requireMember(layer, "speedup", where).asDouble();
        r.layers.push_back(std::move(lr));
    }

    const JsonValue *options = doc.find("options");
    if (options != nullptr) {
        row.annotated = true;
        RunOptions &opt = row.options;
        opt.seed = requireMember(*options, "seed", where).asUint();
        opt.rowCap = requireMember(*options, "row_cap", where).asInt();
        opt.weightLaneBias =
            requireMember(*options, "weight_lane_bias", where)
                .asDouble();
        opt.actRunLength =
            requireMember(*options, "act_run_length", where).asDouble();
        opt.sim.sampleFraction =
            requireMember(*options, "sample_fraction", where)
                .asDouble();
        opt.enforceDramBound =
            requireMember(*options, "enforce_dram_bound", where)
                .asBool();
        // Not serialized; resolveFidelity applies this floor to every
        // driver run, so the reconstruction shares its constant.
        opt.sim.minSampledTiles = defaultMinSampledTiles;
    }
    const JsonValue *coords = doc.find("coords");
    if (coords != nullptr) {
        if (!coords->isObject())
            fatal(where, ": 'coords' is not an object");
        for (const auto &[axis, value] : coords->members)
            row.coords.push_back(AxisCoordinate{axis, value.asString()});
    }
    return row;
}

/** The serialized RunOptions fields, compared one by one so coverage
 *  errors name the differing knob. */
void
checkOptionsMatch(const RunOptions &expected, const RunOptions &got,
                  const std::string &where)
{
    if (expected.seed != got.seed)
        fatal(where, ": seed ", got.seed, " does not match the ",
              "expanded job's ", expected.seed);
    if (expected.rowCap != got.rowCap)
        fatal(where, ": row_cap ", got.rowCap,
              " does not match the expanded job's ", expected.rowCap);
    if (expected.weightLaneBias != got.weightLaneBias)
        fatal(where, ": weight_lane_bias ", got.weightLaneBias,
              " does not match the expanded job's ",
              expected.weightLaneBias);
    if (expected.actRunLength != got.actRunLength)
        fatal(where, ": act_run_length ", got.actRunLength,
              " does not match the expanded job's ",
              expected.actRunLength);
    if (expected.sim.sampleFraction != got.sim.sampleFraction)
        fatal(where, ": sample_fraction ", got.sim.sampleFraction,
              " does not match the expanded job's ",
              expected.sim.sampleFraction);
    if (expected.enforceDramBound != got.enforceDramBound)
        fatal(where, ": enforce_dram_bound does not match the "
                     "expanded job's");
}

} // namespace

std::vector<ResultRow>
readShardRows(const std::vector<std::string> &paths)
{
    std::vector<ResultRow> rows;
    for (const auto &path : paths) {
        std::ifstream is(path);
        if (!is)
            fatal("cannot open shard document '", path, "'");
        std::string line;
        std::size_t line_no = 0;
        while (std::getline(is, line)) {
            ++line_no;
            if (line.empty())
                continue;
            const std::string where =
                path + ":" + std::to_string(line_no);
            JsonValue doc;
            std::string error;
            if (!parseJson(line, doc, error))
                fatal(where, ": malformed JSON (", error,
                      ") — is this a --out .jsonl document?");
            ResultRow row = parseRow(doc, where);
            if (row.experiment.empty())
                fatal(where, ": row carries no experiment label; "
                             "merge validates against the experiment "
                             "registry and needs griffin_bench-"
                             "produced documents");
            rows.push_back(std::move(row));
        }
    }
    if (rows.empty())
        fatal("shard documents contain no result rows");
    return rows;
}

std::vector<MergedExperiment>
mergeShardRows(const std::vector<ResultRow> &rows,
               const std::string &gridOverride)
{
    // Group by experiment, first-appearance order.  A multi-experiment
    // fleet run interleaves experiments across shard files (each file
    // holds every experiment's slice); grouping re-concatenates each
    // experiment's slices in file = shard order, which is exactly the
    // submission order positional validation expects.
    std::map<std::string, std::size_t> group_of;
    std::vector<std::string> names;
    std::vector<std::vector<const ResultRow *>> groups;
    for (const ResultRow &row : rows) {
        auto [it, fresh] =
            group_of.emplace(row.experiment, groups.size());
        if (fresh) {
            groups.emplace_back();
            names.push_back(row.experiment);
        }
        groups[it->second].push_back(&row);
    }

    std::vector<MergedExperiment> merged;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const auto &group = groups[g];
        MergedExperiment me;
        me.experiment = findExperiment(names[g]);
        if (me.experiment == nullptr)
            fatal("rows name experiment '", names[g],
                  "' which is not in this binary's registry");

        // The shards' base fidelity: every serialized field either
        // matches the driver's resolved RunOptions or is re-derived by
        // a grid axis during expansion, so the first row's options
        // reconstruct it (validated below for every row).
        if (!group.front()->annotated)
            fatal("experiment '", names[g],
                  "': rows carry no options; cannot reconstruct the "
                  "shard run's fidelity");
        me.run = group.front()->options;

        me.spec =
            buildExperimentSpec(*me.experiment, me.run, gridOverride);
        auto jobs = expandSweep(me.spec);
        if (jobs.size() != group.size())
            fatal("experiment '", names[g], "': shard documents hold ",
                  group.size(), " rows but the grid expands to ",
                  jobs.size(),
                  " jobs — a shard file is missing, duplicated, or was "
                  "run with different --grid/fidelity flags");
        std::vector<NetworkResult> results;
        results.reserve(group.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SweepJob &job = jobs[i];
            const ResultRow &row = *group[i];
            const std::string where = "experiment '" + names[g] +
                                      "', merged row " +
                                      std::to_string(i);
            const auto &net = me.spec.networks[job.networkIndex];
            if (row.result.network != net.name)
                fatal(where, ": network '", row.result.network,
                      "' does not match the expanded job's '", net.name,
                      "' — shard files out of order or overlapping?");
            const auto &arch = me.spec.archs[job.archIndex];
            if (row.result.arch != arch.name)
                fatal(where, ": arch '", row.result.arch,
                      "' does not match the expanded job's '",
                      arch.name,
                      "' — shard files out of order or overlapping?");
            const auto cat = me.spec.categories[job.categoryIndex];
            if (row.result.category != cat)
                fatal(where, ": category '",
                      toString(row.result.category),
                      "' does not match the expanded job's '",
                      toString(cat), "'");
            if (row.coords != job.coords)
                fatal(where, ": grid coordinates (",
                      coordsLabel(row.coords),
                      ") do not match the expanded job's (",
                      coordsLabel(job.coords),
                      ") — was the fleet run with a --grid override? "
                      "pass the same text to merge");
            checkOptionsMatch(job.options, row.options, where);
            results.push_back(row.result);
        }
        me.sweep = SweepResult(std::move(jobs), std::move(results),
                               ScheduleCache::Stats{});
        merged.push_back(std::move(me));
    }
    return merged;
}

} // namespace griffin
