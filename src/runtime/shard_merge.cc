#include "runtime/shard_merge.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace griffin {

namespace {

DnnCategory
categoryFromName(const std::string &name, const std::string &where)
{
    for (const DnnCategory cat : allCategories)
        if (name == toString(cat))
            return cat;
    fatal(where, ": unknown category '", name, "'");
}

const JsonValue &
requireMember(const JsonValue &object, const std::string &key,
              const std::string &where)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr)
        fatal(where, ": row is missing the '", key, "' field");
    return *value;
}

/** One .jsonl row back into the ResultRow the sink serialized. */
ResultRow
parseRow(const JsonValue &doc, const std::string &where)
{
    if (!doc.isObject())
        fatal(where, ": expected a JSON object per line");
    ResultRow row;
    const JsonValue *experiment = doc.find("experiment");
    if (experiment != nullptr)
        row.experiment = experiment->asString();

    NetworkResult &r = row.result;
    r.network = requireMember(doc, "network", where).asString();
    r.arch = requireMember(doc, "arch", where).asString();
    r.category = categoryFromName(
        requireMember(doc, "category", where).asString(), where);
    r.denseCycles = requireMember(doc, "dense_cycles", where).asInt();
    r.totalCycles = requireMember(doc, "total_cycles", where).asInt();
    r.speedup = requireMember(doc, "speedup", where).asDouble();
    r.topsPerWatt =
        requireMember(doc, "tops_per_watt", where).asDouble();
    r.topsPerMm2 = requireMember(doc, "tops_per_mm2", where).asDouble();
    // Opt-in schedule fields (schedule-aware runs only); the label's
    // presence implies the other three.
    const JsonValue *schedule = doc.find("schedule");
    if (schedule != nullptr) {
        r.scheduleLabel = schedule->asString();
        r.peakSramBytes =
            requireMember(doc, "peak_sram_bytes", where).asInt();
        r.spillCycles =
            requireMember(doc, "spill_cycles", where).asInt();
        r.recomputeCycles =
            requireMember(doc, "recompute_cycles", where).asInt();
    }
    const JsonValue &layers = requireMember(doc, "layers", where);
    if (!layers.isArray())
        fatal(where, ": 'layers' is not an array");
    for (const JsonValue &layer : layers.items) {
        LayerResult lr;
        lr.name = requireMember(layer, "name", where).asString();
        lr.denseCycles =
            requireMember(layer, "dense_cycles", where).asInt();
        lr.computeCycles =
            requireMember(layer, "compute_cycles", where).asInt();
        lr.dramCycles =
            requireMember(layer, "dram_cycles", where).asInt();
        lr.totalCycles =
            requireMember(layer, "total_cycles", where).asInt();
        lr.macs = requireMember(layer, "macs", where).asInt();
        lr.speedup = requireMember(layer, "speedup", where).asDouble();
        r.layers.push_back(std::move(lr));
    }

    const JsonValue *options = doc.find("options");
    if (options != nullptr) {
        row.annotated = true;
        RunOptions &opt = row.options;
        opt.seed = requireMember(*options, "seed", where).asUint();
        opt.rowCap = requireMember(*options, "row_cap", where).asInt();
        opt.weightLaneBias =
            requireMember(*options, "weight_lane_bias", where)
                .asDouble();
        opt.actRunLength =
            requireMember(*options, "act_run_length", where).asDouble();
        opt.sim.sampleFraction =
            requireMember(*options, "sample_fraction", where)
                .asDouble();
        opt.enforceDramBound =
            requireMember(*options, "enforce_dram_bound", where)
                .asBool();
        // Not serialized; resolveFidelity applies this floor to every
        // driver run, so the reconstruction shares its constant.
        opt.sim.minSampledTiles = defaultMinSampledTiles;
    }
    const JsonValue *coords = doc.find("coords");
    if (coords != nullptr) {
        if (!coords->isObject())
            fatal(where, ": 'coords' is not an object");
        for (const auto &[axis, value] : coords->members)
            row.coords.push_back(AxisCoordinate{axis, value.asString()});
    }
    return row;
}

template <typename T>
std::string
mismatchText(const char *field, const T &got, const T &expected)
{
    std::ostringstream os;
    os << field << " " << got << " does not match the expanded job's "
       << expected;
    return os.str();
}

/** The serialized RunOptions fields, compared one by one so coverage
 *  errors name the differing knob. */
bool
checkOptionsMatch(const RunOptions &expected, const RunOptions &got,
                  std::string &error)
{
    if (expected.seed != got.seed) {
        error = mismatchText("seed", got.seed, expected.seed);
        return false;
    }
    if (expected.rowCap != got.rowCap) {
        error = mismatchText("row_cap", got.rowCap, expected.rowCap);
        return false;
    }
    if (expected.weightLaneBias != got.weightLaneBias) {
        error = mismatchText("weight_lane_bias", got.weightLaneBias,
                             expected.weightLaneBias);
        return false;
    }
    if (expected.actRunLength != got.actRunLength) {
        error = mismatchText("act_run_length", got.actRunLength,
                             expected.actRunLength);
        return false;
    }
    if (expected.sim.sampleFraction != got.sim.sampleFraction) {
        error = mismatchText("sample_fraction",
                             got.sim.sampleFraction,
                             expected.sim.sampleFraction);
        return false;
    }
    if (expected.enforceDramBound != got.enforceDramBound) {
        error = "enforce_dram_bound does not match the expanded "
                "job's";
        return false;
    }
    return true;
}

} // namespace

ResultRow
parseResultRowLine(const std::string &line, const std::string &where)
{
    JsonValue doc;
    std::string error;
    if (!parseJson(line, doc, error))
        fatal(where, ": malformed JSON (", error,
              ") — is this a --out .jsonl document?");
    return parseRow(doc, where);
}

bool
validateRowAgainstJob(const ResultRow &row, const SweepSpec &spec,
                      const SweepJob &job, std::string &error)
{
    const auto &net = spec.networks[job.networkIndex];
    if (row.result.network != net.name) {
        error = "network '" + row.result.network +
                "' does not match the expanded job's '" + net.name +
                "' — rows out of order or overlapping?";
        return false;
    }
    const auto &arch = spec.archs[job.archIndex];
    if (row.result.arch != arch.name) {
        error = "arch '" + row.result.arch +
                "' does not match the expanded job's '" + arch.name +
                "' — rows out of order or overlapping?";
        return false;
    }
    const auto cat = spec.categories[job.categoryIndex];
    if (row.result.category != cat) {
        error = std::string("category '") +
                toString(row.result.category) +
                "' does not match the expanded job's '" +
                toString(cat) + "'";
        return false;
    }
    if (row.coords != job.coords) {
        error = "grid coordinates (" + coordsLabel(row.coords) +
                ") do not match the expanded job's (" +
                coordsLabel(job.coords) +
                ") — was the run given a --grid override? pass the "
                "same text";
        return false;
    }
    return checkOptionsMatch(job.options, row.options, error);
}

std::vector<ResultRow>
readShardRows(const std::vector<std::string> &paths)
{
    std::vector<ResultRow> rows;
    for (const auto &path : paths) {
        std::ifstream is(path);
        if (!is)
            fatal("cannot open shard document '", path, "'");
        std::string line;
        std::size_t line_no = 0;
        while (std::getline(is, line)) {
            ++line_no;
            if (line.empty())
                continue;
            const std::string where =
                path + ":" + std::to_string(line_no);
            ResultRow row = parseResultRowLine(line, where);
            if (row.experiment.empty())
                fatal(where, ": row carries no experiment label; "
                             "merge validates against the experiment "
                             "registry and needs griffin_bench-"
                             "produced documents");
            rows.push_back(std::move(row));
        }
    }
    if (rows.empty())
        fatal("shard documents contain no result rows");
    return rows;
}

std::vector<MergedExperiment>
mergeShardRows(const std::vector<ResultRow> &rows,
               const std::string &gridOverride)
{
    // Group by experiment, first-appearance order.  A multi-experiment
    // fleet run interleaves experiments across shard files (each file
    // holds every experiment's slice); grouping re-concatenates each
    // experiment's slices in file = shard order, which is exactly the
    // submission order positional validation expects.
    std::map<std::string, std::size_t> group_of;
    std::vector<std::string> names;
    std::vector<std::vector<const ResultRow *>> groups;
    for (const ResultRow &row : rows) {
        auto [it, fresh] =
            group_of.emplace(row.experiment, groups.size());
        if (fresh) {
            groups.emplace_back();
            names.push_back(row.experiment);
        }
        groups[it->second].push_back(&row);
    }

    std::vector<MergedExperiment> merged;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const auto &group = groups[g];
        MergedExperiment me;
        me.experiment = findExperiment(names[g]);
        if (me.experiment == nullptr)
            fatal("rows name experiment '", names[g],
                  "' which is not in this binary's registry");

        // The shards' base fidelity: every serialized field either
        // matches the driver's resolved RunOptions or is re-derived by
        // a grid axis during expansion, so the first row's options
        // reconstruct it (validated below for every row).
        if (!group.front()->annotated)
            fatal("experiment '", names[g],
                  "': rows carry no options; cannot reconstruct the "
                  "shard run's fidelity");
        me.run = group.front()->options;

        me.spec =
            buildExperimentSpec(*me.experiment, me.run, gridOverride);
        auto jobs = expandSweep(me.spec);
        if (jobs.size() != group.size())
            fatal("experiment '", names[g], "': shard documents hold ",
                  group.size(), " rows but the grid expands to ",
                  jobs.size(),
                  " jobs — a shard file is missing, duplicated, or was "
                  "run with different --grid/fidelity flags");
        std::vector<NetworkResult> results;
        results.reserve(group.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SweepJob &job = jobs[i];
            const ResultRow &row = *group[i];
            const std::string where = "experiment '" + names[g] +
                                      "', merged row " +
                                      std::to_string(i);
            std::string error;
            if (!validateRowAgainstJob(row, me.spec, job, error))
                fatal(where, ": ", error);
            results.push_back(row.result);
        }
        me.sweep = SweepResult(std::move(jobs), std::move(results),
                               ScheduleCache::Stats{});
        merged.push_back(std::move(me));
    }
    return merged;
}

} // namespace griffin
