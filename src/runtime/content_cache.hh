/**
 * @file
 * Shared policy machinery for the runtime's content-addressed caches.
 *
 * The sweep runner memoizes several pure functions of tensor content —
 * B-side preprocessing, A-side arbiter schedules, and whole layer
 * worksets — and every one of them wants the same cache behaviour:
 * a 128-bit content key, hash-sharded maps behind per-shard mutexes,
 * compute-outside-the-lock misses where the first finisher wins, an
 * optional byte budget with FIFO-per-shard eviction, and load/hit
 * accounting that distinguishes disk-restored entries.  ContentCache
 * holds exactly that policy once; ScheduleCache, AScheduleCache, and
 * WorksetCache are thin typed fronts that only contribute their key
 * derivation and value computation.
 *
 * Values must expose `std::size_t approxBytes() const` (the unit the
 * byte budget and Stats::residentBytes count) and are shared as
 * immutable `shared_ptr<const V>`: eviction only drops the cache's
 * reference, never a caller's, and never changes any result — only the
 * hit rate.
 *
 * Keys are 128 bits of splitmix-mixed content hash (ContentHasher);
 * collisions are treated as impossible (the sweep grids these caches
 * serve are ~1e4 entries, collision odds ~1e-30).
 */

#ifndef GRIFFIN_RUNTIME_CONTENT_CACHE_HH
#define GRIFFIN_RUNTIME_CONTENT_CACHE_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "common/rng.hh"

namespace griffin {

/** 128-bit content key of one cached entry. */
struct CacheKey128
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const CacheKey128 &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const CacheKey128 &o) const { return !(*this == o); }
};

/** Aggregate counters (monotone except entries/residentBytes). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< includes concurrent recomputes
    std::uint64_t entries = 0; ///< resident values
    std::uint64_t residentBytes = 0; ///< approx footprint of entries
    std::uint64_t evictions = 0; ///< entries dropped by byte budget
    /** Entries restored from a cache file (cache_store.hh). */
    std::uint64_t loadedEntries = 0;
    /** Hits served by a disk-loaded entry: the computation was skipped
     *  entirely thanks to a previous run. */
    std::uint64_t loadHits = 0;

    double
    hitRate() const
    {
        const auto total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Two independently-salted splitmix streams folded over a sequence of
 * words: the shared 128-bit key derivation.  Each cache seeds it with
 * its own salt pair so keys from different caches never share a
 * distribution, then folds every input its computation depends on.
 */
class ContentHasher
{
  public:
    ContentHasher(std::uint64_t salt_lo, std::uint64_t salt_hi,
                  std::uint64_t init)
        : lo_(Rng::mixSeed(salt_lo, init)),
          hi_(Rng::mixSeed(salt_hi, init))
    {
    }

    void
    fold(std::uint64_t v)
    {
        lo_ = Rng::mixSeed(lo_, v);
        hi_ = Rng::mixSeed(hi_, v + 0x9e37ULL);
    }

    /** Fold a double by bit pattern (distinguishes -0.0 from 0.0, which
     *  is fine: generators treat them identically but keys need not). */
    void
    foldDouble(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        fold(bits);
    }

    /** Fold a byte sequence packed 8 bytes per splitmix round. */
    void
    foldBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        std::uint64_t word = 0;
        int packed = 0;
        for (std::size_t i = 0; i < size; ++i) {
            word = (word << 8) | bytes[i];
            if (++packed == 8) {
                fold(word);
                word = 0;
                packed = 0;
            }
        }
        if (packed != 0)
            fold(word);
    }

    CacheKey128 key() const { return CacheKey128{lo_, hi_}; }

  private:
    std::uint64_t lo_;
    std::uint64_t hi_;
};

/**
 * The shared cache policy over immutable values of type V (which must
 * provide `std::size_t approxBytes() const`).  Thread-safe: the map is
 * sharded by key hash, each shard behind its own mutex.  On a miss the
 * value is computed *outside* the shard lock (computations are
 * milliseconds; holding the lock would serialise the pool) and the
 * first finisher wins — compute functions must be deterministic, so
 * concurrent double-computes insert equal values.
 */
template <typename V>
class ContentCache
{
  public:
    using Key = CacheKey128;
    using Stats = CacheStats;
    using Value = V;

    explicit ContentCache(std::size_t shards = 16)
    {
        if (shards == 0)
            fatal("content cache needs at least 1 shard");
        shards_.reserve(shards);
        for (std::size_t i = 0; i < shards; ++i)
            shards_.push_back(std::make_unique<Shard>());
    }

    /**
     * The value under `key`, computed by `compute()` on first request
     * and shared afterwards.  The returned value is immutable and
     * outlives the cache entry (shared ownership), so callers may hold
     * it across clear().
     */
    template <typename Compute>
    std::shared_ptr<const V>
    obtain(const Key &key, Compute &&compute)
    {
        Shard &shard = shardFor(key);
        {
            MutexLock lock(shard.mu);
            auto it = shard.entries.find(key);
            if (it != shard.entries.end()) {
                ++shard.hits;
                if (it->second.fromDisk)
                    ++shard.loadHits;
                return it->second.value;
            }
            ++shard.misses;
        }

        // Compute outside the lock; a concurrent requester of the same
        // key recomputes the identical value and the first insert wins.
        auto fresh = std::make_shared<const V>(compute());

        bool inserted = false;
        auto resident =
            insertIntoShard(shard, key, fresh, false, inserted);
        return resident != nullptr ? resident : fresh;
    }

    /**
     * Insert one value under an externally computed key, marking it
     * disk-loaded for Stats purposes.  Used by cache_store.hh when
     * restoring a cache file; an already-present key is left alone
     * (the resident entry is identical by construction).  Returns
     * whether the entry was inserted.
     */
    bool
    insertLoaded(const Key &key, V value)
    {
        Shard &shard = shardFor(key);
        bool inserted = false;
        insertIntoShard(shard, key,
                        std::make_shared<const V>(std::move(value)),
                        true, inserted);
        return inserted;
    }

    Stats
    stats() const
    {
        Stats s;
        for (const auto &shard : shards_) {
            MutexLock lock(shard->mu);
            s.hits += shard->hits;
            s.misses += shard->misses;
            s.entries += shard->entries.size();
            s.residentBytes += shard->bytes;
            s.evictions += shard->evictions;
            s.loadedEntries += shard->loaded;
            s.loadHits += shard->loadHits;
        }
        return s;
    }

    /** Drop every entry (stat counters survive). */
    void
    clear()
    {
        for (auto &shard : shards_) {
            MutexLock lock(shard->mu);
            shard->entries.clear();
            shard->fifo.clear();
            shard->bytes = 0;
        }
    }

    /**
     * Cap resident value bytes (0 = unbounded, the default).  Each of
     * the N shards evicts FIFO — oldest insertion first — once it
     * holds more than budget/N bytes.  Applies immediately to current
     * residents and to every later insert.
     */
    void
    setByteBudget(std::uint64_t bytes)
    {
        byteBudget_.store(bytes);
        if (bytes == 0)
            return;
        for (auto &shard : shards_) {
            MutexLock lock(shard->mu);
            evictOver(*shard, shardBudget());
        }
    }

    /**
     * Visit every resident entry (shard by shard, under that shard's
     * lock — the callback must not reenter the cache).  Iteration
     * order is unspecified; the cache store sorts by key for a
     * deterministic file layout.  The callback receives the shared
     * owner, so a snapshot taken here stays valid across later
     * evictions.
     */
    void
    forEachEntry(const std::function<void(
                     const Key &, const std::shared_ptr<const V> &)> &fn)
        const
    {
        for (const auto &shard : shards_) {
            MutexLock lock(shard->mu);
            for (const auto &[key, entry] : shard->entries)
                fn(key, entry.value);
        }
    }

  private:
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return static_cast<std::size_t>(k.lo);
        }
    };

    struct Entry
    {
        std::shared_ptr<const V> value;
        std::uint64_t bytes = 0;
        bool fromDisk = false;
    };

    struct Shard
    {
        mutable Mutex mu;
        std::unordered_map<Key, Entry, KeyHash> entries
            GRIFFIN_GUARDED_BY(mu);
        /** Insertion order, for eviction. */
        std::deque<Key> fifo GRIFFIN_GUARDED_BY(mu);
        std::uint64_t bytes GRIFFIN_GUARDED_BY(mu) = 0;
        std::uint64_t hits GRIFFIN_GUARDED_BY(mu) = 0;
        std::uint64_t misses GRIFFIN_GUARDED_BY(mu) = 0;
        std::uint64_t evictions GRIFFIN_GUARDED_BY(mu) = 0;
        std::uint64_t loaded GRIFFIN_GUARDED_BY(mu) = 0;
        std::uint64_t loadHits GRIFFIN_GUARDED_BY(mu) = 0;
    };

    Shard &
    shardFor(const Key &key)
    {
        return *shards_[key.hi % shards_.size()];
    }

    /** Insert under the shard lock, then evict down to the budget. */
    std::shared_ptr<const V>
    insertIntoShard(Shard &shard, const Key &key,
                    std::shared_ptr<const V> value, bool from_disk,
                    bool &inserted)
    {
        const auto bytes =
            static_cast<std::uint64_t>(value->approxBytes());
        MutexLock lock(shard.mu);
        Entry entry{std::move(value), bytes, from_disk};
        auto [it, fresh] = shard.entries.emplace(key, std::move(entry));
        inserted = fresh;
        if (fresh) {
            shard.fifo.push_back(key);
            shard.bytes += bytes;
            if (from_disk)
                ++shard.loaded;
            evictOver(shard, shardBudget());
            // The freshly inserted entry itself may have been the FIFO
            // victim of an over-tight budget; the caller still gets its
            // value (ownership is shared), only residency changes.
        }
        auto found = shard.entries.find(key);
        return found != shard.entries.end() ? found->second.value
                                            : nullptr;
    }

    void
    evictOver(Shard &shard, std::uint64_t shard_budget)
        GRIFFIN_REQUIRES(shard.mu)
    {
        if (shard_budget == 0)
            return;
        while (shard.bytes > shard_budget && !shard.fifo.empty()) {
            const Key victim = shard.fifo.front();
            shard.fifo.pop_front();
            auto it = shard.entries.find(victim);
            if (it == shard.entries.end())
                continue; // already dropped by clear()
            shard.bytes -= it->second.bytes;
            shard.entries.erase(it);
            ++shard.evictions;
        }
    }

    std::uint64_t
    shardBudget() const
    {
        const auto budget = byteBudget_.load();
        return budget == 0 ? 0
                           : std::max<std::uint64_t>(
                                 1, budget / shards_.size());
    }

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> byteBudget_{0};
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_CONTENT_CACHE_HH
