#include "runtime/grid.hh"

#include <charconv>
#include <cmath>
#include <system_error>

#include "arch/category.hh"
#include "arch/presets.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "workloads/network.hh"

namespace griffin {

namespace {

/** How an axis's value tokens are typed and applied. */
enum class AxisKind
{
    Arch,     ///< replaces SweepSpec::archs (archByName)
    Network,  ///< replaces SweepSpec::networks (networkByName)
    Category, ///< replaces SweepSpec::categories (categoryFromString)
    Double,   ///< RunOptions double field
    Int,      ///< RunOptions integer field
    Bool,     ///< RunOptions bool field
    Schedule  ///< RunOptions SchedulePolicy field
};

struct AxisDesc
{
    const char *name;
    AxisKind kind;
    /** Write one parsed value into a RunOptions (numeric/bool axes). */
    void (*apply)(RunOptions &, const std::string &);
};

double
parseDoubleToken(const std::string &token)
{
    double v = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (res.ec != std::errc{} || res.ptr != token.data() + token.size())
        fatal("grid value '", token, "' is not a number");
    return v;
}

std::int64_t
parseIntToken(const std::string &token)
{
    std::int64_t v = 0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (res.ec != std::errc{} || res.ptr != token.data() + token.size())
        fatal("grid value '", token, "' is not an integer");
    return v;
}

bool
parseBoolToken(const std::string &token)
{
    if (token == "true" || token == "on" || token == "1")
        return true;
    if (token == "false" || token == "off" || token == "0")
        return false;
    fatal("grid value '", token,
          "' is not a boolean (true/false/on/off/1/0)");
}

const AxisDesc kAxes[] = {
    {"arch", AxisKind::Arch, nullptr},
    {"network", AxisKind::Network, nullptr},
    {"category", AxisKind::Category, nullptr},
    {"weight_lane_bias", AxisKind::Double,
     [](RunOptions &o, const std::string &v) {
         o.weightLaneBias = parseDoubleToken(v);
     }},
    {"act_run_length", AxisKind::Double,
     [](RunOptions &o, const std::string &v) {
         o.actRunLength = parseDoubleToken(v);
     }},
    {"sample_fraction", AxisKind::Double,
     [](RunOptions &o, const std::string &v) {
         o.sim.sampleFraction = parseDoubleToken(v);
     }},
    {"row_cap", AxisKind::Int,
     [](RunOptions &o, const std::string &v) {
         o.rowCap = parseIntToken(v);
     }},
    {"seed", AxisKind::Int,
     [](RunOptions &o, const std::string &v) {
         o.seed = static_cast<std::uint64_t>(parseIntToken(v));
     }},
    {"enforce_dram_bound", AxisKind::Bool,
     [](RunOptions &o, const std::string &v) {
         o.enforceDramBound = parseBoolToken(v);
     }},
    {"schedule_policy", AxisKind::Schedule,
     [](RunOptions &o, const std::string &v) {
         o.schedulePolicy = schedulePolicyFromString(v);
     }},
    {"sram_budget_kb", AxisKind::Int,
     [](RunOptions &o, const std::string &v) {
         o.sramBudgetBytes = parseIntToken(v) * 1024;
     }},
};

const AxisDesc &
findAxis(const std::string &name)
{
    for (const auto &desc : kAxes)
        if (name == desc.name)
            return desc;
    const auto names = GridSpec::axisNames();
    std::string valid;
    for (const auto &n : names)
        valid += (valid.empty() ? "" : ", ") + n;
    fatal("unknown grid axis '", name, "'; did you mean '",
          nearestName(name, names), "'? (valid axes: ", valid, ")");
}

bool
isNumeric(AxisKind kind)
{
    return kind == AxisKind::Double || kind == AxisKind::Int;
}

/**
 * Expand one value token of a numeric axis: "a..b" inclusive integer
 * range, "lo:hi:step" inclusive stepped range, or a single literal.
 */
std::vector<std::string>
expandNumericToken(const AxisDesc &desc, const std::string &token)
{
    const auto dots = token.find("..");
    if (dots != std::string::npos) {
        if (desc.kind != AxisKind::Int)
            fatal("malformed range '", token, "' on axis '", desc.name,
                  "': '..' ranges are integer-only; use "
                  "<lo>:<hi>:<step> on a real-valued axis");
        const auto lo_s = token.substr(0, dots);
        const auto hi_s = token.substr(dots + 2);
        if (lo_s.empty() || hi_s.empty())
            fatal("malformed range '", token, "' on axis '", desc.name,
                  "': expected <lo>..<hi>");
        const auto lo = parseIntToken(lo_s);
        const auto hi = parseIntToken(hi_s);
        if (lo > hi)
            fatal("malformed range '", token, "' on axis '", desc.name,
                  "': lower bound exceeds upper bound");
        std::vector<std::string> out;
        for (std::int64_t v = lo; v <= hi; ++v)
            out.push_back(std::to_string(v));
        return out;
    }
    if (token.find(':') != std::string::npos) {
        const auto parts = splitList(token, ':');
        if (parts.size() != 3)
            fatal("malformed range '", token, "' on axis '", desc.name,
                  "': expected <lo>:<hi>:<step>");
        std::vector<std::string> out;
        if (desc.kind == AxisKind::Int) {
            const auto lo = parseIntToken(parts[0]);
            const auto hi = parseIntToken(parts[1]);
            const auto step = parseIntToken(parts[2]);
            if (step <= 0 || lo > hi)
                fatal("malformed range '", token, "' on axis '",
                      desc.name,
                      "': need step > 0 and lo <= hi");
            for (std::int64_t v = lo; v <= hi; v += step)
                out.push_back(std::to_string(v));
        } else {
            const auto lo = parseDoubleToken(parts[0]);
            const auto hi = parseDoubleToken(parts[1]);
            const auto step = parseDoubleToken(parts[2]);
            if (!(step > 0.0) || lo > hi)
                fatal("malformed range '", token, "' on axis '",
                      desc.name,
                      "': need step > 0 and lo <= hi");
            // Integer stepping (lo + i*step) avoids accumulation
            // drift; the epsilon keeps hi inclusive when (hi-lo) is a
            // near-exact multiple of step (0:1:0.25 ends at 1).
            const auto count = static_cast<std::int64_t>(
                std::floor((hi - lo) / step + 1e-9));
            for (std::int64_t i = 0; i <= count; ++i)
                out.push_back(
                    formatShortestDouble(lo + static_cast<double>(i) *
                                                  step));
        }
        return out;
    }
    // Literal: validate the parse now so a typo names its token.
    if (desc.kind == AxisKind::Int)
        parseIntToken(token);
    else
        parseDoubleToken(token);
    return {token};
}

/** Validate (and canonicalize, for bools) one non-numeric token. */
std::string
checkLiteralToken(const AxisDesc &desc, const std::string &token)
{
    switch (desc.kind) {
      case AxisKind::Arch:
        archByName(token); // fatal() with known names when unknown
        return token;
      case AxisKind::Network:
        networkByName(token);
        return token;
      case AxisKind::Category:
        categoryFromString(token);
        return token;
      case AxisKind::Bool:
        return parseBoolToken(token) ? "true" : "false";
      case AxisKind::Schedule:
        return toString(schedulePolicyFromString(token));
      default:
        panic("literal check on numeric axis ", desc.name);
    }
}

} // namespace

std::vector<std::string>
GridSpec::axisNames()
{
    std::vector<std::string> names;
    for (const auto &desc : kAxes)
        names.push_back(desc.name);
    return names;
}

bool
GridSpec::has(const std::string &name) const
{
    for (const auto &ax : axes_)
        if (ax.name == name)
            return true;
    return false;
}

std::size_t
GridSpec::pointCount() const
{
    std::size_t n = 1;
    for (const auto &ax : axes_)
        n *= ax.values.size();
    return n;
}

GridSpec &
GridSpec::axis(const std::string &name, std::vector<std::string> values)
{
    const AxisDesc &desc = findAxis(name);
    if (has(name))
        fatal("grid axis '", name, "' declared twice");
    ParamAxis ax;
    ax.name = name;
    for (const auto &token : values) {
        const auto t = trim(token);
        if (t.empty())
            continue;
        if (isNumeric(desc.kind)) {
            for (auto &v : expandNumericToken(desc, t))
                ax.values.push_back(std::move(v));
        } else {
            ax.values.push_back(checkLiteralToken(desc, t));
        }
    }
    if (ax.values.empty())
        fatal("grid axis '", name, "' has no values");
    axes_.push_back(std::move(ax));
    return *this;
}

GridSpec &
GridSpec::axis(const std::string &name,
               std::initializer_list<double> values)
{
    std::vector<std::string> tokens;
    for (double v : values)
        tokens.push_back(formatShortestDouble(v));
    return axis(name, std::move(tokens));
}

GridSpec
GridSpec::parse(const std::string &text)
{
    if (trim(text).empty())
        fatal("empty grid spec");
    GridSpec grid;
    std::string current_axis;
    std::vector<std::string> current_values;
    auto flush = [&] {
        if (!current_axis.empty())
            grid.axis(current_axis, std::move(current_values));
        current_values.clear();
    };
    for (const auto &piece : splitTopLevel(text, ',')) {
        const auto item = trim(piece);
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq != std::string::npos) {
            flush();
            current_axis = trim(item.substr(0, eq));
            if (current_axis.empty())
                fatal("grid spec item '", item, "' has no axis name");
            const auto value = trim(item.substr(eq + 1));
            if (!value.empty())
                current_values.push_back(value);
        } else {
            if (current_axis.empty())
                fatal("grid spec value '", item,
                      "' appears before any 'axis=value' item");
            current_values.push_back(item);
        }
    }
    flush();
    return grid;
}

SweepSpec
GridSpec::toSweepSpec(const SweepSpec &base) const
{
    if (base.optionVariants.size() != 1)
        fatal("grid expansion needs exactly one base RunOptions "
              "variant, got ",
              base.optionVariants.size());
    SweepSpec spec = base;
    spec.optionCoords.clear();

    // Cartesian product of the RunOptions axes in declaration order:
    // the first axis varies slowest, so expandSweep()'s (options,
    // arch, network, category) nesting visits the grid exactly as a
    // serial nested loop over the declared axes would.
    std::vector<RunOptions> variants = base.optionVariants;
    std::vector<std::vector<AxisCoordinate>> coords{{}};
    for (const auto &ax : axes_) {
        const AxisDesc &desc = findAxis(ax.name);
        switch (desc.kind) {
          case AxisKind::Arch:
            spec.archs.clear();
            for (const auto &v : ax.values)
                spec.archs.push_back(archByName(v));
            break;
          case AxisKind::Network:
            spec.networks.clear();
            for (const auto &v : ax.values)
                spec.networks.push_back(networkByName(v));
            break;
          case AxisKind::Category:
            spec.categories.clear();
            for (const auto &v : ax.values)
                spec.categories.push_back(categoryFromString(v));
            break;
          default: {
            std::vector<RunOptions> next_variants;
            std::vector<std::vector<AxisCoordinate>> next_coords;
            next_variants.reserve(variants.size() * ax.values.size());
            next_coords.reserve(variants.size() * ax.values.size());
            for (std::size_t i = 0; i < variants.size(); ++i) {
                for (const auto &v : ax.values) {
                    RunOptions opt = variants[i];
                    desc.apply(opt, v);
                    next_variants.push_back(opt);
                    auto c = coords[i];
                    c.push_back({ax.name, v});
                    next_coords.push_back(std::move(c));
                }
            }
            variants = std::move(next_variants);
            coords = std::move(next_coords);
            break;
          }
        }
    }
    spec.optionVariants = std::move(variants);
    spec.optionCoords = std::move(coords);
    spec.validate();
    return spec;
}

} // namespace griffin
