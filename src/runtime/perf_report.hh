/**
 * @file
 * The BENCH_perf.json perf-trajectory artifact.
 *
 * `griffin_bench perf` runs a pinned microbench suite and serializes
 * its execution profile — per-stage wall-time breakdown (from
 * Telemetry::stageBreakdown), cache hit rates, and thread-pool
 * utilization — as a schema-versioned JSON document.  The document is
 * the repo's perf trajectory: CI produces one per run, and
 * `perf --compare old.json new.json` renders the run-over-run deltas
 * that let a scheduler or SIMD change be judged against the checked-in
 * seed (bench/baselines/BENCH_perf_seed.json).
 *
 * Unlike result documents, perf documents are machine- and load-
 * dependent by nature; nothing here participates in the byte-identical
 * baseline guarantee.  The schema name/version pair is what consumers
 * validate: parsePerfDocument() rejects any document whose "schema"
 * is not griffin_bench_perf or whose "schema_version" is newer than
 * this build understands.
 */

#ifndef GRIFFIN_RUNTIME_PERF_REPORT_HH
#define GRIFFIN_RUNTIME_PERF_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "runtime/content_cache.hh"

namespace griffin {

constexpr const char *perfSchemaName = "griffin_bench_perf";
/** v2 added the optional "kernels" micro-benchmark section
 *  (`griffin_bench perf --kernels`); v1 documents — no such key —
 *  still parse, so historical seeds keep working as compare inputs. */
constexpr int perfSchemaVersion = 2;

/** One pipeline stage's merged wall-time total within one entry. */
struct PerfStage
{
    std::string stage;
    std::uint64_t count = 0;
    double totalMs = 0.0;
};

/** One suite experiment's execution profile. */
struct PerfEntry
{
    std::string experiment;
    std::uint64_t jobs = 0;
    double wallMs = 0.0;
    double jobsPerSec = 0.0;
    /** pool busy time / (threads * wall time), 0..1. */
    double threadUtilization = 0.0;
    std::uint64_t poolSteals = 0;
    double poolBusyMs = 0.0;
    std::vector<PerfStage> stages; ///< stage-name order
    CacheStats scheduleCache;
    CacheStats aScheduleCache;
    CacheStats worksetCache;
};

/**
 * One SIMD kernel's micro-benchmark sample (schema v2 "kernels"
 * section): `ops` elements processed across the timed repetitions of
 * one KernelTable entry under the named dispatch backend.
 */
struct PerfKernel
{
    std::string kernel;
    std::string backend;
    std::uint64_t ops = 0;
    double totalMs = 0.0;
    double nsPerOp = 0.0;
};

/** The whole artifact. */
struct PerfDocument
{
    int schemaVersion = perfSchemaVersion;
    int threads = 1;
    double sample = 0.0;
    std::int64_t rowCap = 0;
    std::uint64_t seed = 0;
    double totalWallMs = 0.0;
    std::vector<PerfEntry> suite; ///< suite run order
    /** `perf --kernels` micro-bench rows; empty when the mode was not
     *  requested (the "kernels" key is then omitted entirely, and v1
     *  documents never carry it). */
    std::vector<PerfKernel> kernels;
};

/** Serialize as pretty JSON with a fixed key order. */
void writePerfJson(std::ostream &os, const PerfDocument &doc);

/**
 * Parse + schema-validate one perf document.  Returns false and fills
 * `error` on malformed JSON, a wrong "schema" tag, a "schema_version"
 * this build does not understand, or a missing/mistyped field.
 */
bool parsePerfDocument(const std::string &text, PerfDocument &out,
                       std::string &error);

/** Read + parse a perf document file; fatal() on any failure. */
PerfDocument loadPerfDocument(const std::string &path);

/**
 * Run-over-run deltas: a summary table (wall time, throughput,
 * utilization per experiment) and a per-stage wall-time table.
 * Experiments or stages present in only one document render with "-"
 * cells on the missing side.
 */
std::vector<Table> renderPerfCompare(const PerfDocument &oldDoc,
                                     const PerfDocument &newDoc);

/**
 * Gating comparison (`perf --compare --gate`): one human-readable
 * violation line per experiment present in BOTH documents whose
 * jobs_per_sec regressed by more than `tolerance` (0.10 = the CI
 * band).  Improvements and experiments on one side only never
 * violate.  Empty result = gate passes.
 */
std::vector<std::string> perfGateViolations(const PerfDocument &oldDoc,
                                            const PerfDocument &newDoc,
                                            double tolerance);

} // namespace griffin

#endif // GRIFFIN_RUNTIME_PERF_REPORT_HH
