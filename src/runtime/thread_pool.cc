#include "runtime/thread_pool.hh"

#include <chrono>

#include "common/logging.hh"

namespace griffin {

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        fatal("thread pool needs at least 1 thread, got ", threads);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        threads_.emplace_back(
            [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    // Drain-then-join: jobs already submitted are a promise to the
    // caller, so shutdown finishes them rather than dropping them.
    {
        MutexLock lock(mu_);
        stopping_ = true;
    }
    workCv_.notifyAll();
    for (auto &t : threads_)
        t.join();
    MutexLock lock(mu_);
    GRIFFIN_ASSERT(unfinished_ == 0,
                   "pool joined with ", unfinished_, " unfinished jobs");
}

void
ThreadPool::submit(std::function<void()> job)
{
    GRIFFIN_ASSERT(job != nullptr, "null job submitted");
    std::size_t target;
    {
        MutexLock lock(mu_);
        if (stopping_)
            panic("submit() on a stopping thread pool");
        ++unfinished_;
        ++queued_;
        target = nextWorker_;
        nextWorker_ = (nextWorker_ + 1) % workers_.size();
    }
    {
        MutexLock lock(workers_[target]->mu);
        workers_[target]->jobs.push_back(std::move(job));
    }
    workCv_.notifyOne();
}

void
ThreadPool::wait()
{
    MutexLock lock(mu_);
    while (unfinished_ != 0)
        idleCv_.wait(lock);
}

std::size_t
ThreadPool::pendingJobs() const
{
    MutexLock lock(mu_);
    return unfinished_;
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats s;
    s.executed = executed_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.busyNs = busyNs_.load(std::memory_order_relaxed);
    return s;
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

bool
ThreadPool::popOwn(std::size_t self, std::function<void()> &job)
{
    auto &w = *workers_[self];
    MutexLock lock(w.mu);
    if (w.jobs.empty())
        return false;
    job = std::move(w.jobs.back());
    w.jobs.pop_back();
    return true;
}

bool
ThreadPool::steal(std::size_t self, std::function<void()> &job)
{
    const std::size_t n = workers_.size();
    for (std::size_t i = 1; i < n; ++i) {
        auto &victim = *workers_[(self + i) % n];
        MutexLock lock(victim.mu);
        if (victim.jobs.empty())
            continue;
        job = std::move(victim.jobs.front());
        victim.jobs.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::function<void()> job;
        if (popOwn(self, job) || steal(self, job)) {
            {
                MutexLock lock(mu_);
                --queued_;
            }
            const auto start = std::chrono::steady_clock::now();
            job();
            busyNs_.fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count()),
                std::memory_order_relaxed);
            executed_.fetch_add(1, std::memory_order_relaxed);
            MutexLock lock(mu_);
            --unfinished_;
            if (unfinished_ == 0) {
                idleCv_.notifyAll();
                if (stopping_)
                    workCv_.notifyAll();
            }
            continue;
        }
        bool rescan = false;
        {
            MutexLock lock(mu_);
            // queued_ > 0 with empty deques means a submit() is
            // between its counter bump and its deque push: rescan,
            // don't sleep.
            if (queued_ > 0) {
                rescan = true;
            } else if (stopping_) {
                return; // nothing queued and no more submits coming
            } else {
                while (queued_ == 0 && !stopping_)
                    workCv_.wait(lock);
            }
        }
        if (rescan)
            std::this_thread::yield();
    }
}

} // namespace griffin
