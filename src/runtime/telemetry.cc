#include "runtime/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string_view>
#include <unordered_map>

#include "common/logging.hh"
#include "common/strings.hh"

namespace griffin {

namespace {

/**
 * Per-thread span storage.  Owned by the global thread list (shared
 * pointers), referenced thread-locally, so buffers of joined pool
 * workers survive until export.  The mutex is uncontended on the hot
 * path (only the owning thread appends; export threads lock briefly).
 */
struct ThreadTrace
{
    int tid = 0;
    Mutex mu;

    struct Event
    {
        const char *name;
        std::uint64_t startNs;
        std::uint64_t durNs;
    };
    std::vector<Event> events GRIFFIN_GUARDED_BY(mu);
    std::uint64_t droppedEvents GRIFFIN_GUARDED_BY(mu) = 0;

    struct Agg
    {
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
    };
    /**
     * Keyed by name *content* (a string_view over the span's literal,
     * which outlives the buffers by the ScopedSpan contract), never by
     * the literal's address: two call sites naming one stage — even
     * from different translation units, where the linker may or may
     * not fold the identical literals — are one entry.  Pointer keys
     * here would make the stage count depend on build details
     * (pinned by test_telemetry's two-TU merge test).
     */
    std::unordered_map<std::string_view, Agg> aggs
        GRIFFIN_GUARDED_BY(mu);
};

/**
 * Cap on retained events per thread: a full-fidelity sweep can emit
 * per-tile spans by the million, and an unbounded trace would eat the
 * heap before the file is ever written.  ~4M events is ~100 MB of
 * buffer and far beyond what a trace viewer needs.
 */
constexpr std::size_t maxEventsPerThread = std::size_t(1) << 22;

struct TraceGlobal
{
    Mutex mu;
    std::vector<std::shared_ptr<ThreadTrace>> threads
        GRIFFIN_GUARDED_BY(mu);
    int nextTid GRIFFIN_GUARDED_BY(mu) = 1;
};

TraceGlobal &
traceGlobal()
{
    static TraceGlobal g;
    return g;
}

ThreadTrace &
threadTrace()
{
    thread_local ThreadTrace *trace = [] {
        auto owned = std::make_shared<ThreadTrace>();
        TraceGlobal &g = traceGlobal();
        MutexLock lock(g.mu);
        owned->tid = g.nextTid++;
        g.threads.push_back(owned);
        return owned.get();
    }();
    return *trace;
}

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

// Pin the epoch at static-init time so span timestamps measure from
// (approximately) process start even if the first span fires late.
[[maybe_unused]] const auto epoch_initialized = processEpoch();

} // namespace

std::uint64_t
monotonicNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processEpoch())
            .count());
}

// ---- Histogram ------------------------------------------------------

void
Histogram::record(std::uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
    int bucket = 0;
    while (bucket + 1 < bucketCount &&
           (std::uint64_t(1) << (bucket + 1)) <= v)
        ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    const auto min = min_.load(std::memory_order_relaxed);
    s.min = s.count == 0 ? 0 : min;
    s.max = max_.load(std::memory_order_relaxed);
    for (int b = 0; b < bucketCount; ++b)
        s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    return s;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

// ---- MetricsRegistry ------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Slot &
MetricsRegistry::slot(const std::string &name, Kind kind)
{
    if (name.empty())
        panic("metric registration needs a name");
    MutexLock lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) {
        Slot fresh;
        fresh.kind = kind;
        switch (kind) {
          case Kind::Counter:
            fresh.counter = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            fresh.gauge = std::make_unique<Gauge>();
            break;
          case Kind::Histogram:
            fresh.histogram = std::make_unique<Histogram>();
            break;
        }
        it = slots_.emplace(name, std::move(fresh)).first;
    }
    if (it->second.kind != kind)
        panic("metric '", name, "' registered as two different kinds");
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *slot(name, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *slot(name, Kind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *slot(name, Kind::Histogram).histogram;
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    std::vector<MetricSnapshot> out;
    MutexLock lock(mu_);
    out.reserve(slots_.size());
    for (const auto &[name, slot] : slots_) {
        MetricSnapshot m;
        m.name = name;
        switch (slot.kind) {
          case Kind::Counter:
            m.kind = MetricSnapshot::Kind::Counter;
            m.counter = slot.counter->value();
            break;
          case Kind::Gauge:
            m.kind = MetricSnapshot::Kind::Gauge;
            m.gauge = slot.gauge->value();
            break;
          case Kind::Histogram:
            m.kind = MetricSnapshot::Kind::Histogram;
            m.histogram = slot.histogram->snapshot();
            break;
        }
        out.push_back(std::move(m));
    }
    return out;
}

void
MetricsRegistry::publishCacheStats(const std::string &prefix,
                                   const CacheStats &stats)
{
    gauge(prefix + ".hits").set(static_cast<double>(stats.hits));
    gauge(prefix + ".misses").set(static_cast<double>(stats.misses));
    gauge(prefix + ".hit_rate").set(stats.hitRate());
    gauge(prefix + ".entries").set(static_cast<double>(stats.entries));
    gauge(prefix + ".resident_bytes")
        .set(static_cast<double>(stats.residentBytes));
    gauge(prefix + ".evictions")
        .set(static_cast<double>(stats.evictions));
    gauge(prefix + ".loaded_entries")
        .set(static_cast<double>(stats.loadedEntries));
    gauge(prefix + ".load_hits")
        .set(static_cast<double>(stats.loadHits));
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mu_);
    for (auto &[name, slot] : slots_) {
        static_cast<void>(name);
        switch (slot.kind) {
          case Kind::Counter:
            slot.counter->reset();
            break;
          case Kind::Gauge:
            slot.gauge->reset();
            break;
          case Kind::Histogram:
            slot.histogram->reset();
            break;
        }
    }
}

// ---- Telemetry ------------------------------------------------------

std::atomic<int> &
Telemetry::modeFlag()
{
    static std::atomic<int> mode{static_cast<int>(Mode::Off)};
    return mode;
}

Telemetry::Mode
Telemetry::mode()
{
    return static_cast<Mode>(
        modeFlag().load(std::memory_order_relaxed));
}

void
Telemetry::setMode(Mode mode)
{
    modeFlag().store(static_cast<int>(mode),
                     std::memory_order_relaxed);
}

void
Telemetry::record(const char *name, std::uint64_t start_ns,
                  std::uint64_t dur_ns)
{
    ThreadTrace &trace = threadTrace();
    MutexLock lock(trace.mu);
    auto &agg = trace.aggs[std::string_view(name)];
    ++agg.count;
    agg.totalNs += dur_ns;
    if (mode() != Mode::Full)
        return;
    if (trace.events.size() >= maxEventsPerThread) {
        ++trace.droppedEvents;
        return;
    }
    trace.events.push_back({name, start_ns, dur_ns});
}

std::vector<StageAgg>
Telemetry::stageBreakdown()
{
    // Merge every thread's per-stage totals; the std::map is the
    // deterministic (name-sorted) order every consumer renders in.
    std::map<std::string, StageAgg> merged;
    TraceGlobal &g = traceGlobal();
    MutexLock glock(g.mu);
    for (const auto &thread : g.threads) {
        MutexLock lock(thread->mu);
        for (const auto &[name, agg] : thread->aggs) {
            StageAgg &into = merged[std::string(name)];
            into.stage = std::string(name);
            into.count += agg.count;
            into.totalNs += agg.totalNs;
        }
    }
    std::vector<StageAgg> out;
    out.reserve(merged.size());
    for (auto &[name, agg] : merged) {
        static_cast<void>(name);
        out.push_back(std::move(agg));
    }
    return out;
}

void
Telemetry::writeChromeTrace(std::ostream &os)
{
    TraceGlobal &g = traceGlobal();
    MutexLock glock(g.mu);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    std::uint64_t dropped = 0;
    for (const auto &thread : g.threads) {
        MutexLock lock(thread->mu);
        dropped += thread->droppedEvents;
        if (thread->events.empty() && thread->aggs.empty())
            continue;
        os << (first ? "\n" : ",\n")
           << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << thread->tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
              "\"thread-"
           << thread->tid << "\"}}";
        first = false;
        for (const auto &e : thread->events) {
            os << ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": "
               << thread->tid << ", \"name\": \"" << e.name
               << "\", \"cat\": \"pipeline\", \"ts\": "
               << formatShortestDouble(
                      static_cast<double>(e.startNs) / 1e3)
               << ", \"dur\": "
               << formatShortestDouble(
                      static_cast<double>(e.durNs) / 1e3)
               << "}";
        }
    }
    if (!first)
        os << "\n";
    os << "]}\n";
    if (dropped > 0)
        warn("trace dropped ", dropped, " events past the ",
             maxEventsPerThread,
             "-per-thread cap; lower the fidelity for complete traces");
}

std::uint64_t
Telemetry::eventCount()
{
    std::uint64_t count = 0;
    TraceGlobal &g = traceGlobal();
    MutexLock glock(g.mu);
    for (const auto &thread : g.threads) {
        MutexLock lock(thread->mu);
        count += thread->events.size();
    }
    return count;
}

void
Telemetry::clear()
{
    TraceGlobal &g = traceGlobal();
    MutexLock glock(g.mu);
    for (const auto &thread : g.threads) {
        MutexLock lock(thread->mu);
        thread->events.clear();
        thread->aggs.clear();
        thread->droppedEvents = 0;
    }
}

} // namespace griffin
