#include "runtime/schedule_cache.hh"

#include "sched/a_arbiter.hh"

namespace griffin {

namespace {

/** Fold a 3-D tile view's INT8 elements 8 per word before mixing: one
 *  splitmix round per 8 elements instead of per element. */
template <typename View>
void
foldTileContent(ContentHasher &h, const View &v)
{
    std::uint64_t word = 0;
    int packed = 0;
    for (std::int64_t k1 = 0; k1 < v.steps(); ++k1) {
        for (int k2 = 0; k2 < v.lanes(); ++k2) {
            for (int u = 0; u < v.units(); ++u) {
                word = (word << 8) |
                       static_cast<std::uint8_t>(v.at(k1, k2, u));
                if (++packed == 8) {
                    h.fold(word);
                    word = 0;
                    packed = 0;
                }
            }
        }
    }
    if (packed != 0)
        h.fold(word);
}

} // namespace

ScheduleCache::Key
ScheduleCache::contentKey(const TileViewB &b, const Borrow &db,
                          const Shuffler &shuffler)
{
    // Salts and fold order are frozen: cache files persist these keys
    // (cache_store.hh), so any change here is a format version bump.
    ContentHasher h(0x5ca1ab1eULL, 0xdecafbadULL,
                    static_cast<std::uint64_t>(b.steps()));
    h.fold(static_cast<std::uint64_t>(b.lanes()));
    h.fold(static_cast<std::uint64_t>(b.units()));
    h.fold(static_cast<std::uint64_t>(db.d1));
    h.fold(static_cast<std::uint64_t>(db.d2));
    h.fold(static_cast<std::uint64_t>(db.d3));
    h.fold(shuffler.enabled() ? 1u : 0u);
    h.fold(static_cast<std::uint64_t>(shuffler.groupSize()));
    foldTileContent(h, b);
    return h.key();
}

std::shared_ptr<const BSchedule>
ScheduleCache::obtain(const TileViewB &b, const Borrow &db,
                      const Shuffler &shuffler)
{
    return cache_.obtain(contentKey(b, db, shuffler), [&] {
        return preprocessB(b, db, shuffler, false);
    });
}

AScheduleCache::Key
AScheduleCache::contentKey(const TileViewA &a, const Borrow &da,
                           const Shuffler &shuffler, double advance_cap)
{
    ContentHasher h(0x0a5c4ed5ULL, 0xa12b17e2ULL,
                    static_cast<std::uint64_t>(a.steps()));
    h.fold(static_cast<std::uint64_t>(a.lanes()));
    h.fold(static_cast<std::uint64_t>(a.units()));
    h.fold(static_cast<std::uint64_t>(da.d1));
    h.fold(static_cast<std::uint64_t>(da.d2));
    h.fold(static_cast<std::uint64_t>(da.d3));
    h.fold(shuffler.enabled() ? 1u : 0u);
    h.fold(static_cast<std::uint64_t>(shuffler.groupSize()));
    h.foldDouble(advance_cap);
    foldTileContent(h, a);
    return h.key();
}

std::shared_ptr<const ASchedule>
AScheduleCache::obtain(const TileViewA &a, const Borrow &da,
                       const Shuffler &shuffler, double advance_cap)
{
    return cache_.obtain(contentKey(a, da, shuffler, advance_cap), [&] {
        return ASchedule{
            scheduleA(a, da, shuffler, advance_cap, false).stats};
    });
}

} // namespace griffin
