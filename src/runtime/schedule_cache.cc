#include "runtime/schedule_cache.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace griffin {

ScheduleCache::ScheduleCache(std::size_t shards)
{
    if (shards == 0)
        fatal("schedule cache needs at least 1 shard");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ScheduleCache::Key
ScheduleCache::contentKey(const TileViewB &b, const Borrow &db,
                          const Shuffler &shuffler)
{
    // Two independently-salted streams give a 128-bit key.  The hash
    // covers the schedule's full input domain: tile geometry, every
    // element's zero pattern (padding included, via the view's
    // zero-extension), the borrow window, and the shuffle config.
    std::uint64_t lo = Rng::mixSeed(0x5ca1ab1eULL, b.steps());
    std::uint64_t hi = Rng::mixSeed(0xdecafbadULL, b.steps());
    auto fold = [&](std::uint64_t v) {
        lo = Rng::mixSeed(lo, v);
        hi = Rng::mixSeed(hi, v + 0x9e37ULL);
    };
    fold(static_cast<std::uint64_t>(b.lanes()));
    fold(static_cast<std::uint64_t>(b.units()));
    fold(static_cast<std::uint64_t>(db.d1));
    fold(static_cast<std::uint64_t>(db.d2));
    fold(static_cast<std::uint64_t>(db.d3));
    fold(shuffler.enabled() ? 1u : 0u);
    fold(static_cast<std::uint64_t>(shuffler.groupSize()));

    // Pack the tile's INT8 elements 8 per word before mixing: one
    // splitmix round per 8 elements instead of per element.
    std::uint64_t word = 0;
    int packed = 0;
    for (std::int64_t k1 = 0; k1 < b.steps(); ++k1) {
        for (int k2 = 0; k2 < b.lanes(); ++k2) {
            for (int n = 0; n < b.units(); ++n) {
                word = (word << 8) |
                       static_cast<std::uint8_t>(b.at(k1, k2, n));
                if (++packed == 8) {
                    fold(word);
                    word = 0;
                    packed = 0;
                }
            }
        }
    }
    if (packed != 0)
        fold(word);
    return Key{lo, hi};
}

ScheduleCache::Shard &
ScheduleCache::shardFor(const Key &key)
{
    return *shards_[key.hi % shards_.size()];
}

const ScheduleCache::Shard &
ScheduleCache::shardFor(const Key &key) const
{
    return *shards_[key.hi % shards_.size()];
}

void
ScheduleCache::evictOver(Shard &shard, std::uint64_t shard_budget)
{
    if (shard_budget == 0)
        return;
    while (shard.bytes > shard_budget && !shard.fifo.empty()) {
        const Key victim = shard.fifo.front();
        shard.fifo.pop_front();
        auto it = shard.entries.find(victim);
        if (it == shard.entries.end())
            continue; // already dropped by clear()
        shard.bytes -= it->second.bytes;
        shard.entries.erase(it);
        ++shard.evictions;
    }
}

std::shared_ptr<const BSchedule>
ScheduleCache::insertIntoShard(Shard &shard, const Key &key,
                               std::shared_ptr<const BSchedule> schedule,
                               bool from_disk, bool &inserted)
{
    const auto bytes =
        static_cast<std::uint64_t>(schedule->approxBytes());
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry entry{std::move(schedule), bytes, from_disk};
    auto [it, fresh] = shard.entries.emplace(key, std::move(entry));
    inserted = fresh;
    if (fresh) {
        shard.fifo.push_back(key);
        shard.bytes += bytes;
        if (from_disk)
            ++shard.loaded;
        evictOver(shard, shardBudget());
        // The freshly inserted entry itself may have been the FIFO
        // victim of an over-tight budget; the caller still gets its
        // schedule (ownership is shared), only residency changes.
    }
    auto found = shard.entries.find(key);
    return found != shard.entries.end() ? found->second.schedule
                                        : nullptr;
}

std::shared_ptr<const BSchedule>
ScheduleCache::obtain(const TileViewB &b, const Borrow &db,
                      const Shuffler &shuffler)
{
    const Key key = contentKey(b, db, shuffler);
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            ++shard.hits;
            if (it->second.fromDisk)
                ++shard.loadHits;
            return it->second.schedule;
        }
        ++shard.misses;
    }

    // Compute outside the lock; a concurrent requester of the same key
    // recomputes the identical schedule and the first insert wins.
    auto fresh = std::make_shared<const BSchedule>(
        preprocessB(b, db, shuffler, false));

    bool inserted = false;
    auto resident =
        insertIntoShard(shard, key, fresh, false, inserted);
    return resident != nullptr ? resident : fresh;
}

bool
ScheduleCache::insertLoaded(const Key &key, BSchedule schedule)
{
    Shard &shard = shardFor(key);
    bool inserted = false;
    insertIntoShard(shard, key,
                    std::make_shared<const BSchedule>(
                        std::move(schedule)),
                    true, inserted);
    return inserted;
}

void
ScheduleCache::forEachEntry(
    const std::function<void(
        const Key &, const std::shared_ptr<const BSchedule> &)> &fn)
    const
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        for (const auto &[key, entry] : shard->entries)
            fn(key, entry.schedule);
    }
}

void
ScheduleCache::setByteBudget(std::uint64_t bytes)
{
    byteBudget_.store(bytes);
    if (bytes == 0)
        return;
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        evictOver(*shard, shardBudget());
    }
}

ScheduleCache::Stats
ScheduleCache::stats() const
{
    Stats s;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        s.hits += shard->hits;
        s.misses += shard->misses;
        s.entries += shard->entries.size();
        s.residentBytes += shard->bytes;
        s.evictions += shard->evictions;
        s.loadedEntries += shard->loaded;
        s.loadHits += shard->loadHits;
    }
    return s;
}

void
ScheduleCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->entries.clear();
        shard->fifo.clear();
        shard->bytes = 0;
    }
}

} // namespace griffin
