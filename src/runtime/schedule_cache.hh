/**
 * @file
 * Content-hash-keyed memoization of per-side schedule computation —
 * stage 2 of the staged GEMM pipeline (sim/gemm_sim.hh).
 *
 * Both caches are thin typed fronts over the shared cache policy in
 * content_cache.hh (sharded maps, compute-outside-the-lock misses,
 * FIFO byte budget, load/hit stats); only the key derivation and the
 * computed value differ per side:
 *
 *   - ScheduleCache: preprocessB() is the dominant per-column-tile
 *     cost of Sparse.B and preprocessed dual-sparse runs, and it is a
 *     pure function of the tile's zero pattern, the borrow window, and
 *     the shuffle setting.  Sweep jobs that share a weight tensor —
 *     the same network at the same sparsity and seed, swept across
 *     architectures, categories, or run options with identical B-side
 *     routing — therefore recompute byte-identical schedules.  This
 *     cache shares one immutable BSchedule across every job that asks.
 *
 *   - AScheduleCache: the symmetric A-side memoization.  scheduleA()
 *     is a pure function of the A tile's zero pattern, the borrow
 *     window, the shuffle setting, and the bandwidth cap; only its
 *     ScheduleStats feed the simulator (single-sparse A tiles are
 *     never replayed element-wise), so the cached value is the stats
 *     record alone.
 *
 * Caching is an optimization only: cached and freshly-computed
 * schedules are identical, so results never change — only the hit
 * rate.  Persistence: cache_store.hh serializes ScheduleCache entries
 * to a versioned binary file between runs; entries restored from disk
 * are tracked separately (Stats::loadedEntries / loadHits) so a sweep
 * can report how much preprocessing the file actually saved.
 */

#ifndef GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH
#define GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH

#include "runtime/content_cache.hh"
#include "sched/b_preprocess.hh"

namespace griffin {

class ScheduleCache
{
  public:
    /** 128-bit content key of one cached schedule. */
    using Key = CacheKey128;
    using Stats = CacheStats;
    using Value = BSchedule;

    explicit ScheduleCache(std::size_t shards = 16) : cache_(shards) {}

    /**
     * The compressed stream of tile `b` under window `db` and
     * `shuffler`, computed on first request and shared afterwards.
     * The returned schedule is immutable and outlives the cache entry
     * (shared ownership), so callers may hold it across clear().
     *
     * Cached schedules never carry recorded ops (record = false);
     * verification passes that need ops must call preprocessB()
     * directly.
     */
    std::shared_ptr<const BSchedule>
    obtain(const TileViewB &b, const Borrow &db, const Shuffler &shuffler);

    Stats stats() const { return cache_.stats(); }

    /** Drop every entry (stat counters survive). */
    void clear() { cache_.clear(); }

    /** Cap resident schedule bytes (see ContentCache::setByteBudget). */
    void setByteBudget(std::uint64_t bytes)
    {
        cache_.setByteBudget(bytes);
    }

    /** Insert a disk-restored schedule (see ContentCache::insertLoaded). */
    bool
    insertLoaded(const Key &key, BSchedule schedule)
    {
        return cache_.insertLoaded(key, std::move(schedule));
    }

    /** Visit every resident entry (see ContentCache::forEachEntry). */
    void
    forEachEntry(const std::function<void(
                     const Key &,
                     const std::shared_ptr<const BSchedule> &)> &fn) const
    {
        cache_.forEachEntry(fn);
    }

    /**
     * The key of one B-side schedule: covers the schedule's full input
     * domain — tile geometry, every element's zero pattern (padding
     * included, via the view's zero-extension), the borrow window, and
     * the shuffle config.  This derivation is part of the persistent
     * cache-file contract (cache_store.hh): changing it requires a
     * format version bump.
     */
    static Key contentKey(const TileViewB &b, const Borrow &db,
                          const Shuffler &shuffler);

  private:
    ContentCache<BSchedule> cache_;
};

/** Cached outcome of scheduleA() on one A tile: the stats record the
 *  simulator consumes (single-sparse A streams are never replayed
 *  element-wise, so nothing else needs to survive). */
struct ASchedule
{
    ScheduleStats stats;

    std::size_t approxBytes() const { return sizeof(ASchedule); }
};

class AScheduleCache
{
  public:
    using Key = CacheKey128;
    using Stats = CacheStats;
    using Value = ASchedule;

    explicit AScheduleCache(std::size_t shards = 16) : cache_(shards) {}

    /**
     * The arbiter schedule stats of tile `a` under window `da`,
     * `shuffler`, and ASRAM bandwidth `advance_cap`, computed on first
     * request and shared afterwards.
     */
    std::shared_ptr<const ASchedule>
    obtain(const TileViewA &a, const Borrow &da, const Shuffler &shuffler,
           double advance_cap);

    Stats stats() const { return cache_.stats(); }
    void clear() { cache_.clear(); }
    void setByteBudget(std::uint64_t bytes)
    {
        cache_.setByteBudget(bytes);
    }

    /** The A-side key: tile geometry and zero pattern, borrow window,
     *  shuffle config, and the bandwidth cap (which changes cycle
     *  counts, unlike offline B packing). */
    static Key contentKey(const TileViewA &a, const Borrow &da,
                          const Shuffler &shuffler, double advance_cap);

  private:
    ContentCache<ASchedule> cache_;
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH
