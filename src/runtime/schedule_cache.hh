/**
 * @file
 * Content-hash-keyed memoization of B-side preprocessing.
 *
 * preprocessB() is the dominant per-column-tile cost of Sparse.B and
 * preprocessed dual-sparse runs, and it is a pure function of the
 * tile's zero pattern, the borrow window, and the shuffle setting.
 * Sweep jobs that share a weight tensor — the same network at the same
 * sparsity and seed, swept across architectures, categories, or run
 * options with identical B-side routing — therefore recompute byte-
 * identical schedules.  This cache keys the compressed stream by a
 * content hash of exactly those inputs and shares one immutable
 * BSchedule across every job that asks.
 *
 * Thread-safe: the map is sharded by key hash, each shard behind its
 * own mutex.  On a miss the schedule is computed *outside* the shard
 * lock (packing a tile is milliseconds; holding the lock would
 * serialise the pool) and the first finisher wins — preprocessB() is
 * deterministic, so concurrent double-computes insert equal values.
 *
 * Capacity: an optional byte budget (setByteBudget) bounds residency;
 * each shard evicts its oldest entries FIFO once it exceeds its slice
 * of the budget.  Eviction only drops the cache's reference — callers
 * holding a shared_ptr keep their schedule — and never changes any
 * result, only the hit rate.
 *
 * Persistence: cache_store.hh serializes entries to a versioned binary
 * file between runs.  Entries restored from disk are tracked
 * separately (Stats::loadedEntries / loadHits) so a sweep can report
 * how much preprocessing the file actually saved.
 *
 * Keys are 128 bits of splitmix-mixed content hash; collisions are
 * treated as impossible (the sweep grids this serves are ~1e4 tiles,
 * collision odds ~1e-30).
 */

#ifndef GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH
#define GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/b_preprocess.hh"

namespace griffin {

class ScheduleCache
{
  public:
    /** 128-bit content key of one cached schedule. */
    struct Key
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;

        bool
        operator==(const Key &o) const
        {
            return lo == o.lo && hi == o.hi;
        }
    };

    /** Aggregate counters (monotone except entries/residentBytes). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;  ///< includes concurrent recomputes
        std::uint64_t entries = 0; ///< resident schedules
        std::uint64_t residentBytes = 0; ///< approx footprint of entries
        std::uint64_t evictions = 0; ///< entries dropped by byte budget
        /** Entries restored from a cache file (cache_store.hh). */
        std::uint64_t loadedEntries = 0;
        /** Hits served by a disk-loaded entry: preprocessing skipped
         *  entirely thanks to a previous run. */
        std::uint64_t loadHits = 0;

        double
        hitRate() const
        {
            const auto total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(total);
        }
    };

    explicit ScheduleCache(std::size_t shards = 16);

    /**
     * The compressed stream of tile `b` under window `db` and
     * `shuffler`, computed on first request and shared afterwards.
     * The returned schedule is immutable and outlives the cache entry
     * (shared ownership), so callers may hold it across clear().
     *
     * Cached schedules never carry recorded ops (record = false);
     * verification passes that need ops must call preprocessB()
     * directly.
     */
    std::shared_ptr<const BSchedule>
    obtain(const TileViewB &b, const Borrow &db, const Shuffler &shuffler);

    Stats stats() const;

    /** Drop every entry (stat counters survive). */
    void clear();

    /**
     * Cap resident schedule bytes (0 = unbounded, the default).  Each
     * of the N shards evicts FIFO — oldest insertion first — once it
     * holds more than budget/N bytes.  Applies immediately to current
     * residents and to every later insert.
     */
    void setByteBudget(std::uint64_t bytes);

    /**
     * Insert one schedule under an externally computed key, marking it
     * disk-loaded for Stats purposes.  Used by cache_store.hh when
     * restoring a cache file; an already-present key is left alone
     * (the resident entry is identical by construction).  Returns
     * whether the entry was inserted.
     */
    bool insertLoaded(const Key &key, BSchedule schedule);

    /**
     * Visit every resident entry (shard by shard, under that shard's
     * lock — the callback must not reenter the cache).  Iteration
     * order is unspecified; the cache store sorts by key for a
     * deterministic file layout.  The callback receives the shared
     * owner, so a snapshot taken here stays valid across later
     * evictions.
     */
    void forEachEntry(
        const std::function<void(
            const Key &, const std::shared_ptr<const BSchedule> &)> &fn)
        const;

  private:
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return static_cast<std::size_t>(k.lo);
        }
    };

    struct Entry
    {
        std::shared_ptr<const BSchedule> schedule;
        std::uint64_t bytes = 0;
        bool fromDisk = false;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<Key, Entry, KeyHash> entries;
        std::deque<Key> fifo; ///< insertion order, for eviction
        std::uint64_t bytes = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t loaded = 0;
        std::uint64_t loadHits = 0;
    };

    static Key contentKey(const TileViewB &b, const Borrow &db,
                          const Shuffler &shuffler);

    Shard &shardFor(const Key &key);
    const Shard &shardFor(const Key &key) const;

    /** Insert under the shard lock, then evict down to the budget. */
    std::shared_ptr<const BSchedule>
    insertIntoShard(Shard &shard, const Key &key,
                    std::shared_ptr<const BSchedule> schedule,
                    bool from_disk, bool &inserted);

    /** Caller holds shard.mu. */
    void evictOver(Shard &shard, std::uint64_t shard_budget);

    std::uint64_t
    shardBudget() const
    {
        const auto budget = byteBudget_.load();
        return budget == 0 ? 0
                           : std::max<std::uint64_t>(
                                 1, budget / shards_.size());
    }

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::uint64_t> byteBudget_{0};
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH
