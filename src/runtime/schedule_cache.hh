/**
 * @file
 * Content-hash-keyed memoization of B-side preprocessing.
 *
 * preprocessB() is the dominant per-column-tile cost of Sparse.B and
 * preprocessed dual-sparse runs, and it is a pure function of the
 * tile's zero pattern, the borrow window, and the shuffle setting.
 * Sweep jobs that share a weight tensor — the same network at the same
 * sparsity and seed, swept across architectures, categories, or run
 * options with identical B-side routing — therefore recompute byte-
 * identical schedules.  This cache keys the compressed stream by a
 * content hash of exactly those inputs and shares one immutable
 * BSchedule across every job that asks.
 *
 * Thread-safe: the map is sharded by key hash, each shard behind its
 * own mutex.  On a miss the schedule is computed *outside* the shard
 * lock (packing a tile is milliseconds; holding the lock would
 * serialise the pool) and the first finisher wins — preprocessB() is
 * deterministic, so concurrent double-computes insert equal values.
 *
 * Keys are 128 bits of splitmix-mixed content hash; collisions are
 * treated as impossible (the sweep grids this serves are ~1e4 tiles,
 * collision odds ~1e-30).
 */

#ifndef GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH
#define GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/b_preprocess.hh"

namespace griffin {

class ScheduleCache
{
  public:
    /** Aggregate counters (monotone; read with stats()). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;   ///< includes concurrent recomputes
        std::uint64_t entries = 0;  ///< resident schedules

        double
        hitRate() const
        {
            const auto total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(total);
        }
    };

    explicit ScheduleCache(std::size_t shards = 16);

    /**
     * The compressed stream of tile `b` under window `db` and
     * `shuffler`, computed on first request and shared afterwards.
     * The returned schedule is immutable and outlives the cache entry
     * (shared ownership), so callers may hold it across clear().
     *
     * Cached schedules never carry recorded ops (record = false);
     * verification passes that need ops must call preprocessB()
     * directly.
     */
    std::shared_ptr<const BSchedule>
    obtain(const TileViewB &b, const Borrow &db, const Shuffler &shuffler);

    Stats stats() const;

    /** Drop every entry (stat counters survive). */
    void clear();

  private:
    struct Key
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;

        bool
        operator==(const Key &o) const
        {
            return lo == o.lo && hi == o.hi;
        }
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return static_cast<std::size_t>(k.lo);
        }
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<Key, std::shared_ptr<const BSchedule>, KeyHash>
            entries;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    static Key contentKey(const TileViewB &b, const Borrow &db,
                          const Shuffler &shuffler);

    Shard &shardFor(const Key &key);

    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace griffin

#endif // GRIFFIN_RUNTIME_SCHEDULE_CACHE_HH
