/**
 * @file
 * Disk persistence for the content-addressed runtime caches.
 *
 * A sweep's B-side preprocessing (schedule_cache.hh) and its layer
 * workset generation (workset_cache.hh) are pure functions of their
 * content keys, so the computed values are valid across process
 * lifetimes.  This store serializes a cache's resident entries, keyed
 * by their 128-bit content hash, to a versioned binary file; loading
 * it before the next sweep makes every previously-seen key a cache hit
 * and skips its computation entirely (Stats::loadHits counts exactly
 * those).
 *
 * File format (all scalars fixed-width little-endian):
 *
 *   magic   "GRFC" / "GRFW"             4 bytes
 *   version 0x01                        1 byte
 *   count   u64                         number of entries
 *   entry*  key.lo u64, key.hi u64, value serialize() payload
 *
 * ("GRFC" holds BSchedule payloads for the ScheduleCache, "GRFW"
 * LayerWorkset payloads for the WorksetCache; the two never share a
 * file.)  Entries are written sorted by key, so saving the same cache
 * contents always produces a byte-identical file.
 *
 * Invalidation rules: content keys already encode every computation
 * input, so a stale *entry* is impossible — a changed tile, window,
 * shuffle config, or generation parameter simply hashes to a new key
 * and misses.  The format version is the only whole-file invalidator:
 * it must be bumped whenever the value's serialized layout or the key
 * derivation (contentKey / Rng::mixSeed) changes, and a version or
 * magic mismatch discards the file with a warn() rather than failing
 * the run.  Corrupt or truncated files are likewise discarded, never
 * trusted partially beyond the entries that fully parsed.
 */

#ifndef GRIFFIN_RUNTIME_CACHE_STORE_HH
#define GRIFFIN_RUNTIME_CACHE_STORE_HH

#include <cstddef>
#include <string>

#include "runtime/schedule_cache.hh"
#include "runtime/workset_cache.hh"

namespace griffin {

/** Current GRFC (schedule) format version (invalidation rules above). */
constexpr unsigned char cacheFileVersion = 0x01;

/** Current GRFW (workset) format version (invalidation rules above). */
constexpr unsigned char worksetFileVersion = 0x01;

/**
 * Restore entries from `path` into `cache` (marked disk-loaded for
 * Stats).  A missing file is a normal first run and returns 0; a
 * mismatched or corrupt file warn()s and returns however many entries
 * parsed cleanly before the damage.  Returns the number of entries
 * inserted.
 */
std::size_t loadCacheFile(const std::string &path, ScheduleCache &cache);

/**
 * Write every resident entry of `cache` to `path`, replacing the file.
 * fatal() on an unwritable path.  Returns the number of entries
 * written.
 */
std::size_t saveCacheFile(const std::string &path,
                          const ScheduleCache &cache);

/** The GRFW forms of load/saveCacheFile, same contracts. */
std::size_t loadWorksetCacheFile(const std::string &path,
                                 WorksetCache &cache);
std::size_t saveWorksetCacheFile(const std::string &path,
                                 const WorksetCache &cache);

} // namespace griffin

#endif // GRIFFIN_RUNTIME_CACHE_STORE_HH
