/**
 * @file
 * Declarative experiment sweeps over the (architecture x network x
 * category x RunOptions) grid, sharded across a work-stealing pool.
 *
 * The seed benches walk this grid serially through
 * Accelerator::runSuite; sparse-optimization studies sweep grids far
 * larger than six networks, so the runner turns the grid into
 * independent jobs:
 *
 *   SweepSpec spec;
 *   spec.archs = {sparseBStar(), griffinArch()};
 *   spec.networks = benchmarkSuite();
 *   spec.categories = {DnnCategory::B, DnnCategory::AB};
 *   auto sweep = runSweep(spec, 8);
 *   writeJson(std::cout, sweep.results());
 *
 * Determinism: every job's inputs are fixed at expansion time (its
 * own RunOptions copy; Accelerator::run derives all randomness from
 * opt.seed and the network name), and results land in a slot indexed
 * by submission order — so the merged output is bit-identical no
 * matter how many threads ran it or how work-stealing interleaved the
 * jobs.  Accelerator::run is const and shares no mutable state, which
 * is what makes the fan-out safe.  With SweepSpec::shardLayers the
 * fan-out goes one level deeper — one sub-job per network layer via
 * Accelerator::runLayer, whose streams depend only on (seed, network,
 * layer index) — and the per-job reduce reassembles NetworkResult in
 * layer order, preserving the same bit-identity guarantee.
 *
 * Caches shared across the sweep memoize the staged pipeline's
 * intermediate artifacts between jobs: B-side preprocessing and A-side
 * arbiter schedules (schedule_cache.hh) and whole layer worksets
 * (workset_cache.hh).  All are optimizations only and do not change
 * any result.  With SweepSpec::batchArchs the runner additionally
 * batches multiple GEMMs per job — every architecture of one
 * (network, category, options) grid point shares one sub-job per
 * layer, so each workset is generated once and swept across the whole
 * arch axis while still warm.
 */

#ifndef GRIFFIN_RUNTIME_RUNNER_HH
#define GRIFFIN_RUNTIME_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "griffin/accelerator.hh"
#include "runtime/schedule_cache.hh"
#include "runtime/workset_cache.hh"

namespace griffin {

/**
 * One resolved (axis name, value token) pair of a grid-expanded
 * RunOptions variant.  Jobs carry their full coordinate list so every
 * serialized result row is self-describing (runtime/grid.hh builds
 * them; hand-built SweepSpecs may leave them empty).
 */
struct AxisCoordinate
{
    std::string axis;
    std::string value;

    bool
    operator==(const AxisCoordinate &o) const
    {
        return axis == o.axis && value == o.value;
    }
    bool operator!=(const AxisCoordinate &o) const { return !(*this == o); }
};

/** "axis=value axis=value" rendering for tables and logs. */
std::string coordsLabel(const std::vector<AxisCoordinate> &coords);

/**
 * One point of the sweep grid, fully determined before submission.
 * Indices refer to the SweepSpec vectors the job was expanded from.
 */
struct SweepJob
{
    std::size_t archIndex = 0;
    std::size_t networkIndex = 0;
    std::size_t categoryIndex = 0;
    std::size_t optionsIndex = 0;
    RunOptions options; ///< resolved options, job seed included
    /** Grid coordinates of this job's RunOptions variant (empty for
     *  hand-built variant lists). */
    std::vector<AxisCoordinate> coords;
};

/** The declarative grid. */
struct SweepSpec
{
    std::vector<ArchConfig> archs;
    std::vector<NetworkSpec> networks;
    std::vector<DnnCategory> categories;

    /**
     * RunOptions axis of the grid; one entry sweeps nothing.  Empty is
     * a fatal() user error (there would be no jobs).
     */
    std::vector<RunOptions> optionVariants = {RunOptions{}};

    /**
     * Axis coordinates describing each RunOptions variant, parallel to
     * optionVariants (GridSpec::toSweepSpec fills it).  Either empty —
     * jobs then carry no coordinates — or exactly one entry per
     * variant; any other size is a validate() error.
     */
    std::vector<std::vector<AxisCoordinate>> optionCoords;

    /**
     * When true, each job's seed is re-derived as
     * mixSeed(options.seed, arch name) so architectures see
     * independent tensors; default keeps the per-variant seed so
     * architectures are compared on identical tensors (the paper's
     * methodology).
     */
    bool perArchSeeds = false;

    /**
     * When true, every job fans out further into one sub-job per
     * network layer (Accelerator::runLayer), so even a single-network
     * sweep saturates the pool.  Each layer's randomness is derived
     * from (seed, network, layer index) alone and the per-job reduce
     * (Accelerator::reduceLayers) runs in layer order, so the merged
     * output stays bit-identical to serial Accelerator::run for any
     * thread count.
     */
    bool shardLayers = false;

    /**
     * When true, the runner batches multiple GEMMs per job: all jobs
     * of one (network, category, options) grid point — i.e. the jobs
     * that differ only along the *architecture* axis — form one batch,
     * and each (batch, layer) pair becomes one pool sub-job that runs
     * every architecture of the batch over that layer in submission
     * order.  The first architecture generates the layer workset and
     * the rest reuse it straight from the workset cache (same
     * generation parameters, still warm), so a batched arch-axis sweep
     * generates each operand tensor once instead of once per design
     * point.  Batching implies layer-granular sub-jobs, so it subsumes
     * shardLayers; results stay bit-identical to the unbatched serial
     * run for any thread count.
     */
    bool batchArchs = false;

    /**
     * Optional job predicate: expandSweep() drops jobs it rejects.
     * This is how an experiment runs a non-rectangular grid (e.g. each
     * architecture only in its own category) without paying for the
     * full cross product.  Null keeps every job.  The filter runs on
     * the fully-resolved job, before fleet sharding, so sharded and
     * unsharded expansions see the same filtered list.
     */
    std::function<bool(const SweepJob &)> jobFilter;

    /**
     * When true, runSweep() wall-clocks every job (SweepResult::
     * jobElapsedMs) so sinks can emit `elapsed_ms` rows (`--timings`).
     * Timing is observation only — it never feeds back into any
     * simulated result.  Default off keeps baseline outputs free of
     * machine-dependent fields.
     */
    bool collectTimings = false;

    /**
     * Fleet sharding: expandSweep() keeps only the shardIndex-th of
     * shardCount contiguous blocks of the (filtered) job list.  Blocks
     * partition the list in submission order, so the concatenation of
     * every shard's results in shard order is byte-identical to the
     * unsharded run — N processes sharing a cache file can cover one
     * grid disjointly (`--grid-shard i/n`).  Defaults run everything.
     */
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;

    /**
     * Fleet leases: run only the half-open [rangeBegin, rangeEnd)
     * slice of the (filtered, sharded) job list.  Unlike the
     * equal-block --grid-shard split, the bounds are explicit job
     * indices, so a coordinator can lease arbitrary contiguous chunks
     * and re-lease them after a worker death.  npos (the default
     * rangeEnd) means "to the end"; out-of-range bounds are a fatal()
     * — they mean the two sides expanded different grids (version or
     * flag skew between coordinator and worker).
     */
    static constexpr std::size_t rangeNpos =
        static_cast<std::size_t>(-1);
    std::size_t rangeBegin = 0;
    std::size_t rangeEnd = rangeNpos;

    /**
     * Expanded job count of the full cartesian product
     * (archs * networks * categories * options) — before jobFilter
     * and fleet sharding are applied; expandSweep().size() is the
     * post-filter, post-shard count.
     */
    std::size_t jobCount() const;

    void validate() const;
};

/** Merged outcome of one sweep. */
class SweepResult
{
  public:
    SweepResult() = default;
    SweepResult(std::vector<SweepJob> jobs,
                std::vector<NetworkResult> results,
                ScheduleCache::Stats cache_stats,
                WorksetCache::Stats workset_stats = {},
                AScheduleCache::Stats a_schedule_stats = {},
                std::vector<double> job_elapsed_ms = {})
        : jobs_(std::move(jobs)), results_(std::move(results)),
          cacheStats_(cache_stats), worksetStats_(workset_stats),
          aScheduleStats_(a_schedule_stats),
          jobElapsedMs_(std::move(job_elapsed_ms))
    {
    }

    /** Jobs in submission (= expansion) order. */
    const std::vector<SweepJob> &jobs() const { return jobs_; }

    /** results()[i] is jobs()[i]'s outcome — same order, any thread
     *  count. */
    const std::vector<NetworkResult> &results() const { return results_; }

    /**
     * Results of the jobs matching a predicate on SweepJob, in
     * submission order — the benches' aggregation views ("all networks
     * of arch a in category c") without hand-maintained index math.
     */
    template <typename Pred>
    std::vector<NetworkResult>
    slice(Pred pred) const
    {
        std::vector<NetworkResult> out;
        for (std::size_t i = 0; i < jobs_.size(); ++i)
            if (pred(jobs_[i]))
                out.push_back(results_[i]);
        return out;
    }

    const ScheduleCache::Stats &cacheStats() const { return cacheStats_; }

    /** Workset-cache counters of the sweep (generation reuse). */
    const WorksetCache::Stats &worksetStats() const
    {
        return worksetStats_;
    }

    /** A-side arbiter-schedule cache counters of the sweep. */
    const AScheduleCache::Stats &aScheduleStats() const
    {
        return aScheduleStats_;
    }

    /**
     * Per-job wall-time in milliseconds, parallel to jobs() — empty
     * unless the sweep ran with SweepSpec::collectTimings.  Under
     * layer sharding / arch batching a job's time is the sum of its
     * sub-jobs' runLayer times (reduce excluded).
     */
    const std::vector<double> &jobElapsedMs() const
    {
        return jobElapsedMs_;
    }

  private:
    std::vector<SweepJob> jobs_;
    std::vector<NetworkResult> results_;
    ScheduleCache::Stats cacheStats_;
    WorksetCache::Stats worksetStats_;
    AScheduleCache::Stats aScheduleStats_;
    std::vector<double> jobElapsedMs_;
};

/**
 * Expand the grid in (options, arch, network, category) nesting order
 * — the order a serial quadruple loop would visit it.
 */
std::vector<SweepJob> expandSweep(const SweepSpec &spec);

/**
 * Run the sweep on `threads` workers (1 = serial through the same
 * code path).  Internal schedule and workset caches are shared across
 * jobs; pass `cache` / `worksets` to reuse them across sweeps (or for
 * disk persistence), or nullptr for per-sweep caching — the owned
 * fallback workset cache is bounded at defaultWorksetByteBudget, so
 * a sweep never retains unbounded generated tensors.  An A-side
 * schedule cache is always shared per sweep.  All three are
 * optimizations only: the merged results are bit-identical with or
 * without them.
 */
SweepResult runSweep(const SweepSpec &spec, int threads,
                     ScheduleCache *cache = nullptr,
                     WorksetCache *worksets = nullptr);

} // namespace griffin

#endif // GRIFFIN_RUNTIME_RUNNER_HH
