#include "runtime/cache_store.hh"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "common/binio.hh"
#include "common/logging.hh"

namespace griffin {

namespace {

constexpr char cacheMagic[4] = {'G', 'R', 'F', 'C'};

} // namespace

std::size_t
loadCacheFile(const std::string &path, ScheduleCache &cache)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return 0; // no file yet: a normal first run

    char magic[4] = {};
    if (!is.read(magic, 4) ||
        !std::equal(magic, magic + 4, cacheMagic)) {
        warn("cache file '", path, "' has no GRFC magic; ignoring it");
        return 0;
    }
    char version = 0;
    if (!is.get(version).good() ||
        static_cast<unsigned char>(version) != cacheFileVersion) {
        warn("cache file '", path, "' is format version ",
             static_cast<int>(static_cast<unsigned char>(version)),
             ", expected ", static_cast<int>(cacheFileVersion),
             "; ignoring it");
        return 0;
    }
    std::uint64_t count = 0;
    if (!getU64(is, count)) {
        warn("cache file '", path, "' is truncated; ignoring it");
        return 0;
    }

    std::size_t inserted = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        ScheduleCache::Key key;
        BSchedule schedule;
        if (!getU64(is, key.lo) || !getU64(is, key.hi) ||
            !BSchedule::deserialize(is, schedule)) {
            warn("cache file '", path, "' is corrupt after ", inserted,
                 " of ", count, " entries; keeping the clean prefix");
            return inserted;
        }
        if (cache.insertLoaded(key, std::move(schedule)))
            ++inserted;
    }
    return inserted;
}

std::size_t
saveCacheFile(const std::string &path, const ScheduleCache &cache)
{
    // Snapshot and sort by key so equal cache contents always produce
    // a byte-identical file, whatever order the shards iterate.
    std::vector<std::pair<ScheduleCache::Key,
                          std::shared_ptr<const BSchedule>>>
        entries;
    cache.forEachEntry(
        [&entries](const ScheduleCache::Key &key,
                   const std::shared_ptr<const BSchedule> &s) {
            entries.emplace_back(key, s);
        });
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first.hi != b.first.hi
                             ? a.first.hi < b.first.hi
                             : a.first.lo < b.first.lo;
              });

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open cache file '", path, "' for writing");
    os.write(cacheMagic, 4);
    os.put(static_cast<char>(cacheFileVersion));
    putU64(os, static_cast<std::uint64_t>(entries.size()));
    for (const auto &[key, schedule] : entries) {
        putU64(os, key.lo);
        putU64(os, key.hi);
        schedule->serialize(os);
    }
    if (!os)
        fatal("write to cache file '", path, "' failed");
    return entries.size();
}

} // namespace griffin
