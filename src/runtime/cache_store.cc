#include "runtime/cache_store.hh"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "common/binio.hh"
#include "common/logging.hh"

namespace griffin {

namespace {

constexpr char scheduleMagic[4] = {'G', 'R', 'F', 'C'};
constexpr char worksetMagic[4] = {'G', 'R', 'F', 'W'};

/** The load half of the store, generic over the cache type (which
 *  names its value via Cache::Value, providing member serialize() and
 *  static deserialize()). */
template <typename Cache>
std::size_t
loadStore(const std::string &path, Cache &cache, const char magic[4],
          unsigned char expected_version)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return 0; // no file yet: a normal first run

    char file_magic[4] = {};
    if (!is.read(file_magic, 4) ||
        !std::equal(file_magic, file_magic + 4, magic)) {
        warn("cache file '", path, "' has no ",
             std::string(magic, magic + 4), " magic; ignoring it");
        return 0;
    }
    char version = 0;
    if (!is.get(version).good() ||
        static_cast<unsigned char>(version) != expected_version) {
        warn("cache file '", path, "' is format version ",
             static_cast<int>(static_cast<unsigned char>(version)),
             ", expected ", static_cast<int>(expected_version),
             "; ignoring it");
        return 0;
    }
    std::uint64_t count = 0;
    if (!getU64(is, count)) {
        warn("cache file '", path, "' is truncated; ignoring it");
        return 0;
    }

    std::size_t inserted = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        typename Cache::Key key;
        typename Cache::Value value;
        if (!getU64(is, key.lo) || !getU64(is, key.hi) ||
            !Cache::Value::deserialize(is, value)) {
            warn("cache file '", path, "' is corrupt after ", inserted,
                 " of ", count, " entries; keeping the clean prefix");
            return inserted;
        }
        if (cache.insertLoaded(key, std::move(value)))
            ++inserted;
    }
    return inserted;
}

/** The save half, same genericity. */
template <typename Cache>
std::size_t
saveStore(const std::string &path, const Cache &cache,
          const char magic[4], unsigned char version)
{
    // Snapshot and sort by key so equal cache contents always produce
    // a byte-identical file, whatever order the shards iterate.
    using ValuePtr = std::shared_ptr<const typename Cache::Value>;
    std::vector<std::pair<typename Cache::Key, ValuePtr>> entries;
    cache.forEachEntry(
        [&entries](const typename Cache::Key &key, const ValuePtr &v) {
            entries.emplace_back(key, v);
        });
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first.hi != b.first.hi
                             ? a.first.hi < b.first.hi
                             : a.first.lo < b.first.lo;
              });

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open cache file '", path, "' for writing");
    os.write(magic, 4);
    os.put(static_cast<char>(version));
    putU64(os, static_cast<std::uint64_t>(entries.size()));
    for (const auto &[key, value] : entries) {
        putU64(os, key.lo);
        putU64(os, key.hi);
        value->serialize(os);
    }
    if (!os)
        fatal("write to cache file '", path, "' failed");
    return entries.size();
}

} // namespace

std::size_t
loadCacheFile(const std::string &path, ScheduleCache &cache)
{
    return loadStore(path, cache, scheduleMagic, cacheFileVersion);
}

std::size_t
saveCacheFile(const std::string &path, const ScheduleCache &cache)
{
    return saveStore(path, cache, scheduleMagic, cacheFileVersion);
}

std::size_t
loadWorksetCacheFile(const std::string &path, WorksetCache &cache)
{
    return loadStore(path, cache, worksetMagic, worksetFileVersion);
}

std::size_t
saveWorksetCacheFile(const std::string &path, const WorksetCache &cache)
{
    return saveStore(path, cache, worksetMagic, worksetFileVersion);
}

} // namespace griffin
