/**
 * @file
 * Unit energy/area constants for the 7 nm cost model.
 *
 * The paper synthesised every architecture with Synopsys DC + a 7 nm
 * memory compiler at 800 MHz / 0.71 V (Section V) and published the
 * component breakdowns in Table VII.  We cannot rerun that flow, so
 * each constant below is *calibrated from the paper's own table*: the
 * provenance comment names the cells it was fitted to.  Structural
 * counts (how many buffer words, MUX inputs, adders, controllers a
 * configuration needs) come from arch/overhead.hh; cost = count x
 * unit.
 *
 * Known simplifications, all visible in bench_table7_breakdown's
 * ours-vs-paper output:
 *   - multiplier power is a constant per-MAC figure; the paper's
 *     varies with measured datapath activity (31.7..85.9 mW across
 *     rows);
 *   - SRAM dynamic power scales linearly with the provisioned A-side
 *     bandwidth window, a one-knob fit.
 */

#ifndef GRIFFIN_POWER_CALIBRATION_HH
#define GRIFFIN_POWER_CALIBRATION_HH

namespace griffin {
namespace cal {

// --- power, milliwatts ------------------------------------------------

/** INT8 multiplier, incl. operand flops: Table VII baseline MUL
 *  62.6 mW / 1024 MACs. */
inline constexpr double mulPowerMw = 62.6 / 1024.0;

/** Output-stationary INT32 accumulator: baseline ACC 10.9 mW / 64
 *  PEs. */
inline constexpr double accPowerMw = 10.9 / 64.0;

/** One 2-input adder of a reduction tree: baseline ADT 21.8 mW /
 *  (64 PEs x 15 adders). */
inline constexpr double adderPowerMw = 21.8 / (64.0 * 15.0);

/**
 * Adders in an *extra* (cross-PE routing) tree.  The extra path
 * reuses most of the main reduction and only adds a short side
 * reduce; Table VII shows Sparse.B* (2 trees/PE) at roughly baseline
 * ADT power, so the increment is priced at 4 adders per extra tree.
 */
inline constexpr int extraTreeAdders = 4;

/** One buffer word (8b, multi-read): Sparse.B* ABUF 7.5 mW / 320
 *  words; Sparse.A* BBUF 17.8 mW / 768 words. */
inline constexpr double bufWordPowerMw = 0.0240;

/** Pipeline registers/wires: baseline REG/WR 22.8 mW fixed ... */
inline constexpr double regBasePowerMw = 22.8;

/** ... plus per resident ABUF word (deeper windows lengthen the
 *  operand pipeline): Sparse.AB* REG/WR 64.5 mW over 576 words. */
inline constexpr double regPerAbufWordPowerMw = 0.050;

/** One operand-MUX input: Sparse.B* MUX 3.5 mW / 5120 inputs;
 *  Sparse.AB* 7.0 mW / 12288 inputs. */
inline constexpr double muxInputPowerMw = 0.0006;

/** One arbiter / PE controller: Sparse.AB* CTRL 18.2 mW / 64 PEs;
 *  Sparse.A* 1.2 mW / 4 row arbiters. */
inline constexpr double ctrlPowerMw = 0.29;

/** One 4x4 shuffle crossbar: Sparse.AB* SHF 1.4 mW / 80 crossbars. */
inline constexpr double shufflerPowerMw = 0.0145;

/** SRAM static + leakage floor and dynamic slope per unit of A-side
 *  bandwidth provisioning: fitted to baseline 33.3 mW (scale 1) and
 *  Sparse.B* 66.7 mW (scale 5). */
inline constexpr double sramBasePowerMw = 24.95;
inline constexpr double sramPerBwPowerMw = 8.35;

// --- area, 1000 um^2 --------------------------------------------------

/** Baseline MUL 29 / 1024. */
inline constexpr double mulAreaKum2 = 29.0 / 1024.0;

/** Baseline ACC 2.6 / 64. */
inline constexpr double accAreaKum2 = 2.6 / 64.0;

/** Baseline ADT 6.7 / (64 x 15) per adder. */
inline constexpr double adderAreaKum2 = 6.7 / (64.0 * 15.0);

/** Sparse.B* ABUF 2.0 / 320 words; Sparse.A* BBUF 3.8 / 768. */
inline constexpr double bufWordAreaKum2 = 0.0056;

/** Baseline REG/WR 3.2 fixed ... */
inline constexpr double regBaseAreaKum2 = 3.2;

/** ... plus Sparse.AB* (6.0 - 3.2) / 576 words. */
inline constexpr double regPerAbufWordAreaKum2 = 0.0049;

/** Sparse.B* MUX 6.5 / 5120 inputs; Sparse.AB* 17.5 / 12288. */
inline constexpr double muxInputAreaKum2 = 0.00135;

/** Sparse.AB* CTRL 8.1 / 64; TDash.AB 8.9 / 64. */
inline constexpr double ctrlAreaKum2 = 0.131;

/** Sparse.AB* SHF 1.6 / 80. */
inline constexpr double shufflerAreaKum2 = 0.018;

/** Baseline SRAM 176 plus banking overhead per unit of bandwidth
 *  provisioning (Sparse.B* 196 at scale 5). */
inline constexpr double sramBaseAreaKum2 = 176.0;
inline constexpr double sramPerBwAreaKum2 = 4.0;

// --- SparTen (MacGrid) constants, Table VII last row ------------------

/** Prefix-sum match/control per MAC: CTRL 133 mW / 1024. */
inline constexpr double sparTenCtrlPowerMw = 0.13;

/** Per word of the 128-deep per-MAC input buffers: 213 mW /
 *  (128 x 1024) on each operand side. */
inline constexpr double sparTenBufWordPowerMw = 213.0 / 131072.0;

/** Unshared accumulator per MAC: ACC 110 mW / 1024 ("does not share
 *  accumulators (which consume 110mW)", Section VI-E). */
inline constexpr double sparTenAccPowerMw = 110.0 / 1024.0;

/** MAC incl. input latches: MUL 133 mW / 1024. */
inline constexpr double sparTenMulPowerMw = 133.0 / 1024.0;

/** REG/WR and SRAM straight from the row. */
inline constexpr double sparTenRegPowerMw = 7.5;
inline constexpr double sparTenSramPowerMw = 181.6;

inline constexpr double sparTenCtrlAreaKum2 = 227.0 / 1024.0;
inline constexpr double sparTenBufWordAreaKum2 = 320.0 / 131072.0;
inline constexpr double sparTenAccAreaKum2 = 30.2 / 1024.0;
inline constexpr double sparTenMulAreaKum2 = 41.0 / 1024.0;
inline constexpr double sparTenRegAreaKum2 = 0.7;
inline constexpr double sparTenSramAreaKum2 = 200.0;

} // namespace cal
} // namespace griffin

#endif // GRIFFIN_POWER_CALIBRATION_HH
