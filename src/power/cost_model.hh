/**
 * @file
 * Power and area estimation (paper Table VII) plus the effective
 * efficiency metrics of Definition V.1.
 *
 * For vector-core designs the estimate is structural: the component
 * counts of arch/overhead.hh priced with the calibrated unit costs of
 * power/calibration.hh.  Hybrid (Griffin) designs pay the *maximum*
 * requirement of each component across their morph configurations —
 * the hardware must contain the widest AMUX, the deepest buffers, and
 * the union of control of every mode, which is why the paper measures
 * Griffin only ~1% above Sparse.AB*.
 *
 * MacGrid (SparTen) designs use their own structural model: per-MAC
 * prefix-sum control, unshared accumulators, and 128-deep per-MAC
 * operand buffers.
 */

#ifndef GRIFFIN_POWER_COST_MODEL_HH
#define GRIFFIN_POWER_COST_MODEL_HH

#include "arch/arch_config.hh"

namespace griffin {

/** Component breakdown in Table VII's column order. */
struct Breakdown
{
    double ctrl = 0.0;
    double shf = 0.0;
    double abuf = 0.0;
    double bbuf = 0.0;
    double regwr = 0.0;
    double acc = 0.0;
    double mul = 0.0;
    double adt = 0.0;
    double mux = 0.0;
    double sram = 0.0;

    double
    total() const
    {
        return ctrl + shf + abuf + bbuf + regwr + acc + mul + adt +
               mux + sram;
    }
};

/** Full cost estimate of one architecture. */
struct CostReport
{
    Breakdown powerMw;    ///< milliwatts at 800 MHz / 0.71 V
    Breakdown areaKum2;   ///< thousands of square microns, 7 nm
};

/**
 * Estimate the cost of the *built* hardware: every morph
 * configuration's union, all components active.  This is the Table
 * VII comparison view.
 */
CostReport estimateCost(const ArchConfig &arch);

/**
 * Estimate cost while *running* a workload category.  Area is the
 * built hardware (silicon does not shrink); power gates the sparse
 * machinery the active configuration does not use down to
 * `idlePowerFraction` of its full draw, and the SRAM runs at the
 * category's provisioned bandwidth.  This is what makes a hybrid
 * design pay only a small "sparsity tax" on dense models
 * (paper Fig. 8(a)).
 */
CostReport estimateCost(const ArchConfig &arch, DnnCategory cat);

/** Residual power of clock-gated idle logic (leakage + clock tree). */
inline constexpr double idlePowerFraction = 0.25;

/** Peak dense throughput in TOPS (2 ops per MAC). */
double densePeakTops(const ArchConfig &arch);

/**
 * Effective power efficiency (Definition V.1):
 * speedup x dense TOPS / W, at the power drawn running `cat`.
 */
double effectiveTopsPerWatt(const ArchConfig &arch, DnnCategory cat,
                            double speedup);

/**
 * Effective area efficiency (Definition V.1):
 * speedup x dense TOPS / mm^2 of built silicon.
 */
double effectiveTopsPerMm2(const ArchConfig &arch, DnnCategory cat,
                           double speedup);

} // namespace griffin

#endif // GRIFFIN_POWER_COST_MODEL_HH
