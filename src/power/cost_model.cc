#include "power/cost_model.hh"

#include <algorithm>

#include "arch/overhead.hh"
#include "common/logging.hh"
#include "power/calibration.hh"

namespace griffin {

namespace {

/** Take the per-component maximum of two inventories. */
HardwareOverhead
unionOf(const HardwareOverhead &x, const HardwareOverhead &y)
{
    HardwareOverhead u = x;
    u.abufDepth = std::max(x.abufDepth, y.abufDepth);
    u.amuxFanin = std::max(x.amuxFanin, y.amuxFanin);
    u.bbufDepth = std::max(x.bbufDepth, y.bbufDepth);
    u.bmuxFanin = std::max(x.bmuxFanin, y.bmuxFanin);
    u.adtPerPe = std::max(x.adtPerPe, y.adtPerPe);
    u.metadataBits = std::max(x.metadataBits, y.metadataBits);
    u.abufWords = std::max(x.abufWords, y.abufWords);
    u.bbufWords = std::max(x.bbufWords, y.bbufWords);
    u.amuxCount = std::max(x.amuxCount, y.amuxCount);
    u.bmuxCount = std::max(x.bmuxCount, y.bmuxCount);
    u.extraAdtCount = std::max(x.extraAdtCount, y.extraAdtCount);
    u.ctrlUnits = std::max(x.ctrlUnits, y.ctrlUnits);
    u.shufflerCrossbars =
        std::max(x.shufflerCrossbars, y.shufflerCrossbars);
    return u;
}

/**
 * The hardware that must physically exist: the union over Griffin's
 * morph configurations, or the single fixed configuration otherwise.
 * Also returns the widest bandwidth provisioning.
 */
HardwareOverhead
builtHardware(const ArchConfig &arch, double *bw_out)
{
    if (!arch.hybrid) {
        if (bw_out) {
            *bw_out = 1.0;
            for (DnnCategory cat : allCategories)
                *bw_out = std::max(*bw_out, arch.effectiveBwScale(cat));
        }
        return computeOverhead(arch.routing, arch.tile);
    }
    HardwareOverhead u{};
    double bw = 1.0;
    bool first = true;
    for (DnnCategory cat : allCategories) {
        const auto hw =
            computeOverhead(arch.effectiveRouting(cat), arch.tile);
        u = first ? hw : unionOf(u, hw);
        first = false;
        bw = std::max(bw, arch.effectiveBwScale(cat));
    }
    if (bw_out)
        *bw_out = bw;
    return u;
}

Breakdown
vectorPower(const HardwareOverhead &hw, double bw, const TileShape &t)
{
    const std::int64_t macs = t.macsPerCycle();
    const std::int64_t pes = static_cast<std::int64_t>(t.m0) * t.n0;
    const std::int64_t tree_adders =
        pes * (t.k0 - 1) + hw.extraAdtCount * cal::extraTreeAdders;
    const std::int64_t mux_inputs =
        hw.amuxCount * hw.amuxFanin + hw.bmuxCount * hw.bmuxFanin;

    Breakdown p;
    p.ctrl = static_cast<double>(hw.ctrlUnits) * cal::ctrlPowerMw;
    p.shf = static_cast<double>(hw.shufflerCrossbars) *
            cal::shufflerPowerMw;
    p.abuf = static_cast<double>(hw.abufWords) * cal::bufWordPowerMw;
    p.bbuf = static_cast<double>(hw.bbufWords) * cal::bufWordPowerMw;
    p.regwr = cal::regBasePowerMw +
              static_cast<double>(hw.abufWords) *
                  cal::regPerAbufWordPowerMw;
    p.acc = static_cast<double>(pes) * cal::accPowerMw;
    p.mul = static_cast<double>(macs) * cal::mulPowerMw;
    p.adt = static_cast<double>(tree_adders) * cal::adderPowerMw;
    p.mux = static_cast<double>(mux_inputs) * cal::muxInputPowerMw;
    p.sram = cal::sramBasePowerMw + cal::sramPerBwPowerMw * bw;
    return p;
}

Breakdown
vectorArea(const HardwareOverhead &hw, double bw, const TileShape &t)
{
    const std::int64_t macs = t.macsPerCycle();
    const std::int64_t pes = static_cast<std::int64_t>(t.m0) * t.n0;
    const std::int64_t tree_adders =
        pes * (t.k0 - 1) + hw.extraAdtCount * cal::extraTreeAdders;
    const std::int64_t mux_inputs =
        hw.amuxCount * hw.amuxFanin + hw.bmuxCount * hw.bmuxFanin;

    Breakdown a;
    a.ctrl = static_cast<double>(hw.ctrlUnits) * cal::ctrlAreaKum2;
    a.shf = static_cast<double>(hw.shufflerCrossbars) *
            cal::shufflerAreaKum2;
    a.abuf = static_cast<double>(hw.abufWords) * cal::bufWordAreaKum2;
    a.bbuf = static_cast<double>(hw.bbufWords) * cal::bufWordAreaKum2;
    a.regwr = cal::regBaseAreaKum2 +
              static_cast<double>(hw.abufWords) *
                  cal::regPerAbufWordAreaKum2;
    a.acc = static_cast<double>(pes) * cal::accAreaKum2;
    a.mul = static_cast<double>(macs) * cal::mulAreaKum2;
    a.adt = static_cast<double>(tree_adders) * cal::adderAreaKum2;
    a.mux = static_cast<double>(mux_inputs) * cal::muxInputAreaKum2;
    a.sram = cal::sramBaseAreaKum2 + cal::sramPerBwAreaKum2 * bw;
    return a;
}

/** Per-component blend: active + idle-fraction of the unused rest. */
Breakdown
blend(const Breakdown &active, const Breakdown &present)
{
    auto mix = [](double act, double pres) {
        return act + idlePowerFraction * std::max(0.0, pres - act);
    };
    Breakdown out;
    out.ctrl = mix(active.ctrl, present.ctrl);
    out.shf = mix(active.shf, present.shf);
    out.abuf = mix(active.abuf, present.abuf);
    out.bbuf = mix(active.bbuf, present.bbuf);
    out.regwr = mix(active.regwr, present.regwr);
    out.acc = mix(active.acc, present.acc);
    out.mul = mix(active.mul, present.mul);
    out.adt = mix(active.adt, present.adt);
    out.mux = mix(active.mux, present.mux);
    out.sram = mix(active.sram, present.sram);
    return out;
}

Breakdown
macGridPower(const ArchConfig &arch, bool a_active, bool b_active)
{
    const std::int64_t macs = arch.tile.macsPerCycle();
    const bool a_built = arch.routing.sparseA();
    const bool b_built = arch.routing.sparseB();
    const double buf_words =
        static_cast<double>(macs) * arch.macBufferDepth;
    auto gated = [](bool built, bool active, double full) {
        if (!built)
            return 0.5 * full; // dense-side staging, half depth
        return active ? full : idlePowerFraction * full;
    };

    Breakdown p;
    const double full_ctrl =
        static_cast<double>(macs) * cal::sparTenCtrlPowerMw *
        ((a_built && b_built) ? 1.0 : 0.5);
    p.ctrl = (a_active || b_active) ? full_ctrl
                                    : idlePowerFraction * full_ctrl;
    const double full_buf = buf_words * cal::sparTenBufWordPowerMw;
    p.abuf = gated(a_built, a_active, full_buf);
    p.bbuf = gated(b_built, b_active, full_buf);
    p.regwr = cal::sparTenRegPowerMw;
    p.acc = static_cast<double>(macs) * cal::sparTenAccPowerMw;
    p.mul = static_cast<double>(macs) * cal::sparTenMulPowerMw;
    p.sram = cal::sparTenSramPowerMw;
    return p;
}

Breakdown
macGridArea(const ArchConfig &arch)
{
    const std::int64_t macs = arch.tile.macsPerCycle();
    const bool a_built = arch.routing.sparseA();
    const bool b_built = arch.routing.sparseB();
    const double buf_area = static_cast<double>(macs) *
                            arch.macBufferDepth *
                            cal::sparTenBufWordAreaKum2;
    Breakdown a;
    a.ctrl = static_cast<double>(macs) * cal::sparTenCtrlAreaKum2 *
             ((a_built && b_built) ? 1.0 : 0.5);
    a.abuf = a_built ? buf_area : 0.5 * buf_area;
    a.bbuf = b_built ? buf_area : 0.5 * buf_area;
    a.regwr = cal::sparTenRegAreaKum2;
    a.acc = static_cast<double>(macs) * cal::sparTenAccAreaKum2;
    a.mul = static_cast<double>(macs) * cal::sparTenMulAreaKum2;
    a.sram = cal::sparTenSramAreaKum2;
    return a;
}

} // namespace

CostReport
estimateCost(const ArchConfig &arch)
{
    arch.validate();
    CostReport report;
    if (arch.style == DatapathStyle::MacGrid) {
        report.powerMw = macGridPower(arch, arch.routing.sparseA(),
                                      arch.routing.sparseB());
        report.areaKum2 = macGridArea(arch);
        return report;
    }
    double bw = 1.0;
    const auto hw = builtHardware(arch, &bw);
    report.powerMw = vectorPower(hw, bw, arch.tile);
    report.areaKum2 = vectorArea(hw, bw, arch.tile);
    return report;
}

CostReport
estimateCost(const ArchConfig &arch, DnnCategory cat)
{
    arch.validate();
    CostReport report;
    if (arch.style == DatapathStyle::MacGrid) {
        report.powerMw = macGridPower(
            arch, arch.routing.sparseA() && hasSparseA(cat),
            arch.routing.sparseB() && hasSparseB(cat));
        report.areaKum2 = macGridArea(arch);
        return report;
    }
    double built_bw = 1.0;
    const auto built = builtHardware(arch, &built_bw);
    const auto active_hw =
        computeOverhead(arch.effectiveRouting(cat), arch.tile);
    const double active_bw = arch.effectiveBwScale(cat);
    const auto p_active = vectorPower(active_hw, active_bw, arch.tile);
    // Present-but-idle logic burns only the gated fraction; the SRAM
    // comparison uses the active bandwidth on both sides so banking
    // provisioned for deeper windows is charged at idle rate too.
    const auto p_present = vectorPower(built, built_bw, arch.tile);
    report.powerMw = blend(p_active, p_present);
    report.areaKum2 = vectorArea(built, built_bw, arch.tile);
    return report;
}

double
densePeakTops(const ArchConfig &arch)
{
    return 2.0 * arch.tile.macsPerCycle() * arch.mem.freqGHz / 1000.0;
}

double
effectiveTopsPerWatt(const ArchConfig &arch, DnnCategory cat,
                     double speedup)
{
    GRIFFIN_ASSERT(speedup > 0.0, "non-positive speedup ", speedup);
    const auto cost = estimateCost(arch, cat);
    return speedup * densePeakTops(arch) /
           (cost.powerMw.total() / 1000.0);
}

double
effectiveTopsPerMm2(const ArchConfig &arch, DnnCategory cat,
                    double speedup)
{
    GRIFFIN_ASSERT(speedup > 0.0, "non-positive speedup ", speedup);
    const auto cost = estimateCost(arch, cat);
    return speedup * densePeakTops(arch) /
           (cost.areaKum2.total() / 1000.0);
}

} // namespace griffin
