/**
 * @file
 * Functional verification of schedules.
 *
 * The paper's analytical model is "verified by a simulator"; here the
 * simulator itself is verified functionally: every schedule can be
 * replayed into the C contributions it would compute, which must equal
 * the reference dense GEMM of the tile — proving that zero skipping
 * and borrowing reorder work without dropping or duplicating any
 * effectual operation.
 */

#ifndef GRIFFIN_SCHED_VERIFY_HH
#define GRIFFIN_SCHED_VERIFY_HH

#include <string>
#include <vector>

#include "sched/b_preprocess.hh"
#include "sched/dual_scheduler.hh"
#include "sched/schedule.hh"
#include "tensor/matrix.hh"
#include "tensor/shuffle.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * Reference output tile: C[row_base .. row_base+m0) x
 * [col_base .. col_base+n0) of A x B, zero-padded past the matrix
 * edges.  The golden value every replay must reproduce.
 */
MatrixI32 referenceTile(const MatrixI8 &a, const MatrixI8 &b,
                        std::int64_t row_base, std::int64_t col_base,
                        const TileShape &shape);

/**
 * Replay a preprocessed B stream against one A row tile: each stream
 * entry multiplies with every resident A row; partial products land in
 * the entry's home column.
 */
MatrixI32 replayBSchedule(const BSchedule &stream, const MatrixI8 &a,
                          const MatrixI8 &b, std::int64_t row_base,
                          std::int64_t col_base, const TileShape &shape);

/**
 * Replay a recorded A schedule against one B column tile: each
 * executed A element multiplies with the matching B element of every
 * resident column.
 */
MatrixI32 replayASchedule(const std::vector<ScheduledOp> &ops,
                          const Shuffler &shuffler, const MatrixI8 &a,
                          const MatrixI8 &b, std::int64_t row_base,
                          std::int64_t col_base, const TileShape &shape);

/** Replay recorded dual-sparse pair ops. */
MatrixI32 replayDualSchedule(const std::vector<DualOp> &ops,
                             const MatrixI8 &a, const MatrixI8 &b,
                             std::int64_t row_base, std::int64_t col_base,
                             const TileShape &shape);

/**
 * Structural checks on recorded ops: every borrow stays within its
 * window distances (forward-only), and no element executes twice.
 * Returns true when clean; otherwise false with a diagnostic in *err.
 */
bool checkScheduleBounds(const std::vector<ScheduledOp> &ops,
                         const BorrowWindow &window, std::string *err);

} // namespace griffin

#endif // GRIFFIN_SCHED_VERIFY_HH
