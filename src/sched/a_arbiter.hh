/**
 * @file
 * On-the-fly zero skipping in the activation matrix A (paper
 * Fig. 2(c,d)).
 *
 * A is produced at runtime, so zeros cannot be removed offline: an
 * arbiter per PE row inspects the ABUF window each cycle, picks
 * nonzero operands, and drives the BMUXes that fetch the matching B
 * elements.  Timing-wise this is the same window schedule as the B
 * preprocessor, but the window advance is bounded by the ASRAM
 * bandwidth (`advance_cap` steps per cycle).
 */

#ifndef GRIFFIN_SCHED_A_ARBITER_HH
#define GRIFFIN_SCHED_A_ARBITER_HH

#include "arch/routing.hh"
#include "sched/schedule.hh"
#include "tensor/shuffle.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * Schedule one A tile under the (da1,da2,da3) borrow window.
 *
 * The result's op list (when recorded) identifies elements by their
 * post-shuffle lane; use the shuffler to recover original k indices.
 *
 * @param advance_cap ASRAM bandwidth in A steps per cycle
 * @param record      keep per-op routing for verification
 */
ScheduleResult scheduleA(const TileViewA &a, const Borrow &da,
                         const Shuffler &shuffler, double advance_cap,
                         bool record);

} // namespace griffin

#endif // GRIFFIN_SCHED_A_ARBITER_HH
