#include "sched/dag_schedule.hh"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace griffin {

namespace {

/**
 * Executed-subset cap for the exact search.  Downward-closed subset
 * counts explode with branch width, so past this many stored states
 * the optimizer abandons exactness for the greedy order.  2^17 states
 * keeps the search well under a second and a few MiB.
 */
constexpr std::size_t kExactStateBudget = 131072;

/** Recompute candidates must cost at most this fraction of the whole
 *  network's dense cycles — re-running them is nearly free. */
constexpr double kRecomputeCycleFraction = 0.05;

/** Per-node consumer lists (duplicate edges collapsed). */
std::vector<std::vector<std::size_t>>
consumersOf(const NetworkSpec &net)
{
    std::vector<std::vector<std::size_t>> consumers(net.nodes.size());
    for (std::size_t v = 0; v < net.nodes.size(); ++v) {
        for (const std::size_t u : net.nodes[v].inputs) {
            auto &list = consumers[u];
            if (std::find(list.begin(), list.end(), v) == list.end())
                list.push_back(v);
        }
    }
    return consumers;
}

std::vector<std::size_t>
uniqueInputs(const NetworkNode &node)
{
    std::vector<std::size_t> inputs = node.inputs;
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    return inputs;
}

/** Bitset over node indices, sized at construction. */
struct NodeMask
{
    std::vector<std::uint64_t> words;

    explicit NodeMask(std::size_t bits) : words((bits + 63) / 64, 0) {}

    bool
    test(std::size_t i) const
    {
        return (words[i / 64] >> (i % 64)) & 1;
    }

    void
    set(std::size_t i)
    {
        words[i / 64] |= std::uint64_t(1) << (i % 64);
    }

    bool
    operator==(const NodeMask &other) const
    {
        return words == other.words;
    }
};

struct NodeMaskHash
{
    std::size_t
    operator()(const NodeMask &mask) const
    {
        // FNV-1a over the words.
        std::uint64_t hash = 1469598103934665603ull;
        for (const std::uint64_t word : mask.words) {
            hash ^= word;
            hash *= 1099511628211ull;
        }
        return static_cast<std::size_t>(hash);
    }
};

/** Search state: best known peak reaching this executed set, plus the
 *  move that got here for order reconstruction. */
struct ExactState
{
    std::int64_t peakBytes = 0;
    NodeMask parent{0};
    std::size_t chosen = 0;
};

/** Bytes live once `mask` has executed: outputs of executed nodes
 *  that still have an unexecuted consumer. */
std::int64_t
liveBytes(const NetworkSpec &net,
          const std::vector<std::vector<std::size_t>> &consumers,
          const NodeMask &mask)
{
    std::int64_t live = 0;
    for (std::size_t u = 0; u < net.nodes.size(); ++u) {
        if (!mask.test(u))
            continue;
        for (const std::size_t v : consumers[u]) {
            if (!mask.test(v)) {
                live += net.nodes[u].outputBytes;
                break;
            }
        }
    }
    return live;
}

/**
 * Exact minimum-peak order by DP over executed subsets.  Returns an
 * empty vector when the state budget is exceeded.
 */
std::vector<std::size_t>
exactOrder(const NetworkSpec &net,
           const std::vector<std::vector<std::size_t>> &consumers)
{
    const std::size_t n = net.nodes.size();
    std::unordered_map<NodeMask, ExactState, NodeMaskHash> states;
    NodeMask empty(n);
    states.emplace(empty, ExactState{0, NodeMask(0), 0});

    std::vector<NodeMask> level{empty};
    for (std::size_t executed = 0; executed < n; ++executed) {
        std::vector<NodeMask> next;
        for (const NodeMask &mask : level) {
            const std::int64_t basePeak = states.at(mask).peakBytes;
            const std::int64_t live = liveBytes(net, consumers, mask);
            for (std::size_t v = 0; v < n; ++v) {
                if (mask.test(v))
                    continue;
                bool ready = true;
                for (const std::size_t u : net.nodes[v].inputs) {
                    if (!mask.test(u)) {
                        ready = false;
                        break;
                    }
                }
                if (!ready)
                    continue;
                const std::int64_t stepPeak =
                    std::max(basePeak, live + net.nodes[v].outputBytes);
                NodeMask successor = mask;
                successor.set(v);
                auto it = states.find(successor);
                if (it == states.end()) {
                    states.emplace(successor,
                                   ExactState{stepPeak, mask, v});
                    next.push_back(successor);
                    if (states.size() > kExactStateBudget)
                        return {};
                } else if (stepPeak < it->second.peakBytes) {
                    it->second = ExactState{stepPeak, mask, v};
                }
            }
        }
        level = std::move(next);
        if (level.empty())
            return {}; // cycle: no ready node anywhere
    }

    NodeMask full(n);
    for (std::size_t i = 0; i < n; ++i)
        full.set(i);
    std::vector<std::size_t> order(n);
    NodeMask cursor = full;
    for (std::size_t step = n; step-- > 0;) {
        const ExactState &state = states.at(cursor);
        order[step] = state.chosen;
        cursor = state.parent;
    }
    return order;
}

/**
 * Greedy topological order: always run the ready node with the lowest
 * live-byte delta (output bytes minus the input buffers it is the
 * last pending consumer of), tie-broken on output bytes then index.
 */
std::vector<std::size_t>
greedyOrder(const NetworkSpec &net,
            const std::vector<std::vector<std::size_t>> &consumers)
{
    const std::size_t n = net.nodes.size();
    std::vector<bool> executed(n, false);
    std::vector<std::size_t> pendingConsumers(n);
    for (std::size_t u = 0; u < n; ++u)
        pendingConsumers[u] = consumers[u].size();

    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t step = 0; step < n; ++step) {
        std::size_t best = n;
        std::int64_t bestDelta = 0, bestOut = 0;
        for (std::size_t v = 0; v < n; ++v) {
            if (executed[v])
                continue;
            bool ready = true;
            for (const std::size_t u : net.nodes[v].inputs) {
                if (!executed[u]) {
                    ready = false;
                    break;
                }
            }
            if (!ready)
                continue;
            std::int64_t freed = 0;
            for (const std::size_t u : uniqueInputs(net.nodes[v]))
                if (pendingConsumers[u] == 1)
                    freed += net.nodes[u].outputBytes;
            const std::int64_t delta = net.nodes[v].outputBytes - freed;
            const std::int64_t out = net.nodes[v].outputBytes;
            if (best == n || delta < bestDelta ||
                (delta == bestDelta &&
                 (out < bestOut || (out == bestOut && v < best)))) {
                best = v;
                bestDelta = delta;
                bestOut = out;
            }
        }
        if (best == n)
            fatal("network '", net.name,
                  "' has a dependence cycle: no ready node at step ",
                  step);
        executed[best] = true;
        for (const std::size_t u : uniqueInputs(net.nodes[best]))
            --pendingConsumers[u];
        order.push_back(best);
    }
    return order;
}

std::vector<ScheduleEntry>
toEntries(const std::vector<std::size_t> &order)
{
    std::vector<ScheduleEntry> entries;
    entries.reserve(order.size());
    for (const std::size_t node : order)
        entries.push_back(ScheduleEntry{node, false});
    return entries;
}

DagSchedule
priced(const NetworkSpec &net, std::vector<ScheduleEntry> entries,
       std::string label)
{
    DagSchedule schedule;
    schedule.entries = std::move(entries);
    schedule.label = std::move(label);
    const ScheduleEval eval = evaluateSchedule(net, schedule.entries);
    if (!eval.ok)
        panic("optimizer produced an invalid schedule for '", net.name,
              "': ", eval.error);
    schedule.peakBytes = eval.peakBytes;
    schedule.entryLiveBytes = eval.entryLiveBytes;
    return schedule;
}

/**
 * Try re-executing cheap multi-consumer nodes right before each of
 * their late consumers, so the original buffer dies at its first
 * consumer.  Keeps a trial only when it strictly lowers the peak.
 */
DagSchedule
recomputePass(const NetworkSpec &net,
              const std::vector<std::vector<std::size_t>> &consumers,
              DagSchedule best)
{
    const std::int64_t netCycles = net.denseCycles(TileShape{});
    const std::int64_t cycleCap = static_cast<std::int64_t>(
        kRecomputeCycleFraction * static_cast<double>(netCycles));
    bool inserted = false;
    for (std::size_t u = 0; u < net.nodes.size(); ++u) {
        if (consumers[u].size() < 2)
            continue;
        if (net.nodes[u].layer.denseCycles(TileShape{}) > cycleCap)
            continue;
        std::vector<ScheduleEntry> trial;
        trial.reserve(best.entries.size() + consumers[u].size());
        bool firstConsumerSeen = false;
        for (const ScheduleEntry &entry : best.entries) {
            const auto &inputs = net.nodes[entry.node].inputs;
            const bool consumesU = std::find(inputs.begin(), inputs.end(),
                                             u) != inputs.end();
            if (consumesU && firstConsumerSeen)
                trial.push_back(ScheduleEntry{u, true});
            trial.push_back(entry);
            if (consumesU)
                firstConsumerSeen = true;
        }
        const ScheduleEval eval = evaluateSchedule(net, trial);
        if (eval.ok && eval.peakBytes < best.peakBytes) {
            best.entries = std::move(trial);
            best.peakBytes = eval.peakBytes;
            best.entryLiveBytes = eval.entryLiveBytes;
            inserted = true;
        }
    }
    if (inserted)
        best.label += "+recompute";
    return best;
}

} // namespace

const char *
toString(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::Declaration:
        return "declaration";
      case SchedulePolicy::Optimized:
        return "optimized";
      case SchedulePolicy::OptimizedRecompute:
        return "recompute";
    }
    panic("bad SchedulePolicy ", static_cast<int>(policy));
}

SchedulePolicy
schedulePolicyFromString(const std::string &text)
{
    if (text == "declaration")
        return SchedulePolicy::Declaration;
    if (text == "optimized")
        return SchedulePolicy::Optimized;
    if (text == "recompute")
        return SchedulePolicy::OptimizedRecompute;
    fatal("unknown schedule policy '", text,
          "' (expected declaration, optimized or recompute)");
}

void
validateDag(const NetworkSpec &net)
{
    if (net.nodes.empty())
        fatal("network '", net.name, "' has no layers");
    for (std::size_t v = 0; v < net.nodes.size(); ++v) {
        const NetworkNode &node = net.nodes[v];
        std::vector<std::size_t> seen;
        for (const std::size_t u : node.inputs) {
            if (u >= net.nodes.size())
                fatal("network '", net.name, "': node '", node.layer.name,
                      "' consumes node ", u, " but the network has only ",
                      net.nodes.size(), " nodes");
            if (u == v)
                fatal("network '", net.name, "': node '", node.layer.name,
                      "' consumes itself");
            if (std::find(seen.begin(), seen.end(), u) != seen.end())
                fatal("network '", net.name, "': node '", node.layer.name,
                      "' lists input ", u, " twice");
            seen.push_back(u);
        }
    }
    topologicalOrder(net); // fatal() on cycles
}

std::vector<std::size_t>
topologicalOrder(const NetworkSpec &net)
{
    const std::size_t n = net.nodes.size();
    std::vector<std::size_t> indegree(n, 0);
    for (const NetworkNode &node : net.nodes)
        indegree[&node - net.nodes.data()] = uniqueInputs(node).size();
    const auto consumers = consumersOf(net);

    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> queued(n, false);
    for (std::size_t step = 0; step < n; ++step) {
        std::size_t pick = n;
        for (std::size_t v = 0; v < n; ++v) {
            if (!queued[v] && indegree[v] == 0) {
                pick = v;
                break;
            }
        }
        if (pick == n)
            fatal("network '", net.name,
                  "' has a dependence cycle among its layers");
        queued[pick] = true;
        order.push_back(pick);
        for (const std::size_t v : consumers[pick])
            --indegree[v];
    }
    return order;
}

std::vector<NodeAttributes>
nodeAttributes(const NetworkSpec &net)
{
    const auto consumers = consumersOf(net);
    std::vector<NodeAttributes> attrs(net.nodes.size());
    for (std::size_t v = 0; v < net.nodes.size(); ++v) {
        attrs[v].outputBytes = net.nodes[v].outputBytes;
        for (const std::size_t u : uniqueInputs(net.nodes[v]))
            if (consumers[u].size() == 1)
                attrs[v].freeableInputBytes += net.nodes[u].outputBytes;
        attrs[v].impact = attrs[v].outputBytes - attrs[v].freeableInputBytes;
    }
    return attrs;
}

ScheduleEval
evaluateSchedule(const NetworkSpec &net,
                 const std::vector<ScheduleEntry> &entries)
{
    ScheduleEval eval;
    auto invalid = [&eval](std::string message) {
        eval.ok = false;
        eval.error = std::move(message);
        return eval;
    };

    const std::size_t n = net.nodes.size();
    if (n == 0)
        return invalid("network has no nodes");

    // Pass 1: bind each consumption to the latest prior production of
    // the input, and record each production's last serving position.
    std::vector<std::size_t> latestProduction(n, entries.size());
    std::vector<std::size_t> producedCount(n, 0);
    // lastServe[p]: last entry position the production at entry p
    // serves (itself if nothing consumes it before a reproduction).
    std::vector<std::size_t> lastServe(entries.size());
    std::vector<std::size_t> producerOf(entries.size());
    for (std::size_t p = 0; p < entries.size(); ++p) {
        const ScheduleEntry &entry = entries[p];
        if (entry.node >= n)
            return invalid(detail::concat("entry ", p, " names node ",
                                          entry.node, " of ", n));
        for (const std::size_t u : uniqueInputs(net.nodes[entry.node])) {
            if (latestProduction[u] == entries.size())
                return invalid(detail::concat(
                    "'", net.nodes[entry.node].layer.name,
                    "' (entry ", p, ") consumes '",
                    net.nodes[u].layer.name,
                    "' before any production of it"));
            lastServe[latestProduction[u]] = p;
        }
        if (entry.recompute != (producedCount[entry.node] > 0))
            return invalid(detail::concat(
                "entry ", p, " ('", net.nodes[entry.node].layer.name,
                "') has recompute=", entry.recompute ? "true" : "false",
                " but is production #", producedCount[entry.node] + 1));
        ++producedCount[entry.node];
        latestProduction[entry.node] = p;
        lastServe[p] = p;
        producerOf[p] = entry.node;
    }
    for (std::size_t v = 0; v < n; ++v)
        if (producedCount[v] == 0)
            return invalid(detail::concat("node '", net.nodes[v].layer.name,
                                          "' is never scheduled"));

    // Pass 2: liveness walk.  A production is live from its entry
    // until the entry serving its last consumer has run; frees land
    // after the consuming step, so consumed inputs count against that
    // step's live bytes.
    std::vector<std::vector<std::size_t>> freesAt(entries.size());
    for (std::size_t p = 0; p < entries.size(); ++p)
        freesAt[lastServe[p]].push_back(p);
    std::int64_t live = 0;
    eval.entryLiveBytes.resize(entries.size());
    for (std::size_t p = 0; p < entries.size(); ++p) {
        live += net.nodes[producerOf[p]].outputBytes;
        eval.entryLiveBytes[p] = live;
        eval.peakBytes = std::max(eval.peakBytes, live);
        for (const std::size_t production : freesAt[p])
            live -= net.nodes[producerOf[production]].outputBytes;
    }
    eval.ok = true;
    return eval;
}

std::int64_t
calculateSequentialPeak(const NetworkSpec &net,
                        const std::vector<ScheduleEntry> &entries)
{
    const ScheduleEval eval = evaluateSchedule(net, entries);
    if (!eval.ok)
        fatal("invalid schedule for network '", net.name, "': ",
              eval.error);
    return eval.peakBytes;
}

DagSchedule
declarationSchedule(const NetworkSpec &net)
{
    std::vector<std::size_t> order(net.nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    return priced(net, toEntries(order), "declaration");
}

DagSchedule
optimizeSchedule(const NetworkSpec &net, bool allowRecompute)
{
    validateDag(net);
    const auto consumers = consumersOf(net);
    const DagSchedule declaration = declarationSchedule(net);

    std::vector<std::size_t> order = exactOrder(net, consumers);
    std::string label = "optimized(exact)";
    if (order.empty()) {
        order = greedyOrder(net, consumers);
        label = "optimized(greedy)";
    }
    DagSchedule best = priced(net, toEntries(order), std::move(label));
    if (allowRecompute)
        best = recomputePass(net, consumers, std::move(best));
    // The optimizer must never lose to the trivial order.
    if (best.peakBytes >= declaration.peakBytes)
        return declaration;
    return best;
}

DagSchedule
scheduleFor(const NetworkSpec &net, SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::Declaration:
        return declarationSchedule(net);
      case SchedulePolicy::Optimized:
        return optimizeSchedule(net, false);
      case SchedulePolicy::OptimizedRecompute:
        return optimizeSchedule(net, true);
    }
    panic("bad SchedulePolicy ", static_cast<int>(policy));
}

std::string
describeDag(const NetworkSpec &net)
{
    validateDag(net);
    std::size_t edges = 0;
    for (const NetworkNode &node : net.nodes)
        edges += node.inputs.size();

    std::ostringstream os;
    os << net.name << ": " << net.nodes.size() << " nodes, " << edges
       << " edges\n";
    for (std::size_t v = 0; v < net.nodes.size(); ++v) {
        const NetworkNode &node = net.nodes[v];
        os << "  [" << v << "] " << node.layer.name << " <- ";
        if (node.inputs.empty()) {
            os << "input";
        } else {
            for (std::size_t i = 0; i < node.inputs.size(); ++i)
                os << (i ? "," : "") << node.inputs[i];
        }
        os << "  (out " << node.outputBytes << " B)\n";
    }

    const DagSchedule declaration = declarationSchedule(net);
    const DagSchedule optimized = optimizeSchedule(net, true);
    os << "declaration peak: " << declaration.peakBytes << " B\n";
    os << "optimized peak:   " << optimized.peakBytes << " B ["
       << optimized.label << "]\n";
    os << "optimized order: ";
    for (std::size_t i = 0; i < optimized.entries.size(); ++i) {
        const ScheduleEntry &entry = optimized.entries[i];
        os << (i ? " " : "") << entry.node << (entry.recompute ? "r" : "");
    }
    os << "\n";
    return os.str();
}

} // namespace griffin
