/**
 * @file
 * Whole-network sequential scheduling over the layer DAG.
 *
 * The accelerator executes one layer at a time (Section II-C runs the
 * dual scheduler per GEMM), so a network schedule is a *sequence* of
 * node executions.  What the sequence controls is on-chip memory: a
 * node's output buffer stays resident from the step that produces it
 * until the step that serves its last consumer, and different
 * topological orders hold very different buffer sets live at once.
 * Inception-style modules are the motivating case — executing all
 * branch *heads* before any branch *tail* releases the concatenated
 * block input before the wide 3x3/5x5 outputs pile up.
 *
 * This header provides:
 *   - structural validation of a hand-built node vector (cycles,
 *     dangling edges, duplicate inputs),
 *   - a liveness evaluator that prices any schedule, including ones
 *     with recomputation entries,
 *   - an optimizer that minimises peak bytes (exhaustive subset DP on
 *     small graphs, greedy impact-ordered fallback on large ones,
 *     optional recomputation of cheap multi-consumer nodes),
 *   - a text renderer for `griffin_bench describe`.
 *
 * Schedules permute *execution*; the node vector itself is never
 * reordered (node order feeds the per-layer simulation seed).
 */

#ifndef GRIFFIN_SCHED_DAG_SCHEDULE_HH
#define GRIFFIN_SCHED_DAG_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/network.hh"

namespace griffin {

/** How RunOptions orders layer execution within a network. */
enum class SchedulePolicy
{
    /** Node-vector order — the historical behaviour and the byte-
     *  identity baseline. */
    Declaration,
    /** Peak-memory-minimising topological order. */
    Optimized,
    /** Optimized, plus recomputation of cheap multi-consumer nodes
     *  when re-running them beats keeping their output resident. */
    OptimizedRecompute,
};

const char *toString(SchedulePolicy policy);

/** Parse "declaration" / "optimized" / "recompute"; fatal() with the
 *  valid set otherwise. */
SchedulePolicy schedulePolicyFromString(const std::string &text);

/**
 * One step of a sequential schedule.  `recompute` marks a repeated
 * production of an already-executed node: its cycles are paid again
 * and its inputs must still be (or be kept) live, but the original
 * output buffer can have been freed in the meantime.
 */
struct ScheduleEntry
{
    std::size_t node = 0;
    bool recompute = false;
};

/** Non-fatal result of pricing a schedule. */
struct ScheduleEval
{
    bool ok = false;
    std::string error;
    /** Max bytes of node output buffers simultaneously live. */
    std::int64_t peakBytes = 0;
    /** Live bytes during each entry (after allocating that entry's
     *  output, before its frees) — the per-step SRAM demand the spill
     *  model compares against the budget. */
    std::vector<std::int64_t> entryLiveBytes;
};

/** Static per-node scheduling attributes. */
struct NodeAttributes
{
    /** Bytes the node's output occupies while live. */
    std::int64_t outputBytes = 0;
    /** Bytes of producer buffers freed if this node runs while being
     *  the last pending consumer of every input. */
    std::int64_t freeableInputBytes = 0;
    /** outputBytes - freeableInputBytes: the best-case change in live
     *  bytes from executing the node.  Greedy order sorts on this. */
    std::int64_t impact = 0;
};

/** A priced sequential schedule. */
struct DagSchedule
{
    std::vector<ScheduleEntry> entries;
    std::int64_t peakBytes = 0;
    std::vector<std::int64_t> entryLiveBytes;
    /** Human tag: "declaration", "optimized(exact)",
     *  "optimized(greedy)", with "+recompute" when the post-pass
     *  inserted entries. */
    std::string label;
};

/**
 * Structural validation of an arbitrary node vector: fatal() on an
 * empty graph, out-of-range or self edges, duplicate inputs, or a
 * cycle.  Builder-produced networks are acyclic by construction
 * (addLayer demands backward edges); this guards hand-built specs.
 */
void validateDag(const NetworkSpec &net);

/** Kahn topological order, smallest node index first among ready
 *  nodes.  fatal() on a cycle. */
std::vector<std::size_t> topologicalOrder(const NetworkSpec &net);

/** Per-node attributes (output bytes, freeable input bytes, impact). */
std::vector<NodeAttributes> nodeAttributes(const NetworkSpec &net);

/**
 * Price a schedule: peak live bytes and per-entry live bytes under
 * last-consumer-frees liveness.  Each consumption binds to the latest
 * prior production of the input node (recomputation-aware); a buffer
 * is freed right after the step serving its last bound consumer, and
 * a production nothing consumes is freed at its own step.  External
 * input (a node with no `inputs`) is streamed and never counted.
 * Returns ok=false with a message on malformed schedules (missing or
 * duplicated first productions, consumption before production,
 * mis-flagged recompute entries).
 */
ScheduleEval evaluateSchedule(const NetworkSpec &net,
                              const std::vector<ScheduleEntry> &entries);

/** evaluateSchedule that fatal()s on malformed schedules and returns
 *  just the peak. */
std::int64_t
calculateSequentialPeak(const NetworkSpec &net,
                        const std::vector<ScheduleEntry> &entries);

/** The node-vector-order schedule, priced. */
DagSchedule declarationSchedule(const NetworkSpec &net);

/**
 * Minimise peak bytes over sequential schedules.  Small graphs are
 * solved exactly by dynamic programming over executed subsets; past a
 * state budget the search falls back to a greedy impact-ordered
 * topological order.  With `allowRecompute`, a post-pass re-executes
 * cheap (<=5% of network dense cycles) multi-consumer nodes before
 * their late consumers when that strictly lowers the peak.  Never
 * returns a schedule worse than declaration order.
 */
DagSchedule optimizeSchedule(const NetworkSpec &net, bool allowRecompute);

/** Schedule for a policy: declaration order or the optimizer. */
DagSchedule scheduleFor(const NetworkSpec &net, SchedulePolicy policy);

/** Multi-line topology + schedule summary for `griffin_bench
 *  describe <network>`. */
std::string describeDag(const NetworkSpec &net);

} // namespace griffin

#endif // GRIFFIN_SCHED_DAG_SCHEDULE_HH
