/**
 * @file
 * Types shared by the scheduling engines.
 *
 * A schedule runs over a *slot grid*: one slot per (lane, row, col)
 * position of the datapath, each cycle executing at most one effectual
 * element drawn from a sliding window of temporal steps.  The borrow
 * window (DESIGN.md Section 3) bounds how far an element may be pulled
 * across each axis.
 */

#ifndef GRIFFIN_SCHED_SCHEDULE_HH
#define GRIFFIN_SCHED_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace griffin {

/**
 * Slot-grid geometry.  Single-sparse B schedules use rows = 1 and
 * cols = N0; single-sparse A schedules use rows = M0 and cols = 1;
 * dual schedules use the full M0 x N0 PE grid.
 */
struct SlotGrid
{
    std::int64_t steps = 0; ///< temporal extent (k1 steps or
                            ///< compressed cycles for dual stage 2)
    int lanes = 1;          ///< K0 dot-product lanes
    int rows = 1;           ///< A-side third axis extent
    int cols = 1;           ///< B-side third axis extent

    std::int64_t slots() const
    {
        return static_cast<std::int64_t>(lanes) * rows * cols;
    }

    std::int64_t
    slotIndex(int lane, int row, int col) const
    {
        GRIFFIN_ASSERT(lane >= 0 && lane < lanes && row >= 0 &&
                       row < rows && col >= 0 && col < cols,
                       "slot (", lane, ",", row, ",", col,
                       ") outside grid ", lanes, "x", rows, "x", cols);
        return (static_cast<std::int64_t>(col) * rows + row) * lanes +
               lane;
    }
};

/**
 * Borrow window of one scheduling pass.
 *
 * advanceCap models SRAM bandwidth: how many step-costs of new operand
 * data can stream into the buffers per cycle (baseline = 1).
 * budgetCeiling is the buffer capacity in the same units — prefetch
 * cannot run further ahead than the window can hold.
 */
struct BorrowWindow
{
    int steps = 1;      ///< resident temporal steps (1 + d1)
    int laneDist = 0;   ///< lookaside reach across lanes
    int rowDist = 0;    ///< cross-PE reach across rows (A side)
    int colDist = 0;    ///< cross-PE reach across columns (B side)
    double advanceCap = 1.0;
    double budgetCeiling = 1.0;
};

/**
 * One executed operation: which element (identified by its original
 * grid position) ran on which consumer slot at which cycle.  Recorded
 * only when verification asks for it.
 */
struct ScheduledOp
{
    std::int64_t step;
    int lane;
    int row;
    int col;
    int consumerLane;
    int consumerRow;
    int consumerCol;
    std::int64_t cycle;
};

/** Aggregate counters of one scheduling pass. */
struct ScheduleStats
{
    std::int64_t cycles = 0;      ///< schedule length
    std::int64_t ops = 0;         ///< effectual elements executed
    std::int64_t ownOps = 0;      ///< executed in their home slot
    std::int64_t stolenOps = 0;   ///< executed via borrowing
    std::int64_t idleSlotCycles = 0; ///< slot-cycles with no work
    std::int64_t bwLimitedCycles = 0; ///< cycles where the bandwidth
                                      ///< budget capped the advance
};

/** Full result of one scheduling pass. */
struct ScheduleResult
{
    ScheduleStats stats;
    std::vector<ScheduledOp> ops; ///< empty unless recording enabled
};

/**
 * Per-slot FIFO queues of effectual element steps.  Elements must be
 * pushed in increasing step order per slot (the hardware's priority
 * encoders scan in stream order).
 */
class SlotQueues
{
  public:
    explicit SlotQueues(const SlotGrid &grid)
        : grid_(grid), queues_(static_cast<std::size_t>(grid.slots()))
    {
    }

    const SlotGrid &grid() const { return grid_; }

    void
    push(std::int64_t step, int lane, int row, int col)
    {
        GRIFFIN_ASSERT(step >= 0 && step < grid_.steps,
                       "step ", step, " outside grid of ", grid_.steps);
        auto &q = queues_[static_cast<std::size_t>(
            grid_.slotIndex(lane, row, col))];
        GRIFFIN_ASSERT(q.empty() || q.back() < step,
                       "elements must be pushed in increasing step "
                       "order per slot");
        q.push_back(step);
    }

    const std::vector<std::int64_t> &
    queue(int lane, int row, int col) const
    {
        return queues_[static_cast<std::size_t>(
            grid_.slotIndex(lane, row, col))];
    }

    std::int64_t
    totalElements() const
    {
        std::int64_t n = 0;
        for (const auto &q : queues_)
            n += static_cast<std::int64_t>(q.size());
        return n;
    }

    const std::vector<std::vector<std::int64_t>> &raw() const
    {
        return queues_;
    }

  private:
    SlotGrid grid_;
    std::vector<std::vector<std::int64_t>> queues_;
};

} // namespace griffin

#endif // GRIFFIN_SCHED_SCHEDULE_HH
