#include "sched/dual_scheduler.hh"

#include <algorithm>
#include <limits>

#include "common/arena.hh"
#include "sched/window_scheduler.hh"
#include "simd/occupancy.hh"

namespace griffin {

namespace {

constexpr std::int64_t kDrained =
    std::numeric_limits<std::int64_t>::max();

/**
 * Asynchronous two-level engine for preprocessed dual sparsity.
 *
 * Each PE column owns a BBUF of (1 + da1) compressed entries of its
 * own stream slice and advances it independently — this is the whole
 * point of the dual design's per-PE control (Fig. 3) and what lets the
 * measured speedup compound across both tensors.  Columns are coupled
 * only through the shared ABUF: the raw A steps every column currently
 * references must fit in a (1+da1)(1+db1)-step residency window, whose
 * leading edge streams in at the ASRAM bandwidth.
 *
 * Within a column, idle lanes steal across da2 lanes / da3 rows
 * (cross-column routing was already consumed by stage-1 packing).
 */
DualSchedule
schedulePreprocessed(const TileViewA &a, const RoutingConfig &cfg,
                     const BSchedule &stream, double advance_cap,
                     bool record)
{
    const int k0 = a.lanes();
    const int lanes = stream.lanes();
    const int rows = a.units();
    const int cols = stream.cols();
    const std::int64_t entries = stream.cycles();
    const int bbuf_depth = 1 + cfg.a.d1;
    const std::int64_t abuf_raw_depth =
        static_cast<std::int64_t>(1 + cfg.a.d1) * (1 + cfg.b.d1);

    DualSchedule out;
    out.stage1 = stream.stats();
    if (entries == 0)
        return out;

    Arena &arena = workArena();
    ArenaScope scope(arena);

    // Fig. 3 steps 2-3: zero masks of A filtered by B's metadata — a
    // pair survives only where the stream has an element *and* the
    // matching A operand is nonzero.  The A tile's occupancy masks
    // (bit m of occA[flat k]) turn the per-pair test into one popcount
    // per stream element; queues build CSR (count / prefix / fill),
    // per (lane, row) slot within each column, values ascending entry
    // indices.
    const std::int64_t flat_steps = a.steps() * k0;
    auto *occA = arena.alloc<std::uint64_t>(
        static_cast<std::size_t>(flat_steps));
    simd::aTileOccupancy(a.matrix(), a.unitBase(), rows, a.steps(), k0,
                         occA);

    const std::int64_t col_slots =
        static_cast<std::int64_t>(rows) * lanes;
    const std::int64_t nslots = col_slots * cols;
    const auto slot_of = [&](int l, int m, int j) {
        return (static_cast<std::int64_t>(j) * rows + m) * lanes + l;
    };
    auto *offsets = arena.allocZeroed<std::int64_t>(
        static_cast<std::size_t>(nslots + 1));
    auto *remaining = arena.allocZeroed<std::int64_t>(
        static_cast<std::size_t>(entries * cols));
    for (std::int64_t c = 0; c < entries; ++c) {
        for (int j = 0; j < cols; ++j) {
            const std::int64_t *slice = stream.flatKLanes(c, j);
            std::int64_t pairs = 0;
            for (int l = 0; l < lanes; ++l) {
                const auto flat_k = slice[l];
                if (flat_k < 0)
                    continue;
                std::uint64_t mask = occA[flat_k];
                pairs += simd::popcount64(mask);
                while (mask != 0) {
                    const int m = simd::ctz64(mask);
                    mask &= mask - 1;
                    ++offsets[slot_of(l, m, j) + 1];
                }
            }
            remaining[static_cast<std::size_t>(c * cols + j)] = pairs;
        }
    }
    for (std::int64_t s = 0; s < nslots; ++s)
        offsets[s + 1] += offsets[s];
    out.effectualPairs = offsets[nslots];
    if (out.effectualPairs == 0)
        return out;
    auto *values = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(out.effectualPairs));
    auto *fill = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    for (std::int64_t s = 0; s < nslots; ++s)
        fill[s] = offsets[s];
    for (std::int64_t c = 0; c < entries; ++c) {
        for (int j = 0; j < cols; ++j) {
            const std::int64_t *slice = stream.flatKLanes(c, j);
            for (int l = 0; l < lanes; ++l) {
                const auto flat_k = slice[l];
                if (flat_k < 0)
                    continue;
                std::uint64_t mask = occA[flat_k];
                while (mask != 0) {
                    const int m = simd::ctz64(mask);
                    mask &= mask - 1;
                    values[fill[slot_of(l, m, j)]++] = c;
                }
            }
        }
    }

    // Per-slot cursors and head entries (kDrained once empty), per-
    // column stream pointers, shared raw window.
    auto *cursor = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    auto *heads = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    for (std::int64_t s = 0; s < nslots; ++s) {
        cursor[s] = offsets[s];
        heads[s] = offsets[s] < offsets[s + 1] ? values[offsets[s]]
                                               : kDrained;
    }
    auto *head =
        arena.allocZeroed<std::int64_t>(static_cast<std::size_t>(cols));
    auto skip_drained = [&](int j) {
        auto &p = head[j];
        while (p < entries &&
               remaining[static_cast<std::size_t>(p * cols + j)] == 0) {
            ++p;
        }
    };
    for (int j = 0; j < cols; ++j)
        skip_drained(j);

    const std::int64_t max_raw = stream.rawEnd(entries - 1);
    std::int64_t frontier =
        std::min<std::int64_t>(abuf_raw_depth - 1, max_raw);
    double bw_budget = 0.0;

    struct Offset { int dl, dr; std::int64_t delta; };
    std::vector<Offset> steals;
    for (int dl = 0; dl <= cfg.a.d2; ++dl)
        for (int dr = 0; dr <= cfg.a.d3; ++dr)
            if (dl || dr)
                steals.push_back(
                    {dl, dr,
                     dl + static_cast<std::int64_t>(dr) * lanes});

    const simd::KernelTable &kern = simd::kernels();
    const std::int64_t col_words = (col_slots + 63) / 64;
    auto *elig = arena.alloc<std::uint64_t>(
        static_cast<std::size_t>(col_words));
    auto *pass1 = arena.alloc<std::uint64_t>(
        static_cast<std::size_t>(col_words));
    const std::int64_t *raw_hi = stream.rawHiData();

    std::int64_t left = out.effectualPairs;
    auto &st = out.stage2;
    while (left > 0) {
        ++st.cycles;
        std::int64_t consumed_now = 0;

        for (int j = 0; j < cols; ++j) {
            const std::int64_t base = static_cast<std::int64_t>(j) *
                                      col_slots;
            // An entry is executable when it is inside its column's
            // BBUF window and its raw span has streamed into the ABUF.
            // The BBUF test is one masked compare over the column's
            // head entries; the ABUF test then prunes only the
            // survivors (raw-extent lookups are a gather, left
            // scalar).
            const std::int64_t limit = head[j] + bbuf_depth - 1;
            kern.leMask(heads + base, col_slots, limit, elig);
            std::int64_t elig_count = 0;
            for (std::int64_t i = 0; i < col_words; ++i) {
                std::uint64_t word = elig[i];
                std::uint64_t keep = word;
                while (word != 0) {
                    const int bit = simd::ctz64(word);
                    word &= word - 1;
                    const std::int64_t e = heads[base + i * 64 + bit];
                    if (raw_hi[static_cast<std::size_t>(e * cols + j)] >
                        frontier)
                        keep &= ~(std::uint64_t{1} << bit);
                }
                elig[i] = keep;
                elig_count += simd::popcount64(keep);
            }
            if (elig_count == 0)
                continue; // idle slots tallied once per cycle below

            auto consume = [&](std::int64_t src, int j_col, bool own) {
                const std::int64_t e = heads[src];
                const std::int64_t next = ++cursor[src];
                heads[src] =
                    next < offsets[src + 1] ? values[next] : kDrained;
                const std::int64_t local = src - base;
                const std::uint64_t bit = std::uint64_t{1}
                                          << (local & 63);
                if (heads[src] > limit ||
                    raw_hi[static_cast<std::size_t>(heads[src] * cols +
                                                    j_col)] > frontier) {
                    elig[local >> 6] &= ~bit;
                    --elig_count;
                }
                --remaining[static_cast<std::size_t>(e * cols + j_col)];
                --left;
                ++consumed_now;
                ++st.ops;
                if (own)
                    ++st.ownOps;
                else
                    ++st.stolenOps;
                if (record) {
                    const int src_lane =
                        static_cast<int>(local % lanes);
                    const int src_row =
                        static_cast<int>(local / lanes % rows);
                    const auto flat_k =
                        stream.flatK(e, src_lane, j_col);
                    out.ops.push_back({flat_k, src_row,
                                       stream.homeCol(e, src_lane,
                                                      j_col),
                                       st.cycles - 1});
                }
            };

            // Pass 1: own queues.  Ascending set-bit order over the
            // column mask is ascending (m, l) — local slot index is
            // m * lanes + l.
            for (std::int64_t i = 0; i < col_words; ++i) {
                std::uint64_t word = elig[i];
                pass1[i] = word;
                while (word != 0) {
                    const int bit = simd::ctz64(word);
                    word &= word - 1;
                    consume(base + i * 64 + bit, j, true);
                }
            }

            // Pass 2: lane/row stealing within the column.
            if (!steals.empty() && elig_count > 0) {
                for (std::int64_t i = 0;
                     i < col_words && elig_count > 0; ++i) {
                    std::uint64_t idle = ~pass1[i];
                    if (i == col_words - 1 && (col_slots & 63) != 0)
                        idle &= (std::uint64_t{1}
                                 << (col_slots & 63)) -
                                1;
                    while (idle != 0 && elig_count > 0) {
                        const int bit = simd::ctz64(idle);
                        idle &= idle - 1;
                        const std::int64_t local = i * 64 + bit;
                        const int l = static_cast<int>(local % lanes);
                        const int m = static_cast<int>(local / lanes);
                        for (const auto &off : steals) {
                            if (l + off.dl >= lanes ||
                                m + off.dr >= rows)
                                continue;
                            const std::int64_t src_local =
                                local + off.delta;
                            if ((elig[src_local >> 6] >>
                                 (src_local & 63) & 1u) == 0)
                                continue;
                            consume(base + src_local, j, false);
                            break;
                        }
                    }
                }
            }
        }
        st.idleSlotCycles += nslots - consumed_now;
        if (left == 0)
            break;

        // Retire drained entries per column, then slide the shared raw
        // window: the tail is the lowest raw step any column's oldest
        // live entry still needs; the frontier streams forward at the
        // ASRAM rate into the remaining ABUF capacity.
        std::int64_t tail = max_raw;
        for (int j = 0; j < cols; ++j) {
            skip_drained(j);
            const auto p = head[j];
            if (p < entries) {
                const auto lo = stream.rawLo(p, j);
                if (lo >= 0)
                    tail = std::min(tail, lo);
            }
        }
        bw_budget += advance_cap;
        bool limited = false;
        while (frontier < max_raw &&
               frontier < tail + abuf_raw_depth - 1) {
            if (bw_budget >= 1.0) {
                bw_budget -= 1.0;
                ++frontier;
            } else {
                limited = true;
                break;
            }
        }
        if (limited)
            ++st.bwLimitedCycles;
        bw_budget = std::min(bw_budget,
                             static_cast<double>(abuf_raw_depth));
    }
    out.cycles = st.cycles;
    return out;
}

DualSchedule
scheduleOnTheFly(const TileViewA &a, const TileViewB &b,
                 const RoutingConfig &cfg, const Shuffler &shuffler,
                 double advance_cap, bool record)
{
    GRIFFIN_ASSERT(a.steps() == b.steps(),
                   "A tile has ", a.steps(), " steps, B tile ",
                   b.steps());
    SlotGrid grid;
    grid.steps = a.steps();
    grid.lanes = a.lanes();
    grid.rows = a.units();
    grid.cols = b.units();

    // Pairwise occupancy: a slot gets an element at step k1 exactly
    // when both the A mask (bit m) and the B mask (bit j) are set at
    // that flat k.  CSR count / prefix / fill in flat-k-major order;
    // one k2 per (step, lane) keeps per-slot values ascending.
    Arena &arena = workArena();
    ArenaScope scope(arena);
    const std::int64_t flat = grid.steps * grid.lanes;
    const std::int64_t nslots = grid.slots();
    auto *occA =
        arena.alloc<std::uint64_t>(static_cast<std::size_t>(flat));
    auto *occB =
        arena.alloc<std::uint64_t>(static_cast<std::size_t>(flat));
    simd::aTileOccupancy(a.matrix(), a.unitBase(), grid.rows,
                         grid.steps, grid.lanes, occA);
    simd::bTileOccupancy(b.matrix(), b.unitBase(), grid.cols,
                         grid.steps, grid.lanes, occB);

    auto *offsets = arena.allocZeroed<std::int64_t>(
        static_cast<std::size_t>(nslots + 1));
    for (std::int64_t f = 0; f < flat; ++f) {
        std::uint64_t mask_a = occA[f];
        if (mask_a == 0 || occB[f] == 0)
            continue;
        const std::int64_t k1 = f / grid.lanes;
        const int lane =
            shuffler.apply(k1, static_cast<int>(f % grid.lanes));
        while (mask_a != 0) {
            const int m = simd::ctz64(mask_a);
            mask_a &= mask_a - 1;
            std::uint64_t mask_b = occB[f];
            while (mask_b != 0) {
                const int j = simd::ctz64(mask_b);
                mask_b &= mask_b - 1;
                ++offsets[(static_cast<std::int64_t>(j) * grid.rows +
                           m) *
                              grid.lanes +
                          lane + 1];
            }
        }
    }
    for (std::int64_t s = 0; s < nslots; ++s)
        offsets[s + 1] += offsets[s];
    auto *values = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(offsets[nslots]));
    auto *fill = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    for (std::int64_t s = 0; s < nslots; ++s)
        fill[s] = offsets[s];
    for (std::int64_t f = 0; f < flat; ++f) {
        std::uint64_t mask_a = occA[f];
        if (mask_a == 0 || occB[f] == 0)
            continue;
        const std::int64_t k1 = f / grid.lanes;
        const int lane =
            shuffler.apply(k1, static_cast<int>(f % grid.lanes));
        while (mask_a != 0) {
            const int m = simd::ctz64(mask_a);
            mask_a &= mask_a - 1;
            std::uint64_t mask_b = occB[f];
            while (mask_b != 0) {
                const int j = simd::ctz64(mask_b);
                mask_b &= mask_b - 1;
                values[fill[(static_cast<std::int64_t>(j) * grid.rows +
                             m) *
                                grid.lanes +
                            lane]++] = k1;
            }
        }
    }

    SlotQueueSpans queues;
    queues.grid = grid;
    queues.offsets = offsets;
    queues.values = values;

    DualSchedule out;
    out.effectualPairs = queues.totalElements();

    BorrowWindow window;
    window.steps = 1 + std::min(cfg.a.d1, cfg.b.d1);
    window.laneDist = cfg.a.d2 + cfg.b.d2;
    window.rowDist = cfg.a.d3;
    window.colDist = cfg.b.d3;
    window.advanceCap =
        std::min(advance_cap, static_cast<double>(window.steps));
    window.budgetCeiling = window.steps;

    auto result = runWindowSchedule(queues, window, record);
    out.cycles = result.stats.cycles;
    out.stage2 = result.stats;
    if (record) {
        out.ops.reserve(result.ops.size());
        for (const auto &op : result.ops) {
            const int orig_k2 = shuffler.invert(op.step, op.lane);
            out.ops.push_back({op.step * grid.lanes + orig_k2, op.row,
                               op.col, op.cycle});
        }
    }
    return out;
}

} // namespace

DualSchedule
scheduleDual(const TileViewA &a, const TileViewB &b,
             const RoutingConfig &cfg, const Shuffler &shuffler,
             const BSchedule *b_stream, double advance_cap, bool record)
{
    GRIFFIN_ASSERT(cfg.mode == SparsityMode::AB,
                   "scheduleDual needs a Sparse.AB config, got ",
                   cfg.str());
    GRIFFIN_ASSERT(advance_cap > 0.0, "non-positive advance cap");
    if (cfg.preprocessB) {
        GRIFFIN_ASSERT(b_stream != nullptr,
                       "preprocessed dual scheduling needs the B "
                       "stream");
        return schedulePreprocessed(a, cfg, *b_stream, advance_cap,
                                    record);
    }
    return scheduleOnTheFly(a, b, cfg, shuffler, advance_cap, record);
}

} // namespace griffin
