#include "sched/dual_scheduler.hh"

#include <algorithm>

#include "sched/window_scheduler.hh"

namespace griffin {

namespace {

/**
 * Asynchronous two-level engine for preprocessed dual sparsity.
 *
 * Each PE column owns a BBUF of (1 + da1) compressed entries of its
 * own stream slice and advances it independently — this is the whole
 * point of the dual design's per-PE control (Fig. 3) and what lets the
 * measured speedup compound across both tensors.  Columns are coupled
 * only through the shared ABUF: the raw A steps every column currently
 * references must fit in a (1+da1)(1+db1)-step residency window, whose
 * leading edge streams in at the ASRAM bandwidth.
 *
 * Within a column, idle lanes steal across da2 lanes / da3 rows
 * (cross-column routing was already consumed by stage-1 packing).
 */
DualSchedule
schedulePreprocessed(const TileViewA &a, const RoutingConfig &cfg,
                     const BSchedule &stream, double advance_cap,
                     bool record)
{
    const int k0 = a.lanes();
    const int lanes = stream.lanes();
    const int rows = a.units();
    const int cols = stream.cols();
    const std::int64_t entries = stream.cycles();
    const int bbuf_depth = 1 + cfg.a.d1;
    const std::int64_t abuf_raw_depth =
        static_cast<std::int64_t>(1 + cfg.a.d1) * (1 + cfg.b.d1);

    DualSchedule out;
    out.stage1 = stream.stats();
    if (entries == 0)
        return out;

    // Fig. 3 steps 2-3: zero masks of A filtered by B's metadata — a
    // pair survives only where the stream has an element *and* the
    // matching A operand is nonzero.  Queues are per (lane, row) slot
    // within each column; values are entry indices (ascending).
    const auto slot_of = [&](int l, int m, int j) {
        return static_cast<std::size_t>((j * rows + m) * lanes + l);
    };
    std::vector<std::vector<std::int64_t>> queues(
        static_cast<std::size_t>(lanes) * rows * cols);
    std::vector<std::int64_t> remaining(
        static_cast<std::size_t>(entries * cols), 0);
    for (std::int64_t c = 0; c < entries; ++c) {
        for (int j = 0; j < cols; ++j) {
            for (int l = 0; l < lanes; ++l) {
                const auto flat_k = stream.flatK(c, l, j);
                if (flat_k < 0)
                    continue;
                const auto k1 = flat_k / k0;
                const auto k2 = static_cast<int>(flat_k % k0);
                for (int m = 0; m < rows; ++m) {
                    if (a.nonzero(k1, k2, m)) {
                        queues[slot_of(l, m, j)].push_back(c);
                        ++remaining[static_cast<std::size_t>(c * cols +
                                                             j)];
                    }
                }
            }
        }
    }
    for (const auto &q : queues)
        out.effectualPairs += static_cast<std::int64_t>(q.size());
    if (out.effectualPairs == 0)
        return out;

    // Per-slot cursors, per-column stream pointers, shared raw window.
    std::vector<std::size_t> cursor(queues.size(), 0);
    std::vector<std::int64_t> head(static_cast<std::size_t>(cols), 0);
    auto skip_drained = [&](int j) {
        auto &p = head[static_cast<std::size_t>(j)];
        while (p < entries &&
               remaining[static_cast<std::size_t>(p * cols + j)] == 0) {
            ++p;
        }
    };
    for (int j = 0; j < cols; ++j)
        skip_drained(j);

    const std::int64_t max_raw = stream.rawEnd(entries - 1);
    std::int64_t frontier =
        std::min<std::int64_t>(abuf_raw_depth - 1, max_raw);
    double bw_budget = 0.0;

    std::vector<std::uint8_t> busy(queues.size());
    struct Offset { int dl, dr; };
    std::vector<Offset> steals;
    for (int dl = 0; dl <= cfg.a.d2; ++dl)
        for (int dr = 0; dr <= cfg.a.d3; ++dr)
            if (dl || dr)
                steals.push_back({dl, dr});

    std::int64_t left = out.effectualPairs;
    auto &st = out.stage2;
    while (left > 0) {
        ++st.cycles;
        std::fill(busy.begin(), busy.end(), 0);
        std::int64_t consumed_now = 0;

        // An entry is executable when it is inside its column's BBUF
        // window and its raw span has streamed into the ABUF.
        auto eligible = [&](int j, std::int64_t e) {
            if (e >= head[static_cast<std::size_t>(j)] + bbuf_depth)
                return false;
            const auto hi = stream.rawHi(e, j);
            return hi <= frontier;
        };
        auto consume = [&](std::size_t src_slot, int j, bool own,
                           int consumer_lane, int consumer_row) {
            auto &cur = cursor[src_slot];
            const auto e = queues[src_slot][cur];
            ++cur;
            --remaining[static_cast<std::size_t>(e * cols + j)];
            --left;
            ++consumed_now;
            ++st.ops;
            if (own)
                ++st.ownOps;
            else
                ++st.stolenOps;
            if (record) {
                const int src_lane = static_cast<int>(
                    src_slot % static_cast<std::size_t>(lanes));
                const auto flat_k = stream.flatK(e, src_lane, j);
                const int src_row = static_cast<int>(
                    (src_slot / static_cast<std::size_t>(lanes)) %
                    static_cast<std::size_t>(rows));
                static_cast<void>(consumer_lane);
                static_cast<void>(consumer_row);
                out.ops.push_back({flat_k, src_row,
                                   stream.homeCol(e, src_lane, j),
                                   st.cycles - 1});
            }
        };

        for (int j = 0; j < cols; ++j) {
            // Pass 1: own queues.
            for (int m = 0; m < rows; ++m) {
                for (int l = 0; l < lanes; ++l) {
                    const auto s = slot_of(l, m, j);
                    const auto &q = queues[s];
                    if (cursor[s] < q.size() &&
                        eligible(j, q[cursor[s]])) {
                        consume(s, j, true, l, m);
                        busy[s] = 1;
                    }
                }
            }
            // Pass 2: lane/row stealing within the column.
            if (!steals.empty()) {
                for (int m = 0; m < rows; ++m) {
                    for (int l = 0; l < lanes; ++l) {
                        const auto s = slot_of(l, m, j);
                        if (busy[s])
                            continue;
                        for (const auto &off : steals) {
                            const int sl = l + off.dl;
                            const int sr = m + off.dr;
                            if (sl >= lanes || sr >= rows)
                                continue;
                            const auto src = slot_of(sl, sr, j);
                            const auto &q = queues[src];
                            if (cursor[src] < q.size() &&
                                eligible(j, q[cursor[src]])) {
                                consume(src, j, false, l, m);
                                busy[s] = 1;
                                break;
                            }
                        }
                    }
                }
            }
        }
        st.idleSlotCycles +=
            static_cast<std::int64_t>(queues.size()) - consumed_now;
        if (left == 0)
            break;

        // Retire drained entries per column, then slide the shared raw
        // window: the tail is the lowest raw step any column's oldest
        // live entry still needs; the frontier streams forward at the
        // ASRAM rate into the remaining ABUF capacity.
        std::int64_t tail = max_raw;
        for (int j = 0; j < cols; ++j) {
            skip_drained(j);
            const auto p = head[static_cast<std::size_t>(j)];
            if (p < entries) {
                const auto lo = stream.rawLo(p, j);
                if (lo >= 0)
                    tail = std::min(tail, lo);
            }
        }
        bw_budget += advance_cap;
        bool limited = false;
        while (frontier < max_raw &&
               frontier < tail + abuf_raw_depth - 1) {
            if (bw_budget >= 1.0) {
                bw_budget -= 1.0;
                ++frontier;
            } else {
                limited = true;
                break;
            }
        }
        if (limited)
            ++st.bwLimitedCycles;
        bw_budget = std::min(bw_budget,
                             static_cast<double>(abuf_raw_depth));
    }
    out.cycles = st.cycles;
    return out;
}

DualSchedule
scheduleOnTheFly(const TileViewA &a, const TileViewB &b,
                 const RoutingConfig &cfg, const Shuffler &shuffler,
                 double advance_cap, bool record)
{
    GRIFFIN_ASSERT(a.steps() == b.steps(),
                   "A tile has ", a.steps(), " steps, B tile ",
                   b.steps());
    SlotGrid grid;
    grid.steps = a.steps();
    grid.lanes = a.lanes();
    grid.rows = a.units();
    grid.cols = b.units();

    SlotQueues queues(grid);
    for (std::int64_t k1 = 0; k1 < grid.steps; ++k1) {
        for (int k2 = 0; k2 < grid.lanes; ++k2) {
            const int lane = shuffler.apply(k1, k2);
            for (int m = 0; m < grid.rows; ++m) {
                if (!a.nonzero(k1, k2, m))
                    continue;
                for (int j = 0; j < grid.cols; ++j)
                    if (b.nonzero(k1, k2, j))
                        queues.push(k1, lane, m, j);
            }
        }
    }

    DualSchedule out;
    out.effectualPairs = queues.totalElements();

    BorrowWindow window;
    window.steps = 1 + std::min(cfg.a.d1, cfg.b.d1);
    window.laneDist = cfg.a.d2 + cfg.b.d2;
    window.rowDist = cfg.a.d3;
    window.colDist = cfg.b.d3;
    window.advanceCap =
        std::min(advance_cap, static_cast<double>(window.steps));
    window.budgetCeiling = window.steps;

    auto result = runWindowSchedule(queues, window, record);
    out.cycles = result.stats.cycles;
    out.stage2 = result.stats;
    if (record) {
        out.ops.reserve(result.ops.size());
        for (const auto &op : result.ops) {
            const int orig_k2 = shuffler.invert(op.step, op.lane);
            out.ops.push_back({op.step * grid.lanes + orig_k2, op.row,
                               op.col, op.cycle});
        }
    }
    return out;
}

} // namespace

DualSchedule
scheduleDual(const TileViewA &a, const TileViewB &b,
             const RoutingConfig &cfg, const Shuffler &shuffler,
             const BSchedule *b_stream, double advance_cap, bool record)
{
    GRIFFIN_ASSERT(cfg.mode == SparsityMode::AB,
                   "scheduleDual needs a Sparse.AB config, got ",
                   cfg.str());
    GRIFFIN_ASSERT(advance_cap > 0.0, "non-positive advance cap");
    if (cfg.preprocessB) {
        GRIFFIN_ASSERT(b_stream != nullptr,
                       "preprocessed dual scheduling needs the B "
                       "stream");
        return schedulePreprocessed(a, cfg, *b_stream, advance_cap,
                                    record);
    }
    return scheduleOnTheFly(a, b, cfg, shuffler, advance_cap, record);
}

} // namespace griffin
