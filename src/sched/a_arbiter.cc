#include "sched/a_arbiter.hh"

#include <algorithm>

#include "sched/window_scheduler.hh"

namespace griffin {

ScheduleResult
scheduleA(const TileViewA &a, const Borrow &da, const Shuffler &shuffler,
          double advance_cap, bool record)
{
    GRIFFIN_ASSERT(shuffler.lanes() == a.lanes(),
                   "shuffler is ", shuffler.lanes(), " lanes wide, tile ",
                   a.lanes());
    GRIFFIN_ASSERT(advance_cap > 0.0, "non-positive advance cap");

    SlotGrid grid;
    grid.steps = a.steps();
    grid.lanes = a.lanes();
    grid.rows = a.units();
    grid.cols = 1;

    SlotQueues queues(grid);
    for (std::int64_t k1 = 0; k1 < grid.steps; ++k1) {
        for (int k2 = 0; k2 < grid.lanes; ++k2) {
            const int lane = shuffler.apply(k1, k2);
            for (int m = 0; m < grid.rows; ++m)
                if (a.nonzero(k1, k2, m))
                    queues.push(k1, lane, m, 0);
        }
    }

    BorrowWindow window;
    window.steps = 1 + da.d1;
    window.laneDist = da.d2;
    window.rowDist = da.d3;
    window.colDist = 0;
    window.advanceCap = std::min<double>(advance_cap, window.steps);
    window.budgetCeiling = window.steps;

    return runWindowSchedule(queues, window, record);
}

} // namespace griffin
