#include "sched/a_arbiter.hh"

#include <algorithm>

#include "common/arena.hh"
#include "sched/window_scheduler.hh"
#include "simd/occupancy.hh"

namespace griffin {

ScheduleResult
scheduleA(const TileViewA &a, const Borrow &da, const Shuffler &shuffler,
          double advance_cap, bool record)
{
    GRIFFIN_ASSERT(shuffler.lanes() == a.lanes(),
                   "shuffler is ", shuffler.lanes(), " lanes wide, tile ",
                   a.lanes());
    GRIFFIN_ASSERT(advance_cap > 0.0, "non-positive advance cap");

    SlotGrid grid;
    grid.steps = a.steps();
    grid.lanes = a.lanes();
    grid.rows = a.units();
    grid.cols = 1;

    // Bulk occupancy (bit m of occ[flat k]) + CSR count/prefix/fill;
    // k1-major fill order keeps every slot queue ascending, and the
    // shuffler guarantees one k2 per (step, lane) so within-step order
    // cannot matter.
    Arena &arena = workArena();
    ArenaScope scope(arena);
    const std::int64_t flat = grid.steps * grid.lanes;
    const std::int64_t nslots = grid.slots();
    auto *occ =
        arena.alloc<std::uint64_t>(static_cast<std::size_t>(flat));
    simd::aTileOccupancy(a.matrix(), a.unitBase(), grid.rows,
                         grid.steps, grid.lanes, occ);

    auto *offsets = arena.allocZeroed<std::int64_t>(
        static_cast<std::size_t>(nslots + 1));
    for (std::int64_t f = 0; f < flat; ++f) {
        const std::int64_t k1 = f / grid.lanes;
        const int lane =
            shuffler.apply(k1, static_cast<int>(f % grid.lanes));
        std::uint64_t word = occ[f];
        while (word != 0) {
            const int m = simd::ctz64(word);
            word &= word - 1;
            ++offsets[m * grid.lanes + lane + 1];
        }
    }
    for (std::int64_t s = 0; s < nslots; ++s)
        offsets[s + 1] += offsets[s];
    auto *values = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(offsets[nslots]));
    auto *fill = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    for (std::int64_t s = 0; s < nslots; ++s)
        fill[s] = offsets[s];
    for (std::int64_t f = 0; f < flat; ++f) {
        const std::int64_t k1 = f / grid.lanes;
        const int lane =
            shuffler.apply(k1, static_cast<int>(f % grid.lanes));
        std::uint64_t word = occ[f];
        while (word != 0) {
            const int m = simd::ctz64(word);
            word &= word - 1;
            values[fill[m * grid.lanes + lane]++] = k1;
        }
    }

    SlotQueueSpans queues;
    queues.grid = grid;
    queues.offsets = offsets;
    queues.values = values;

    BorrowWindow window;
    window.steps = 1 + da.d1;
    window.laneDist = da.d2;
    window.rowDist = da.d3;
    window.colDist = 0;
    window.advanceCap = std::min<double>(advance_cap, window.steps);
    window.budgetCeiling = window.steps;

    return runWindowSchedule(queues, window, record);
}

} // namespace griffin
