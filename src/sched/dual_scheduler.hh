/**
 * @file
 * Dual-sparse scheduling (paper Section IV-A, Fig. 3).
 *
 * Two flavours:
 *
 *  - Preprocessed (Griffin-style): stage 1 packs B offline into its
 *    compressed stream (sched/b_preprocess.hh); stage 2 runs the
 *    7-step pipeline of Fig. 3 at runtime — zero masks of A are
 *    filtered by B's metadata and surviving pairs are window-scheduled
 *    over *compressed* cycles with the (da1,da2,da3) window.  The
 *    effective lookahead compounds: ABUF spans
 *    (1+da1)(1+db1) raw steps.
 *
 *  - On-the-fly (TensorDash-style): both operands are matched at
 *    runtime in one pass over raw steps; lookahead is limited by the
 *    shallower of the two raw buffers.
 *
 * The A stream is dense in both cases, so stage 2's window advance is
 * charged per *raw* A step against the ASRAM bandwidth budget.
 */

#ifndef GRIFFIN_SCHED_DUAL_SCHEDULER_HH
#define GRIFFIN_SCHED_DUAL_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "arch/routing.hh"
#include "sched/b_preprocess.hh"
#include "sched/schedule.hh"
#include "tensor/shuffle.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * One executed effectual pair: A[rowBase+m][k] x B[k][colBase+homeCol]
 * accumulating into C[rowBase+m][colBase+homeCol].
 */
struct DualOp
{
    std::int64_t flatK; ///< original k index of the pair
    int m;              ///< A-side row within the tile
    int homeCol;        ///< B-side home column within the tile
    std::int64_t cycle;
};

/** Result of scheduling one (A-row-tile x B-col-tile) pair. */
struct DualSchedule
{
    std::int64_t cycles = 0;   ///< runtime cycles of the tile
    ScheduleStats stage1;      ///< offline B packing stats
    ScheduleStats stage2;      ///< runtime pair-matching stats
    std::int64_t effectualPairs = 0;
    std::vector<DualOp> ops;   ///< recorded when asked
};

/**
 * Schedule one tile pair under a dual-sparse routing config
 * (cfg.mode must be Sparse.AB).
 *
 * @param b_stream   preprocessed B stream for this column tile; may be
 *                   null for on-the-fly configs (it is ignored), must
 *                   be non-null for preprocessed ones — callers build
 *                   it once per column tile and reuse it across every
 *                   row tile.
 * @param advance_cap ASRAM bandwidth in raw A steps per cycle
 */
DualSchedule scheduleDual(const TileViewA &a, const TileViewB &b,
                          const RoutingConfig &cfg,
                          const Shuffler &shuffler,
                          const BSchedule *b_stream, double advance_cap,
                          bool record);

} // namespace griffin

#endif // GRIFFIN_SCHED_DUAL_SCHEDULER_HH
