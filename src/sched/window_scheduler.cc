#include "sched/window_scheduler.hh"

#include <algorithm>
#include <limits>

namespace griffin {

namespace {

/** Mutable cursor over one slot's queue. */
struct Cursor
{
    const std::vector<std::int64_t> *queue;
    std::size_t next = 0;

    bool empty() const { return next >= queue->size(); }
    std::int64_t head() const { return (*queue)[next]; }
    void pop() { ++next; }
};

} // namespace

ScheduleResult
runWindowSchedule(const SlotQueues &queues, const BorrowWindow &window,
                  bool record,
                  const std::vector<std::int64_t> *step_costs)
{
    const SlotGrid &grid = queues.grid();
    GRIFFIN_ASSERT(window.steps >= 1, "window of ", window.steps,
                   " steps");
    GRIFFIN_ASSERT(window.advanceCap > 0.0,
                   "advance cap must be positive");
    GRIFFIN_ASSERT(window.budgetCeiling >= 1.0,
                   "budget ceiling below one step cost");
    GRIFFIN_ASSERT(window.laneDist >= 0 && window.rowDist >= 0 &&
                   window.colDist >= 0, "negative borrow distance");
    if (step_costs != nullptr) {
        GRIFFIN_ASSERT(
            static_cast<std::int64_t>(step_costs->size()) == grid.steps,
            "step cost vector size ", step_costs->size(),
            " != steps ", grid.steps);
        for (auto c : *step_costs)
            GRIFFIN_ASSERT(c >= 0 && static_cast<double>(c) <=
                           window.budgetCeiling,
                           "step cost ", c, " exceeds buffer capacity ",
                           window.budgetCeiling);
    }

    ScheduleResult result;
    std::int64_t remaining = queues.totalElements();
    if (remaining == 0)
        return result;

    std::vector<Cursor> cursors;
    cursors.reserve(static_cast<std::size_t>(grid.slots()));
    for (const auto &q : queues.raw())
        cursors.push_back(Cursor{&q});

    // Pre-enumerate steal offsets in priority order: lexicographic in
    // (lane, row, col) deltas, own slot (0,0,0) excluded — pass 1
    // handles it.  This mirrors a fixed priority-encoder chain.
    struct Offset { int dl, dr, dc; };
    std::vector<Offset> steals;
    for (int dl = 0; dl <= window.laneDist; ++dl)
        for (int dr = 0; dr <= window.rowDist; ++dr)
            for (int dc = 0; dc <= window.colDist; ++dc)
                if (dl || dr || dc)
                    steals.push_back({dl, dr, dc});

    const std::int64_t w_limit = window.steps; // max step advance/cycle
    std::int64_t w = 0;
    // The first window's worth of operands is loaded during pipeline
    // fill (accounted by the tile simulator), so the streaming budget
    // starts empty and accrues advanceCap per cycle.
    double budget = 0.0;
    std::vector<std::uint8_t> busy(
        static_cast<std::size_t>(grid.slots()));

    // Advancing the window base from w to w+1 brings step w+W into
    // residence; that is the data that must stream in.  Past the end
    // of the grid nothing enters, so draining the tail is free.
    auto entering_cost = [&](std::int64_t base) -> double {
        const std::int64_t entering = base + window.steps;
        if (entering >= grid.steps)
            return 0.0;
        return step_costs == nullptr
                   ? 1.0
                   : static_cast<double>((
                         *step_costs)[static_cast<std::size_t>(
                         entering)]);
    };

    while (remaining > 0) {
        ++result.stats.cycles;
        const std::int64_t horizon = w + window.steps - 1;
        std::fill(busy.begin(), busy.end(), 0);
        std::int64_t consumed_this_cycle = 0;

        auto consume = [&](std::int64_t src_slot, int src_lane,
                           int src_row, int src_col, int con_lane,
                           int con_row, int con_col, bool own) {
            auto &cur = cursors[static_cast<std::size_t>(src_slot)];
            const std::int64_t step = cur.head();
            cur.pop();
            --remaining;
            ++consumed_this_cycle;
            ++result.stats.ops;
            if (own)
                ++result.stats.ownOps;
            else
                ++result.stats.stolenOps;
            if (record) {
                result.ops.push_back({step, src_lane, src_row, src_col,
                                      con_lane, con_row, con_col,
                                      result.stats.cycles - 1});
            }
        };

        // Pass 1: every slot takes its own head if it is in window.
        for (int col = 0; col < grid.cols; ++col) {
            for (int row = 0; row < grid.rows; ++row) {
                for (int lane = 0; lane < grid.lanes; ++lane) {
                    const auto s = grid.slotIndex(lane, row, col);
                    auto &cur = cursors[static_cast<std::size_t>(s)];
                    if (!cur.empty() && cur.head() <= horizon) {
                        consume(s, lane, row, col, lane, row, col, true);
                        busy[static_cast<std::size_t>(s)] = 1;
                    }
                }
            }
        }

        // Pass 2: idle slots steal the earliest eligible neighbour
        // head, scanning offsets in fixed priority order.
        if (!steals.empty()) {
            for (int col = 0; col < grid.cols; ++col) {
                for (int row = 0; row < grid.rows; ++row) {
                    for (int lane = 0; lane < grid.lanes; ++lane) {
                        const auto s = grid.slotIndex(lane, row, col);
                        if (busy[static_cast<std::size_t>(s)])
                            continue;
                        for (const auto &off : steals) {
                            const int sl = lane + off.dl;
                            const int sr = row + off.dr;
                            const int sc = col + off.dc;
                            if (sl >= grid.lanes || sr >= grid.rows ||
                                sc >= grid.cols) {
                                continue;
                            }
                            const auto src =
                                grid.slotIndex(sl, sr, sc);
                            auto &cur =
                                cursors[static_cast<std::size_t>(src)];
                            if (!cur.empty() && cur.head() <= horizon) {
                                consume(src, sl, sr, sc, lane, row, col,
                                        false);
                                busy[static_cast<std::size_t>(s)] = 1;
                                break;
                            }
                        }
                    }
                }
            }
        }

        result.stats.idleSlotCycles += grid.slots() - consumed_this_cycle;
        if (remaining == 0)
            break;

        // Advance the window tail toward the earliest outstanding
        // element, bounded by buffer turnover (window depth) and the
        // SRAM bandwidth budget.
        std::int64_t min_head = std::numeric_limits<std::int64_t>::max();
        for (const auto &cur : cursors)
            if (!cur.empty())
                min_head = std::min(min_head, cur.head());

        budget = std::min(budget + window.advanceCap,
                          window.budgetCeiling);
        std::int64_t advanced = 0;
        bool bw_limited = false;
        while (w < min_head && advanced < w_limit) {
            const double c = entering_cost(w);
            if (budget >= c) {
                budget -= c;
                ++w;
                ++advanced;
            } else {
                bw_limited = true;
                break;
            }
        }
        if (bw_limited)
            ++result.stats.bwLimitedCycles;
    }

    return result;
}

} // namespace griffin
