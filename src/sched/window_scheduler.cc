#include "sched/window_scheduler.hh"

#include <algorithm>
#include <limits>

#include "common/arena.hh"
#include "simd/occupancy.hh"

namespace griffin {

namespace {

constexpr std::int64_t kEmptyHead =
    std::numeric_limits<std::int64_t>::max();

/**
 * One pre-enumerated steal offset: lexicographic (dl, dr, dc) priority
 * with the flat slot-index delta folded in, so the scan is an add and
 * three bounds checks per candidate.
 */
struct StealOffset
{
    int dl;
    int dr;
    int dc;
    std::int64_t delta;
};

} // namespace

ScheduleResult
runWindowSchedule(const SlotQueueSpans &queues,
                  const BorrowWindow &window, bool record,
                  const std::vector<std::int64_t> *step_costs)
{
    const SlotGrid &grid = queues.grid;
    GRIFFIN_ASSERT(window.steps >= 1, "window of ", window.steps,
                   " steps");
    GRIFFIN_ASSERT(window.advanceCap > 0.0,
                   "advance cap must be positive");
    GRIFFIN_ASSERT(window.budgetCeiling >= 1.0,
                   "budget ceiling below one step cost");
    GRIFFIN_ASSERT(window.laneDist >= 0 && window.rowDist >= 0 &&
                   window.colDist >= 0, "negative borrow distance");
    if (step_costs != nullptr) {
        GRIFFIN_ASSERT(
            static_cast<std::int64_t>(step_costs->size()) == grid.steps,
            "step cost vector size ", step_costs->size(),
            " != steps ", grid.steps);
        for (auto c : *step_costs)
            GRIFFIN_ASSERT(c >= 0 && static_cast<double>(c) <=
                           window.budgetCeiling,
                           "step cost ", c, " exceeds buffer capacity ",
                           window.budgetCeiling);
    }

    ScheduleResult result;
    std::int64_t remaining = queues.totalElements();
    if (remaining == 0)
        return result;
    if (record)
        result.ops.reserve(static_cast<std::size_t>(remaining));

    const std::int64_t nslots = grid.slots();
    const std::int64_t words = (nslots + 63) / 64;

    Arena &arena = workArena();
    ArenaScope scope(arena);

    // Dense head-step array (kEmptyHead marks a drained queue): pass-1
    // eligibility is one masked compare over it, and the window
    // advance's min-head scan is one SIMD reduction.
    auto *cursor = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    auto *heads = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    auto *elig = arena.alloc<std::uint64_t>(
        static_cast<std::size_t>(words));
    auto *pass1 = arena.alloc<std::uint64_t>(
        static_cast<std::size_t>(words));
    for (std::int64_t s = 0; s < nslots; ++s) {
        cursor[s] = queues.offsets[s];
        heads[s] = queues.offsets[s] < queues.offsets[s + 1]
                       ? queues.values[queues.offsets[s]]
                       : kEmptyHead;
    }

    std::vector<StealOffset> steals;
    for (int dl = 0; dl <= window.laneDist; ++dl)
        for (int dr = 0; dr <= window.rowDist; ++dr)
            for (int dc = 0; dc <= window.colDist; ++dc)
                if (dl || dr || dc)
                    steals.push_back(
                        {dl, dr, dc,
                         dl + static_cast<std::int64_t>(dr) *
                                  grid.lanes +
                             static_cast<std::int64_t>(dc) *
                                 grid.lanes * grid.rows});

    const simd::KernelTable &kern = simd::kernels();
    const std::int64_t w_limit = window.steps; // max step advance/cycle
    std::int64_t w = 0;
    // The first window's worth of operands is loaded during pipeline
    // fill (accounted by the tile simulator), so the streaming budget
    // starts empty and accrues advanceCap per cycle.
    double budget = 0.0;

    // Advancing the window base from w to w+1 brings step w+W into
    // residence; that is the data that must stream in.  Past the end
    // of the grid nothing enters, so draining the tail is free.
    auto entering_cost = [&](std::int64_t base) -> double {
        const std::int64_t entering = base + window.steps;
        if (entering >= grid.steps)
            return 0.0;
        return step_costs == nullptr
                   ? 1.0
                   : static_cast<double>((
                         *step_costs)[static_cast<std::size_t>(
                         entering)]);
    };

    while (remaining > 0) {
        ++result.stats.cycles;
        const std::int64_t horizon = w + window.steps - 1;
        std::int64_t consumed_this_cycle = 0;

        // Eligibility = head within the window.  Drained slots carry
        // the kEmptyHead sentinel, which can never be <= horizon, so
        // one compare covers both conditions.
        kern.leMask(heads, nslots, horizon, elig);
        std::int64_t elig_count = 0;
        for (std::int64_t i = 0; i < words; ++i)
            elig_count += simd::popcount64(elig[i]);

        // Consume slot src's head on consumer slot `s`; updates the
        // head and its eligibility bit (a steal may drain the source
        // for later stealers in the same cycle).
        auto consume = [&](std::int64_t src, int src_lane, int src_row,
                           int src_col, int con_lane, int con_row,
                           int con_col, bool own) {
            const std::int64_t step = heads[src];
            const std::int64_t next = ++cursor[src];
            heads[src] = next < queues.offsets[src + 1]
                             ? queues.values[next]
                             : kEmptyHead;
            const std::uint64_t bit = std::uint64_t{1} << (src & 63);
            if (heads[src] > horizon) {
                elig[src >> 6] &= ~bit;
                --elig_count;
            }
            --remaining;
            ++consumed_this_cycle;
            ++result.stats.ops;
            if (own)
                ++result.stats.ownOps;
            else
                ++result.stats.stolenOps;
            if (record) {
                result.ops.push_back({step, src_lane, src_row, src_col,
                                      con_lane, con_row, con_col,
                                      result.stats.cycles - 1});
            }
        };

        // Pass 1: every slot takes its own head if it is in window.
        // Ascending set-bit order over the mask IS ascending
        // (col, row, lane) order — slotIndex is exactly that mixed
        // radix — so ops record in the same order as ever.
        for (std::int64_t i = 0; i < words; ++i) {
            std::uint64_t word = elig[i];
            pass1[i] = word;
            while (word != 0) {
                const std::int64_t s =
                    i * 64 + simd::ctz64(word);
                word &= word - 1;
                const int lane = static_cast<int>(s % grid.lanes);
                const std::int64_t rest = s / grid.lanes;
                const int row = static_cast<int>(rest % grid.rows);
                const int col = static_cast<int>(rest / grid.rows);
                consume(s, lane, row, col, lane, row, col, true);
            }
        }

        // Pass 2: idle slots steal the earliest eligible neighbour
        // head, scanning offsets in fixed priority order.  Only slots
        // busy in pass 1 can be sources (an idle slot's head is past
        // the horizon by definition), so idle = ~pass1.
        if (!steals.empty() && elig_count > 0) {
            for (std::int64_t i = 0; i < words && elig_count > 0;
                 ++i) {
                std::uint64_t idle = ~pass1[i];
                if (i == words - 1 && (nslots & 63) != 0)
                    idle &= (std::uint64_t{1} << (nslots & 63)) - 1;
                while (idle != 0 && elig_count > 0) {
                    const std::int64_t s =
                        i * 64 + simd::ctz64(idle);
                    idle &= idle - 1;
                    const int lane = static_cast<int>(s % grid.lanes);
                    const std::int64_t rest = s / grid.lanes;
                    const int row = static_cast<int>(rest % grid.rows);
                    const int col =
                        static_cast<int>(rest / grid.rows);
                    for (const auto &off : steals) {
                        const int sl = lane + off.dl;
                        const int sr = row + off.dr;
                        const int sc = col + off.dc;
                        if (sl >= grid.lanes || sr >= grid.rows ||
                            sc >= grid.cols) {
                            continue;
                        }
                        const std::int64_t src = s + off.delta;
                        if ((elig[src >> 6] >>
                             (src & 63) & 1u) == 0)
                            continue;
                        consume(src, sl, sr, sc, lane, row, col,
                                false);
                        break;
                    }
                }
            }
        }

        result.stats.idleSlotCycles += nslots - consumed_this_cycle;
        if (remaining == 0)
            break;

        // Advance the window tail toward the earliest outstanding
        // element, bounded by buffer turnover (window depth) and the
        // SRAM bandwidth budget.
        const std::int64_t min_head = kern.minI64(heads, nslots);

        budget = std::min(budget + window.advanceCap,
                          window.budgetCeiling);
        std::int64_t advanced = 0;
        bool bw_limited = false;
        while (w < min_head && advanced < w_limit) {
            const double c = entering_cost(w);
            if (budget >= c) {
                budget -= c;
                ++w;
                ++advanced;
            } else {
                bw_limited = true;
                break;
            }
        }
        if (bw_limited)
            ++result.stats.bwLimitedCycles;
    }

    return result;
}

ScheduleResult
runWindowSchedule(const SlotQueues &queues, const BorrowWindow &window,
                  bool record,
                  const std::vector<std::int64_t> *step_costs)
{
    // Compatibility shim over the CSR engine: flatten the per-slot
    // vectors into arena-backed spans.  Hot callers build spans
    // directly; this path serves tests and external callers.
    const SlotGrid &grid = queues.grid();
    const std::int64_t nslots = grid.slots();

    Arena &arena = workArena();
    ArenaScope scope(arena);
    auto *offsets = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots + 1));
    std::int64_t total = 0;
    const auto &raw = queues.raw();
    for (std::int64_t s = 0; s < nslots; ++s) {
        offsets[s] = total;
        total += static_cast<std::int64_t>(
            raw[static_cast<std::size_t>(s)].size());
    }
    offsets[nslots] = total;
    auto *values =
        arena.alloc<std::int64_t>(static_cast<std::size_t>(total));
    std::int64_t at = 0;
    for (std::int64_t s = 0; s < nslots; ++s)
        for (const auto step : raw[static_cast<std::size_t>(s)])
            values[at++] = step;

    SlotQueueSpans spans;
    spans.grid = grid;
    spans.offsets = offsets;
    spans.values = values;
    return runWindowSchedule(spans, window, record, step_costs);
}

} // namespace griffin
