#include "sched/b_preprocess.hh"

#include <algorithm>

#include "sched/window_scheduler.hh"

namespace griffin {

BSchedule
preprocessB(const TileViewB &b, const Borrow &db, const Shuffler &shuffler,
            bool record)
{
    GRIFFIN_ASSERT(shuffler.lanes() == b.lanes(),
                   "shuffler is ", shuffler.lanes(), " lanes wide, tile ",
                   b.lanes());

    GridSpec grid;
    grid.steps = b.steps();
    grid.lanes = b.lanes();
    grid.rows = 1;
    grid.cols = b.units();

    SlotQueues queues(grid);
    for (std::int64_t k1 = 0; k1 < grid.steps; ++k1) {
        for (int k2 = 0; k2 < grid.lanes; ++k2) {
            const int lane = shuffler.apply(k1, k2);
            for (int n = 0; n < grid.cols; ++n)
                if (b.nonzero(k1, k2, n))
                    queues.push(k1, lane, 0, n);
        }
    }

    BorrowWindow window;
    window.steps = 1 + db.d1;
    window.laneDist = db.d2;
    window.rowDist = 0;
    window.colDist = db.d3;
    // Offline packing: the stream layout is limited by the window
    // depth only, never by runtime bandwidth.
    window.advanceCap = window.steps;
    window.budgetCeiling = window.steps;

    // The packing ops *are* the stream content, so always record.
    auto result = runWindowSchedule(queues, window, true);

    BSchedule sched;
    sched.cycles_ = std::max<std::int64_t>(result.stats.cycles, 0);
    sched.lanes_ = grid.lanes;
    sched.cols_ = grid.cols;
    sched.elems_ = result.stats.ops;
    sched.stats_ = result.stats;
    const auto cells = static_cast<std::size_t>(
        sched.cycles_ * grid.lanes * grid.cols);
    sched.flatk_.assign(cells, -1);
    sched.homecol_.assign(cells, -1);
    sched.raw_end_.assign(static_cast<std::size_t>(sched.cycles_), -1);
    const auto col_cells =
        static_cast<std::size_t>(sched.cycles_ * grid.cols);
    sched.raw_lo_.assign(col_cells, -1);
    sched.raw_hi_.assign(col_cells, -1);

    for (const auto &op : result.ops) {
        // The op's element lane is post-shuffle; recover the original
        // k2 to form the flat k index used for A pairing.
        const int orig_k2 = shuffler.invert(op.step, op.lane);
        const auto idx =
            sched.index(op.cycle, op.consumerLane, op.consumerCol);
        GRIFFIN_ASSERT(sched.flatk_[idx] == -1,
                       "two elements packed into one stream slot");
        sched.flatk_[idx] = op.step * grid.lanes + orig_k2;
        sched.homecol_[idx] = static_cast<std::int16_t>(op.col);
        auto &frontier =
            sched.raw_end_[static_cast<std::size_t>(op.cycle)];
        frontier = std::max(frontier, op.step);
        const auto cidx = sched.colIndex(op.cycle, op.consumerCol);
        auto &lo = sched.raw_lo_[cidx];
        auto &hi = sched.raw_hi_[cidx];
        lo = (lo < 0) ? op.step : std::min(lo, op.step);
        hi = std::max(hi, op.step);
    }
    // Make the frontier cumulative; empty cycles inherit it.
    std::int64_t running = -1;
    for (auto &v : sched.raw_end_) {
        running = std::max(running, v);
        v = running;
    }
    if (record)
        sched.ops_ = std::move(result.ops);
    return sched;
}

std::vector<std::int64_t>
BSchedule::stepCosts() const
{
    std::vector<std::int64_t> costs(
        static_cast<std::size_t>(cycles_), 0);
    std::int64_t prev = -1;
    for (std::int64_t c = 0; c < cycles_; ++c) {
        const auto end = raw_end_[static_cast<std::size_t>(c)];
        costs[static_cast<std::size_t>(c)] = std::max<std::int64_t>(
            0, end - prev);
        prev = std::max(prev, end);
    }
    return costs;
}

} // namespace griffin
