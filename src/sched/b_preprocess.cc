#include "sched/b_preprocess.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/arena.hh"
#include "common/binio.hh"
#include "sched/window_scheduler.hh"
#include "simd/occupancy.hh"

namespace griffin {

BSchedule
preprocessB(const TileViewB &b, const Borrow &db, const Shuffler &shuffler,
            bool record)
{
    GRIFFIN_ASSERT(shuffler.lanes() == b.lanes(),
                   "shuffler is ", shuffler.lanes(), " lanes wide, tile ",
                   b.lanes());

    SlotGrid grid;
    grid.steps = b.steps();
    grid.lanes = b.lanes();
    grid.rows = 1;
    grid.cols = b.units();

    // Bulk occupancy: one mask word per flat k with bit n set on
    // nonzero, then a count / prefix-sum / fill CSR build.  The
    // shuffler maps at most one k2 per (step, lane), so filling in
    // k1-major order keeps every slot's queue ascending.
    Arena &arena = workArena();
    ArenaScope scope(arena);
    const std::int64_t flat = grid.steps * grid.lanes;
    const std::int64_t nslots = grid.slots();
    auto *occ =
        arena.alloc<std::uint64_t>(static_cast<std::size_t>(flat));
    simd::bTileOccupancy(b.matrix(), b.unitBase(), grid.cols,
                         grid.steps, grid.lanes, occ);

    auto *offsets = arena.allocZeroed<std::int64_t>(
        static_cast<std::size_t>(nslots + 1));
    for (std::int64_t f = 0; f < flat; ++f) {
        const std::int64_t k1 = f / grid.lanes;
        const int lane =
            shuffler.apply(k1, static_cast<int>(f % grid.lanes));
        std::uint64_t word = occ[f];
        while (word != 0) {
            const int n = simd::ctz64(word);
            word &= word - 1;
            ++offsets[n * grid.lanes + lane + 1];
        }
    }
    for (std::int64_t s = 0; s < nslots; ++s)
        offsets[s + 1] += offsets[s];
    auto *values = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(offsets[nslots]));
    auto *fill = arena.alloc<std::int64_t>(
        static_cast<std::size_t>(nslots));
    for (std::int64_t s = 0; s < nslots; ++s)
        fill[s] = offsets[s];
    for (std::int64_t f = 0; f < flat; ++f) {
        const std::int64_t k1 = f / grid.lanes;
        const int lane =
            shuffler.apply(k1, static_cast<int>(f % grid.lanes));
        std::uint64_t word = occ[f];
        while (word != 0) {
            const int n = simd::ctz64(word);
            word &= word - 1;
            values[fill[n * grid.lanes + lane]++] = k1;
        }
    }

    SlotQueueSpans queues;
    queues.grid = grid;
    queues.offsets = offsets;
    queues.values = values;

    BorrowWindow window;
    window.steps = 1 + db.d1;
    window.laneDist = db.d2;
    window.rowDist = 0;
    window.colDist = db.d3;
    // Offline packing: the stream layout is limited by the window
    // depth only, never by runtime bandwidth.
    window.advanceCap = window.steps;
    window.budgetCeiling = window.steps;

    // The packing ops *are* the stream content, so always record.
    auto result = runWindowSchedule(queues, window, true);

    BSchedule sched;
    sched.cycles_ = std::max<std::int64_t>(result.stats.cycles, 0);
    sched.lanes_ = grid.lanes;
    sched.cols_ = grid.cols;
    sched.elems_ = result.stats.ops;
    sched.stats_ = result.stats;
    const auto cells = static_cast<std::size_t>(
        sched.cycles_ * grid.lanes * grid.cols);
    sched.flatk_.assign(cells, -1);
    sched.homecol_.assign(cells, -1);
    sched.raw_end_.assign(static_cast<std::size_t>(sched.cycles_), -1);
    const auto col_cells =
        static_cast<std::size_t>(sched.cycles_ * grid.cols);
    sched.raw_lo_.assign(col_cells, -1);
    sched.raw_hi_.assign(col_cells, -1);

    for (const auto &op : result.ops) {
        // The op's element lane is post-shuffle; recover the original
        // k2 to form the flat k index used for A pairing.
        const int orig_k2 = shuffler.invert(op.step, op.lane);
        const auto idx =
            sched.index(op.cycle, op.consumerLane, op.consumerCol);
        GRIFFIN_ASSERT(sched.flatk_[idx] == -1,
                       "two elements packed into one stream slot");
        sched.flatk_[idx] = op.step * grid.lanes + orig_k2;
        sched.homecol_[idx] = static_cast<std::int16_t>(op.col);
        auto &frontier =
            sched.raw_end_[static_cast<std::size_t>(op.cycle)];
        frontier = std::max(frontier, op.step);
        const auto cidx = sched.colIndex(op.cycle, op.consumerCol);
        auto &lo = sched.raw_lo_[cidx];
        auto &hi = sched.raw_hi_[cidx];
        lo = (lo < 0) ? op.step : std::min(lo, op.step);
        hi = std::max(hi, op.step);
    }
    // Make the frontier cumulative; empty cycles inherit it.
    std::int64_t running = -1;
    for (auto &v : sched.raw_end_) {
        running = std::max(running, v);
        v = running;
    }
    if (record)
        sched.ops_ = std::move(result.ops);
    return sched;
}

std::vector<std::int64_t>
BSchedule::stepCosts() const
{
    std::vector<std::int64_t> costs(
        static_cast<std::size_t>(cycles_), 0);
    std::int64_t prev = -1;
    for (std::int64_t c = 0; c < cycles_; ++c) {
        const auto end = raw_end_[static_cast<std::size_t>(c)];
        costs[static_cast<std::size_t>(c)] = std::max<std::int64_t>(
            0, end - prev);
        prev = std::max(prev, end);
    }
    return costs;
}

std::size_t
BSchedule::approxBytes() const
{
    return sizeof(BSchedule) +
           flatk_.size() * sizeof(std::int64_t) +
           homecol_.size() * sizeof(std::int16_t) +
           (raw_end_.size() + raw_lo_.size() + raw_hi_.size()) *
               sizeof(std::int64_t);
}

void
BSchedule::serialize(std::ostream &os) const
{
    putI64(os, cycles_);
    putI64(os, lanes_);
    putI64(os, cols_);
    putI64(os, elems_);
    putI64(os, stats_.cycles);
    putI64(os, stats_.ops);
    putI64(os, stats_.ownOps);
    putI64(os, stats_.stolenOps);
    putI64(os, stats_.idleSlotCycles);
    putI64(os, stats_.bwLimitedCycles);
    for (const auto v : flatk_)
        putI64(os, v);
    for (const auto v : homecol_)
        putI64(os, v);
    for (const auto v : raw_end_)
        putI64(os, v);
    for (const auto v : raw_lo_)
        putI64(os, v);
    for (const auto v : raw_hi_)
        putI64(os, v);
}

bool
BSchedule::deserialize(std::istream &is, BSchedule &out)
{
    BSchedule s;
    std::int64_t lanes = 0, cols = 0;
    if (!getI64(is, s.cycles_) || !getI64(is, lanes) ||
        !getI64(is, cols) || !getI64(is, s.elems_))
        return false;
    // Geometry sanity before sizing any allocation from it: a corrupt
    // stream must come back as `false`, never as a bad_alloc from a
    // multi-terabyte resize or a wrapped size_t product.  2^32 cells
    // (32 GiB of flatk_ alone) is far beyond any real schedule.
    if (s.cycles_ < 0 || lanes < 0 || lanes > (1 << 20) || cols < 0 ||
        cols > (1 << 20) || s.elems_ < 0)
        return false;
    constexpr std::int64_t maxCells = std::int64_t{1} << 32;
    if (s.cycles_ > maxCells ||
        (lanes * cols > 0 && s.cycles_ > maxCells / (lanes * cols)))
        return false;
    s.lanes_ = static_cast<int>(lanes);
    s.cols_ = static_cast<int>(cols);
    if (!getI64(is, s.stats_.cycles) || !getI64(is, s.stats_.ops) ||
        !getI64(is, s.stats_.ownOps) ||
        !getI64(is, s.stats_.stolenOps) ||
        !getI64(is, s.stats_.idleSlotCycles) ||
        !getI64(is, s.stats_.bwLimitedCycles))
        return false;

    const auto cells =
        static_cast<std::size_t>(s.cycles_) *
        static_cast<std::size_t>(s.lanes_) *
        static_cast<std::size_t>(s.cols_);
    const auto col_cells = static_cast<std::size_t>(s.cycles_) *
                           static_cast<std::size_t>(s.cols_);
    s.flatk_.resize(cells);
    for (auto &v : s.flatk_)
        if (!getI64(is, v))
            return false;
    s.homecol_.resize(cells);
    for (auto &v : s.homecol_) {
        std::int64_t wide = 0;
        if (!getI64(is, wide) || wide < INT16_MIN || wide > INT16_MAX)
            return false;
        v = static_cast<std::int16_t>(wide);
    }
    s.raw_end_.resize(static_cast<std::size_t>(s.cycles_));
    for (auto &v : s.raw_end_)
        if (!getI64(is, v))
            return false;
    s.raw_lo_.resize(col_cells);
    for (auto &v : s.raw_lo_)
        if (!getI64(is, v))
            return false;
    s.raw_hi_.resize(col_cells);
    for (auto &v : s.raw_hi_)
        if (!getI64(is, v))
            return false;
    out = std::move(s);
    return true;
}

} // namespace griffin
