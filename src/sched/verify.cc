#include "sched/verify.hh"

#include <set>
#include <sstream>
#include <tuple>

namespace griffin {

MatrixI32
referenceTile(const MatrixI8 &a, const MatrixI8 &b, std::int64_t row_base,
              std::int64_t col_base, const TileShape &shape)
{
    GRIFFIN_ASSERT(a.cols() == b.rows(), "GEMM shape mismatch");
    MatrixI32 c(shape.m0, shape.n0);
    for (int m = 0; m < shape.m0; ++m) {
        for (int n = 0; n < shape.n0; ++n) {
            std::int32_t acc = 0;
            for (std::size_t k = 0; k < a.cols(); ++k) {
                acc += static_cast<std::int32_t>(a.atOrZero(
                           static_cast<std::size_t>(row_base + m), k)) *
                       b.atOrZero(k,
                                  static_cast<std::size_t>(col_base + n));
            }
            c.at(m, n) = acc;
        }
    }
    return c;
}

MatrixI32
replayBSchedule(const BSchedule &stream, const MatrixI8 &a,
                const MatrixI8 &b, std::int64_t row_base,
                std::int64_t col_base, const TileShape &shape)
{
    MatrixI32 c(shape.m0, shape.n0);
    for (std::int64_t cyc = 0; cyc < stream.cycles(); ++cyc) {
        for (int j = 0; j < stream.cols(); ++j) {
            for (int l = 0; l < stream.lanes(); ++l) {
                const auto k = stream.flatK(cyc, l, j);
                if (k < 0)
                    continue;
                const int home = stream.homeCol(cyc, l, j);
                const std::int32_t bv = b.atOrZero(
                    static_cast<std::size_t>(k),
                    static_cast<std::size_t>(col_base + home));
                for (int m = 0; m < shape.m0; ++m) {
                    const std::int32_t av = a.atOrZero(
                        static_cast<std::size_t>(row_base + m),
                        static_cast<std::size_t>(k));
                    c.at(m, home) += av * bv;
                }
            }
        }
    }
    return c;
}

MatrixI32
replayASchedule(const std::vector<ScheduledOp> &ops,
                const Shuffler &shuffler, const MatrixI8 &a,
                const MatrixI8 &b, std::int64_t row_base,
                std::int64_t col_base, const TileShape &shape)
{
    MatrixI32 c(shape.m0, shape.n0);
    for (const auto &op : ops) {
        const int orig_k2 = shuffler.invert(op.step, op.lane);
        const auto k = op.step * shape.k0 + orig_k2;
        const std::int32_t av =
            a.atOrZero(static_cast<std::size_t>(row_base + op.row),
                       static_cast<std::size_t>(k));
        for (int n = 0; n < shape.n0; ++n) {
            const std::int32_t bv = b.atOrZero(
                static_cast<std::size_t>(k),
                static_cast<std::size_t>(col_base + n));
            c.at(op.row, n) += av * bv;
        }
    }
    return c;
}

MatrixI32
replayDualSchedule(const std::vector<DualOp> &ops, const MatrixI8 &a,
                   const MatrixI8 &b, std::int64_t row_base,
                   std::int64_t col_base, const TileShape &shape)
{
    MatrixI32 c(shape.m0, shape.n0);
    for (const auto &op : ops) {
        const std::int32_t av =
            a.atOrZero(static_cast<std::size_t>(row_base + op.m),
                       static_cast<std::size_t>(op.flatK));
        const std::int32_t bv =
            b.atOrZero(static_cast<std::size_t>(op.flatK),
                       static_cast<std::size_t>(col_base + op.homeCol));
        c.at(op.m, op.homeCol) += av * bv;
    }
    return c;
}

bool
checkScheduleBounds(const std::vector<ScheduledOp> &ops,
                    const BorrowWindow &window, std::string *err)
{
    std::set<std::tuple<std::int64_t, int, int, int>> seen;
    for (const auto &op : ops) {
        const auto key =
            std::make_tuple(op.step, op.lane, op.row, op.col);
        if (!seen.insert(key).second) {
            if (err) {
                std::ostringstream os;
                os << "element (step " << op.step << ", lane " << op.lane
                   << ", row " << op.row << ", col " << op.col
                   << ") executed more than once";
                *err = os.str();
            }
            return false;
        }
        const int dl = op.lane - op.consumerLane;
        const int dr = op.row - op.consumerRow;
        const int dc = op.col - op.consumerCol;
        if (dl < 0 || dl > window.laneDist || dr < 0 ||
            dr > window.rowDist || dc < 0 || dc > window.colDist) {
            if (err) {
                std::ostringstream os;
                os << "borrow (" << dl << "," << dr << "," << dc
                   << ") outside window (" << window.laneDist << ","
                   << window.rowDist << "," << window.colDist << ")";
                *err = os.str();
            }
            return false;
        }
        // The window starts at step 0 and advances at most
        // window.steps per cycle, so an element at step s cannot be
        // visible before cycle ceil((s+1)/W) - 1.
        const std::int64_t earliest_possible =
            (op.step + window.steps) / window.steps - 1;
        if (op.cycle < earliest_possible) {
            if (err) {
                std::ostringstream os;
                os << "element at step " << op.step
                   << " executed at cycle " << op.cycle
                   << " before the window could reach it";
                *err = os.str();
            }
            return false;
        }
    }
    if (err)
        err->clear();
    return true;
}

} // namespace griffin
