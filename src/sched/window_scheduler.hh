/**
 * @file
 * The generic sliding-window scheduler every sparse family reuses.
 *
 * Cycle-level greedy semantics (DESIGN.md Section 3):
 *
 *  1. The window covers steps [w, w + W - 1].
 *  2. Each cycle, pass 1 lets every slot consume the head of its own
 *     queue if that head lies in the window; pass 2 lets still-idle
 *     slots steal the head of a neighbouring queue within
 *     (laneDist, rowDist, colDist), scanning offsets lexicographically
 *     — a priority-encoder chain like Bit-Tactical's.
 *  3. The window tail then advances past drained steps, at most
 *     `advanceCap` step-costs per cycle (SRAM bandwidth), with unused
 *     budget accumulating up to `budgetCeiling` (buffer capacity).
 *
 * Consequences: max speedup = W (paper observation VI-A(1)); lane
 * imbalance stalls the window unless laneDist / shuffle spreads load;
 * cross-PE borrowing needs the extra adder trees accounted elsewhere.
 *
 * An optional per-step cost vector supports dual-sparse stage 2, where
 * each "step" is a compressed B entry spanning several raw A steps.
 */

#ifndef GRIFFIN_SCHED_WINDOW_SCHEDULER_HH
#define GRIFFIN_SCHED_WINDOW_SCHEDULER_HH

#include "sched/schedule.hh"

namespace griffin {

/**
 * Borrowed (CSR) view of per-slot element queues: slot s owns
 * values[offsets[s] .. offsets[s+1]), ascending.  The hot builders
 * (b_preprocess / a_arbiter / dual on-the-fly) assemble this directly
 * in the per-thread work arena from occupancy bitmasks — no per-slot
 * vector allocation.
 */
struct SlotQueueSpans
{
    SlotGrid grid;
    const std::int64_t *offsets = nullptr; ///< grid.slots() + 1 entries
    const std::int64_t *values = nullptr;  ///< offsets[grid.slots()]

    std::int64_t
    totalElements() const
    {
        return offsets[static_cast<std::size_t>(grid.slots())];
    }
};

/**
 * Run the window schedule to completion.
 *
 * @param queues     per-slot effectual element steps (consumed FIFO)
 * @param window     borrow window and bandwidth parameters
 * @param record     when true, every executed op lands in result.ops
 * @param step_costs optional cost to stream past each step (default 1
 *                   each); size must equal grid.steps when given
 */
ScheduleResult runWindowSchedule(
    const SlotQueues &queues, const BorrowWindow &window, bool record,
    const std::vector<std::int64_t> *step_costs = nullptr);

/** The same engine over a CSR queue view (the hot-path entry). */
ScheduleResult runWindowSchedule(
    const SlotQueueSpans &queues, const BorrowWindow &window,
    bool record, const std::vector<std::int64_t> *step_costs = nullptr);

} // namespace griffin

#endif // GRIFFIN_SCHED_WINDOW_SCHEDULER_HH
