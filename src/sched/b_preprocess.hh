/**
 * @file
 * Offline preprocessing of the weight matrix B (paper Fig. 2(a,b) and
 * step 1 of Fig. 3).
 *
 * B is known before execution, so its zeros are removed offline: the
 * window scheduler packs nonzero elements into a *compressed stream*
 * of (cycle, lane, column) entries, each carrying metadata that tells
 * the AMUX which A operand to pair with and — when the element was
 * borrowed across columns — which accumulator the partial product
 * belongs to.
 *
 * The compressed stream is what lands in BSRAM: `dataBytes()` nonzero
 * values plus `metadataBytes()` of routing bits, typically far smaller
 * than the dense tile.
 */

#ifndef GRIFFIN_SCHED_B_PREPROCESS_HH
#define GRIFFIN_SCHED_B_PREPROCESS_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "arch/routing.hh"
#include "sched/schedule.hh"
#include "tensor/shuffle.hh"
#include "tensor/tile.hh"

namespace griffin {

/**
 * The compressed form of one B tile: a dense (cycle x lane x column)
 * table of scheduled elements, -1 where a slot is empty.
 */
class BSchedule
{
  public:
    BSchedule() = default;

    std::int64_t cycles() const { return cycles_; }
    int lanes() const { return lanes_; }
    int cols() const { return cols_; }

    /** Flat original k index of the element at a stream slot; -1 if
     *  the slot is empty. */
    std::int64_t
    flatK(std::int64_t cycle, int lane, int col) const
    {
        return flatk_[index(cycle, lane, col)];
    }

    /** Original output column of the element (ADT routing target). */
    int
    homeCol(std::int64_t cycle, int lane, int col) const
    {
        return homecol_[index(cycle, lane, col)];
    }

    /** Scheduling statistics of the packing pass. */
    const ScheduleStats &stats() const { return stats_; }

    /** Recorded packing ops (only when built with record = true). */
    const std::vector<ScheduledOp> &ops() const { return ops_; }

    /** Number of nonzero elements in the stream. */
    std::int64_t scheduledElems() const { return elems_; }

    /**
     * Raw-step frontier: highest original k1 any entry up to and
     * including `cycle` needs, cumulative.  Drives the A-stream cost
     * model of dual-sparse stage 2.
     */
    std::int64_t rawEnd(std::int64_t cycle) const
    {
        return raw_end_[static_cast<std::size_t>(cycle)];
    }

    /**
     * Per-column raw extent of one stream entry: the lowest / highest
     * original k1 among the elements column `col` holds at `cycle`,
     * or -1 when that column's slice of the entry is empty.  The
     * asynchronous dual-sparse engine uses these to enforce the shared
     * ABUF residency window across independently advancing columns.
     */
    std::int64_t
    rawLo(std::int64_t cycle, int col) const
    {
        return raw_lo_[colIndex(cycle, col)];
    }

    std::int64_t
    rawHi(std::int64_t cycle, int col) const
    {
        return raw_hi_[colIndex(cycle, col)];
    }

    /**
     * Contiguous per-lane flat-k span of one (cycle, col) stream slice
     * — `lanes()` values, -1 on empty slots.  The dual-sparse engine
     * walks whole slices; this keeps the range check per slice rather
     * than per element.
     */
    const std::int64_t *
    flatKLanes(std::int64_t cycle, int col) const
    {
        return flatk_.data() + index(cycle, 0, col);
    }

    /**
     * Flat raw-extent tables indexed `cycle * cols() + col` — the bulk
     * counterpart of rawLo()/rawHi() for the engine's per-cycle
     * eligibility filter.
     */
    const std::int64_t *rawLoData() const { return raw_lo_.data(); }
    const std::int64_t *rawHiData() const { return raw_hi_.data(); }

    /** Streaming cost of each compressed entry in raw A steps. */
    std::vector<std::int64_t> stepCosts() const;

    /** Compressed payload size: one INT8 per scheduled element. */
    std::int64_t dataBytes() const { return elems_; }

    /** Metadata size at the given bits-per-element rate. */
    std::int64_t
    metadataBytes(int bits_per_elem) const
    {
        return (elems_ * bits_per_elem + 7) / 8;
    }

    /**
     * Approximate resident footprint of this schedule (stream tables
     * plus raw-extent indices).  The schedule-cache byte budget and the
     * persistent cache store both count entries in these units.
     */
    std::size_t approxBytes() const;

    /**
     * Write the schedule's complete state as fixed-width little-endian
     * binary: geometry, element count, packing stats, and the stream /
     * raw-extent tables.  Recorded ops are never serialized (cached
     * schedules are built with record = false); deserialize() of the
     * stream reproduces a structurally identical schedule on any
     * platform.
     */
    void serialize(std::ostream &os) const;

    /**
     * Read one serialize()d schedule.  Returns false (leaving `out`
     * unspecified) on truncated or structurally inconsistent input —
     * callers treat that as a corrupt cache file, not a fatal error.
     */
    static bool deserialize(std::istream &is, BSchedule &out);

  private:
    friend BSchedule preprocessB(const TileViewB &, const Borrow &,
                                 const Shuffler &, bool);

    std::size_t
    index(std::int64_t cycle, int lane, int col) const
    {
        GRIFFIN_ASSERT(cycle >= 0 && cycle < cycles_ && lane >= 0 &&
                       lane < lanes_ && col >= 0 && col < cols_,
                       "stream slot (", cycle, ",", lane, ",", col,
                       ") out of range");
        return static_cast<std::size_t>((cycle * cols_ + col) * lanes_ +
                                        lane);
    }

    std::size_t
    colIndex(std::int64_t cycle, int col) const
    {
        GRIFFIN_ASSERT(cycle >= 0 && cycle < cycles_ && col >= 0 &&
                       col < cols_,
                       "stream entry (", cycle, ",", col,
                       ") out of range");
        return static_cast<std::size_t>(cycle * cols_ + col);
    }

    std::int64_t cycles_ = 0;
    int lanes_ = 0;
    int cols_ = 0;
    std::int64_t elems_ = 0;
    ScheduleStats stats_;
    std::vector<std::int64_t> flatk_;
    std::vector<std::int16_t> homecol_;
    std::vector<std::int64_t> raw_end_;
    std::vector<std::int64_t> raw_lo_;
    std::vector<std::int64_t> raw_hi_;
    std::vector<ScheduledOp> ops_;
};

/**
 * Pack one B tile into its compressed stream under the (db1,db2,db3)
 * borrow window.  Preprocessing is offline, so no bandwidth cap
 * applies — the window depth itself is the only packing limit.
 *
 * @param record keep the raw packing ops for verification
 */
BSchedule preprocessB(const TileViewB &b, const Borrow &db,
                      const Shuffler &shuffler, bool record);

} // namespace griffin

#endif // GRIFFIN_SCHED_B_PREPROCESS_HH
