#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <unordered_set>

namespace griffin {
namespace lint {

namespace {

// ---- source model ---------------------------------------------------

/**
 * One file split into parallel per-line views: `code` with comments
 * and string/char literal contents blanked to spaces (so token rules
 * never fire inside text), and `comment` holding the comment text of
 * the line (for suppression and marker parsing).
 */
struct SourceView
{
    std::vector<std::string> code;
    std::vector<std::string> comment;

    int lines() const { return static_cast<int>(code.size()); }

    /** The code view flattened with '\n' separators (offsets map back
     *  to lines via lineOf). */
    std::string flat;
    std::vector<std::size_t> lineStart; ///< flat offset of each line

    int
    lineOf(std::size_t offset) const
    {
        // Upper-bound binary search: the last lineStart <= offset.
        auto it = std::upper_bound(lineStart.begin(), lineStart.end(),
                                   offset);
        return static_cast<int>(it - lineStart.begin());
    }
};

SourceView
splitSource(const std::string &text)
{
    SourceView view;
    std::string code_line;
    std::string comment_line;

    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString
    };
    State state = State::Code;
    std::string raw_delim; ///< )delim" terminator of a raw string

    const auto flush_line = [&] {
        view.code.push_back(code_line);
        view.comment.push_back(comment_line);
        code_line.clear();
        comment_line.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            flush_line();
            continue;
        }
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                code_line += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                code_line += "  ";
                ++i;
            } else if (c == '"') {
                // R"delim( raw string: honour its custom terminator.
                std::size_t r = code_line.size();
                if (r >= 1 && code_line[r - 1] == 'R' &&
                    (r == 1 || !(std::isalnum(static_cast<unsigned char>(
                                     code_line[r - 2])) ||
                                 code_line[r - 2] == '_'))) {
                    std::string delim;
                    std::size_t j = i + 1;
                    while (j < text.size() && text[j] != '(')
                        delim += text[j++];
                    raw_delim = ")" + delim + "\"";
                    state = State::RawString;
                } else {
                    state = State::String;
                }
                code_line += '"';
            } else if (c == '\'') {
                state = State::Char;
                code_line += '\'';
            } else {
                code_line += c;
            }
            break;
          case State::LineComment:
            comment_line += c;
            code_line += ' ';
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                code_line += "  ";
                ++i;
            } else {
                comment_line += c;
                code_line += ' ';
            }
            break;
          case State::String:
            if (c == '\\') {
                code_line += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Code;
                code_line += '"';
            } else {
                code_line += ' ';
            }
            break;
          case State::Char:
            if (c == '\\') {
                code_line += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                code_line += '\'';
            } else {
                code_line += ' ';
            }
            break;
          case State::RawString:
            if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                state = State::Code;
                code_line += '"';
                i += raw_delim.size() - 1;
            } else {
                code_line += ' ';
            }
            break;
        }
    }
    flush_line();

    view.lineStart.reserve(view.code.size());
    for (const auto &line : view.code) {
        view.lineStart.push_back(view.flat.size());
        view.flat += line;
        view.flat += '\n';
    }
    return view;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Whether flat[pos, pos+len) is a whole word (not a substring of a
 *  longer identifier). */
bool
isWholeWord(const std::string &flat, std::size_t pos, std::size_t len)
{
    if (pos > 0 && isIdentChar(flat[pos - 1]))
        return false;
    const std::size_t end = pos + len;
    return end >= flat.size() || !isIdentChar(flat[end]);
}

/** Offset just past the matching closer, or npos.  `flat[open]` must
 *  be the opening character. */
std::size_t
matchBalanced(const std::string &flat, std::size_t open, char oc,
              char cc)
{
    int depth = 0;
    for (std::size_t i = open; i < flat.size(); ++i) {
        if (flat[i] == oc)
            ++depth;
        else if (flat[i] == cc && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

std::size_t
skipSpace(const std::string &flat, std::size_t pos)
{
    while (pos < flat.size() &&
           std::isspace(static_cast<unsigned char>(flat[pos])))
        ++pos;
    return pos;
}

/** The identifier starting at `pos` (empty when none). */
std::string
identAt(const std::string &flat, std::size_t pos)
{
    std::size_t end = pos;
    while (end < flat.size() && isIdentChar(flat[end]))
        ++end;
    if (end == pos ||
        std::isdigit(static_cast<unsigned char>(flat[pos])))
        return std::string();
    return flat.substr(pos, end - pos);
}

/** The last identifier token in `expr` ("thread->aggs" -> "aggs"). */
std::string
lastIdent(const std::string &expr)
{
    std::string last;
    std::size_t i = 0;
    while (i < expr.size()) {
        if (isIdentChar(expr[i]) &&
            !std::isdigit(static_cast<unsigned char>(expr[i]))) {
            std::size_t end = i;
            while (end < expr.size() && isIdentChar(expr[end]))
                ++end;
            last = expr.substr(i, end - i);
            i = end;
        } else {
            ++i;
        }
    }
    return last;
}

// ---- suppressions ---------------------------------------------------

struct Suppression
{
    int line = 0;      ///< line carrying the allow() comment
    int coveredLine = 0; ///< code line the allow() applies to
    std::string rule;
    bool used = false;
};

struct SuppressionSet
{
    std::vector<Suppression> entries;
    std::vector<Finding> metaFindings; ///< malformed allow() comments

    bool
    suppress(const std::string &rule, int line)
    {
        bool hit = false;
        for (auto &s : entries) {
            if (s.rule == rule && s.coveredLine == line) {
                s.used = true;
                hit = true;
            }
        }
        return hit;
    }
};

bool
lineHasCode(const SourceView &view, int line)
{
    const std::string &code = view.code[static_cast<std::size_t>(line - 1)];
    return std::any_of(code.begin(), code.end(), [](char c) {
        return !std::isspace(static_cast<unsigned char>(c));
    });
}

SuppressionSet
parseSuppressions(const std::string &path, const SourceView &view)
{
    static const std::regex allow_re(
        R"(griffin-lint:\s*allow\(([^)]*)\)\s*(.*))");
    SuppressionSet set;
    const auto &rules = ruleNames();
    for (int line = 1; line <= view.lines(); ++line) {
        const std::string &comment =
            view.comment[static_cast<std::size_t>(line - 1)];
        std::smatch m;
        if (!std::regex_search(comment, m, allow_re))
            continue;
        // A trailing-comment suppression covers its own line; a
        // comment-only line covers the next line holding code.
        int covered = line;
        if (!lineHasCode(view, line)) {
            covered = 0;
            for (int l = line + 1; l <= view.lines(); ++l) {
                if (lineHasCode(view, l)) {
                    covered = l;
                    break;
                }
            }
        }
        std::string reason = m[2].str();
        while (!reason.empty() &&
               std::isspace(static_cast<unsigned char>(reason.back())))
            reason.pop_back();
        if (reason.empty()) {
            set.metaFindings.push_back(
                {path, line, "malformed-suppression",
                 "allow() needs a written justification after the "
                 "rule list"});
            continue;
        }
        // Split the rule list on commas.
        std::stringstream names(m[1].str());
        std::string name;
        bool any = false;
        while (std::getline(names, name, ',')) {
            const auto b = name.find_first_not_of(" \t");
            if (b == std::string::npos)
                continue;
            const auto e = name.find_last_not_of(" \t");
            name = name.substr(b, e - b + 1);
            any = true;
            if (std::find(rules.begin(), rules.end(), name) ==
                rules.end()) {
                set.metaFindings.push_back(
                    {path, line, "malformed-suppression",
                     "unknown rule '" + name +
                         "' in allow() (see --list-rules)"});
                continue;
            }
            Suppression s;
            s.line = line;
            s.coveredLine = covered;
            s.rule = name;
            set.entries.push_back(s);
        }
        if (!any)
            set.metaFindings.push_back(
                {path, line, "malformed-suppression",
                 "allow() names no rules"});
    }
    return set;
}

// ---- token rules (wall-clock, banned-random) ------------------------

struct TokenPattern
{
    const char *rule;
    const char *pattern; ///< ECMAScript regex over one code line
    const char *message;
};

const TokenPattern tokenPatterns[] = {
    {"wall-clock", R"(\bsystem_clock\b)",
     "system_clock is wall time; use steady_clock (or "
     "monotonicNowNs()) so results never depend on the date"},
    {"wall-clock", R"(\bgettimeofday\b)",
     "gettimeofday is wall time; use steady_clock (or "
     "monotonicNowNs())"},
    {"wall-clock",
     R"(\b(localtime|gmtime|strftime|asctime|ctime|mktime|timespec_get)\s*\()",
     "calendar-time call; output-affecting paths must not read wall "
     "time"},
    {"wall-clock", R"((^|[^\w:.>])time\s*\()",
     "time() is wall time; use steady_clock (or monotonicNowNs())"},
    {"wall-clock", R"((^|[^\w:.>])clock\s*\(\s*\))",
     "clock() is processor time and varies run to run; use "
     "steady_clock (or monotonicNowNs())"},
    {"banned-random", R"(\bstd\s*::\s*hash\b)",
     "std::hash is implementation-defined and unpins results across "
     "standard libraries; derive seeds/keys with Rng::mixSeed"},
    {"banned-random", R"((^|[^\w:.>])s?rand\s*\()",
     "rand()/srand() bypass the seeded Rng; draw through "
     "common/rng.hh instead"},
    {"banned-random", R"((^|[^\w:.>])random\s*\()",
     "random() bypasses the seeded Rng; draw through common/rng.hh"},
    {"banned-random", R"(\b(d|l|m)rand48\b)",
     "drand48-family bypasses the seeded Rng; draw through "
     "common/rng.hh"},
    {"banned-random", R"(\brandom_device\b)",
     "random_device is nondeterministic by design; every stream must "
     "derive from the run seed via Rng"},
};

void
runTokenRules(const std::string &path, const SourceView &view,
              std::vector<Finding> &out)
{
    for (const auto &tp : tokenPatterns) {
        const std::regex re(tp.pattern);
        for (int line = 1; line <= view.lines(); ++line) {
            const std::string &code =
                view.code[static_cast<std::size_t>(line - 1)];
            if (std::regex_search(code, re))
                out.push_back({path, line, tp.rule, tp.message});
        }
    }
}

// ---- intrinsics-outside-simd ----------------------------------------

/**
 * Raw SIMD intrinsics are confined to src/simd/: every other layer
 * consumes the dispatched KernelTable, so one directory owns the
 * byte-exactness proof against the scalar reference and
 * GRIFFIN_FORCE_SCALAR can really pin the whole hot path.  The rule is
 * path-aware — the confinement directory itself (and its tests'
 * fixture corpus, excluded by the driver) is exempt.
 */
bool
inSimdLayer(const std::string &path)
{
    return path.find("src/simd/") != std::string::npos;
}

void
runIntrinsicsRule(const std::string &path, const SourceView &view,
                  std::vector<Finding> &out)
{
    if (inSimdLayer(path))
        return;
    static const std::regex include_re(
        R"(^\s*#\s*include\s*[<"]([A-Za-z0-9_]*intrin|arm_neon|arm_sve|arm_acle)\.h[>"])");
    static const std::regex call_re(
        R"(\b(_mm(256|512)?_\w+|__builtin_ia32_\w+)\b)");
    for (int line = 1; line <= view.lines(); ++line) {
        const std::string &code =
            view.code[static_cast<std::size_t>(line - 1)];
        if (std::regex_search(code, include_re))
            out.push_back(
                {path, line, "intrinsics-outside-simd",
                 "intrinsics header included outside src/simd/; "
                 "consume the dispatched kernel table "
                 "(simd/occupancy.hh) instead"});
        else if (std::regex_search(code, call_re))
            out.push_back(
                {path, line, "intrinsics-outside-simd",
                 "raw SIMD intrinsic outside src/simd/; add a kernel "
                 "to the KernelTable (with a scalar reference) rather "
                 "than open-coding vector instructions here"});
    }
}

// ---- pointer-keyed-map ----------------------------------------------

void
runPointerKeyRule(const std::string &path, const SourceView &view,
                  std::vector<Finding> &out)
{
    const std::string &flat = view.flat;
    for (std::size_t pos = flat.find("map<"); pos != std::string::npos;
         pos = flat.find("map<", pos + 1)) {
        // Accept "map<" and "unordered_map<" as whole words only.
        std::size_t word = pos;
        if (word >= 10 &&
            flat.compare(word - 10, 10, "unordered_") == 0)
            word -= 10;
        if (word > 0 && isIdentChar(flat[word - 1]))
            continue;
        const std::size_t open = pos + 3; // the '<'
        // First template argument: up to a top-level ',' or the
        // matching '>'.
        int depth = 0;
        std::string first_arg;
        bool closed = false;
        for (std::size_t i = open; i < flat.size(); ++i) {
            const char c = flat[i];
            if (c == '<') {
                ++depth;
            } else if (c == '>') {
                if (--depth == 0) {
                    closed = true;
                    break;
                }
            } else if (c == ',' && depth == 1) {
                closed = true;
                break;
            }
            if (depth >= 1 && i > open)
                first_arg += c;
        }
        if (!closed)
            continue;
        if (first_arg.find('*') == std::string::npos)
            continue;
        if (first_arg.find("shared_ptr") != std::string::npos ||
            first_arg.find("unique_ptr") != std::string::npos)
            continue;
        out.push_back(
            {path, view.lineOf(pos), "pointer-keyed-map",
             "map keyed by raw pointer (" + first_arg +
                 "): pointer identity is not stable across "
                 "translation units or inlining; key by content "
                 "(std::string_view / std::string)"});
    }
}

// ---- unordered-sink-iteration ---------------------------------------

/** Names declared (or aliased) as unordered containers in this file. */
std::unordered_set<std::string>
collectUnorderedNames(const SourceView &view)
{
    const std::string &flat = view.flat;
    std::unordered_set<std::string> names;
    std::unordered_set<std::string> alias_types;

    const auto scan_decl = [&](std::size_t after_type) {
        std::size_t pos = skipSpace(flat, after_type);
        // `&` / `*` qualifiers between type and name.
        while (pos < flat.size() &&
               (flat[pos] == '&' || flat[pos] == '*'))
            pos = skipSpace(flat, pos + 1);
        const std::string name = identAt(flat, pos);
        if (!name.empty())
            names.insert(name);
    };

    for (const char *token : {"unordered_map", "unordered_set"}) {
        const std::size_t len = std::string(token).size();
        for (std::size_t pos = flat.find(token);
             pos != std::string::npos;
             pos = flat.find(token, pos + 1)) {
            if (!isWholeWord(flat, pos, len))
                continue;
            std::size_t after = skipSpace(flat, pos + len);
            if (after >= flat.size() || flat[after] != '<')
                continue;
            const std::size_t close =
                matchBalanced(flat, after, '<', '>');
            if (close == std::string::npos)
                continue;
            // `using Alias = std::unordered_map<...>` records the
            // alias as an unordered type for the declaration scan.
            const std::size_t line_begin =
                view.lineStart[static_cast<std::size_t>(
                    view.lineOf(pos) - 1)];
            const std::string before =
                flat.substr(line_begin, pos - line_begin);
            std::smatch m;
            static const std::regex using_re(
                R"(\busing\s+([A-Za-z_]\w*)\s*=)");
            if (std::regex_search(before, m, using_re)) {
                alias_types.insert(m[1].str());
                continue;
            }
            scan_decl(close);
        }
    }

    // One level of alias resolution: `Alias name;` declarations.
    for (const auto &alias : alias_types) {
        for (std::size_t pos = flat.find(alias);
             pos != std::string::npos;
             pos = flat.find(alias, pos + 1)) {
            if (!isWholeWord(flat, pos, alias.size()))
                continue;
            scan_decl(pos + alias.size());
        }
    }
    // The alias name itself may appear as a range expression via a
    // call or member; treat aliases as iterable names too.
    names.insert(alias_types.begin(), alias_types.end());
    return names;
}

const char *const sinkMarkers[] = {
    "ResultSink", "serialize", "writeJson", "addRow",  "putU64",
    "putI64",     "putBytes",  "print(",    "<<",
};

void
runUnorderedSinkRule(const std::string &path, const SourceView &view,
                     std::vector<Finding> &out)
{
    const std::string &flat = view.flat;
    const auto unordered = collectUnorderedNames(view);
    if (unordered.empty())
        return;

    for (std::size_t pos = flat.find("for"); pos != std::string::npos;
         pos = flat.find("for", pos + 1)) {
        if (!isWholeWord(flat, pos, 3))
            continue;
        std::size_t open = skipSpace(flat, pos + 3);
        if (open >= flat.size() || flat[open] != '(')
            continue;
        const std::size_t close = matchBalanced(flat, open, '(', ')');
        if (close == std::string::npos)
            continue;
        const std::string head =
            flat.substr(open + 1, close - open - 2);
        // Range-for: split at the first top-level ':' that is not
        // part of '::'.
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t i = 0; i < head.size(); ++i) {
            const char c = head[i];
            if (c == '(' || c == '<' || c == '[')
                ++depth;
            else if (c == ')' || c == '>' || c == ']')
                --depth;
            else if (c == ':' && depth == 0) {
                if ((i + 1 < head.size() && head[i + 1] == ':') ||
                    (i > 0 && head[i - 1] == ':')) {
                    continue;
                }
                colon = i;
                break;
            }
        }
        if (colon == std::string::npos)
            continue;
        const std::string range = head.substr(colon + 1);
        const std::string name = lastIdent(range);
        if (name.empty() || unordered.count(name) == 0)
            continue;

        // Loop body extent: a braced block, or one statement.
        std::size_t body_begin = skipSpace(flat, close);
        std::size_t body_end;
        if (body_begin < flat.size() && flat[body_begin] == '{') {
            body_end = matchBalanced(flat, body_begin, '{', '}');
            if (body_end == std::string::npos)
                body_end = flat.size();
        } else {
            body_end = flat.find(';', body_begin);
            body_end = body_end == std::string::npos ? flat.size()
                                                     : body_end + 1;
        }
        const std::string body =
            flat.substr(body_begin, body_end - body_begin);

        bool sinks = false;
        for (const char *marker : sinkMarkers) {
            if (body.find(marker) != std::string::npos) {
                sinks = true;
                break;
            }
        }
        if (!sinks)
            continue;

        // An explicit sort in the body or just above the loop is the
        // required ordering step.
        const int for_line = view.lineOf(pos);
        bool sorted = body.find("sort(") != std::string::npos;
        for (int l = std::max(1, for_line - 5);
             !sorted && l < for_line; ++l)
            sorted = view.code[static_cast<std::size_t>(l - 1)].find(
                         "sort(") != std::string::npos;
        if (sorted)
            continue;

        out.push_back(
            {path, for_line, "unordered-sink-iteration",
             "iteration over unordered container '" + name +
                 "' feeds a sink/serializer without an intervening "
                 "sort; order it first (unordered iteration order is "
                 "implementation-defined)"});
    }
}

// ---- uninit-serialized-field ----------------------------------------

/** Whether a struct-body statement declares a scalar field. */
bool
isScalarFieldDecl(const std::string &raw, bool &initialized)
{
    // Access labels share a statement with the field that follows
    // them ("public:\n  int x;") — strip them before classifying.
    static const std::regex label_re(
        R"(^\s*(?:public|private|protected)\s*:)");
    std::string stmt = raw;
    std::smatch lm;
    while (std::regex_search(stmt, lm, label_re))
        stmt = lm.suffix().str();
    static const std::regex field_re(
        R"(^\s*(?:mutable\s+)?)"
        R"((?:std\s*::\s*)?)"
        R"((u?int(?:8|16|32|64|max|ptr)?_t|size_t|ptrdiff_t|int|unsigned|long|short|double|float|bool|char)\b)"
        R"((\s+(?:long|int|char|short|double|unsigned))*)"
        R"(\s+[A-Za-z_]\w*\s*(\[[^\]]*\])?\s*(=|\{|;|$))");
    std::smatch m;
    if (!std::regex_search(stmt, m, field_re))
        return false;
    if (stmt.find('(') != std::string::npos)
        return false; // function declaration, not a field
    const std::string tail = m[4].str();
    initialized = tail == "=" || tail == "{";
    return true;
}

void
runUninitSerializedRule(const std::string &path, const SourceView &view,
                        std::vector<Finding> &out)
{
    const std::string &flat = view.flat;
    for (const char *kw : {"struct", "class"}) {
        const std::size_t kwlen = std::string(kw).size();
        for (std::size_t pos = flat.find(kw); pos != std::string::npos;
             pos = flat.find(kw, pos + 1)) {
            if (!isWholeWord(flat, pos, kwlen))
                continue;
            std::size_t p = skipSpace(flat, pos + kwlen);
            const std::string name = identAt(flat, p);
            if (name.empty())
                continue;
            p = skipSpace(flat, p + name.size());
            // Optional `final` and base clause before the brace.
            if (flat.compare(p, 5, "final") == 0)
                p = skipSpace(flat, p + 5);
            if (p < flat.size() && flat[p] == ':') {
                while (p < flat.size() && flat[p] != '{' &&
                       flat[p] != ';')
                    ++p;
            }
            if (p >= flat.size() || flat[p] != '{')
                continue; // forward declaration or something else
            const std::size_t body_end =
                matchBalanced(flat, p, '{', '}');
            if (body_end == std::string::npos)
                continue;
            const std::size_t body_begin = p + 1;

            // In scope when it serializes: a serialize member, or a
            // "griffin-lint: serialized" marker comment within the
            // two lines above the struct keyword.
            const std::string body =
                flat.substr(body_begin, body_end - 1 - body_begin);
            bool serialized =
                body.find("serialize") != std::string::npos;
            const int struct_line = view.lineOf(pos);
            for (int l = std::max(1, struct_line - 2);
                 !serialized && l <= struct_line; ++l)
                serialized =
                    view.comment[static_cast<std::size_t>(l - 1)].find(
                        "griffin-lint: serialized") !=
                    std::string::npos;
            if (!serialized)
                continue;

            // Walk depth-1 statements of the struct body.  A '{' not
            // preceded by '=' closes the statement at its matching
            // '}' (member function bodies, nested types); an '='
            // brace is an initializer and the statement runs to ';'.
            std::size_t stmt_begin = body_begin;
            std::size_t i = body_begin;
            while (i < body_end - 1) {
                const char c = flat[i];
                if (c == ';') {
                    const std::string stmt = flat.substr(
                        stmt_begin, i - stmt_begin);
                    bool initialized = false;
                    if (stmt.find("static") == std::string::npos &&
                        stmt.find("using") == std::string::npos &&
                        stmt.find("friend") == std::string::npos &&
                        isScalarFieldDecl(stmt, initialized) &&
                        !initialized) {
                        const int line =
                            view.lineOf(stmt_begin +
                                        stmt.find_first_not_of(
                                            " \t\n"));
                        out.push_back(
                            {path, line, "uninit-serialized-field",
                             "scalar field of serialized struct '" +
                                 name +
                                 "' has no default initializer; an "
                                 "unset field reaching an encoder is "
                                 "a nondeterminism bug"});
                    }
                    stmt_begin = i + 1;
                    ++i;
                } else if (c == '{') {
                    // Initializer brace or nested body?
                    std::size_t prev = stmt_begin;
                    bool init_brace = false;
                    for (std::size_t j = i; j-- > stmt_begin;) {
                        if (std::isspace(
                                static_cast<unsigned char>(flat[j])))
                            continue;
                        prev = j;
                        init_brace = flat[j] == '=';
                        break;
                    }
                    static_cast<void>(prev);
                    const std::size_t after =
                        matchBalanced(flat, i, '{', '}');
                    if (after == std::string::npos)
                        break;
                    if (init_brace) {
                        i = after; // part of `= {...}`, run to ';'
                    } else {
                        // Function/nested-type body ends the
                        // statement (no ';' required).
                        i = after;
                        stmt_begin = i;
                    }
                } else {
                    ++i;
                }
            }
        }
    }
}

} // namespace

// ---- public API -----------------------------------------------------

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "banned-random",           "intrinsics-outside-simd",
        "pointer-keyed-map",       "uninit-serialized-field",
        "unordered-sink-iteration", "wall-clock",
    };
    return names;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text)
{
    const SourceView view = splitSource(text);
    SuppressionSet suppressions = parseSuppressions(path, view);

    std::vector<Finding> raw;
    runTokenRules(path, view, raw);
    runIntrinsicsRule(path, view, raw);
    runPointerKeyRule(path, view, raw);
    runUnorderedSinkRule(path, view, raw);
    runUninitSerializedRule(path, view, raw);

    std::vector<Finding> out;
    for (auto &f : raw) {
        if (!suppressions.suppress(f.rule, f.line))
            out.push_back(std::move(f));
    }
    for (auto &meta : suppressions.metaFindings)
        out.push_back(std::move(meta));
    for (const auto &s : suppressions.entries) {
        if (!s.used)
            out.push_back(
                {path, s.line, "unused-suppression",
                 "allow(" + s.rule +
                     ") suppresses nothing; remove the stale "
                     "suppression"});
    }

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return a.line != b.line ? a.line < b.line
                                          : a.rule < b.rule;
              });
    return out;
}

std::vector<Finding>
lintFile(const std::string &path, std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open '" + path + "'";
        return {};
    }
    std::ostringstream text;
    text << is.rdbuf();
    return lintSource(path, text.str());
}

std::vector<std::string>
collectSources(const std::vector<std::string> &paths,
               const std::vector<std::string> &excludes,
               std::string &error)
{
    namespace fs = std::filesystem;
    const auto lintable = [](const fs::path &p) {
        const std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
               ext == ".hpp";
    };
    const auto excluded = [&excludes](const std::string &p) {
        for (const auto &e : excludes)
            if (!e.empty() && p.find(e) != std::string::npos)
                return true;
        return false;
    };

    std::vector<std::string> files;
    for (const auto &path : paths) {
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            for (auto it = fs::recursive_directory_iterator(path, ec);
                 !ec && it != fs::recursive_directory_iterator();
                 it.increment(ec)) {
                if (it->is_regular_file(ec) &&
                    lintable(it->path()) &&
                    !excluded(it->path().string()))
                    files.push_back(it->path().string());
            }
            if (ec) {
                error = "cannot walk '" + path + "': " + ec.message();
                return {};
            }
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(path); // explicit files skip excludes
        } else {
            error = "no such file or directory: '" + path + "'";
            return {};
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

} // namespace lint
} // namespace griffin
