/**
 * @file
 * griffin-lint: repo-specific determinism and serialization invariants
 * as machine-checked rules.
 *
 * The reproduction's headline claims — byte-identical parallel vs
 * serial sweeps, shard-ordered fleet merges, pinned bench/baselines/
 * diffs — all rest on source-level invariants that used to live in
 * comments.  This checker makes them findings:
 *
 *   wall-clock
 *     No wall-clock reads (std::chrono::system_clock, time(),
 *     gettimeofday, localtime/gmtime/strftime, clock()) anywhere a
 *     result byte could depend on them.  Monotonic steady_clock (and
 *     its wrapper monotonicNowNs()) is fine: it only ever feeds
 *     timing telemetry, never result rows.
 *
 *   banned-random
 *     No rand()/srand()/random()/drand48-family and no std::hash.
 *     Every stochastic draw must flow through common/rng.hh (seeded
 *     mt19937_64, forked per layer) and every seed derivation through
 *     Rng::mixSeed — std::hash is implementation-defined and would
 *     silently unpin results across standard libraries (the exact bug
 *     the "mixSeed, not std::hash" note in griffin/accelerator.cc
 *     records).
 *
 *   unordered-sink-iteration
 *     No range-for over a std::unordered_map/std::unordered_set whose
 *     body feeds a ResultSink / serializer / rendered table without an
 *     intervening sort.  Unordered iteration order is
 *     implementation-defined; bytes that depend on it break every
 *     baseline diff.  A sort( within the loop body or the five lines
 *     above it is accepted as the ordering step.
 *
 *   intrinsics-outside-simd
 *     No raw SIMD intrinsics (immintrin.h / arm_neon.h-family
 *     includes, _mm_* / _mm256_* / _mm512_* / __builtin_ia32_* calls)
 *     outside src/simd/.  The SIMD layer owns the dispatched
 *     KernelTable and its byte-exactness proof against the scalar
 *     reference; an intrinsic open-coded anywhere else escapes both
 *     the GRIFFIN_FORCE_SCALAR knob and the equivalence tests.  The
 *     rule is path-aware: files under src/simd/ are exempt.
 *
 *   pointer-keyed-map
 *     No raw-pointer-keyed maps (e.g. unordered_map<const char *, V>
 *     keyed by string literal address): literal addresses are not
 *     stable across translation units or inlining decisions, so such
 *     maps silently split or merge entries depending on the build.
 *     Key by content (std::string_view / std::string) instead.
 *
 *   uninit-serialized-field
 *     Every scalar field of a struct that reaches an encoder — it
 *     declares a serialize() member, or carries a
 *     "// griffin-lint: serialized" marker — must have a default
 *     initializer.  An uninitialized padding byte or field that lands
 *     in a GRFC/GRFW file or JSONL row is a nondeterminism bug ASan
 *     cannot see.
 *
 * Suppressions: a finding is allowlisted by a comment on the same
 * line, or a comment line directly above the offending line, of the
 * form (no space before the colon; the placeholders are spaced here
 * only so the linter does not parse its own documentation):
 *
 *     // griffin-lint : allow(rule[, rule...]) justification
 *
 * The justification is mandatory, unknown rule names are findings
 * (malformed-suppression), and a suppression that matches no finding
 * is itself a finding (unused-suppression) so stale allowlists cannot
 * accumulate.
 */

#ifndef GRIFFIN_TOOLS_GRIFFIN_LINT_LINT_HH
#define GRIFFIN_TOOLS_GRIFFIN_LINT_LINT_HH

#include <string>
#include <vector>

namespace griffin {
namespace lint {

struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Every enforced rule name (sorted), for --list-rules and allow()
 *  validation.  Excludes the meta findings (malformed-suppression,
 *  unused-suppression), which cannot be suppressed. */
const std::vector<std::string> &ruleNames();

/**
 * Lint one in-memory translation unit.  `path` labels the findings;
 * nothing is read from disk.  Findings come back sorted by
 * (line, rule).
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &text);

/** Lint one file from disk (empty result + `error` set on I/O
 *  failure). */
std::vector<Finding> lintFile(const std::string &path,
                              std::string &error);

/**
 * Expand files and directories into the sorted list of lintable
 * sources (.cc/.hh/.cpp/.hpp).  Directories are walked recursively;
 * any path containing one of `excludes` as a substring is skipped.
 * Explicitly listed files are never excluded.
 */
std::vector<std::string>
collectSources(const std::vector<std::string> &paths,
               const std::vector<std::string> &excludes,
               std::string &error);

/** One finding as "file:line: [rule] message". */
std::string formatFinding(const Finding &finding);

} // namespace lint
} // namespace griffin

#endif // GRIFFIN_TOOLS_GRIFFIN_LINT_LINT_HH
