/**
 * @file
 * griffin-lint driver: lint the given files/directories and exit
 * nonzero when any finding survives the allowlist.
 *
 *     griffin-lint [--exclude <substring>]... [--report <file>]
 *                  [--list-rules] <path>...
 *
 * Directories are walked recursively for .cc/.hh/.cpp/.hpp sources;
 * paths containing an --exclude substring are skipped (the known-bad
 * corpus under tests/lint_fixtures/ is excluded by default — those
 * files exist to violate the rules).  --report additionally writes
 * the findings to a file for CI artifact upload.
 *
 * Exit status: 0 clean, 1 findings, 2 usage error — matching the
 * repo-wide exit-status convention (common/logging.hh).
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    using namespace griffin::lint;

    std::vector<std::string> paths;
    std::vector<std::string> excludes = {"lint_fixtures"};
    std::string report_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &rule : ruleNames())
                std::cout << rule << "\n";
            return 0;
        }
        if (arg == "--exclude") {
            if (++i >= argc) {
                std::cerr << "griffin-lint: --exclude needs a value\n";
                return 2;
            }
            excludes.push_back(argv[i]);
            continue;
        }
        if (arg == "--report") {
            if (++i >= argc) {
                std::cerr << "griffin-lint: --report needs a path\n";
                return 2;
            }
            report_path = argv[i];
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "griffin-lint: unknown flag '" << arg
                      << "'\n";
            return 2;
        }
        paths.push_back(arg);
    }
    if (paths.empty()) {
        std::cerr << "usage: griffin-lint [--exclude <substring>]... "
                     "[--report <file>] [--list-rules] <path>...\n";
        return 2;
    }

    std::string error;
    const auto files = collectSources(paths, excludes, error);
    if (!error.empty()) {
        std::cerr << "griffin-lint: " << error << "\n";
        return 2;
    }

    std::vector<Finding> findings;
    for (const auto &file : files) {
        auto per_file = lintFile(file, error);
        if (!error.empty()) {
            std::cerr << "griffin-lint: " << error << "\n";
            return 2;
        }
        findings.insert(findings.end(), per_file.begin(),
                        per_file.end());
    }

    std::ostream *streams[] = {&std::cout, nullptr};
    std::ofstream report;
    if (!report_path.empty()) {
        report.open(report_path);
        if (!report) {
            std::cerr << "griffin-lint: cannot open report file '"
                      << report_path << "'\n";
            return 2;
        }
        streams[1] = &report;
    }
    for (const auto &finding : findings) {
        for (std::ostream *os : streams)
            if (os != nullptr)
                *os << formatFinding(finding) << "\n";
    }
    const std::string summary =
        std::to_string(files.size()) + " file(s) scanned, " +
        std::to_string(findings.size()) + " finding(s)";
    for (std::ostream *os : streams)
        if (os != nullptr)
            *os << "griffin-lint: " << summary << "\n";

    return findings.empty() ? 0 : 1;
}
