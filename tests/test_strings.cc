/**
 * @file
 * Tests for the shared string helpers (common/strings.hh): list
 * splitting (flat and paren-aware), trimming, edit distance, and
 * shortest-round-trip double formatting.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/strings.hh"

namespace griffin {
namespace {

TEST(Strings, SplitListSplitsOnSeparator)
{
    EXPECT_EQ(splitList("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitList("one"), (std::vector<std::string>{"one"}));
    EXPECT_EQ(splitList("1:2:3", ':'),
              (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Strings, SplitListDropsEmptyItems)
{
    // Trailing commas and doubled separators are user typos, not
    // empty entries.
    EXPECT_EQ(splitList("a,,b,"), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(splitList(",a"), (std::vector<std::string>{"a"}));
    EXPECT_TRUE(splitList("").empty());
    EXPECT_TRUE(splitList(",,,").empty());
}

TEST(Strings, SplitTopLevelRespectsParens)
{
    EXPECT_EQ(splitTopLevel("B(2,0,0,off),B(2,1,0,on)"),
              (std::vector<std::string>{"B(2,0,0,off)", "B(2,1,0,on)"}));
    EXPECT_EQ(splitTopLevel("a(b(c,d),e),f"),
              (std::vector<std::string>{"a(b(c,d),e)", "f"}));
    EXPECT_EQ(splitTopLevel("x[1,2],y"),
              (std::vector<std::string>{"x[1,2]", "y"}));
    // Without any nesting it behaves exactly like splitList.
    EXPECT_EQ(splitTopLevel("a,,b,"),
              (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, SplitTopLevelToleratesUnbalancedClosers)
{
    // A stray closer never makes the depth negative (which would glue
    // the rest of the string together).
    EXPECT_EQ(splitTopLevel(")a,b"),
              (std::vector<std::string>{")a", "b"}));
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim("\t x\r\n"), "x");
    EXPECT_EQ(trim("none"), "none");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, EditDistance)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("seed", "seed"), 0u);
    EXPECT_EQ(editDistance("sede", "seed"), 2u);
}

TEST(Strings, NearestName)
{
    const std::vector<std::string> axes{"arch", "network", "seed",
                                        "weight_lane_bias"};
    EXPECT_EQ(nearestName("weight_lane_bis", axes), "weight_lane_bias");
    EXPECT_EQ(nearestName("sed", axes), "seed");
    // Substring containment beats a closer edit-distance neighbour.
    EXPECT_EQ(nearestName("lane_bias", axes), "weight_lane_bias");
    EXPECT_EQ(nearestName("anything", {}), "");
}

TEST(Strings, FormatShortestDoubleRoundTrips)
{
    EXPECT_EQ(formatShortestDouble(1.0), "1");
    EXPECT_EQ(formatShortestDouble(0.25), "0.25");
    EXPECT_EQ(formatShortestDouble(-2.5), "-2.5");
    const double awkward = 1.0 / 3.0;
    double back = 0.0;
    std::sscanf(formatShortestDouble(awkward).c_str(), "%lf", &back);
    EXPECT_EQ(back, awkward);
}

} // namespace
} // namespace griffin
