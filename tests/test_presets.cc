/**
 * @file
 * Tests for architecture presets, Griffin morphing, and the DSE
 * enumerators.
 */

#include <set>

#include <gtest/gtest.h>

#include "arch/dse.hh"
#include "arch/overhead.hh"
#include "arch/presets.hh"
#include "common/logging.hh"

namespace griffin {
namespace {

TEST(Presets, TableVIOptimalPoints)
{
    EXPECT_EQ(sparseBStar().routing.str(), "B(4,0,1,on)");
    EXPECT_EQ(sparseAStar().routing.str(), "A(2,1,0,on)");
    EXPECT_EQ(sparseABStar().routing.str(), "AB(2,0,0,2,0,1,on)");
    EXPECT_EQ(griffinArch().routing.str(), "AB(2,0,0,2,0,1,on)");
    EXPECT_TRUE(griffinArch().hybrid);
    EXPECT_FALSE(sparseABStar().hybrid);
}

TEST(Presets, AllValidateAndHaveUniqueNames)
{
    std::set<std::string> names;
    for (const auto &cfg : allPresets()) {
        cfg.validate();
        EXPECT_TRUE(names.insert(cfg.name).second)
            << "duplicate preset name " << cfg.name;
    }
    EXPECT_EQ(names.size(), 12u);
}

TEST(Presets, LookupByName)
{
    EXPECT_EQ(presetByName("Griffin").name, "Griffin");
    EXPECT_EQ(presetByName("Sparse.B*").routing.b.d1, 4);
}

TEST(PresetsDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(presetByName("NoSuchArch"), testing::ExitedWithCode(exitUsageError),
                "unknown architecture preset");
}

TEST(Presets, ArchByNameParsesRoutingSpecs)
{
    // Routing-spec names build baseline hardware with that routing —
    // the sweep grid's arch axis accepts arbitrary design points.
    EXPECT_EQ(archByName("B(4,0,1,on)").routing, sparseBStar().routing);
    EXPECT_EQ(archByName("B(4,0,1,on)").name, "B(4,0,1,on)");
    EXPECT_EQ(archByName("A(2,1,0,off)").routing.str(), "A(2,1,0,off)");
    EXPECT_EQ(archByName("AB(2,0,0,2,0,1,on)").routing,
              sparseABStar().routing);
    EXPECT_EQ(archByName("Dense").routing.mode, SparsityMode::Dense);

    const auto otf = archByName("AB(3,1,0,3,1,0,off)[otf]");
    EXPECT_FALSE(otf.routing.preprocessB);
    EXPECT_EQ(otf.name, "AB(3,1,0,3,1,0,off)[otf]");
}

TEST(Presets, ArchByNamePrefersPresets)
{
    EXPECT_EQ(archByName("Griffin").name, "Griffin");
    EXPECT_TRUE(archByName("Griffin").hybrid);
    EXPECT_EQ(archByName("SparTen.AB").style, DatapathStyle::MacGrid);
}

TEST(PresetsDeathTest, ArchByNameRejectsMalformedSpecs)
{
    EXPECT_EXIT(archByName("B(4,0,1)"), testing::ExitedWithCode(exitUsageError),
                "unknown architecture");
    EXPECT_EXIT(archByName("C(1,0,0,on)"), testing::ExitedWithCode(exitUsageError),
                "unknown architecture");
    EXPECT_EXIT(archByName("B(4,0,x,on)"), testing::ExitedWithCode(exitUsageError),
                "bad routing distance");
    EXPECT_EXIT(archByName("B(4,0,1,maybe)"),
                testing::ExitedWithCode(exitUsageError), "bad shuffle flag");
}

TEST(Presets, SparTenIsMacGridWithDeepBuffers)
{
    auto cfg = sparTenAB();
    EXPECT_EQ(cfg.style, DatapathStyle::MacGrid);
    EXPECT_EQ(cfg.macBufferDepth, 128);
    EXPECT_EQ(sparTenA().routing.mode, SparsityMode::A);
    EXPECT_EQ(sparTenB().routing.mode, SparsityMode::B);
}

TEST(Presets, TdashHasNoPreprocessing)
{
    EXPECT_FALSE(tdashAB().routing.preprocessB);
    EXPECT_FALSE(tdashAB().routing.shuffle);
}

TEST(Presets, TclHasNoCrossPeRoutingOrShuffle)
{
    auto cfg = tclB();
    EXPECT_EQ(cfg.routing.b.d3, 0);
    EXPECT_FALSE(cfg.routing.shuffle);
    EXPECT_TRUE(withinFaninLimits(cfg.routing, cfg.tile));
}

TEST(Presets, TableSevenRowOrder)
{
    auto rows = tableSevenPresets();
    ASSERT_EQ(rows.size(), 8u);
    EXPECT_EQ(rows.front().name, "Baseline");
    EXPECT_EQ(rows.back().name, "SparTen.AB");
}

TEST(GriffinMorph, MatchesFigureFour)
{
    EXPECT_EQ(griffinMorph(DnnCategory::AB).str(), "AB(2,0,0,2,0,1,on)");
    EXPECT_EQ(griffinMorph(DnnCategory::B).str(), "B(8,0,1,on)");
    EXPECT_EQ(griffinMorph(DnnCategory::A).str(), "A(2,1,1,on)");
    EXPECT_EQ(griffinMorph(DnnCategory::Dense).str(), "Dense");
}

TEST(GriffinMorph, EffectiveRoutingSelectsByCategory)
{
    auto g = griffinArch();
    EXPECT_EQ(g.effectiveRouting(DnnCategory::B).str(), "B(8,0,1,on)");
    // Non-hybrid dual design keeps its routing for every category.
    auto ab = sparseABStar();
    EXPECT_EQ(ab.effectiveRouting(DnnCategory::B).str(),
              "AB(2,0,0,2,0,1,on)");
}

TEST(GriffinMorph, AutoBandwidthFollowsWindowDepth)
{
    auto g = griffinArch();
    EXPECT_DOUBLE_EQ(g.effectiveBwScale(DnnCategory::AB), 9.0);
    EXPECT_DOUBLE_EQ(g.effectiveBwScale(DnnCategory::B), 9.0);
    EXPECT_DOUBLE_EQ(g.effectiveBwScale(DnnCategory::A), 3.0);
    EXPECT_DOUBLE_EQ(g.effectiveBwScale(DnnCategory::Dense), 1.0);
    auto fixed = griffinArch();
    fixed.bwScale = 2.5;
    EXPECT_DOUBLE_EQ(fixed.effectiveBwScale(DnnCategory::AB), 2.5);
}

TEST(ArchConfigDeathTest, ValidationCatchesUserErrors)
{
    auto cfg = denseBaseline();
    cfg.tile.k0 = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(exitUsageError),
                "non-positive tile geometry");
    auto mac = sparTenAB();
    mac.macBufferDepth = 0;
    EXPECT_EXIT(mac.validate(), testing::ExitedWithCode(exitUsageError),
                "positive buffer depth");
}

TEST(Dse, SparseBSpaceRespectsLimits)
{
    auto space = enumerateSparseB(TileShape{});
    EXPECT_GT(space.size(), 10u);
    for (const auto &cfg : space) {
        EXPECT_GE(cfg.b.d1, 2); // db1 = 1 dropped per the paper
        EXPECT_TRUE(withinFaninLimits(cfg, TileShape{}));
    }
    // The paper's Sparse.B* must be in the enumerated space.
    auto star = sparseBStar().routing;
    EXPECT_NE(std::find(space.begin(), space.end(), star), space.end());
}

TEST(Dse, SparseASpaceContainsOptimum)
{
    auto space = enumerateSparseA(TileShape{});
    auto star = sparseAStar().routing;
    EXPECT_NE(std::find(space.begin(), space.end(), star), space.end());
    for (const auto &cfg : space)
        EXPECT_TRUE(withinFaninLimits(cfg, TileShape{}));
}

TEST(Dse, SparseABSpaceExcludesDoubleAdderTrees)
{
    auto space = enumerateSparseAB(TileShape{});
    auto star = sparseABStar().routing;
    EXPECT_NE(std::find(space.begin(), space.end(), star), space.end());
    for (const auto &cfg : space) {
        EXPECT_EQ(cfg.a.d3, 0); // da3 excluded (Section VI-C)
        EXPECT_TRUE(withinFaninLimits(cfg, TileShape{}));
    }
}

TEST(Dse, ShuffleSweepDoublesConfigs)
{
    DseLimits lim;
    lim.sweepShuffle = false;
    auto on_only = enumerateSparseB(TileShape{}, lim);
    lim.sweepShuffle = true;
    auto both = enumerateSparseB(TileShape{}, lim);
    EXPECT_EQ(both.size(), 2 * on_only.size());
}

} // namespace
} // namespace griffin
