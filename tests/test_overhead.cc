/**
 * @file
 * Tests for the hardware overhead formulas against every concrete
 * value the paper states (Table II, Section IV-A, Table III, Fig. 4).
 */

#include <gtest/gtest.h>

#include "arch/overhead.hh"

namespace griffin {
namespace {

const TileShape kShape{}; // (16,16,4)

TEST(Overhead, DenseHasNoSparseLogic)
{
    auto hw = computeOverhead(RoutingConfig::dense(), kShape);
    EXPECT_EQ(hw.abufDepth, 1);
    EXPECT_EQ(hw.amuxFanin, 1);
    EXPECT_EQ(hw.adtPerPe, 1);
    EXPECT_EQ(hw.extraAdtCount, 0);
    EXPECT_EQ(hw.ctrlUnits, 0);
    EXPECT_EQ(hw.amuxCount, 0);
    EXPECT_EQ(hw.shufflerCrossbars, 0);
    EXPECT_EQ(hw.metadataBits, 0);
}

// --- Table II special cases, Sparse.A family ------------------------

TEST(Overhead, TableII_SparseA_TimeOnly)
{
    // Sparse.A(da1,0,0): ABUF 1+da1, AMUX 1+da1, BBUF 1+da1,
    // BMUX 1+da1, ADT 1.
    for (int d1 = 1; d1 <= 4; ++d1) {
        auto hw = computeOverhead(
            RoutingConfig::sparseA(d1, 0, 0, false), kShape);
        EXPECT_EQ(hw.abufDepth, 1 + d1);
        EXPECT_EQ(hw.amuxFanin, 1 + d1);
        EXPECT_EQ(hw.bbufDepth, 1 + d1);
        EXPECT_EQ(hw.bmuxFanin, 1 + d1);
        EXPECT_EQ(hw.adtPerPe, 1);
    }
}

TEST(Overhead, TableII_SparseA_LaneOnly)
{
    // Sparse.A(1,da2,0): ABUF 2, AMUX 2+da2, BBUF 2, BMUX 2+da2, ADT 1.
    for (int d2 = 1; d2 <= 3; ++d2) {
        auto hw = computeOverhead(
            RoutingConfig::sparseA(1, d2, 0, false), kShape);
        EXPECT_EQ(hw.abufDepth, 2);
        EXPECT_EQ(hw.amuxFanin, 2 + d2);
        EXPECT_EQ(hw.bbufDepth, 2);
        EXPECT_EQ(hw.bmuxFanin, 2 + d2);
        EXPECT_EQ(hw.adtPerPe, 1);
    }
}

TEST(Overhead, TableII_SparseA_CrossPe)
{
    // Sparse.A(1,0,da3): ABUF 2, AMUX 2+da3 (da3 widens AMUX), BBUF 2,
    // BMUX 2, ADT 1+da3.
    for (int d3 = 1; d3 <= 2; ++d3) {
        auto hw = computeOverhead(
            RoutingConfig::sparseA(1, 0, d3, false), kShape);
        EXPECT_EQ(hw.abufDepth, 2);
        EXPECT_EQ(hw.amuxFanin, 1 + 1 * 1 * (1 + d3));
        EXPECT_EQ(hw.bmuxFanin, 2);
        EXPECT_EQ(hw.adtPerPe, 1 + d3);
    }
}

TEST(Overhead, SectionVIB_AmuxFormulaQuote)
{
    // Section VI-B observation 4 quotes
    // AMUX = 1 + da1*(1+da2)*(1+da3) explicitly.
    auto hw =
        computeOverhead(RoutingConfig::sparseA(4, 1, 0, false), kShape);
    EXPECT_EQ(hw.amuxFanin, 1 + 4 * 2 * 1); // 9 -> excluded by limits
    EXPECT_FALSE(
        withinFaninLimits(RoutingConfig::sparseA(4, 1, 0, false), kShape));
}

// --- Table II special cases, Sparse.B family ------------------------

TEST(Overhead, TableII_SparseB_TimeOnly)
{
    for (int d1 = 1; d1 <= 6; ++d1) {
        auto hw = computeOverhead(
            RoutingConfig::sparseB(d1, 0, 0, false), kShape);
        EXPECT_EQ(hw.abufDepth, 1 + d1);
        EXPECT_EQ(hw.amuxFanin, 1 + d1);
        EXPECT_EQ(hw.adtPerPe, 1);
        EXPECT_EQ(hw.bbufWords, 0); // preprocessed: no BBUF
        EXPECT_EQ(hw.bmuxCount, 0);
    }
}

TEST(Overhead, TableII_SparseB_LaneOnly)
{
    for (int d2 = 1; d2 <= 3; ++d2) {
        auto hw = computeOverhead(
            RoutingConfig::sparseB(1, d2, 0, false), kShape);
        EXPECT_EQ(hw.abufDepth, 2);
        EXPECT_EQ(hw.amuxFanin, 2 + d2);
    }
}

TEST(Overhead, TableII_SparseB_CrossPe)
{
    // Sparse.B(1,0,db3): AMUX stays 2 (db3 does not widen AMUX,
    // Section VI-C observation 3), ADT 1+db3.
    for (int d3 = 1; d3 <= 2; ++d3) {
        auto hw = computeOverhead(
            RoutingConfig::sparseB(1, 0, d3, false), kShape);
        EXPECT_EQ(hw.amuxFanin, 2);
        EXPECT_EQ(hw.adtPerPe, 1 + d3);
    }
}

// --- Section IV-A dual formulas and the Fig. 4 / Table III values ---

TEST(Overhead, ConfAB_MatchesPaperQuotedValues)
{
    // "This configuration requires 9-entry ABUF, 3-entry BBUF, 9-input
    // AMUX, and 3-input BMUXs, and one extra adder tree."
    auto hw = computeOverhead(
        RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true), kShape);
    EXPECT_EQ(hw.abufDepth, 9);
    EXPECT_EQ(hw.bbufDepth, 3);
    EXPECT_EQ(hw.amuxFanin, 9);
    EXPECT_EQ(hw.bmuxFanin, 3);
    EXPECT_EQ(hw.adtPerPe, 2); // one extra beyond the dense tree
    EXPECT_EQ(hw.ctrlUnits, 16 * 4); // one controller per PE
}

TEST(Overhead, ConfB_MetadataIsFourBits)
{
    // Fig. 4(b): conf.B(8,0,1) "requires 4 bits of metadata per
    // element of B rather than 3 bits" (3 bits = the dual downgrade
    // B(2,0,1)).
    auto conf_b = computeOverhead(
        RoutingConfig::sparseB(8, 0, 1, true), kShape);
    EXPECT_EQ(conf_b.metadataBits, 4);
    EXPECT_EQ(conf_b.abufDepth, 9); // reuses the whole dual ABUF

    auto downgrade = computeOverhead(
        RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true), kShape);
    EXPECT_EQ(downgrade.metadataBits, 3);
}

TEST(Overhead, ConfA_BmuxFaninIsFive)
{
    // Table III: morphing to Sparse.A(2,1,1) raises BMUX fan-in from 3
    // to 5.
    auto conf_a = computeOverhead(
        RoutingConfig::sparseA(2, 1, 1, true), kShape);
    EXPECT_EQ(conf_a.bmuxFanin, 5);
    EXPECT_EQ(conf_a.bbufDepth, 3); // all three BBUF entries used
    auto downgrade = computeOverhead(
        RoutingConfig::sparseA(2, 0, 0, true), kShape);
    EXPECT_EQ(downgrade.bmuxFanin, 3);
}

TEST(Overhead, DualOnTheFlyNeedsDeeperRawBuffers)
{
    auto otf = computeOverhead(
        RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, false, false), kShape);
    auto pre = computeOverhead(
        RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true), kShape);
    EXPECT_EQ(otf.bbufDepth, 3);   // raw steps
    EXPECT_EQ(otf.metadataBits, 0);
    EXPECT_GT(otf.bmuxFanin, pre.bmuxFanin);
}

TEST(Overhead, ExtraAdderTreeCounts)
{
    // AB(2,0,0,4,0,2): (1+0)(1+2) = 3 trees per PE, 2 extra x 64 PEs.
    auto hw = computeOverhead(
        RoutingConfig::sparseAB(2, 0, 0, 4, 0, 2, true), kShape);
    EXPECT_EQ(hw.adtPerPe, 3);
    EXPECT_EQ(hw.extraAdtCount, 2 * 64);
}

TEST(Overhead, ShufflerCrossbarCount)
{
    // K0/4 = 4 crossbars per PE row (A side) and per PE column (B
    // side): 4 * (4 + 16) = 80.
    auto hw = computeOverhead(
        RoutingConfig::sparseB(4, 0, 1, true), kShape);
    EXPECT_EQ(hw.shufflerCrossbars, 80);
}

TEST(Overhead, BufferWordTotals)
{
    auto hw = computeOverhead(
        RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true), kShape);
    // ABUF: depth 9 x 16 lanes x 4 rows; BBUF: depth 3 x 16 x 16 cols.
    EXPECT_EQ(hw.abufWords, 9 * 16 * 4);
    EXPECT_EQ(hw.bbufWords, 3 * 16 * 16);
}

// --- Fan-in legality limits -----------------------------------------

TEST(FaninLimits, SingleSparseLimitEight)
{
    EXPECT_TRUE(
        withinFaninLimits(RoutingConfig::sparseB(7, 0, 0, false), kShape));
    EXPECT_FALSE(
        withinFaninLimits(RoutingConfig::sparseB(8, 0, 0, false), kShape));
    EXPECT_TRUE(
        withinFaninLimits(RoutingConfig::sparseA(2, 1, 1, true), kShape));
    EXPECT_FALSE(withinFaninLimits(
        RoutingConfig::sparseB(15, 15, 0, false), kShape)); // Cambricon-X
}

TEST(FaninLimits, DualSparseLimitSixteen)
{
    EXPECT_TRUE(withinFaninLimits(
        RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true), kShape));
    // AB(2,1,0,2,1,0): AMUX = 1 + 8*3 = 25 > 16.
    EXPECT_FALSE(withinFaninLimits(
        RoutingConfig::sparseAB(2, 1, 0, 2, 1, 0, true), kShape));
}

} // namespace
} // namespace griffin
