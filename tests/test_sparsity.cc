/**
 * @file
 * Tests for synthetic sparsity generators.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/sparsity.hh"

namespace griffin {
namespace {

TEST(Sparsity, RandomSparseHitsTargetRate)
{
    Rng rng(51);
    auto m = randomSparse(200, 200, 0.8, rng);
    EXPECT_NEAR(m.sparsity(), 0.8, 0.01);
}

TEST(Sparsity, ZeroSparsityIsFullyDense)
{
    Rng rng(52);
    auto m = randomSparse(50, 50, 0.0, rng);
    EXPECT_EQ(m.nnz(), 2500u);
}

TEST(Sparsity, FullSparsityIsAllZero)
{
    Rng rng(53);
    auto m = randomSparse(50, 50, 1.0, rng);
    EXPECT_EQ(m.nnz(), 0u);
}

TEST(Sparsity, SameSeedSameMatrix)
{
    Rng a(54), b(54);
    EXPECT_EQ(randomSparse(30, 30, 0.5, a), randomSparse(30, 30, 0.5, b));
}

TEST(Sparsity, ClusteredHitsTargetRate)
{
    Rng rng(55);
    auto m = clusteredSparse(300, 300, 0.5, 8.0, rng);
    EXPECT_NEAR(m.sparsity(), 0.5, 0.05);
}

TEST(Sparsity, ClusteredHasLongerRunsThanIid)
{
    Rng rng(56);
    auto count_runs = [](const MatrixI8 &m) {
        // Count zero runs; fewer runs at equal sparsity = longer runs.
        std::size_t runs = 0;
        for (std::size_t r = 0; r < m.rows(); ++r) {
            bool in_run = false;
            for (std::size_t c = 0; c < m.cols(); ++c) {
                const bool z = m.at(r, c) == 0;
                if (z && !in_run)
                    ++runs;
                in_run = z;
            }
        }
        return runs;
    };
    auto iid = randomSparse(200, 200, 0.5, rng);
    auto clustered = clusteredSparse(200, 200, 0.5, 8.0, rng);
    EXPECT_LT(count_runs(clustered), count_runs(iid) / 2);
}

TEST(Sparsity, UnbalancedVariesByRow)
{
    Rng rng(57);
    auto m = unbalancedSparse(100, 400, 0.5, 0.4, rng);
    double min_rate = 1.0, max_rate = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
        std::size_t z = 0;
        for (std::size_t c = 0; c < m.cols(); ++c)
            z += m.at(r, c) == 0;
        const double rate = static_cast<double>(z) / m.cols();
        min_rate = std::min(min_rate, rate);
        max_rate = std::max(max_rate, rate);
    }
    EXPECT_LT(min_rate, 0.3);
    EXPECT_GT(max_rate, 0.7);
    EXPECT_NEAR(m.sparsity(), 0.5, 0.06);
}

TEST(Sparsity, PruneInPlaceIncreasesSparsity)
{
    Rng rng(58);
    auto m = randomDense(100, 100, rng);
    pruneInPlace(m, 0.9, rng);
    EXPECT_NEAR(m.sparsity(), 0.9, 0.02);
}

TEST(Sparsity, PruneZeroRateIsNoOp)
{
    Rng rng(59);
    auto m = randomDense(20, 20, rng);
    auto before = m;
    pruneInPlace(m, 0.0, rng);
    EXPECT_EQ(m, before);
}

TEST(Sparsity, LaneBiasedHitsOverallTarget)
{
    Rng rng(61);
    auto m = laneBiasedSparse(400, 200, 0.8, 0.8, 4, rng);
    EXPECT_NEAR(m.sparsity(), 0.8, 0.02);
}

TEST(Sparsity, LaneBiasedCreatesPeriodicImbalance)
{
    Rng rng(62);
    auto m = laneBiasedSparse(4000, 64, 0.8, 0.8, 4, rng);
    // Phase 0 rows must be substantially denser than phase 3 rows.
    double nnz_by_phase[4] = {0, 0, 0, 0};
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            nnz_by_phase[r % 4] += m.at(r, c) != 0;
    EXPECT_GT(nnz_by_phase[0], 2.0 * nnz_by_phase[3]);
}

TEST(Sparsity, LaneBiasZeroIsUnbiased)
{
    Rng rng(63);
    auto m = laneBiasedSparse(4000, 16, 0.5, 0.0, 4, rng);
    double nnz_by_phase[4] = {0, 0, 0, 0};
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            nnz_by_phase[r % 4] += m.at(r, c) != 0;
    EXPECT_NEAR(nnz_by_phase[0] / nnz_by_phase[3], 1.0, 0.1);
}

TEST(SparsityDeathTest, LaneBiasedValidatesArguments)
{
    Rng rng(64);
    EXPECT_DEATH(laneBiasedSparse(4, 4, 0.5, 1.5, 4, rng), "bias");
    EXPECT_DEATH(laneBiasedSparse(4, 4, 0.5, 0.5, 0, rng), "period");
}

TEST(SparsityDeathTest, OutOfRangeRateIsRejected)
{
    Rng rng(60);
    EXPECT_DEATH(randomSparse(4, 4, 1.5, rng), "outside");
    EXPECT_DEATH(randomSparse(4, 4, -0.1, rng), "outside");
    EXPECT_DEATH(clusteredSparse(4, 4, 0.5, 0.5, rng), "run length");
}

} // namespace
} // namespace griffin
