/**
 * @file
 * griffin-lint rule engine over the fixture corpus.
 *
 * Each known-bad fixture annotates its offending lines with trailing
 * `FIRE(<rule>)` comments; the suite asserts the linter reports
 * exactly that (line, rule) multiset — every planted bug found at its
 * exact line, and *nothing* else (no false positives on the known-good
 * lines sharing the file).  The suppression fixture pins the
 * allowlist machinery: justifications are mandatory, unknown rules
 * and stale allows are findings in their own right.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hh"

namespace {

using griffin::lint::Finding;
using griffin::lint::lintSource;
using griffin::lint::ruleNames;

using LineRule = std::pair<int, std::string>;

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(GRIFFIN_LINT_FIXTURES_DIR) + "/" + name;
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << "missing fixture " << path;
    std::ostringstream text;
    text << is.rdbuf();
    return text.str();
}

/** Expected (line, rule) pairs from trailing FIRE(rule[, rule]) marks. */
std::multiset<LineRule>
expectedFromMarkers(const std::string &text)
{
    static const std::regex fire_re(R"(FIRE\(([^)]+)\))");
    std::multiset<LineRule> expected;
    std::istringstream is(text);
    std::string line;
    int n = 0;
    while (std::getline(is, line)) {
        ++n;
        std::smatch m;
        if (!std::regex_search(line, m, fire_re))
            continue;
        std::stringstream names(m[1].str());
        std::string rule;
        while (std::getline(names, rule, ',')) {
            const auto b = rule.find_first_not_of(" \t");
            if (b == std::string::npos)
                continue;
            const auto e = rule.find_last_not_of(" \t");
            expected.insert({n, rule.substr(b, e - b + 1)});
        }
    }
    return expected;
}

std::multiset<LineRule>
actualPairs(const std::vector<Finding> &findings)
{
    std::multiset<LineRule> out;
    for (const auto &f : findings)
        out.insert({f.line, f.rule});
    return out;
}

std::string
describe(const std::vector<Finding> &findings)
{
    std::string out;
    for (const auto &f : findings)
        out += "  " + griffin::lint::formatFinding(f) + "\n";
    return out.empty() ? "  (none)\n" : out;
}

/** The fixture's findings must equal its FIRE() markers exactly. */
void
expectMarkersMatch(const std::string &fixture)
{
    const std::string text = readFixture(fixture);
    ASSERT_FALSE(text.empty());
    const auto findings = lintSource(fixture, text);
    EXPECT_EQ(actualPairs(findings), expectedFromMarkers(text))
        << "findings were:\n"
        << describe(findings);
}

/** 1-based line of the first line containing `needle`. */
int
lineContaining(const std::string &text, const std::string &needle)
{
    std::istringstream is(text);
    std::string line;
    int n = 0;
    while (std::getline(is, line)) {
        ++n;
        if (line.find(needle) != std::string::npos)
            return n;
    }
    ADD_FAILURE() << "no line contains: " << needle;
    return 0;
}

TEST(GriffinLint, WallClockFixtureFiresAtExactLines)
{
    expectMarkersMatch("bad_wall_clock.cc");
}

TEST(GriffinLint, BannedRandomFixtureFiresAtExactLines)
{
    expectMarkersMatch("bad_random.cc");
}

TEST(GriffinLint, PointerKeyedMapFixtureFiresAtExactLines)
{
    expectMarkersMatch("bad_pointer_map.cc");
}

TEST(GriffinLint, UnorderedSinkFixtureFiresAtExactLines)
{
    expectMarkersMatch("bad_unordered_sink.cc");
}

TEST(GriffinLint, UninitSerializedFieldFixtureFiresAtExactLines)
{
    expectMarkersMatch("bad_uninit_field.cc");
}

TEST(GriffinLint, IntrinsicsFixtureFiresAtExactLines)
{
    expectMarkersMatch("bad_intrinsics.cc");
}

TEST(GriffinLint, IntrinsicsAreAllowedInsideTheSimdLayer)
{
    // The same offending text is clean when the path lies in the
    // confinement directory: the rule is path-aware by design.
    const std::string text = readFixture("bad_intrinsics.cc");
    ASSERT_FALSE(text.empty());
    const auto findings =
        lintSource("src/simd/kernels_avx2.cc", text);
    EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(GriffinLint, CleanFixtureHasNoFindings)
{
    const std::string text = readFixture("good_clean.cc");
    const auto findings = lintSource("good_clean.cc", text);
    EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(GriffinLint, JustifiedUsedSuppressionSilencesTheFinding)
{
    const std::string text = readFixture("good_suppressed.cc");
    const auto findings = lintSource("good_suppressed.cc", text);
    // The wall-clock reads are allowlisted with a justification and
    // both suppressions match a finding: clean report, and no
    // unused-suppression either.
    EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(GriffinLint, SuppressionMachineryFindsItsOwnRot)
{
    const std::string text = readFixture("bad_suppressions.cc");
    const auto findings = lintSource("bad_suppressions.cc", text);

    std::multiset<LineRule> expected;
    // A justification is mandatory; a bare allow() registers nothing,
    // so the finding it meant to cover fires too.
    const int bare = lineContaining(text, "allow(wall-clock)");
    expected.insert({bare, "malformed-suppression"});
    expected.insert({bare + 1, "wall-clock"});
    // Unknown rule names are rejected (typo-proofing the allowlist).
    const int unknown = lineContaining(text, "allow(no-such-rule)");
    expected.insert({unknown, "malformed-suppression"});
    expected.insert({unknown + 1, "wall-clock"});
    // allow() must name at least one rule.
    const int empty = lineContaining(text, "allow() forgot");
    expected.insert({empty, "malformed-suppression"});
    expected.insert({empty + 1, "wall-clock"});
    // A suppression matching no finding is itself a finding.
    const int stale = lineContaining(text, "allow(banned-random)");
    expected.insert({stale, "unused-suppression"});

    EXPECT_EQ(actualPairs(findings), expected)
        << "findings were:\n"
        << describe(findings);
}

TEST(GriffinLint, FindingsCarryThePathAndSortByLine)
{
    const std::string text = readFixture("bad_wall_clock.cc");
    const auto findings = lintSource("some/dir/bad_wall_clock.cc", text);
    ASSERT_FALSE(findings.empty());
    for (std::size_t i = 0; i < findings.size(); ++i) {
        EXPECT_EQ(findings[i].file, "some/dir/bad_wall_clock.cc");
        if (i > 0) {
            EXPECT_LE(findings[i - 1].line, findings[i].line);
        }
    }
    const std::string line = griffin::lint::formatFinding(findings[0]);
    EXPECT_EQ(line.rfind("some/dir/bad_wall_clock.cc:", 0), 0u);
    EXPECT_NE(line.find("[wall-clock]"), std::string::npos);
}

TEST(GriffinLint, RuleNamesAreSortedAndComplete)
{
    const auto &rules = ruleNames();
    const std::vector<std::string> want = {
        "banned-random",           "intrinsics-outside-simd",
        "pointer-keyed-map",       "uninit-serialized-field",
        "unordered-sink-iteration", "wall-clock",
    };
    EXPECT_EQ(rules, want);
}

} // namespace
