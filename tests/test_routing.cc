/**
 * @file
 * Tests for routing configurations and window-parameter derivation.
 */

#include <gtest/gtest.h>

#include "arch/routing.hh"

namespace griffin {
namespace {

TEST(Routing, DenseFactory)
{
    auto cfg = RoutingConfig::dense();
    EXPECT_EQ(cfg.mode, SparsityMode::Dense);
    EXPECT_FALSE(cfg.sparseA());
    EXPECT_FALSE(cfg.sparseB());
    EXPECT_EQ(cfg.str(), "Dense");
}

TEST(Routing, SparseAFactoryAndName)
{
    auto cfg = RoutingConfig::sparseA(2, 1, 0, true);
    EXPECT_TRUE(cfg.sparseA());
    EXPECT_FALSE(cfg.sparseB());
    EXPECT_EQ(cfg.str(), "A(2,1,0,on)");
}

TEST(Routing, SparseBFactoryAndName)
{
    auto cfg = RoutingConfig::sparseB(4, 0, 1, false);
    EXPECT_FALSE(cfg.sparseA());
    EXPECT_TRUE(cfg.sparseB());
    EXPECT_TRUE(cfg.preprocessB);
    EXPECT_EQ(cfg.str(), "B(4,0,1,off)");
}

TEST(Routing, SparseABFactoryAndName)
{
    auto cfg = RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true);
    EXPECT_TRUE(cfg.sparseA());
    EXPECT_TRUE(cfg.sparseB());
    EXPECT_EQ(cfg.str(), "AB(2,0,0,2,0,1,on)");
    auto otf = RoutingConfig::sparseAB(3, 1, 0, 3, 1, 0, false, false);
    EXPECT_EQ(otf.str(), "AB(3,1,0,3,1,0,off)[otf]");
}

TEST(RoutingDeathTest, InvalidConfigsPanic)
{
    EXPECT_DEATH(RoutingConfig::sparseA(-1, 0, 0, false), "negative");
    RoutingConfig bad;
    bad.mode = SparsityMode::B;
    bad.a = {1, 0, 0}; // A distances on a B-only design
    bad.preprocessB = true;
    EXPECT_DEATH(bad.validate(), "mode does not skip A");
    RoutingConfig no_preprocess;
    no_preprocess.mode = SparsityMode::B;
    no_preprocess.b = {2, 0, 0};
    EXPECT_DEATH(no_preprocess.validate(), "requires preprocessing");
}

TEST(WindowParams, DenseIsUnitWindow)
{
    EXPECT_EQ(windowParams(RoutingConfig::dense()),
              (WindowParams{1, 0, 0, 0}));
}

TEST(WindowParams, SingleSparseWindows)
{
    EXPECT_EQ(windowParams(RoutingConfig::sparseA(2, 1, 1, true)),
              (WindowParams{3, 1, 1, 0}));
    EXPECT_EQ(windowParams(RoutingConfig::sparseB(4, 0, 1, true)),
              (WindowParams{5, 0, 0, 1}));
    EXPECT_EQ(windowParams(RoutingConfig::sparseB(8, 0, 1, true)),
              (WindowParams{9, 0, 0, 1}));
}

TEST(WindowParams, DualPreprocessedMultipliesLookahead)
{
    // conf.AB: ABUF depth L = (1+2)(1+2) = 9 original steps.
    auto w = windowParams(RoutingConfig::sparseAB(2, 0, 0, 2, 0, 1, true));
    EXPECT_EQ(w.steps, 9);
    EXPECT_EQ(w.laneDist, 0);
    EXPECT_EQ(w.rowDist, 0);
    EXPECT_EQ(w.colDist, 1);
}

TEST(WindowParams, DualOnTheFlyLimitedByShallowerBuffer)
{
    auto w = windowParams(
        RoutingConfig::sparseAB(3, 1, 0, 2, 1, 0, false, false));
    EXPECT_EQ(w.steps, 1 + 2); // min(da1, db1) = 2
    EXPECT_EQ(w.laneDist, 2);  // da2 + db2
}

TEST(WindowParams, LaneDistancesAdd)
{
    auto w = windowParams(RoutingConfig::sparseAB(1, 1, 0, 1, 2, 0, true));
    EXPECT_EQ(w.laneDist, 3);
    EXPECT_EQ(w.steps, 4);
}

} // namespace
} // namespace griffin
