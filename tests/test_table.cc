/**
 * @file
 * Tests for ASCII / CSV table rendering.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace griffin {
namespace {

TEST(Table, RendersAlignedBox)
{
    Table t("demo", {"config", "speedup"});
    t.addRow({"B(4,0,1,on)", "2.47"});
    t.addRow({"baseline", "1.00"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("| config      | speedup |"), std::string::npos);
    EXPECT_NE(out.find("| B(4,0,1,on) | 2.47    |"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes)
{
    Table t("", {"name", "note"});
    t.addRow({"a,b", "he said \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, CellAccessor)
{
    Table t("x", {"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.cell(0, 1), "2");
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.cols(), 2u);
}

TEST(TableDeathTest, RowArityMismatchPanics)
{
    Table t("x", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row has 1 cells");
}

TEST(TableDeathTest, CellOutOfRangePanics)
{
    Table t("x", {"a"});
    EXPECT_DEATH(t.cell(0, 0), "out of range");
}

TEST(Table, NumFormatsFixedPrecision)
{
    EXPECT_EQ(Table::num(2.468, 2), "2.47");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, CountAddsThousandsSeparators)
{
    EXPECT_EQ(Table::count(0), "0");
    EXPECT_EQ(Table::count(999), "999");
    EXPECT_EQ(Table::count(1000), "1,000");
    EXPECT_EQ(Table::count(4800000), "4,800,000");
}

} // namespace
} // namespace griffin
